#include "workload/updates.hpp"

#include <stdexcept>

namespace mobi::workload {

namespace {

class PeriodicSynchronized final : public UpdateProcess {
 public:
  PeriodicSynchronized(std::size_t object_count, sim::Tick period)
      : object_count_(object_count), period_(period) {
    if (period <= 0) {
      throw std::invalid_argument("periodic update: period must be > 0");
    }
  }

  void for_each_updated(
      sim::Tick tick,
      const std::function<void(object::ObjectId)>& fn) override {
    if (tick % period_ != 0) return;
    for (std::size_t i = 0; i < object_count_; ++i) {
      fn(object::ObjectId(i));
    }
  }

  std::string name() const override {
    return "periodic-sync(p=" + std::to_string(period_) + ")";
  }

 private:
  std::size_t object_count_;
  sim::Tick period_;
};

class PeriodicStaggered final : public UpdateProcess {
 public:
  PeriodicStaggered(std::size_t object_count, sim::Tick period)
      : object_count_(object_count), period_(period) {
    if (period <= 0) {
      throw std::invalid_argument("periodic update: period must be > 0");
    }
  }

  void for_each_updated(
      sim::Tick tick,
      const std::function<void(object::ObjectId)>& fn) override {
    // Object i fires when tick ≡ i (mod period): i, i+period, i+2*period...
    for (std::size_t i = tick >= 0 ? std::size_t(tick % period_) : 0;
         i < object_count_; i += std::size_t(period_)) {
      fn(object::ObjectId(i));
    }
  }

  std::string name() const override {
    return "periodic-staggered(p=" + std::to_string(period_) + ")";
  }

 private:
  std::size_t object_count_;
  sim::Tick period_;
};

class BernoulliUpdates final : public UpdateProcess {
 public:
  BernoulliUpdates(std::size_t object_count, double rate, util::Rng rng)
      : object_count_(object_count), rate_(rate), rng_(rng) {
    if (rate < 0.0 || rate > 1.0) {
      throw std::invalid_argument("bernoulli update: rate must be in [0, 1]");
    }
  }

  void for_each_updated(
      sim::Tick /*tick*/,
      const std::function<void(object::ObjectId)>& fn) override {
    for (std::size_t i = 0; i < object_count_; ++i) {
      if (rng_.bernoulli(rate_)) fn(object::ObjectId(i));
    }
  }

  std::string name() const override {
    return "bernoulli(rate=" + std::to_string(rate_) + ")";
  }

 private:
  std::size_t object_count_;
  double rate_;
  util::Rng rng_;
};

}  // namespace

std::unique_ptr<UpdateProcess> make_periodic_synchronized(
    std::size_t object_count, sim::Tick period) {
  return std::make_unique<PeriodicSynchronized>(object_count, period);
}

std::unique_ptr<UpdateProcess> make_periodic_staggered(
    std::size_t object_count, sim::Tick period) {
  return std::make_unique<PeriodicStaggered>(object_count, period);
}

std::unique_ptr<UpdateProcess> make_bernoulli_updates(
    std::size_t object_count, double per_tick_rate, util::Rng rng) {
  return std::make_unique<BernoulliUpdates>(object_count, per_tick_rate, rng);
}

}  // namespace mobi::workload
