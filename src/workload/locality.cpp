#include "workload/locality.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobi::workload {

StackAccess::StackAccess(std::shared_ptr<const AccessDistribution> base,
                         double reuse, double depth_decay,
                         std::size_t max_stack)
    : base_(std::move(base)),
      reuse_(reuse),
      depth_decay_(depth_decay),
      max_stack_(max_stack) {
  if (!base_) throw std::invalid_argument("StackAccess: null base");
  if (reuse < 0.0 || reuse >= 1.0) {
    throw std::invalid_argument("StackAccess: reuse must be in [0, 1)");
  }
  if (!(depth_decay > 0.0) || depth_decay >= 1.0) {
    throw std::invalid_argument("StackAccess: depth_decay must be in (0, 1)");
  }
  if (max_stack == 0) {
    throw std::invalid_argument("StackAccess: max_stack must be > 0");
  }
}

void StackAccess::touch(object::ObjectId id) {
  const auto it = std::find(stack_.begin(), stack_.end(), id);
  if (it != stack_.end()) stack_.erase(it);
  stack_.push_front(id);
  if (stack_.size() > max_stack_) stack_.pop_back();
}

object::ObjectId StackAccess::sample(util::Rng& rng) {
  if (!stack_.empty() && rng.bernoulli(reuse_)) {
    // Geometric stack depth, truncated to the current stack size.
    std::size_t depth = 0;
    while (depth + 1 < stack_.size() && rng.bernoulli(depth_decay_)) {
      ++depth;
    }
    const object::ObjectId id = stack_[depth];
    touch(id);
    return id;
  }
  const object::ObjectId id = base_->sample(rng);
  touch(id);
  return id;
}

}  // namespace mobi::workload
