// Server-side update processes: when does each object's master copy
// change?
//
// Figure 2/3 use a periodic synchronized process ("all objects are updated
// simultaneously ... once every 5 time units"). Staggered and Poisson
// variants are provided for the examples and robustness tests.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "object/object.hpp"
#include "sim/tick.hpp"
#include "util/rng.hpp"

namespace mobi::workload {

/// Yields the set of objects updated at a given tick.
class UpdateProcess {
 public:
  virtual ~UpdateProcess() = default;
  /// Calls `fn(id)` once for every object whose master changes at `tick`.
  virtual void for_each_updated(
      sim::Tick tick, const std::function<void(object::ObjectId)>& fn) = 0;
  virtual std::string name() const = 0;
};

/// Every object updated at ticks 0, period, 2*period, ...
std::unique_ptr<UpdateProcess> make_periodic_synchronized(
    std::size_t object_count, sim::Tick period);

/// Object i updated at ticks where (tick - i) mod period == 0; the same
/// aggregate rate as synchronized but spread evenly across ticks.
std::unique_ptr<UpdateProcess> make_periodic_staggered(
    std::size_t object_count, sim::Tick period);

/// Each object independently updated with probability `per_tick_rate` at
/// every tick (Bernoulli approximation of a Poisson process).
std::unique_ptr<UpdateProcess> make_bernoulli_updates(
    std::size_t object_count, double per_tick_rate, util::Rng rng);

}  // namespace mobi::workload
