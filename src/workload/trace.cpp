#include "workload/trace.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mobi::workload {

void Trace::record(sim::Tick tick, const Request& request) {
  if (!entries_.empty() && tick < entries_.back().tick) {
    throw std::logic_error("Trace::record: ticks must be non-decreasing");
  }
  entries_.push_back(TraceEntry{tick, request});
}

void Trace::record_batch(sim::Tick tick, const RequestBatch& batch) {
  for (const Request& request : batch) record(tick, request);
}

RequestBatch Trace::batch_at(sim::Tick tick) const {
  // Entries are sorted by tick; binary search for the range.
  const auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), tick,
      [](const TraceEntry& e, sim::Tick t) { return e.tick < t; });
  const auto hi = std::upper_bound(
      entries_.begin(), entries_.end(), tick,
      [](sim::Tick t, const TraceEntry& e) { return t < e.tick; });
  RequestBatch batch;
  batch.reserve(std::size_t(hi - lo));
  for (auto it = lo; it != hi; ++it) batch.push_back(it->request);
  return batch;
}

std::string Trace::to_csv() const {
  std::ostringstream out;
  out << "tick,object,target,client\n";
  for (const TraceEntry& entry : entries_) {
    out << entry.tick << ',' << entry.request.object << ','
        << entry.request.target_recency << ',' << entry.request.client << '\n';
  }
  return out.str();
}

Trace Trace::from_csv(const std::string& csv) {
  Trace trace;
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) return trace;  // empty input
  if (line.rfind("tick,", 0) != 0) {
    throw std::invalid_argument("Trace::from_csv: missing header");
  }
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string field;
    TraceEntry entry;
    try {
      if (!std::getline(fields, field, ',')) throw std::invalid_argument("tick");
      entry.tick = std::stoll(field);
      if (!std::getline(fields, field, ',')) throw std::invalid_argument("object");
      entry.request.object = object::ObjectId(std::stoul(field));
      if (!std::getline(fields, field, ',')) throw std::invalid_argument("target");
      entry.request.target_recency = std::stod(field);
      if (!std::getline(fields, field, ',')) throw std::invalid_argument("client");
      entry.request.client = ClientId(std::stoul(field));
    } catch (const std::exception&) {
      throw std::invalid_argument("Trace::from_csv: bad line " +
                                  std::to_string(line_number));
    }
    trace.record(entry.tick, entry.request);
  }
  return trace;
}

Trace generate_trace(RequestGenerator& generator, sim::Tick ticks) {
  Trace trace;
  for (sim::Tick t = 0; t < ticks; ++t) {
    trace.record_batch(t, generator.next_batch());
  }
  return trace;
}

}  // namespace mobi::workload
