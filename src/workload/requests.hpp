// Requests and request-batch generation.
//
// Each request is one client asking for one object with a target recency
// C: the client is fully satisfied (score 1.0) by any copy whose recency
// score is >= C, and degrades below that per the scoring function
// (core/scoring.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "object/object.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"

namespace mobi::workload {

using ClientId = std::uint32_t;

struct Request {
  object::ObjectId object = 0;
  double target_recency = 1.0;  // the client's C in (0, 1]
  ClientId client = 0;
};

using RequestBatch = std::vector<Request>;

/// Distribution of client target-recency values.
struct ConstantTarget {
  double value = 1.0;
};
struct UniformTarget {
  double lo = 0.5;
  double hi = 1.0;
};
using TargetDistribution = std::variant<ConstantTarget, UniformTarget>;

double sample_target(const TargetDistribution& dist, util::Rng& rng);

/// Draws i.i.d. request batches: `per_batch` requests per call, objects
/// from the access distribution, targets from the target distribution.
/// Client ids increase monotonically across batches.
class RequestGenerator {
 public:
  RequestGenerator(std::shared_ptr<const AccessDistribution> access,
                   TargetDistribution targets, std::size_t per_batch,
                   util::Rng rng);

  RequestBatch next_batch();
  /// Same draws as next_batch, written into a reused buffer (cleared
  /// first) — the allocation-free entry point for callers that retain the
  /// batch across ticks. Bit-identical RNG consumption to next_batch.
  void next_batch_into(RequestBatch& out);
  std::size_t per_batch() const noexcept { return per_batch_; }

 private:
  std::shared_ptr<const AccessDistribution> access_;
  TargetDistribution targets_;
  std::size_t per_batch_;
  util::Rng rng_;
  ClientId next_client_ = 0;
};

/// Count of requests per object in a batch, indexed by ObjectId.
std::vector<std::uint32_t> requests_per_object(const RequestBatch& batch,
                                               std::size_t object_count);

}  // namespace mobi::workload
