// Shifting-hotspot workload: non-stationary popularity.
//
// Real client populations drift — today's hot news object is cold
// tomorrow. The rank distribution (e.g. zipf) stays fixed, but the
// mapping from popularity ranks to object ids rotates by `stride` every
// `shift_period` ticks. Request-driven policies adapt automatically
// (profit follows the requests); request-oblivious refresh cannot. Used
// by the robustness bench.
#pragma once

#include <memory>

#include "object/object.hpp"
#include "sim/tick.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"

namespace mobi::workload {

class ShiftingHotspot {
 public:
  /// `base` supplies the per-rank distribution (its object ids are read
  /// as ranks). Every `shift_period` ticks the rank->object mapping
  /// rotates by `stride` positions.
  ShiftingHotspot(std::shared_ptr<const AccessDistribution> base,
                  sim::Tick shift_period, std::size_t stride);

  std::size_t object_count() const noexcept { return base_->object_count(); }

  /// Object sampled at tick `now`.
  object::ObjectId sample(util::Rng& rng, sim::Tick now) const;

  /// Probability of `id` at tick `now`.
  double probability(object::ObjectId id, sim::Tick now) const;

  /// The object currently occupying popularity rank `rank`.
  object::ObjectId object_at_rank(std::size_t rank, sim::Tick now) const;

 private:
  std::size_t offset(sim::Tick now) const;

  std::shared_ptr<const AccessDistribution> base_;
  sim::Tick shift_period_;
  std::size_t stride_;
};

}  // namespace mobi::workload
