// Temporal locality via an LRU stack model.
//
// Independent draws (zipf/uniform) capture *popularity* skew but not
// *temporal* locality — the tendency of clients to re-request what was
// requested recently. The classic stack model supplies it: with
// probability `reuse`, the next request re-references the object at a
// geometrically distributed depth of the LRU stack; otherwise it draws
// fresh from the base popularity distribution. reuse = 0 degenerates to
// i.i.d. draws from the base distribution.
#pragma once

#include <deque>
#include <memory>

#include "object/object.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"

namespace mobi::workload {

class StackAccess {
 public:
  /// `reuse` in [0, 1): probability a request is a stack re-reference.
  /// `depth_decay` in (0, 1): geometric parameter over stack depths —
  /// depth d is chosen with probability ~ depth_decay^d (shallow = most
  /// recently used first).
  StackAccess(std::shared_ptr<const AccessDistribution> base, double reuse,
              double depth_decay, std::size_t max_stack = 256);

  object::ObjectId sample(util::Rng& rng);

  std::size_t stack_size() const noexcept { return stack_.size(); }
  double reuse() const noexcept { return reuse_; }

 private:
  void touch(object::ObjectId id);

  std::shared_ptr<const AccessDistribution> base_;
  double reuse_;
  double depth_decay_;
  std::size_t max_stack_;
  std::deque<object::ObjectId> stack_;  // front = most recently used
};

}  // namespace mobi::workload
