#include "workload/hotspot.hpp"

#include <stdexcept>

namespace mobi::workload {

ShiftingHotspot::ShiftingHotspot(
    std::shared_ptr<const AccessDistribution> base, sim::Tick shift_period,
    std::size_t stride)
    : base_(std::move(base)), shift_period_(shift_period), stride_(stride) {
  if (!base_) throw std::invalid_argument("ShiftingHotspot: null base");
  if (shift_period <= 0) {
    throw std::invalid_argument("ShiftingHotspot: shift_period must be > 0");
  }
}

std::size_t ShiftingHotspot::offset(sim::Tick now) const {
  if (now < 0) throw std::invalid_argument("ShiftingHotspot: negative tick");
  const std::size_t n = base_->object_count();
  return (std::size_t(now / shift_period_) * stride_) % n;
}

object::ObjectId ShiftingHotspot::object_at_rank(std::size_t rank,
                                                 sim::Tick now) const {
  const std::size_t n = base_->object_count();
  if (rank >= n) throw std::out_of_range("ShiftingHotspot: bad rank");
  return object::ObjectId((rank + offset(now)) % n);
}

object::ObjectId ShiftingHotspot::sample(util::Rng& rng, sim::Tick now) const {
  // The base distribution's sampled id *is* the rank.
  const auto rank = std::size_t(base_->sample(rng));
  return object_at_rank(rank, now);
}

double ShiftingHotspot::probability(object::ObjectId id, sim::Tick now) const {
  const std::size_t n = base_->object_count();
  if (id >= n) throw std::out_of_range("ShiftingHotspot: bad id");
  // Invert the rotation: the rank currently mapped onto `id`.
  const std::size_t shift = offset(now);
  const std::size_t rank = (std::size_t(id) + n - shift) % n;
  return base_->probability(object::ObjectId(rank));
}

}  // namespace mobi::workload
