#include "workload/access.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mobi::workload {

WeightedAccess::WeightedAccess(std::string name,
                               std::vector<double> rank_weights,
                               std::vector<object::ObjectId> rank_to_object)
    : name_(std::move(name)), rank_to_object_(std::move(rank_to_object)) {
  const std::size_t n = rank_weights.size();
  if (n == 0) throw std::invalid_argument("WeightedAccess: no objects");
  if (rank_to_object_.empty()) {
    rank_to_object_.resize(n);
    std::iota(rank_to_object_.begin(), rank_to_object_.end(),
              object::ObjectId{0});
  }
  if (rank_to_object_.size() != n) {
    throw std::invalid_argument("WeightedAccess: mapping size mismatch");
  }
  // Validate the mapping is a permutation of [0, n).
  std::vector<bool> seen(n, false);
  for (object::ObjectId id : rank_to_object_) {
    if (id >= n || seen[id]) {
      throw std::invalid_argument("WeightedAccess: mapping is not a permutation");
    }
    seen[id] = true;
  }
  double total = 0.0;
  for (double w : rank_weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("WeightedAccess: weights must be finite, >= 0");
    }
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("WeightedAccess: zero total weight");
  object_probability_.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    object_probability_[rank_to_object_[r]] = rank_weights[r] / total;
  }

  // Vose's alias method: split ranks into "small" (scaled prob < 1) and
  // "large"; every slot ends up holding its own rank with probability
  // accept_[r] and a single alias otherwise.
  accept_.assign(n, 1.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  for (std::size_t r = 0; r < n; ++r) {
    scaled[r] = rank_weights[r] / total * double(n);
    (scaled[r] < 1.0 ? small : large).push_back(std::uint32_t(r));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    accept_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are exactly 1 up to rounding; they keep accept_ = 1.
  for (std::uint32_t r : small) accept_[r] = 1.0;
  for (std::uint32_t r : large) accept_[r] = 1.0;
}

object::ObjectId WeightedAccess::sample(util::Rng& rng) const {
  const std::size_t n = accept_.size();
  const auto slot = std::size_t(rng.uniform_u64(0, n - 1));
  const std::size_t rank =
      rng.uniform() < accept_[slot] ? slot : std::size_t(alias_[slot]);
  return rank_to_object_[rank];
}

double WeightedAccess::probability(object::ObjectId id) const {
  if (id >= object_probability_.size()) {
    throw std::out_of_range("WeightedAccess::probability");
  }
  return object_probability_[id];
}

std::unique_ptr<AccessDistribution> make_uniform_access(std::size_t n) {
  return std::make_unique<WeightedAccess>("uniform",
                                          std::vector<double>(n, 1.0));
}

std::unique_ptr<AccessDistribution> make_rank_linear_access(
    std::size_t n, std::vector<object::ObjectId> rank_to_object) {
  std::vector<double> weights(n);
  for (std::size_t r = 0; r < n; ++r) weights[r] = double(n - r);
  return std::make_unique<WeightedAccess>("rank-linear", std::move(weights),
                                          std::move(rank_to_object));
}

std::unique_ptr<AccessDistribution> make_zipf_access(
    std::size_t n, double alpha, std::vector<object::ObjectId> rank_to_object) {
  if (alpha < 0.0) throw std::invalid_argument("make_zipf_access: alpha < 0");
  std::vector<double> weights(n);
  for (std::size_t r = 0; r < n; ++r) {
    weights[r] = 1.0 / std::pow(double(r + 1), alpha);
  }
  return std::make_unique<WeightedAccess>("zipf", std::move(weights),
                                          std::move(rank_to_object));
}

}  // namespace mobi::workload
