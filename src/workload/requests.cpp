#include "workload/requests.hpp"

#include <stdexcept>

namespace mobi::workload {

double sample_target(const TargetDistribution& dist, util::Rng& rng) {
  if (const auto* constant = std::get_if<ConstantTarget>(&dist)) {
    if (constant->value <= 0.0 || constant->value > 1.0) {
      throw std::invalid_argument("ConstantTarget: value must be in (0, 1]");
    }
    return constant->value;
  }
  const auto& uniform = std::get<UniformTarget>(dist);
  if (uniform.lo <= 0.0 || uniform.hi > 1.0 || uniform.lo > uniform.hi) {
    throw std::invalid_argument("UniformTarget: need 0 < lo <= hi <= 1");
  }
  return rng.uniform(uniform.lo, uniform.hi);
}

RequestGenerator::RequestGenerator(
    std::shared_ptr<const AccessDistribution> access,
    TargetDistribution targets, std::size_t per_batch, util::Rng rng)
    : access_(std::move(access)),
      targets_(targets),
      per_batch_(per_batch),
      rng_(rng) {
  if (!access_) throw std::invalid_argument("RequestGenerator: null access");
}

RequestBatch RequestGenerator::next_batch() {
  RequestBatch batch;
  next_batch_into(batch);
  return batch;
}

void RequestGenerator::next_batch_into(RequestBatch& out) {
  out.clear();
  out.reserve(per_batch_);
  for (std::size_t i = 0; i < per_batch_; ++i) {
    out.push_back(Request{access_->sample(rng_), sample_target(targets_, rng_),
                          next_client_++});
  }
}

std::vector<std::uint32_t> requests_per_object(const RequestBatch& batch,
                                               std::size_t object_count) {
  std::vector<std::uint32_t> counts(object_count, 0);
  for (const Request& request : batch) {
    if (request.object >= object_count) {
      throw std::out_of_range("requests_per_object: object id out of range");
    }
    ++counts[request.object];
  }
  return counts;
}

}  // namespace mobi::workload
