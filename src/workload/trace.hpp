// Request-trace record and replay.
//
// Records the (tick, object, target recency) stream of a run so that two
// policies can be compared on the *same* set of randomly generated client
// requests — exactly what the paper does in Figure 3 ("both simulations
// used the same set of randomly generated client requests").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/tick.hpp"
#include "workload/requests.hpp"

namespace mobi::workload {

struct TraceEntry {
  sim::Tick tick = 0;
  Request request;
};

class Trace {
 public:
  void record(sim::Tick tick, const Request& request);
  void record_batch(sim::Tick tick, const RequestBatch& batch);

  /// Requests recorded at `tick` (entries are kept in record order and
  /// ticks must be recorded non-decreasing).
  RequestBatch batch_at(sim::Tick tick) const;

  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<TraceEntry>& entries() const noexcept { return entries_; }
  sim::Tick last_tick() const noexcept {
    return entries_.empty() ? -1 : entries_.back().tick;
  }

  /// CSV round-trip: "tick,object,target,client" with a header line.
  std::string to_csv() const;
  static Trace from_csv(const std::string& csv);

 private:
  std::vector<TraceEntry> entries_;
};

/// Pre-generates a full trace by drawing `ticks` batches from a generator.
Trace generate_trace(RequestGenerator& generator, sim::Tick ticks);

}  // namespace mobi::workload
