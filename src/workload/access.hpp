// Client access-pattern distributions over a catalog of n objects.
//
// The paper's Figure 2 uses three patterns over object popularity ranks:
//   * uniform          — every object equally likely;
//   * "skewed uniform" — the i-th most popular object requested with
//                        probability proportional to its rank weight
//                        (linear-in-rank skew);
//   * zipf             — probability proportional to 1/i^alpha.
// Rank r (0 = most popular) maps to an object id via an optional
// permutation so popularity need not follow catalog order.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "object/object.hpp"
#include "util/rng.hpp"

namespace mobi::workload {

/// Samples object ids according to a fixed popularity distribution.
class AccessDistribution {
 public:
  virtual ~AccessDistribution() = default;
  virtual object::ObjectId sample(util::Rng& rng) const = 0;
  virtual std::size_t object_count() const noexcept = 0;
  virtual std::string name() const = 0;
  /// Probability of sampling object `id` (for tests/analysis).
  virtual double probability(object::ObjectId id) const = 0;
};

/// Generic finite distribution: explicit per-rank weights plus a rank ->
/// object mapping. All concrete patterns below reduce to this. Sampling
/// uses Walker/Vose alias tables: O(n) construction, O(1) per sample.
class WeightedAccess final : public AccessDistribution {
 public:
  /// `rank_weights[r]` is the (unnormalized) weight of popularity rank r.
  /// `rank_to_object` maps ranks to object ids (must be a permutation of
  /// [0, n)); empty means identity.
  WeightedAccess(std::string name, std::vector<double> rank_weights,
                 std::vector<object::ObjectId> rank_to_object = {});

  object::ObjectId sample(util::Rng& rng) const override;
  std::size_t object_count() const noexcept override { return accept_.size(); }
  std::string name() const override { return name_; }
  double probability(object::ObjectId id) const override;

 private:
  std::string name_;
  std::vector<object::ObjectId> rank_to_object_;
  std::vector<double> object_probability_;
  // Alias tables (Vose): sample = rank r w.p. accept_[r], else alias_[r].
  std::vector<double> accept_;
  std::vector<std::uint32_t> alias_;
};

/// Uniform access over n objects.
std::unique_ptr<AccessDistribution> make_uniform_access(std::size_t n);

/// Linear-in-rank skew: rank r (0-based, most popular first) has weight
/// n - r. The paper's "skewed uniformly" pattern.
std::unique_ptr<AccessDistribution> make_rank_linear_access(
    std::size_t n, std::vector<object::ObjectId> rank_to_object = {});

/// Zipf: rank r has weight 1 / (r+1)^alpha.
std::unique_ptr<AccessDistribution> make_zipf_access(
    std::size_t n, double alpha = 1.0,
    std::vector<object::ObjectId> rank_to_object = {});

}  // namespace mobi::workload
