// Streaming summary statistics, histograms and correlation measures used
// by the experiment harnesses and tests.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mobi::util {

/// Streaming count / mean / variance / min / max via Welford's algorithm.
/// Numerically stable; O(1) per observation.
class Summary {
 public:
  void add(double x) noexcept;
  /// Merges another summary into this one (parallel reduction friendly).
  void merge(const Summary& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * double(count_); }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-range, equal-width histogram. Out-of-range samples are clamped to
/// the edge buckets so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const noexcept { return total_; }
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;
  /// Value below which `q` (in [0,1]) of the observed mass lies,
  /// interpolated within the containing bucket.
  double quantile(double q) const;
  /// A one-line ASCII rendering, for example output.
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Pearson product-moment correlation of two equal-length series.
/// Returns 0 when either series is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (Pearson on fractional ranks, average ranks
/// for ties). Used to validate the correlated synthetic-data generator.
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Fractional ranks (1-based, ties averaged) of a series.
std::vector<double> ranks(std::span<const double> xs);

}  // namespace mobi::util
