#include "util/flags.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobi::util {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";  // bare flag, e.g. --verbose
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.contains(name);
}

std::optional<std::string> Flags::raw(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto value = raw(name);
  if (!value || value->empty()) return fallback;
  try {
    return std::stoll(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                *value + "'");
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto value = raw(name);
  if (!value || value->empty()) return fallback;
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                *value + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto value = raw(name);
  if (!value) return fallback;
  if (value->empty()) return true;  // bare --flag
  std::string lowered = *value;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char ch) { return char(std::tolower(ch)); });
  if (lowered == "1" || lowered == "true" || lowered == "yes" || lowered == "on") {
    return true;
  }
  if (lowered == "0" || lowered == "false" || lowered == "no" || lowered == "off") {
    return false;
  }
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              *value + "'");
}

}  // namespace mobi::util
