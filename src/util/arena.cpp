#include "util/arena.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobi::util {

namespace {

std::size_t align_up(std::size_t value, std::size_t align) noexcept {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

MonotonicArena::MonotonicArena(std::size_t initial_slab_bytes)
    : next_slab_bytes_(std::max<std::size_t>(64, initial_slab_bytes)) {}

void* MonotonicArena::allocate(std::size_t bytes, std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("MonotonicArena: align must be a power of 2");
  }
  if (bytes == 0) bytes = 1;
  // Walk the retained slabs from the cursor forward. Alignment is
  // computed against the slab's actual base address, so over-aligned
  // types work whatever new[] returned.
  while (current_ < slabs_.size()) {
    Slab& slab = slabs_[current_];
    const auto base = reinterpret_cast<std::uintptr_t>(slab.data.get());
    const std::size_t at = align_up(base + cursor_, align) - base;
    if (at + bytes <= slab.size) {
      used_ += (at - cursor_) + bytes;  // alignment padding + payload
      cursor_ = at + bytes;
      ++allocations_;
      return slab.data.get() + at;
    }
    ++current_;
    cursor_ = 0;
  }
  // Grow: doubling slabs amortize to O(log) heap allocations per horizon.
  const std::size_t slab_bytes = std::max(next_slab_bytes_, bytes + align);
  slabs_.push_back(Slab{std::make_unique<std::byte[]>(slab_bytes), slab_bytes});
  reserved_ += slab_bytes;
  next_slab_bytes_ = slab_bytes * 2;
  current_ = slabs_.size() - 1;
  const auto base =
      reinterpret_cast<std::uintptr_t>(slabs_[current_].data.get());
  const std::size_t at = align_up(base, align) - base;
  cursor_ = at + bytes;
  used_ += at + bytes;
  ++allocations_;
  return slabs_[current_].data.get() + at;
}

void MonotonicArena::reset() noexcept {
  current_ = 0;
  cursor_ = 0;
  used_ = 0;
  allocations_ = 0;
}

}  // namespace mobi::util
