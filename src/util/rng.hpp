// Deterministic pseudo-random number generation for simulations.
//
// All stochastic components of mobicache draw from mobi::util::Rng so a
// single 64-bit seed reproduces an entire experiment bit-for-bit. The
// generator is xoshiro256** (Blackman & Vigna), seeded through SplitMix64,
// which is both faster and of higher statistical quality than
// std::mt19937_64 while keeping the object trivially copyable.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace mobi::util {

/// SplitMix64: used to expand a single seed into generator state. Also a
/// decent standalone mixer for hashing small integers.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — the library's workhorse generator.
///
/// Satisfies std::uniform_random_bit_generator, so it can be passed to
/// standard <random> distributions and std::shuffle as well.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9c0def1dabcdef01ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 mixer(seed);
    for (auto& word : state_) word = mixer.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform() noexcept { return double(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in the inclusive range [lo, hi]. Uses Lemire's
  /// nearly-divisionless bounded sampling; unbiased.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
    const std::uint64_t span = hi - lo + 1;  // span==0 means the full range
    if (span == 0) return next();
    return lo + bounded(span);
  }

  /// Uniform integer in the inclusive range [lo, hi] (signed convenience).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + std::int64_t(bounded(std::uint64_t(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponentially distributed sample with the given rate (mean = 1/rate).
  double exponential(double rate);

  /// Standard normal sample (Box-Muller; one value per call, no caching so
  /// the stream is insensitive to call interleavings).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = std::size_t(bounded(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// A random permutation of {0, 1, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator; useful for giving each
  /// simulation component (workload, updates, ...) its own stream.
  Rng split() noexcept { return Rng(next() ^ 0xdeadbeefcafef00dULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  /// Unbiased sample from [0, bound). Precondition: bound > 0.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    // Rejection sampling on the top of the range to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mobi::util
