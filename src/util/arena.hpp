// Grow-only bump arena for cold-path containers.
//
// Horizon-scale multi-cell runs allocate thousands of mid-sized buffers
// off the hot path: one per-tick CellResult series per shard, the
// recorder's per-metric series rows, the post-join accumulator rows.
// Individually each is cheap; collectively they dominate setup/teardown
// at fleet scale (thousands of cells = thousands of vector growth
// chains). `MonotonicArena` collapses them into a handful of slab
// grabs: allocation is a pointer bump, nothing is freed individually,
// and `reset()` rewinds the arena for reuse without returning slabs to
// the heap — a warmed arena serves a whole horizon run with zero heap
// traffic (tests/alloc_regression_test.cpp pins this).
//
// Thread-safety contract: an arena is single-threaded. The multi-cell
// driver therefore carves every shard's storage out of the arena
// *before* dispatching shards onto the pool (capacities are known:
// `ticks` snapshots per shard), so worker threads only write into
// pre-reserved memory and never touch the arena itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace mobi::util {

class MonotonicArena {
 public:
  /// First slab is allocated lazily on the first allocation, sized
  /// max(initial_slab_bytes, requested). Subsequent slabs double.
  explicit MonotonicArena(std::size_t initial_slab_bytes = 1 << 16);

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two). Grows a
  /// new slab only when no retained slab can satisfy the request.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Rewinds to empty, retaining every slab for reuse. Outstanding
  /// pointers are invalidated (same contract as destroying the arena).
  void reset() noexcept;

  /// Live bytes handed out since construction/reset (including
  /// alignment padding).
  std::size_t bytes_used() const noexcept { return used_; }
  /// Total slab capacity held (survives reset()).
  std::size_t bytes_reserved() const noexcept { return reserved_; }
  std::size_t slab_count() const noexcept { return slabs_.size(); }
  /// Calls to allocate() since construction/reset.
  std::uint64_t allocations() const noexcept { return allocations_; }

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::vector<Slab> slabs_;
  std::size_t current_ = 0;  // slab index the cursor lives in
  std::size_t cursor_ = 0;   // offset into slabs_[current_]
  std::size_t next_slab_bytes_;
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
  std::uint64_t allocations_ = 0;
};

/// Standard-library allocator over a MonotonicArena, with a heap
/// fallback: a default-constructed (null-arena) ArenaAllocator behaves
/// exactly like std::allocator, so one container type serves both the
/// arena-backed fleet path and ordinary standalone use.
///
/// deallocate() is a no-op for arena memory (reclaimed wholesale by
/// reset()); geometric vector growth therefore wastes abandoned blocks,
/// so arena-backed containers should `reserve()` their known final size
/// up front — the multi-cell driver always can (tick counts are known).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(MonotonicArena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (n > std::size_t(-1) / sizeof(T)) throw std::bad_alloc();
    const std::size_t bytes = n * sizeof(T);
    if (arena_) {
      return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t) noexcept {
    if (!arena_) ::operator delete(p);
  }

  MonotonicArena* arena() const noexcept { return arena_; }

  /// Copies of a container share the arena; moves between containers
  /// with different arenas fall back to element-wise transfer (the
  /// allocator does not propagate on assignment), which keeps
  /// arena-backed storage from silently escaping its arena's lifetime.
  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const noexcept {
    return arena_ != other.arena();
  }

 private:
  MonotonicArena* arena_ = nullptr;
};

/// Vector whose storage may live in a MonotonicArena (heap when the
/// allocator's arena is null).
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace mobi::util
