#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace mobi::util::json {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n]) ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value{parse_string()};
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{nullptr};
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value{true};
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value{false};
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    auto object = std::make_shared<Object>();
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(object)};
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      object->emplace(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Value{std::move(object)};
  }

  Value parse_array() {
    expect('[');
    auto array = std::make_shared<Array>();
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(array)};
    }
    while (true) {
      array->push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Value{std::move(array)};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The exporters only escape control characters, so ASCII is
          // all this reader needs; anything wider is replaced.
          out += code < 0x80 ? char(code) : '?';
          break;
        }
        default: fail("bad escape");
      }
    }
    return out;
  }

  Value parse_number() {
    skip_ws();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin) fail("bad number");
    pos_ += std::size_t(ptr - begin);
    return Value{value};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace mobi::util::json
