// Minimal recursive-descent JSON reader for the repo's own exports
// (mobicache.metrics.v1 / mobicache.soak.v1 / mobicache.trace.v1). This
// is a *consumer* for tooling (metrics_diff, tests) — the exporters in
// src/obs build their JSON by hand and stay dependency-free. Values are
// immutable after parse; arrays/objects are shared_ptr-backed so JsonValue
// stays copyable without deep copies.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace mobi::util::json {

struct Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<Array>, std::shared_ptr<Object>>
      data;

  bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(data);
  }
  bool is_number() const noexcept {
    return std::holds_alternative<double>(data);
  }
  bool is_string() const noexcept {
    return std::holds_alternative<std::string>(data);
  }
  bool is_array() const noexcept {
    return std::holds_alternative<std::shared_ptr<Array>>(data);
  }
  bool is_object() const noexcept {
    return std::holds_alternative<std::shared_ptr<Object>>(data);
  }

  /// Typed accessors; throw std::bad_variant_access on kind mismatch.
  double num() const { return std::get<double>(data); }
  const std::string& str() const { return std::get<std::string>(data); }
  const Array& arr() const { return *std::get<std::shared_ptr<Array>>(data); }
  const Object& obj() const {
    return *std::get<std::shared_ptr<Object>>(data);
  }

  /// Object member; throws std::out_of_range when absent.
  const Value& at(const std::string& key) const { return obj().at(key); }
  bool contains(const std::string& key) const {
    return is_object() && obj().count(key) != 0;
  }
};

/// Parses one complete JSON document; throws std::runtime_error (with a
/// byte offset) on malformed input or trailing data.
Value parse(const std::string& text);

}  // namespace mobi::util::json
