// Leveled logging with a process-wide threshold. Kept intentionally tiny:
// the simulator is deterministic, so logs are a debugging aid rather than
// an observability system.
#pragma once

#include <sstream>
#include <string>

namespace mobi::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets/gets the process-wide minimum level that is actually emitted.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr as "[LEVEL] message" if `level` passes the
/// threshold. Thread-safe (single write call per line).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace mobi::util
