#include "util/thread_pool.hpp"

#include <algorithm>

namespace mobi::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  try {
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread creation failed partway: the destructor will not run, so the
    // workers already started must be shut down here or they would block
    // on cv_ forever (and the process would abort at thread destruction).
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
      cv_.notify_all();
    }
    for (auto& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;  // idempotent; workers already joined or joining
    stopping_ = true;
    // Under the lock for the same reason as submit(): an unlocked notify
    // could interleave with a racing submit between its stopping_ check
    // and its wait, losing the wakeup.
    cv_.notify_all();
  }
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  std::vector<std::future<void>> futures;
  futures.reserve((end - begin + grain - 1) / grain);
  for (std::size_t chunk = begin; chunk < end; chunk += grain) {
    const std::size_t chunk_end = std::min(end, chunk + grain);
    futures.push_back(pool.submit([&fn, chunk, chunk_end] {
      for (std::size_t i = chunk; i < chunk_end; ++i) fn(i);
    }));
  }
  for (auto& future : futures) future.get();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for(default_pool(), begin, end, fn, grain);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mobi::util
