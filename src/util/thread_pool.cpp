#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <numeric>

namespace mobi::util {

namespace {

// Joins every future before letting the first captured exception fly.
// Rethrowing from the first failed get() directly would unwind the
// caller's frame — destroying the plan/cursor state the still-running
// sibling tasks reference — so the fan-out helpers must never leave
// before every task has finished.
void rethrow_after_joining_all(std::vector<std::future<void>>& futures) {
  std::exception_ptr first;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  try {
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread creation failed partway: the destructor will not run, so the
    // workers already started must be shut down here or they would block
    // on cv_ forever (and the process would abort at thread destruction).
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
      cv_.notify_all();
    }
    for (auto& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;  // idempotent; workers already joined or joining
    stopping_ = true;
    // Under the lock for the same reason as submit(): an unlocked notify
    // could interleave with a racing submit between its stopping_ check
    // and its wait, losing the wakeup.
    cv_.notify_all();
  }
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  std::vector<std::future<void>> futures;
  futures.reserve((end - begin + grain - 1) / grain);
  for (std::size_t chunk = begin; chunk < end; chunk += grain) {
    const std::size_t chunk_end = std::min(end, chunk + grain);
    futures.push_back(pool.submit([&fn, chunk, chunk_end] {
      for (std::size_t i = chunk; i < chunk_end; ++i) fn(i);
    }));
  }
  rethrow_after_joining_all(futures);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for(default_pool(), begin, end, fn, grain);
}

std::uint64_t LptPlan::makespan() const noexcept {
  std::uint64_t worst = 0;
  for (const std::uint64_t load : loads) worst = std::max(worst, load);
  return worst;
}

LptPlan lpt_plan(const std::vector<std::uint64_t>& costs,
                 std::size_t workers) {
  LptPlan plan;
  plan.queues.resize(std::max<std::size_t>(1, workers));
  plan.loads.assign(plan.queues.size(), 0);

  std::vector<std::size_t> order(costs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&costs](std::size_t a, std::size_t b) {
                     return costs[a] > costs[b];
                   });
  for (const std::size_t item : order) {
    std::size_t target = 0;
    for (std::size_t w = 1; w < plan.loads.size(); ++w) {
      if (plan.loads[w] < plan.loads[target]) target = w;
    }
    plan.queues[target].push_back(item);
    // Cost-0 items still charge one unit so they spread instead of all
    // piling onto whichever queue happened to be lightest.
    plan.loads[target] += std::max<std::uint64_t>(1, costs[item]);
  }
  return plan;
}

void weighted_parallel_for(ThreadPool& pool,
                           const std::vector<std::uint64_t>& costs,
                           const std::function<void(std::size_t)>& fn,
                           WeightedForStats* stats) {
  // Reset up front so a reused stats struct never reports a previous
  // run's numbers — in particular when fn throws below, where the late
  // assignment after the join is never reached.
  if (stats) *stats = WeightedForStats{};
  if (costs.empty()) {
    if (stats) *stats = WeightedForStats{pool.size(), 0, 0};
    return;
  }
  const LptPlan plan = lpt_plan(costs, pool.size());
  const std::size_t workers = plan.queues.size();

  // One cursor per queue. Owners drain their own queue front-to-back
  // (largest item first — it was assigned first); a drained owner turns
  // thief and pulls from the most-loaded victim's remaining tail. Every
  // index is claimed by exactly one fetch_add, so fn(i) runs once
  // whatever the interleaving.
  std::vector<std::atomic<std::size_t>> cursors(workers);
  for (auto& cursor : cursors) cursor.store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> steals{0};

  const auto drain = [&](std::size_t victim, bool stealing) {
    const std::vector<std::size_t>& queue = plan.queues[victim];
    for (;;) {
      const std::size_t slot =
          cursors[victim].fetch_add(1, std::memory_order_relaxed);
      if (slot >= queue.size()) return;
      if (stealing) steals.fetch_add(1, std::memory_order_relaxed);
      fn(queue[slot]);
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futures.push_back(pool.submit([&, w] {
      drain(w, /*stealing=*/false);
      // Steal pass: visit every other queue (starting after our own so
      // thieves fan out instead of mobbing queue 0).
      for (std::size_t k = 1; k < workers; ++k) {
        drain((w + k) % workers, /*stealing=*/true);
      }
    }));
  }
  rethrow_after_joining_all(futures);

  if (stats) {
    stats->workers = workers;
    stats->planned_makespan = plan.makespan();
    stats->steals = steals.load(std::memory_order_relaxed);
  }
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mobi::util
