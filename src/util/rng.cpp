#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace mobi::util {

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate must be > 0");
  // Inverse-CDF; 1 - uniform() is in (0, 1] so the log argument never hits 0.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller without caching the second variate: determinism of the
  // stream should not depend on how many normal() calls interleave with
  // other draws.
  double u1 = 1.0 - uniform();  // (0, 1]
  double u2 = uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  shuffle(perm);
  return perm;
}

}  // namespace mobi::util
