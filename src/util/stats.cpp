#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace mobi::util {

void Summary::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / double(count_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double n1 = double(count_);
  const double n2 = double(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Summary::variance() const noexcept {
  return count_ > 1 ? m2_ / double(count_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (buckets == 0) throw std::invalid_argument("Histogram: need >= 1 bucket");
}

void Histogram::add(double x) noexcept {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bucket = std::size_t(std::clamp(frac, 0.0, 1.0) * double(counts_.size()));
  if (bucket >= counts_.size()) bucket = counts_.size() - 1;
  ++counts_[bucket];
  ++total_;
}

double Histogram::bucket_lo(std::size_t bucket) const {
  if (bucket >= counts_.size()) throw std::out_of_range("Histogram::bucket_lo");
  return lo_ + (hi_ - lo_) * double(bucket) / double(counts_.size());
}

double Histogram::bucket_hi(std::size_t bucket) const {
  if (bucket >= counts_.size()) throw std::out_of_range("Histogram::bucket_hi");
  return lo_ + (hi_ - lo_) * double(bucket + 1) / double(counts_.size());
}

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Histogram::quantile: q outside [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * double(total_);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = cumulative + double(counts_[b]);
    if (next >= target) {
      const double within =
          counts_[b] == 0 ? 0.0 : (target - cumulative) / double(counts_[b]);
      return bucket_lo(b) + within * (bucket_hi(b) - bucket_lo(b));
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        peak == 0 ? std::size_t{0} : counts_[b] * width / peak;
    out << '[';
    out.precision(3);
    out << bucket_lo(b) << ", " << bucket_hi(b) << ") ";
    out << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return out.str();
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("pearson: size mismatch");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = std::accumulate(xs.begin(), xs.end(), 0.0) / double(n);
  const double my = std::accumulate(ys.begin(), ys.end(), 0.0) / double(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> result(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank over the tie group [i, j]; ranks are 1-based.
    const double avg = (double(i) + double(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) result[order[k]] = avg;
    i = j + 1;
  }
  return result;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("spearman: size mismatch");
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

}  // namespace mobi::util
