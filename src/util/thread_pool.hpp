// A small fixed-size thread pool plus a blocked-range parallel_for, used to
// parallelize experiment sweeps (each sweep point is an independent
// simulation). On single-core hosts the pool degrades to near-serial
// execution with identical results: work items never share mutable state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mobi::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (with a floor of 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Stops accepting work, drains every queued task, and joins the
  /// workers. Idempotent; the destructor calls it. Safe to race with
  /// submit() from other threads: each concurrent submit either enqueues
  /// before the stop (and its task runs to completion) or throws — no
  /// task is ever silently dropped.
  void shutdown();

  /// Enqueues a task; the future resolves when it finishes. Exceptions
  /// thrown by the task propagate through the future. Every queued task
  /// runs before the destructor returns, so dropping the future is safe.
  template <typename F>
  std::future<void> submit(F&& task) {
    auto packaged =
        std::make_shared<std::packaged_task<void()>>(std::forward<F>(task));
    std::future<void> result = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool::submit after shutdown");
      queue_.emplace_back([packaged] { (*packaged)(); });
      // Notify while still holding the lock: an unlocked notify could
      // touch cv_ after a concurrent destructor (serialized behind this
      // mutex) has already torn the pool down.
      cv_.notify_one();
    }
    return result;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for every i in [begin, end) across the pool in contiguous
/// chunks and waits for completion. Rethrows the first task exception.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

/// Longest-processing-time-first assignment of weighted items onto
/// `workers` queues: items sorted by (cost desc, index asc) land on the
/// least-loaded queue (ties broken toward the lowest queue index), so
/// the plan is a pure function of the costs — deterministic whatever
/// thread later executes which queue.
struct LptPlan {
  std::vector<std::vector<std::size_t>> queues;  // item indices per worker
  std::vector<std::uint64_t> loads;              // summed cost per worker
  /// Modeled makespan: the busiest worker's load, i.e. the wall-clock
  /// lower bound this assignment achieves on `workers` ideal cores.
  std::uint64_t makespan() const noexcept;
};

LptPlan lpt_plan(const std::vector<std::uint64_t>& costs, std::size_t workers);

/// Per-run counters for weighted_parallel_for (all zero-initialized).
struct WeightedForStats {
  std::size_t workers = 0;
  std::uint64_t planned_makespan = 0;  // lpt_plan(costs).makespan()
  std::uint64_t steals = 0;            // items run off another queue
};

/// Imbalance-aware parallel_for: runs fn(i) once for every cost index,
/// scheduling via an LPT plan over `costs` plus dynamic work-stealing —
/// a worker that drains its own queue pulls remaining items from the
/// other queues, so one mis-estimated straggler cannot idle the pool.
/// Exactly pool.size() tasks are submitted however many items there
/// are. fn must be safe to call concurrently for distinct i (same
/// contract as parallel_for); which thread runs which item is
/// unspecified, so fn must keep results independent of placement.
/// Rethrows the first task exception.
void weighted_parallel_for(ThreadPool& pool,
                           const std::vector<std::uint64_t>& costs,
                           const std::function<void(std::size_t)>& fn,
                           WeightedForStats* stats = nullptr);

/// Convenience overload using a process-wide default pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

/// The process-wide default pool (lazily constructed, hardware-sized).
ThreadPool& default_pool();

}  // namespace mobi::util
