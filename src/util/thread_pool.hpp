// A small fixed-size thread pool plus a blocked-range parallel_for, used to
// parallelize experiment sweeps (each sweep point is an independent
// simulation). On single-core hosts the pool degrades to near-serial
// execution with identical results: work items never share mutable state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mobi::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (with a floor of 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Stops accepting work, drains every queued task, and joins the
  /// workers. Idempotent; the destructor calls it. Safe to race with
  /// submit() from other threads: each concurrent submit either enqueues
  /// before the stop (and its task runs to completion) or throws — no
  /// task is ever silently dropped.
  void shutdown();

  /// Enqueues a task; the future resolves when it finishes. Exceptions
  /// thrown by the task propagate through the future. Every queued task
  /// runs before the destructor returns, so dropping the future is safe.
  template <typename F>
  std::future<void> submit(F&& task) {
    auto packaged =
        std::make_shared<std::packaged_task<void()>>(std::forward<F>(task));
    std::future<void> result = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool::submit after shutdown");
      queue_.emplace_back([packaged] { (*packaged)(); });
      // Notify while still holding the lock: an unlocked notify could
      // touch cv_ after a concurrent destructor (serialized behind this
      // mutex) has already torn the pool down.
      cv_.notify_one();
    }
    return result;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for every i in [begin, end) across the pool in contiguous
/// chunks and waits for completion. Rethrows the first task exception.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

/// Convenience overload using a process-wide default pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

/// The process-wide default pool (lazily constructed, hardware-sized).
ThreadPool& default_pool();

}  // namespace mobi::util
