#include "util/table.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mobi::util {

Table::Table(std::vector<std::string> headers, int double_precision)
    : headers_(std::move(headers)), double_precision_(double_precision) {
  if (headers_.empty()) throw std::invalid_argument("Table: need >= 1 column");
}

Table& Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: wrong cell count");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

const Cell& Table::at(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

std::string Table::format(const Cell& cell) const {
  if (const auto* text = std::get_if<std::string>(&cell)) return *text;
  if (const auto* integer = std::get_if<long long>(&cell)) {
    return std::to_string(*integer);
  }
  std::ostringstream out;
  out << std::fixed << std::setprecision(double_precision_)
      << std::get<double>(cell);
  return out.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::setw(int(widths[c])) << cells[c];
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rendered) emit_row(row);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "" : ",") << csv_escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << csv_escape(format(row[c]));
    }
    out << '\n';
  }
  return out.str();
}

void Table::print(std::ostream& out) const { out << to_string(); }

void write_file(const std::string& path, const std::string& contents) {
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path());
  }
  std::ofstream out(fs_path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_file: cannot open " + path);
  out << contents;
  if (!out) throw std::runtime_error("write_file: write failed for " + path);
}

}  // namespace mobi::util
