// A minimal command-line flag parser for the bench/example binaries.
// Accepts --name=value and --name value; everything else is a positional.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mobi::util {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// True when --name was present (with or without a value).
  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace mobi::util
