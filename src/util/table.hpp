// Fixed-width plain-text tables and CSV emission. The benchmark binaries
// print the paper's tables/series through this so every experiment's output
// is uniform and machine-parseable.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace mobi::util {

/// A cell is a string, an integer, or a double (formatted with fixed
/// precision chosen per-table).
using Cell = std::variant<std::string, long long, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int double_precision = 4);

  Table& add_row(std::vector<Cell> cells);
  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }
  const Cell& at(std::size_t row, std::size_t col) const;

  /// Renders with padded columns and a header separator.
  std::string to_string() const;
  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;
  void print(std::ostream& out) const;

 private:
  std::string format(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int double_precision_;
};

/// Writes `csv` to `path`, creating parent directories if needed; throws on
/// I/O failure.
void write_file(const std::string& path, const std::string& contents);

}  // namespace mobi::util
