#include "server/remote_server.hpp"

#include "net/fault_injector.hpp"
#include "obs/metrics.hpp"

namespace mobi::server {

RemoteServer::RemoteServer(const object::Catalog& catalog)
    : catalog_(&catalog),
      versions_(catalog.size(), 0),
      updated_at_(catalog.size(), 0) {}

void RemoteServer::apply_update(object::ObjectId id, sim::Tick tick) {
  check(id);
  ++versions_[id];
  updated_at_[id] = tick;
  ++total_updates_;
}

Version RemoteServer::version(object::ObjectId id) const {
  check(id);
  return versions_[id];
}

sim::Tick RemoteServer::updated_at(object::ObjectId id) const {
  check(id);
  return updated_at_[id];
}

FetchResult RemoteServer::fetch(object::ObjectId id) const {
  check(id);
  return FetchResult{versions_[id], updated_at_[id], catalog_->object_size(id)};
}

ServerPool::ServerPool(const object::Catalog& catalog,
                       std::size_t server_count)
    : object_count_(catalog.size()) {
  if (server_count == 0) {
    throw std::invalid_argument("ServerPool: need >= 1 server");
  }
  servers_.reserve(server_count);
  for (std::size_t i = 0; i < server_count; ++i) servers_.emplace_back(catalog);
}

std::size_t ServerPool::server_for(object::ObjectId id) const {
  if (id >= object_count_) throw std::out_of_range("ServerPool: bad id");
  return id % servers_.size();
}

void ServerPool::apply_update(object::ObjectId id, sim::Tick tick) {
  servers_[server_for(id)].apply_update(id, tick);
  if (metrics_) inst_.updates->add();
}

FetchResult ServerPool::fetch(object::ObjectId id) const {
  if (metrics_) inst_.fetches->add();
  return servers_[server_for(id)].fetch(id);
}

void ServerPool::set_metrics(obs::MetricsRegistry* registry,
                             const std::string& prefix) {
  metrics_ = registry;
  inst_ = {};
  if (!registry) return;
  inst_.fetches = &registry->register_counter(prefix + ".fetches");
  inst_.updates = &registry->register_counter(prefix + ".updates");
}

bool ServerPool::available(object::ObjectId id) const {
  if (!fault_) return true;
  return !fault_->server_down(server_for(id));
}

Version ServerPool::version(object::ObjectId id) const {
  return servers_[server_for(id)].version(id);
}

sim::Tick ServerPool::updated_at(object::ObjectId id) const {
  return servers_[server_for(id)].updated_at(id);
}

}  // namespace mobi::server
