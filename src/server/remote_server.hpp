// Remote (fixed-network) servers holding object master copies.
//
// The model is pull-based: servers never push; they answer fetches with
// the current version of an object. Versions are monotone counters bumped
// by the update process; "recency" comparisons elsewhere reduce to version
// comparisons plus update timestamps.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "object/object.hpp"
#include "sim/tick.hpp"

namespace mobi::obs {
class MetricsRegistry;
class Counter;
}  // namespace mobi::obs

namespace mobi::net {
class FaultInjector;
}  // namespace mobi::net

namespace mobi::server {

using Version = std::uint64_t;

/// What a fetch returns: the object's current version and when that
/// version was installed.
struct FetchResult {
  Version version = 0;
  sim::Tick updated_at = 0;
  object::Units size = 0;
};

class RemoteServer {
 public:
  explicit RemoteServer(const object::Catalog& catalog);

  std::size_t object_count() const noexcept { return versions_.size(); }

  /// Installs a new version of `id` at time `tick`.
  void apply_update(object::ObjectId id, sim::Tick tick);

  Version version(object::ObjectId id) const;
  sim::Tick updated_at(object::ObjectId id) const;
  std::uint64_t total_updates() const noexcept { return total_updates_; }

  /// Pull the current copy of an object. Pure read; transfer cost is
  /// modeled by mobi::net, not here.
  FetchResult fetch(object::ObjectId id) const;

 private:
  void check(object::ObjectId id) const {
    if (id >= versions_.size()) throw std::out_of_range("RemoteServer: bad id");
  }

  const object::Catalog* catalog_;
  std::vector<Version> versions_;
  std::vector<sim::Tick> updated_at_;
  std::uint64_t total_updates_ = 0;
};

/// A set of servers with objects assigned round-robin; lets examples model
/// several origins behind one base station.
class ServerPool {
 public:
  ServerPool(const object::Catalog& catalog, std::size_t server_count);

  std::size_t server_count() const noexcept { return servers_.size(); }
  std::size_t server_for(object::ObjectId id) const;

  RemoteServer& server(std::size_t index) { return servers_.at(index); }
  const RemoteServer& server(std::size_t index) const {
    return servers_.at(index);
  }

  /// Routes to the owning server.
  void apply_update(object::ObjectId id, sim::Tick tick);
  FetchResult fetch(object::ObjectId id) const;
  Version version(object::ObjectId id) const;
  sim::Tick updated_at(object::ObjectId id) const;

  /// Registers fetch/update counters under `prefix` and keeps them
  /// updated; nullptr detaches. Counting a fetch mutates only the
  /// registry, so the pool itself stays logically const.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "servers");

  /// Attaches a fault injector whose per-server outage windows gate
  /// available(); nullptr (the default) detaches and every server is
  /// reachable. The injector should have been built with this pool's
  /// server_count() so outage windows cover every server.
  void set_fault_injector(net::FaultInjector* injector) noexcept {
    fault_ = injector;
  }

  /// True when the server owning `id` is reachable this tick. Without an
  /// injector this is always true; with one, it reflects the injector's
  /// outage windows as of its last begin_tick().
  bool available(object::ObjectId id) const;

 private:
  std::vector<RemoteServer> servers_;
  std::size_t object_count_;
  net::FaultInjector* fault_ = nullptr;

  struct Instruments {
    obs::Counter* fetches = nullptr;
    obs::Counter* updates = nullptr;
  };
  obs::MetricsRegistry* metrics_ = nullptr;
  Instruments inst_;
};

}  // namespace mobi::server
