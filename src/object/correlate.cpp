#include "object/correlate.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mobi::object {

const char* correlation_name(Correlation c) noexcept {
  switch (c) {
    case Correlation::kNegative: return "negative";
    case Correlation::kNone: return "none";
    case Correlation::kPositive: return "positive";
  }
  return "?";
}

std::vector<double> correlate(std::span<const double> keys,
                              std::vector<double> values, Correlation how,
                              util::Rng& rng) {
  if (keys.size() != values.size()) {
    throw std::invalid_argument("correlate: size mismatch");
  }
  const std::size_t n = keys.size();
  if (how == Correlation::kNone) {
    rng.shuffle(values);
    return values;
  }
  // Order of object indices by ascending key (ties by index).
  std::vector<std::size_t> by_key(n);
  std::iota(by_key.begin(), by_key.end(), std::size_t{0});
  std::sort(by_key.begin(), by_key.end(), [&](std::size_t a, std::size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;
  });
  std::sort(values.begin(), values.end());
  if (how == Correlation::kNegative) {
    std::reverse(values.begin(), values.end());
  }
  std::vector<double> assigned(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    assigned[by_key[rank]] = values[rank];
  }
  return assigned;
}

}  // namespace mobi::object
