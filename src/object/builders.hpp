// Catalog builders: uniform-size catalogs (Section 3 experiments) and
// random-size catalogs with an optional exact-total constraint (Section 4:
// "the sum of the sizes of these objects was 5000 units").
#pragma once

#include "object/object.hpp"
#include "util/rng.hpp"

namespace mobi::object {

/// n objects, each of the same size.
Catalog make_uniform_catalog(std::size_t n, Units size = 1);

/// n objects with sizes drawn uniformly from [lo, hi].
Catalog make_random_catalog(std::size_t n, Units lo, Units hi,
                            util::Rng& rng);

/// n objects with sizes drawn uniformly from [lo, hi], then nudged by ±1
/// steps (staying within [lo, hi]) until the total equals `exact_total`.
/// Throws if the target is outside [n*lo, n*hi].
Catalog make_random_catalog_with_total(std::size_t n, Units lo, Units hi,
                                       Units exact_total, util::Rng& rng);

/// Integer samples uniform in [lo, hi] adjusted to sum exactly to `total`
/// (the shared mechanism behind make_random_catalog_with_total; also used
/// for the Section 4 NumRequests attribute).
std::vector<Units> random_units_with_total(std::size_t n, Units lo, Units hi,
                                           Units total, util::Rng& rng);

}  // namespace mobi::object
