// Object identity and catalog types.
//
// The unit of data in the paper is an "object": an opaque datum with an
// integer size (in abstract data units) whose master copy lives on a remote
// server and whose possibly-stale copy lives in the base-station cache.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace mobi::object {

/// Index into the catalog; dense, 0-based.
using ObjectId = std::uint32_t;

/// Size in abstract data units (the paper's "units of data").
using Units = std::int64_t;

struct ObjectInfo {
  ObjectId id = 0;
  Units size = 1;
};

/// An immutable collection of objects. All other modules refer to objects
/// by ObjectId and use the catalog for sizes.
class Catalog {
 public:
  Catalog() = default;
  explicit Catalog(std::vector<Units> sizes);

  std::size_t size() const noexcept { return sizes_.size(); }
  bool empty() const noexcept { return sizes_.empty(); }
  Units object_size(ObjectId id) const {
    if (id >= sizes_.size()) throw std::out_of_range("Catalog::object_size");
    return sizes_[id];
  }
  Units total_size() const noexcept { return total_; }
  ObjectInfo info(ObjectId id) const { return {id, object_size(id)}; }

  const std::vector<Units>& sizes() const noexcept { return sizes_; }

 private:
  std::vector<Units> sizes_;
  Units total_ = 0;
};

}  // namespace mobi::object
