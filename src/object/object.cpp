#include "object/object.hpp"

#include <numeric>

namespace mobi::object {

Catalog::Catalog(std::vector<Units> sizes) : sizes_(std::move(sizes)) {
  for (Units s : sizes_) {
    if (s <= 0) throw std::invalid_argument("Catalog: object sizes must be > 0");
  }
  total_ = std::accumulate(sizes_.begin(), sizes_.end(), Units{0});
}

}  // namespace mobi::object
