#include "object/builders.hpp"

#include <numeric>
#include <stdexcept>

namespace mobi::object {

Catalog make_uniform_catalog(std::size_t n, Units size) {
  return Catalog(std::vector<Units>(n, size));
}

Catalog make_random_catalog(std::size_t n, Units lo, Units hi,
                            util::Rng& rng) {
  if (lo <= 0 || hi < lo) {
    throw std::invalid_argument("make_random_catalog: need 0 < lo <= hi");
  }
  std::vector<Units> sizes(n);
  for (auto& s : sizes) s = rng.uniform_int(lo, hi);
  return Catalog(std::move(sizes));
}

std::vector<Units> random_units_with_total(std::size_t n, Units lo, Units hi,
                                           Units total, util::Rng& rng) {
  if (lo <= 0 || hi < lo) {
    throw std::invalid_argument("random_units_with_total: need 0 < lo <= hi");
  }
  if (total < Units(n) * lo || total > Units(n) * hi) {
    throw std::invalid_argument(
        "random_units_with_total: target total unreachable");
  }
  std::vector<Units> values(n);
  Units sum = 0;
  for (auto& v : values) {
    v = rng.uniform_int(lo, hi);
    sum += v;
  }
  // Random ±1 nudges preserve near-uniformity while converging on the
  // target; each step moves |sum - total| down by exactly one.
  while (sum != total) {
    const auto i = std::size_t(rng.uniform_u64(0, n - 1));
    if (sum > total && values[i] > lo) {
      --values[i];
      --sum;
    } else if (sum < total && values[i] < hi) {
      ++values[i];
      ++sum;
    }
  }
  return values;
}

Catalog make_random_catalog_with_total(std::size_t n, Units lo, Units hi,
                                       Units exact_total, util::Rng& rng) {
  return Catalog(random_units_with_total(n, lo, hi, exact_total, rng));
}

}  // namespace mobi::object
