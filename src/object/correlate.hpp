// Rank-coupled attribute assignment.
//
// Section 4 of the paper studies how curves change under "positive",
// "negative", and "no" correlation between per-object attributes (size vs
// popularity, size vs cached recency). This helper realizes those three
// regimes exactly: given a key attribute (e.g. sizes) and a bag of sampled
// values for a second attribute, it assigns values to objects such that
// Spearman correlation with the key is +1, -1, or ~0 without changing
// either marginal distribution.
#pragma once

#include <span>
#include <vector>

#include "util/rng.hpp"

namespace mobi::object {

enum class Correlation { kNegative, kNone, kPositive };

const char* correlation_name(Correlation c) noexcept;

/// Returns `values` permuted so that, paired with `keys`:
///  - kPositive: the largest value goes to the largest key (rank-aligned),
///  - kNegative: the largest value goes to the smallest key,
///  - kNone:     values are randomly permuted.
/// Ties in `keys` are broken by index, deterministically.
std::vector<double> correlate(std::span<const double> keys,
                              std::vector<double> values, Correlation how,
                              util::Rng& rng);

}  // namespace mobi::object
