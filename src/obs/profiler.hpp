// Phase profiler: RAII scoped timers over the named phases of a tick
// (serve / retry / policy+knapsack / fetch / coherence / downlink /
// mobility-barrier) with two strictly separated series per phase:
//
//   - deterministic sim-cost counters (`calls` — spans opened, and
//     `sim_cost` — caller-supplied work units such as requests served or
//     units fetched), which are pure functions of the simulation and are
//     safe to export into golden-diffed series; and
//   - wall-clock accumulators (`wall_ns`, plus per-phase self/total
//     attribution), which are *not* reproducible and must stay out of
//     golden comparisons — the CI gate masks `prof.phase.*.wall_ns*`
//     columns with an always-pass tolerance rule.
//
// Attribution is path-aware: spans nest on a bounded stack and every
// (call-path, phase) pair accumulates into a preallocated trie node, so
// the profile exports as flamegraph.pl-compatible collapsed stacks
// ("a;b;c <self_ns>" lines) as well as flat per-phase totals.
//
// Contracts: single-threaded (one profiler per driving thread — the
// parallel shard workers of a multi-cell run are *not* profiled, only
// the driver-side phases are); components hold a null-default pointer so
// the disabled path is one branch; the steady state allocates nothing —
// phases, stack, and trie nodes are all preallocated, and new trie paths
// only appear the first time a call shape occurs (warmup).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace mobi::obs {

class PhaseProfiler {
 public:
  using PhaseId = std::uint32_t;

  struct Config {
    std::size_t max_phases = 64;
    std::size_t max_depth = 32;
    std::size_t max_nodes = 512;
  };

  PhaseProfiler() : PhaseProfiler(Config{}) {}
  explicit PhaseProfiler(const Config& config);

  /// Finds or creates the phase with this name. Throws std::length_error
  /// past max_phases. Components call this once at attach time and cache
  /// the id — enter/exit never touch strings.
  PhaseId phase(const std::string& name);

  /// Attaches live counters: every known phase (and any registered
  /// later) gets `<prefix>.<name>.calls`, `<prefix>.<name>.sim_cost`,
  /// and `<prefix>.<name>.wall_ns` counters in `registry`, bumped on
  /// exit — so windowed aggregation sees per-window phase activity.
  /// The strict-registry contract applies (re-attaching to the same
  /// registry twice throws); nullptr detaches. A re-attach points the
  /// counters at the new registry and accumulates only from zero there.
  void attach_registry(MetricsRegistry* registry,
                       const std::string& prefix = "prof.phase");

  // --- span operations (ScopedPhase calls these; null-safe there).
  void enter(PhaseId id) noexcept;
  /// Adds deterministic work units to the innermost open span's phase.
  /// No open span: the units are counted in dropped_cost() instead.
  void add_cost(std::uint64_t units) noexcept;
  void exit() noexcept;

  // --- accessors.
  std::size_t phase_count() const noexcept { return phases_.size(); }
  const std::string& phase_name(PhaseId id) const {
    return phases_.at(id).name;
  }
  std::uint64_t calls(PhaseId id) const { return phases_.at(id).calls; }
  std::uint64_t sim_cost(PhaseId id) const { return phases_.at(id).sim_cost; }
  std::uint64_t total_wall_ns(PhaseId id) const {
    return phases_.at(id).total_ns;
  }
  std::uint64_t self_wall_ns(PhaseId id) const {
    return phases_.at(id).self_ns;
  }
  /// Wall time of root-level spans — by construction exactly equal to
  /// the sum of self_wall_ns over all phases (the Σself == root-total
  /// invariant the tests pin).
  std::uint64_t root_total_wall_ns() const noexcept { return root_total_ns_; }
  std::uint64_t depth_overflows() const noexcept { return depth_overflows_; }
  std::uint64_t node_overflows() const noexcept { return node_overflows_; }
  std::uint64_t dropped_cost() const noexcept { return dropped_cost_; }

  /// flamegraph.pl-compatible collapsed stacks: one "path;to;phase N"
  /// line per observed call path, N = self wall ns at that exact path,
  /// sorted lexicographically. Feed to flamegraph.pl (or any collapsed-
  /// stack viewer) unchanged.
  std::string flamegraph_collapsed() const;

  /// Post-run snapshot export: registers `<prefix>.<name>.{calls,
  /// sim_cost,wall_ns,self_wall_ns}` counters in `registry` at their
  /// current values. Use on a registry that was *not* live-attached
  /// (strict naming would collide).
  void export_metrics(MetricsRegistry& registry,
                      const std::string& prefix = "prof.phase") const;

  /// Zeroes every accumulator and forgets trie paths; keeps phase ids
  /// and any live-counter attachment.
  void reset() noexcept;

 private:
  using Clock = std::chrono::steady_clock;

  struct Phase {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t sim_cost = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
    Counter* calls_counter = nullptr;
    Counter* cost_counter = nullptr;
    Counter* wall_counter = nullptr;
  };
  struct Node {
    std::int32_t parent = -1;  // -1 = root
    PhaseId phase = 0;
    std::uint64_t wall_ns = 0;
    std::uint64_t calls = 0;
  };
  struct Frame {
    std::int32_t node = -1;  // -1 when the node table overflowed
    PhaseId phase = 0;
    Clock::time_point start;
    std::uint64_t child_ns = 0;
  };

  void register_live_counters(Phase& phase);
  std::int32_t find_or_create_node(std::int32_t parent, PhaseId id) noexcept;

  Config config_;
  std::vector<Phase> phases_;
  std::vector<Node> nodes_;
  std::vector<Frame> stack_;
  std::size_t depth_ = 0;
  std::uint64_t overflow_depth_ = 0;  // open spans past max_depth
  std::uint64_t root_total_ns_ = 0;
  std::uint64_t depth_overflows_ = 0;
  std::uint64_t node_overflows_ = 0;
  std::uint64_t dropped_cost_ = 0;
  MetricsRegistry* registry_ = nullptr;
  std::string prefix_;
};

/// RAII span. Null profiler = fully disabled (one branch per call, the
/// same discipline as every other obs hook).
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, PhaseProfiler::PhaseId id) noexcept
      : profiler_(profiler) {
    if (profiler_ != nullptr) profiler_->enter(id);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() {
    if (profiler_ != nullptr) profiler_->exit();
  }

  /// Deterministic work units attributed to this span's phase.
  void add_cost(std::uint64_t units) noexcept {
    if (profiler_ != nullptr) profiler_->add_cost(units);
  }

 private:
  PhaseProfiler* profiler_;
};

}  // namespace mobi::obs
