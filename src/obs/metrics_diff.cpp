#include "obs/metrics_diff.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace mobi::obs {
namespace {

using util::json::Value;

struct SeriesTolerance {
  double rtol;
  double atol;
};

SeriesTolerance tolerance_for(const std::string& name,
                              const DiffOptions& options) {
  for (const ToleranceRule& rule : options.rules) {
    if (rule.matches(name)) return {rule.rtol, rule.atol};
  }
  return {options.default_rtol, options.default_atol};
}

bool close(double a, double b, SeriesTolerance tol) {
  if (a == b) return true;  // covers exact-integer series and ±0
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= tol.atol + tol.rtol * scale;
}

/// Collects the document pieces the diff cares about, whatever the
/// schema: the axis array, the series map, and the histogram map.
struct Document {
  std::string schema;
  const util::json::Array* axis = nullptr;
  const char* axis_name = nullptr;
  const util::json::Object* series = nullptr;
  const util::json::Object* histograms = nullptr;  // may stay null
};

Document open_document(const Value& root, const char* which) {
  if (!root.is_object() || !root.contains("schema")) {
    throw std::runtime_error(std::string("metrics_diff: ") + which +
                             " document has no schema field");
  }
  Document doc;
  doc.schema = root.at("schema").str();
  if (doc.schema == "mobicache.metrics.v1") {
    doc.axis_name = "ticks";
  } else if (doc.schema == "mobicache.soak.v1" ||
             doc.schema == "mobicache.windows.v1") {
    doc.axis_name = "windows";
  } else {
    throw std::runtime_error("metrics_diff: unsupported schema '" +
                             doc.schema + "' in " + which + " document");
  }
  if (!root.contains(doc.axis_name) || !root.contains("series")) {
    throw std::runtime_error(std::string("metrics_diff: ") + which +
                             " document is missing its axis or series");
  }
  doc.axis = &root.at(doc.axis_name).arr();
  doc.series = &root.at("series").obj();
  if (root.contains("histograms")) {
    doc.histograms = &root.at("histograms").obj();
  }
  return doc;
}

class Differ {
 public:
  Differ(const DiffOptions& options, DiffReport& report)
      : options_(options), report_(report) {}

  void flag(const std::string& line) {
    if (report_.regressions.size() < options_.max_reports) {
      report_.regressions.push_back(line);
    }
    ++report_.regression_count;
  }

  void compare_series(const std::string& name, const util::json::Array& want,
                      const util::json::Array& got) {
    ++report_.series_compared;
    if (want.size() != got.size()) {
      flag("series '" + name + "': length " + std::to_string(got.size()) +
           " != golden " + std::to_string(want.size()));
      return;
    }
    const SeriesTolerance tol = tolerance_for(name, options_);
    std::size_t bad = 0;
    std::size_t first_bad = 0;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ++report_.values_compared;
      // null (NaN/inf in the exporter) only matches null.
      if (want[i].is_null() || got[i].is_null()) {
        if (want[i].is_null() != got[i].is_null() && !bad++) first_bad = i;
        continue;
      }
      if (!close(want[i].num(), got[i].num(), tol) && !bad++) first_bad = i;
    }
    if (bad) {
      // The offending value may be the null side of a null-vs-number
      // mismatch, so render without assuming a number.
      const auto render = [](const Value& v) {
        return v.is_null() ? std::string("null") : json::number(v.num());
      };
      std::ostringstream line;
      line << "series '" << name << "': " << bad << '/' << want.size()
           << " values out of tolerance (first at index " << first_bad
           << ": golden " << render(want[first_bad]) << " vs "
           << render(got[first_bad]) << ", rtol " << json::number(tol.rtol)
           << " atol " << json::number(tol.atol) << ')';
      flag(line.str());
    }
  }

  void compare_histogram(const std::string& name, const Value& want,
                         const Value& got) {
    ++report_.series_compared;
    const SeriesTolerance tol = tolerance_for(name, options_);
    for (const char* field : {"lo", "hi", "underflow", "overflow", "total"}) {
      if (want.at(field).num() != got.at(field).num()) {
        flag("histogram '" + name + "': " + field + ' ' +
             json::number(got.at(field).num()) + " != golden " +
             json::number(want.at(field).num()));
        return;
      }
    }
    // "nan" is absent from pre-NaN-contract exports; treat absent as 0.
    const double want_nan = want.contains("nan") ? want.at("nan").num() : 0.0;
    const double got_nan = got.contains("nan") ? got.at("nan").num() : 0.0;
    if (want_nan != got_nan) {
      flag("histogram '" + name + "': nan " + json::number(got_nan) +
           " != golden " + json::number(want_nan));
      return;
    }
    const auto& want_buckets = want.at("buckets").arr();
    const auto& got_buckets = got.at("buckets").arr();
    if (want_buckets.size() != got_buckets.size()) {
      flag("histogram '" + name + "': bucket count " +
           std::to_string(got_buckets.size()) + " != golden " +
           std::to_string(want_buckets.size()));
      return;
    }
    for (std::size_t i = 0; i < want_buckets.size(); ++i) {
      ++report_.values_compared;
      if (want_buckets[i].num() != got_buckets[i].num()) {
        flag("histogram '" + name + "': bucket " + std::to_string(i) + " = " +
             json::number(got_buckets[i].num()) + " != golden " +
             json::number(want_buckets[i].num()));
        return;
      }
    }
    ++report_.values_compared;
    if (!close(want.at("sum").num(), got.at("sum").num(), tol)) {
      flag("histogram '" + name + "': sum " +
           json::number(got.at("sum").num()) + " out of tolerance vs golden " +
           json::number(want.at("sum").num()));
    }
  }

 private:
  const DiffOptions& options_;
  DiffReport& report_;
};

}  // namespace

bool ToleranceRule::matches(const std::string& name) const {
  // General '*' glob (zero or more characters, anywhere in the pattern),
  // via the classic backtracking scan: remember the last star and the
  // name position it matched up to; on mismatch, extend that star by one
  // character and retry. Subsumes the original prefix-glob ("lat.*") and
  // exact-name behaviors, and admits mid-star rules like
  // "prof.phase.*.wall_ns*".
  std::size_t p = 0;
  std::size_t n = 0;
  std::size_t star = std::string::npos;
  std::size_t mark = 0;
  while (n < name.size()) {
    if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = n;
    } else if (p < pattern.size() && pattern[p] == name[n]) {
      ++p;
      ++n;
    } else if (star != std::string::npos) {
      p = star + 1;
      n = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

ToleranceRule parse_tolerance_rule(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument(
        "tolerance rule must be pattern=rtol[,atol]: '" + spec + "'");
  }
  ToleranceRule rule;
  rule.pattern = spec.substr(0, eq);
  const std::string values = spec.substr(eq + 1);
  const std::size_t comma = values.find(',');
  try {
    rule.rtol = std::stod(values.substr(0, comma));
    if (comma != std::string::npos) {
      rule.atol = std::stod(values.substr(comma + 1));
    }
  } catch (const std::exception&) {
    throw std::invalid_argument("bad tolerance value in rule '" + spec + "'");
  }
  if (rule.rtol < 0.0 || rule.atol < 0.0) {
    throw std::invalid_argument("tolerances must be >= 0: '" + spec + "'");
  }
  return rule;
}

std::string DiffReport::to_string() const {
  std::ostringstream out;
  for (const std::string& line : regressions) out << line << '\n';
  if (regression_count > regressions.size()) {
    out << "... and " << (regression_count - regressions.size())
        << " more regressions\n";
  }
  return out.str();
}

DiffReport diff_metrics(const Value& golden, const Value& candidate,
                        const DiffOptions& options) {
  const Document want = open_document(golden, "golden");
  const Document got = open_document(candidate, "candidate");
  if (want.schema != got.schema) {
    throw std::runtime_error("metrics_diff: schema mismatch: golden '" +
                             want.schema + "' vs candidate '" + got.schema +
                             "'");
  }

  DiffReport report;
  Differ differ(options, report);

  // The axis is the experiment's shape; it never gets a tolerance.
  if (want.axis->size() != got.axis->size()) {
    differ.flag(std::string(want.axis_name) + ": length " +
                std::to_string(got.axis->size()) + " != golden " +
                std::to_string(want.axis->size()));
  } else {
    for (std::size_t i = 0; i < want.axis->size(); ++i) {
      if ((*want.axis)[i].num() != (*got.axis)[i].num()) {
        differ.flag(std::string(want.axis_name) + "[" + std::to_string(i) +
                    "]: " + json::number((*got.axis)[i].num()) +
                    " != golden " + json::number((*want.axis)[i].num()));
        break;
      }
    }
  }

  for (const auto& [name, values] : *want.series) {
    const auto it = got.series->find(name);
    if (it == got.series->end()) {
      if (!options.ignore_missing) {
        differ.flag("series '" + name + "' missing from candidate");
      }
      continue;
    }
    differ.compare_series(name, values.arr(), it->second.arr());
  }
  for (const auto& [name, values] : *got.series) {
    if (!want.series->count(name) && !options.ignore_missing) {
      differ.flag("series '" + name +
                  "' not in golden (stale golden? regenerate it)");
    }
  }

  if (want.histograms || got.histograms) {
    static const util::json::Object kEmpty;
    const auto& want_h = want.histograms ? *want.histograms : kEmpty;
    const auto& got_h = got.histograms ? *got.histograms : kEmpty;
    for (const auto& [name, value] : want_h) {
      const auto it = got_h.find(name);
      if (it == got_h.end()) {
        if (!options.ignore_missing) {
          differ.flag("histogram '" + name + "' missing from candidate");
        }
        continue;
      }
      differ.compare_histogram(name, value, it->second);
    }
    for (const auto& [name, value] : got_h) {
      if (!want_h.count(name) && !options.ignore_missing) {
        differ.flag("histogram '" + name +
                    "' not in golden (stale golden? regenerate it)");
      }
    }
  }
  return report;
}

DiffReport diff_metrics_text(const std::string& golden,
                             const std::string& candidate,
                             const DiffOptions& options) {
  return diff_metrics(util::json::parse(golden), util::json::parse(candidate),
                      options);
}

}  // namespace mobi::obs
