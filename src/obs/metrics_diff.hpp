// Golden-metrics comparison: diffs two exported metrics documents
// (mobicache.metrics.v1 per-tick series, mobicache.soak.v1 windowed
// aggregates, or mobicache.windows.v1 window frames) series by series
// under per-series tolerances. The engine
// behind tools/metrics_diff and the CI regression gate: a checked-in
// golden artifact is compared against a freshly produced one, and any
// drift outside tolerance is a regression.
//
// Comparison rules:
//   - both documents must carry the same schema and an identical axis
//     (the "ticks" or "windows" array),
//   - every golden series must exist in the candidate with the same
//     length; a missing series is a regression (the metric silently
//     vanished) unless `ignore_missing` is set, and an *extra* candidate
//     series is flagged the same way (the golden is stale — regenerate),
//   - values compare within |a-b| <= atol + rtol*max(|a|,|b|), with the
//     tolerance chosen per series name (first matching rule wins,
//     defaults otherwise),
//   - histograms compare structurally (lo/hi/buckets/underflow/overflow/
//     nan/total exactly — they are counts) with only `sum` under the
//     series tolerance.
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace mobi::obs {

/// Per-series tolerance. `pattern` is an exact name or a glob where each
/// '*' matches zero or more characters anywhere in the name — "lat.*"
/// (prefix), "prof.phase.*.wall_ns*" (mid-star), "*.rate" (suffix).
struct ToleranceRule {
  std::string pattern;
  double rtol = 0.0;
  double atol = 0.0;

  bool matches(const std::string& name) const;
};

/// Parses "pattern=rtol" or "pattern=rtol,atol" (the --tol CLI syntax);
/// throws std::invalid_argument on malformed specs.
ToleranceRule parse_tolerance_rule(const std::string& spec);

struct DiffOptions {
  std::vector<ToleranceRule> rules;  // first match wins
  double default_rtol = 0.0;         // exact by default
  double default_atol = 0.0;
  bool ignore_missing = false;
  /// Cap on reported regression lines (further ones are counted, not
  /// stored — a badly drifted run should not produce megabytes of text).
  std::size_t max_reports = 64;
};

struct DiffReport {
  std::size_t series_compared = 0;
  std::size_t values_compared = 0;
  std::size_t regression_count = 0;       // total, including unreported
  std::vector<std::string> regressions;   // first max_reports lines

  bool ok() const noexcept { return regression_count == 0; }
  /// Multi-line human-readable summary (empty string when ok).
  std::string to_string() const;
};

/// Diffs two parsed documents; throws std::runtime_error when either is
/// not a recognized schema or the axes disagree structurally.
DiffReport diff_metrics(const util::json::Value& golden,
                        const util::json::Value& candidate,
                        const DiffOptions& options = {});

/// Convenience: parse both texts, then diff.
DiffReport diff_metrics_text(const std::string& golden,
                             const std::string& candidate,
                             const DiffOptions& options = {});

}  // namespace mobi::obs
