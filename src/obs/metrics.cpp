#include "obs/metrics.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mobi::obs {

FixedHistogram::FixedHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi) {
  if (!(lo < hi)) {
    throw std::invalid_argument("FixedHistogram: lo must be < hi");
  }
  if (buckets == 0) {
    throw std::invalid_argument("FixedHistogram: need at least one bucket");
  }
  counts_.assign(buckets, 0);
  width_ = (hi - lo) / double(buckets);
}

void FixedHistogram::observe(double x) noexcept {
  ++total_;
  if (std::isnan(x)) {
    // Dedicated slot: a NaN must neither pick a bucket (the cast would
    // be UB-adjacent garbage) nor poison the running sum.
    ++nan_;
    return;
  }
  sum_ += x;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto index = std::size_t((x - lo_) / width_);
  // Floating-point rounding at the upper edge can land exactly on size().
  if (index >= counts_.size()) index = counts_.size() - 1;
  ++counts_[index];
}

void FixedHistogram::merge(const FixedHistogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("FixedHistogram: merge shape mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  nan_ += other.nan_;
  total_ += other.total_;
  sum_ += other.sum_;
}

double FixedHistogram::bucket_lo(std::size_t index) const {
  if (index >= counts_.size()) throw std::out_of_range("FixedHistogram: bad bucket");
  return lo_ + width_ * double(index);
}

double FixedHistogram::bucket_hi(std::size_t index) const {
  if (index >= counts_.size()) throw std::out_of_range("FixedHistogram: bad bucket");
  return index + 1 == counts_.size() ? hi_ : lo_ + width_ * double(index + 1);
}

const char* metric_kind_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

void MetricsRegistry::reserve_name(const std::string& name, MetricKind kind) {
  if (name.empty()) {
    throw std::invalid_argument("MetricsRegistry: empty metric name");
  }
  const auto [it, inserted] = kinds_.emplace(name, kind);
  if (!inserted) {
    throw std::invalid_argument("MetricsRegistry: duplicate metric '" + name +
                                "' (already a " +
                                metric_kind_name(it->second) + ")");
  }
}

Counter& MetricsRegistry::register_counter(const std::string& name) {
  reserve_name(name, MetricKind::kCounter);
  auto& slot = counters_[name];
  slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::register_gauge(const std::string& name) {
  reserve_name(name, MetricKind::kGauge);
  auto& slot = gauges_[name];
  slot = std::make_unique<Gauge>();
  return *slot;
}

FixedHistogram& MetricsRegistry::register_histogram(const std::string& name,
                                                    double lo, double hi,
                                                    std::size_t buckets) {
  // Validate the histogram before claiming the name so a bad range does
  // not leave a phantom registration behind.
  auto histogram = std::make_unique<FixedHistogram>(lo, hi, buckets);
  reserve_name(name, MetricKind::kHistogram);
  auto& slot = histograms_[name];
  slot = std::move(histogram);
  return *slot;
}

bool MetricsRegistry::contains(const std::string& name) const {
  return kinds_.count(name) != 0;
}

MetricKind MetricsRegistry::kind(const std::string& name) const {
  const auto it = kinds_.find(name);
  if (it == kinds_.end()) {
    throw std::out_of_range("MetricsRegistry: unknown metric '" + name + "'");
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const FixedHistogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(kinds_.size());
  for (const auto& [name, kind] : kinds_) result.push_back(name);
  return result;
}

std::vector<std::string> MetricsRegistry::scalar_names() const {
  std::vector<std::string> result;
  result.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, kind] : kinds_) {
    if (kind != MetricKind::kHistogram) result.push_back(name);
  }
  return result;
}

double MetricsRegistry::scalar_value(const std::string& name) const {
  switch (kind(name)) {
    case MetricKind::kCounter:
      return double(find_counter(name)->value());
    case MetricKind::kGauge:
      return find_gauge(name)->value();
    case MetricKind::kHistogram:
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' is a histogram, not a scalar");
  }
  throw std::logic_error("MetricsRegistry: bad kind");
}

namespace json {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double value) {
  if (std::isnan(value) || std::isinf(value)) return "null";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    const auto [end, ec] =
        std::to_chars(buf, buf + sizeof(buf), (long long)(value));
    (void)ec;
    return std::string(buf, end);
  }
  // std::to_chars emits the shortest decimal text that parses back to the
  // identical double, and unlike snprintf ignores the C locale — so the
  // JSON/Prometheus exports are byte-stable across platforms and LC_*.
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  return std::string(buf, end);
}

}  // namespace json

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& [name, metric_kind] : kinds_) {
    if (!first) out << ',';
    first = false;
    out << '"' << json::escape(name) << "\":";
    switch (metric_kind) {
      case MetricKind::kCounter:
        out << find_counter(name)->value();
        break;
      case MetricKind::kGauge:
        out << json::number(find_gauge(name)->value());
        break;
      case MetricKind::kHistogram: {
        const FixedHistogram& h = *find_histogram(name);
        out << "{\"lo\":" << json::number(h.lo())
            << ",\"hi\":" << json::number(h.hi()) << ",\"buckets\":[";
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          if (i) out << ',';
          out << h.bucket(i);
        }
        out << "],\"underflow\":" << h.underflow()
            << ",\"overflow\":" << h.overflow() << ",\"nan\":" << h.nan_count()
            << ",\"total\":" << h.total()
            << ",\"sum\":" << json::number(h.sum()) << '}';
        break;
      }
    }
  }
  out << '}';
  return out.str();
}

util::Table MetricsRegistry::to_table() const {
  util::Table table({"metric", "kind", "value"}, 6);
  for (const auto& [name, metric_kind] : kinds_) {
    switch (metric_kind) {
      case MetricKind::kCounter:
        table.add_row({name, std::string("counter"),
                       (long long)(find_counter(name)->value())});
        break;
      case MetricKind::kGauge:
        table.add_row({name, std::string("gauge"), find_gauge(name)->value()});
        break;
      case MetricKind::kHistogram: {
        const FixedHistogram& h = *find_histogram(name);
        table.add_row({name, std::string("histogram(n=") +
                                 std::to_string(h.total()) + ")",
                       h.mean()});
        break;
      }
    }
  }
  return table;
}

}  // namespace mobi::obs
