#include "obs/prometheus.hpp"

#include <sstream>

namespace mobi::obs {

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_escape_help(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

void render(std::ostringstream& out, const MetricsRegistry& registry,
            const std::map<std::string, std::string>* help) {
  for (const std::string& name : registry.names()) {
    const std::string flat = prometheus_name(name);
    if (help) {
      const auto it = help->find(name);
      if (it != help->end()) {
        out << "# HELP " << flat << ' ' << prometheus_escape_help(it->second)
            << '\n';
      }
    }
    switch (registry.kind(name)) {
      case MetricKind::kCounter:
        out << "# TYPE " << flat << " counter\n"
            << flat << ' ' << registry.find_counter(name)->value() << '\n';
        break;
      case MetricKind::kGauge:
        out << "# TYPE " << flat << " gauge\n"
            << flat << ' ' << json::number(registry.find_gauge(name)->value())
            << '\n';
        break;
      case MetricKind::kHistogram: {
        const FixedHistogram& h = *registry.find_histogram(name);
        out << "# TYPE " << flat << " histogram\n";
        // Cumulative buckets: everything observed at or below each upper
        // edge, so the underflow mass folds into every finite bucket.
        std::uint64_t cumulative = h.underflow();
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          cumulative += h.bucket(i);
          out << flat << "_bucket{le=\""
              << prometheus_escape_label(json::number(h.bucket_hi(i)))
              << "\"} " << cumulative << '\n';
        }
        out << flat << "_bucket{le=\"+Inf\"} " << h.total() << '\n'
            << flat << "_sum " << json::number(h.sum()) << '\n'
            << flat << "_count " << h.total() << '\n';
        break;
      }
    }
  }
}

}  // namespace

std::string to_prometheus(const MetricsRegistry& registry) {
  std::ostringstream out;
  render(out, registry, nullptr);
  return out.str();
}

std::string to_prometheus(const MetricsRegistry& registry,
                          const std::map<std::string, std::string>& help) {
  std::ostringstream out;
  render(out, registry, &help);
  return out.str();
}

}  // namespace mobi::obs
