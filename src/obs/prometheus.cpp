#include "obs/prometheus.hpp"

#include <sstream>

namespace mobi::obs {

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

std::string to_prometheus(const MetricsRegistry& registry) {
  std::ostringstream out;
  for (const std::string& name : registry.names()) {
    const std::string flat = prometheus_name(name);
    switch (registry.kind(name)) {
      case MetricKind::kCounter:
        out << "# TYPE " << flat << " counter\n"
            << flat << ' ' << registry.find_counter(name)->value() << '\n';
        break;
      case MetricKind::kGauge:
        out << "# TYPE " << flat << " gauge\n"
            << flat << ' ' << json::number(registry.find_gauge(name)->value())
            << '\n';
        break;
      case MetricKind::kHistogram: {
        const FixedHistogram& h = *registry.find_histogram(name);
        out << "# TYPE " << flat << " histogram\n";
        // Cumulative buckets: everything observed at or below each upper
        // edge, so the underflow mass folds into every finite bucket.
        std::uint64_t cumulative = h.underflow();
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          cumulative += h.bucket(i);
          out << flat << "_bucket{le=\"" << json::number(h.bucket_hi(i))
              << "\"} " << cumulative << '\n';
        }
        out << flat << "_bucket{le=\"+Inf\"} " << h.total() << '\n'
            << flat << "_sum " << json::number(h.sum()) << '\n'
            << flat << "_count " << h.total() << '\n';
        break;
      }
    }
  }
  return out.str();
}

}  // namespace mobi::obs
