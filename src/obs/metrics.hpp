// Metrics registry: named counters, gauges, and fixed-bucket histograms
// that instrumented components (BaseStation, Cache, links, servers) update
// on their hot paths. Components hold raw pointers into a registry that
// default to null, so the disabled path costs one predictable branch — no
// virtual call, no allocation, no lock (the simulator is single-threaded
// per station; parallel sweeps give each replica its own registry).
//
// Naming convention: dotted lowercase paths, `<component>.<metric>`,
// nested via the prefix each component is registered under — e.g.
// `bs.fetches`, `bs.cache.hits`, `bs.downlink.queue_depth`. See
// docs/observability.md for the full schema.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace mobi::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time level; deltas may be negative.
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  void add(double delta) noexcept { value_ += delta; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Equal-width buckets over [lo, hi); samples outside the range land in
/// dedicated underflow/overflow buckets rather than being clamped, so the
/// tails stay visible (util::Histogram clamps; this one must not, because
/// an unexpected tail is exactly what observability is for).
///
/// NaN contract: a NaN sample lands in a dedicated slot (`nan_count`) and
/// counts toward `total`, but touches no bucket and is excluded from
/// `sum`/`mean` — it can neither corrupt a bucket nor poison the running
/// sum, and the slot keeps the anomaly visible in every export.
class FixedHistogram {
 public:
  FixedHistogram(double lo, double hi, std::size_t buckets);

  void observe(double x) noexcept;

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t index) const { return counts_.at(index); }
  double bucket_lo(std::size_t index) const;
  double bucket_hi(std::size_t index) const;
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  /// NaN samples observed (the dedicated slot; see class comment).
  std::uint64_t nan_count() const noexcept { return nan_; }
  /// Total samples including underflow/overflow/NaN.
  std::uint64_t total() const noexcept { return total_; }
  /// Sum over the non-NaN samples.
  double sum() const noexcept { return sum_; }
  /// Mean over the non-NaN samples (0 when there are none).
  double mean() const noexcept {
    const std::uint64_t finite = total_ - nan_;
    return finite ? sum_ / double(finite) : 0.0;
  }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

  /// Adds another histogram's counts and sum into this one. Both must
  /// share lo/hi/bucket_count exactly (throws std::invalid_argument
  /// otherwise) — used to fold per-shard sim-time histograms into one
  /// fleet-wide distribution after a multi-cell join.
  void merge(const FixedHistogram& other);

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t nan_ = 0;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* metric_kind_name(MetricKind kind) noexcept;

/// Owns every metric registered under it. Registration is strict: a name
/// may be registered exactly once, whatever its kind — duplicates throw.
/// Returned references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& register_counter(const std::string& name);
  Gauge& register_gauge(const std::string& name);
  FixedHistogram& register_histogram(const std::string& name, double lo,
                                     double hi, std::size_t buckets);

  bool contains(const std::string& name) const;
  std::size_t size() const noexcept { return kinds_.size(); }
  /// Kind of a registered metric; throws std::out_of_range when unknown.
  MetricKind kind(const std::string& name) const;

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const FixedHistogram* find_histogram(const std::string& name) const;

  /// All metric names, sorted — the deterministic export order.
  std::vector<std::string> names() const;
  /// Counter and gauge names, sorted (the scalar metrics a SeriesRecorder
  /// snapshots each tick).
  std::vector<std::string> scalar_names() const;
  /// Current value of a counter (as double) or gauge; throws for
  /// histograms and unknown names.
  double scalar_value(const std::string& name) const;

  /// Point-in-time snapshot of every metric as a JSON object. Counters
  /// and gauges map to numbers; histograms to
  /// {"lo","hi","buckets","underflow","overflow","nan","total","sum"}.
  std::string to_json() const;
  /// name / kind / value summary (histograms show total and mean).
  util::Table to_table() const;

 private:
  void reserve_name(const std::string& name, MetricKind kind);

  std::map<std::string, MetricKind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<FixedHistogram>> histograms_;
};

namespace json {
/// Escapes a string for embedding in JSON (quotes not included).
std::string escape(const std::string& text);
/// Formats a double so it round-trips exactly (integral values print
/// without a fractional part; NaN/inf clamp to null per JSON).
std::string number(double value);
}  // namespace json

}  // namespace mobi::obs
