#include "obs/recorder.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mobi::obs {

void SeriesRecorder::reserve(std::size_t samples) {
  reserve_hint_ = std::max(reserve_hint_, samples);
  ticks_.reserve(reserve_hint_);
  for (auto& [name, values] : series_) values.reserve(reserve_hint_);
}

void SeriesRecorder::sample(sim::Tick tick) {
  const std::size_t before = ticks_.size();
  for (const std::string& name : registry_->scalar_names()) {
    auto it = series_.find(name);
    if (it == series_.end()) {
      it = series_.emplace(name, Series(util::ArenaAllocator<double>(arena_)))
               .first;
      if (reserve_hint_) it->second.reserve(reserve_hint_);
    }
    Series& values = it->second;
    if (values.size() < before) values.resize(before, 0.0);  // late joiner
    values.push_back(registry_->scalar_value(name));
  }
  ticks_.push_back(tick);
}

const SeriesRecorder::Series& SeriesRecorder::series(
    const std::string& name) const {
  const auto it = series_.find(name);
  if (it == series_.end()) {
    throw std::out_of_range("SeriesRecorder: no series '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> SeriesRecorder::series_names() const {
  std::vector<std::string> result;
  result.reserve(series_.size());
  for (const auto& [name, values] : series_) result.push_back(name);
  return result;
}

std::string SeriesRecorder::to_json() const {
  std::ostringstream out;
  out << "{\"schema\":\"mobicache.metrics.v1\",\"ticks\":[";
  for (std::size_t i = 0; i < ticks_.size(); ++i) {
    if (i) out << ',';
    out << ticks_[i];
  }
  out << "],\"series\":{";
  bool first = true;
  for (const auto& [name, values] : series_) {
    if (!first) out << ',';
    first = false;
    out << '"' << json::escape(name) << "\":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out << ',';
      out << json::number(values[i]);
    }
    out << ']';
  }
  out << "},\"histograms\":{";
  first = true;
  for (const std::string& name : registry_->names()) {
    const FixedHistogram* h = registry_->find_histogram(name);
    if (!h) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << json::escape(name) << "\":{\"lo\":" << json::number(h->lo())
        << ",\"hi\":" << json::number(h->hi()) << ",\"buckets\":[";
    for (std::size_t i = 0; i < h->bucket_count(); ++i) {
      if (i) out << ',';
      out << h->bucket(i);
    }
    out << "],\"underflow\":" << h->underflow()
        << ",\"overflow\":" << h->overflow() << ",\"nan\":" << h->nan_count()
        << ",\"total\":" << h->total()
        << ",\"sum\":" << json::number(h->sum()) << '}';
  }
  out << "}}";
  return out.str();
}

util::Table SeriesRecorder::to_table() const {
  std::vector<std::string> headers{"tick"};
  for (const auto& [name, values] : series_) headers.push_back(name);
  util::Table table(std::move(headers), 6);
  for (std::size_t row = 0; row < ticks_.size(); ++row) {
    std::vector<util::Cell> cells;
    cells.reserve(series_.size() + 1);
    cells.emplace_back((long long)(ticks_[row]));
    for (const auto& [name, values] : series_) {
      cells.emplace_back(row < values.size() ? values[row] : 0.0);
    }
    table.add_row(std::move(cells));
  }
  return table;
}

}  // namespace mobi::obs
