#include "obs/window.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobi::obs {
namespace {

// Rank-based percentile over one window's histogram deltas with linear
// interpolation inside the landing bucket. Underflow mass sits at `lo`,
// overflow mass at `hi`; NaN deltas are excluded (same contract as
// FixedHistogram::mean). An empty window reports 0.
double percentile_from_deltas(const std::uint64_t* buckets, std::size_t nb,
                              std::uint64_t under, std::uint64_t over,
                              double lo, double width, double hi, double q) {
  double finite = double(under) + double(over);
  for (std::size_t b = 0; b < nb; ++b) finite += double(buckets[b]);
  if (finite <= 0.0) return 0.0;
  const double target = q * finite;
  double cum = double(under);
  if (under > 0 && cum >= target) return lo;
  for (std::size_t b = 0; b < nb; ++b) {
    const double c = double(buckets[b]);
    if (c > 0.0 && cum + c >= target) {
      const double frac = (target - cum) / c;
      return lo + width * (double(b) + frac);
    }
    cum += c;
  }
  return hi;
}

std::uint64_t clamped_delta(std::uint64_t cur, std::uint64_t base) noexcept {
  return cur >= base ? cur - base : 0;
}

}  // namespace

WindowAggregator::WindowAggregator(const MetricsRegistry& registry,
                                   const Config& config)
    : window_ticks_(config.window_ticks),
      stride_ticks_(config.stride_ticks > 0 ? config.stride_ticks
                                            : config.window_ticks),
      frame_capacity_(config.frame_capacity),
      registry_(registry) {
  if (window_ticks_ <= 0) {
    throw std::invalid_argument("WindowAggregator: window_ticks must be > 0");
  }
  if (stride_ticks_ > window_ticks_) {
    throw std::invalid_argument(
        "WindowAggregator: stride_ticks must be <= window_ticks");
  }
  if (frame_capacity_ == 0) {
    throw std::invalid_argument("WindowAggregator: frame_capacity must be > 0");
  }
}

void WindowAggregator::build_columns(const MetricsRegistry& registry) {
  columns_.clear();
  counters_.clear();
  counter_cols_.clear();
  gauges_.clear();
  gauge_cols_.clear();
  hists_.clear();
  hist_cols_.clear();
  hist_slots_total_ = 0;

  columns_.push_back({"window.start_tick", ColKind::kStartTick, 0});
  columns_.push_back({"window.end_tick", ColKind::kEndTick, 0});
  columns_.push_back({"window.ticks", ColKind::kTicks, 0});

  for (const std::string& name : registry.names()) {
    switch (registry.kind(name)) {
      case MetricKind::kCounter: {
        const std::size_t source = counters_.size();
        counters_.push_back(registry.find_counter(name));
        counter_cols_.push_back(columns_.size());
        columns_.push_back({name + ".rate", ColKind::kRate, source});
        break;
      }
      case MetricKind::kGauge: {
        const std::size_t source = gauges_.size();
        gauges_.push_back(registry.find_gauge(name));
        gauge_cols_.push_back(columns_.size());
        columns_.push_back({name + ".last", ColKind::kLast, source});
        break;
      }
      case MetricKind::kHistogram: {
        const FixedHistogram* hist = registry.find_histogram(name);
        const std::size_t source = hists_.size();
        HistShape shape;
        shape.hist = hist;
        shape.lo = hist->lo();
        shape.hi = hist->hi();
        shape.buckets = hist->bucket_count();
        shape.width = (shape.hi - shape.lo) / double(shape.buckets);
        shape.offset = hist_slots_total_;
        hists_.push_back(shape);
        hist_slots_total_ += shape.buckets + kHistExtra;
        hist_cols_.push_back(columns_.size());
        columns_.push_back({name + ".p50", ColKind::kP50, source});
        columns_.push_back({name + ".p90", ColKind::kP90, source});
        columns_.push_back({name + ".p99", ColKind::kP99, source});
        columns_.push_back({name + ".mean", ColKind::kMean, source});
        columns_.push_back({name + ".count", ColKind::kCount, source});
        break;
      }
    }
  }
}

void WindowAggregator::begin() {
  build_columns(registry_);

  const std::size_t slots =
      std::size_t((window_ticks_ + stride_ticks_ - 1) / stride_ticks_);
  open_.assign(slots, OpenWindow{});
  counter_base_.assign(slots * counters_.size(), 0);
  hist_base_.assign(slots * hist_slots_total_, 0);
  hist_sum_base_.assign(slots * hists_.size(), 0.0);

  meta_.assign(frame_capacity_, FrameView{});
  values_.assign(frame_capacity_ * columns_.size(), 0.0);
  hist_delta_.assign(frame_capacity_ * hist_slots_total_, 0);
  hist_sum_delta_.assign(frame_capacity_ * hists_.size(), 0.0);

  begun_ = true;
  finished_ = false;
  ticks_seen_ = 0;
  last_tick_ = 0;
  windows_closed_ = 0;
  dropped_frames_ = 0;

  open_window(open_[0], 0);
  next_open_start_ = stride_ticks_;
}

void WindowAggregator::open_window(OpenWindow& slot, std::int64_t start_n) {
  slot.active = true;
  slot.start_n = start_n;
  slot.start_tick = 0;
  slot.start_labeled = false;
  snapshot_baseline(std::size_t(&slot - open_.data()));
}

void WindowAggregator::snapshot_baseline(std::size_t slot) {
  std::uint64_t* cbase = counter_base_.data() + slot * counters_.size();
  for (std::size_t c = 0; c < counters_.size(); ++c) {
    cbase[c] = counters_[c]->value();
  }
  std::uint64_t* hbase = hist_base_.data() + slot * hist_slots_total_;
  double* sbase = hist_sum_base_.data() + slot * hists_.size();
  for (std::size_t h = 0; h < hists_.size(); ++h) {
    const HistShape& shape = hists_[h];
    std::uint64_t* block = hbase + shape.offset;
    for (std::size_t b = 0; b < shape.buckets; ++b) {
      block[b] = shape.hist->bucket(b);
    }
    block[shape.buckets] = shape.hist->underflow();
    block[shape.buckets + 1] = shape.hist->overflow();
    block[shape.buckets + 2] = shape.hist->nan_count();
    sbase[h] = shape.hist->sum();
  }
}

void WindowAggregator::on_tick(sim::Tick now) {
  if (!begun_) {
    throw std::logic_error("WindowAggregator::on_tick before begin()");
  }
  if (finished_) {
    throw std::logic_error("WindowAggregator::on_tick after finish()");
  }
  const std::int64_t n = ticks_seen_;
  last_tick_ = now;

  for (OpenWindow& slot : open_) {
    if (slot.active && !slot.start_labeled && slot.start_n == n) {
      slot.start_tick = now;
      slot.start_labeled = true;
    }
  }
  for (std::size_t i = 0; i < open_.size(); ++i) {
    OpenWindow& slot = open_[i];
    if (slot.active && slot.start_n + window_ticks_ == n + 1) {
      close_window(i, now, /*partial=*/false);
    }
  }
  ticks_seen_ = n + 1;
  while (next_open_start_ == ticks_seen_) {
    std::size_t free_slot = open_.size();
    for (std::size_t i = 0; i < open_.size(); ++i) {
      if (!open_[i].active) {
        free_slot = i;
        break;
      }
    }
    if (free_slot == open_.size()) {
      throw std::logic_error("WindowAggregator: no free open-window slot");
    }
    open_window(open_[free_slot], next_open_start_);
    next_open_start_ += stride_ticks_;
  }
}

void WindowAggregator::finish() {
  if (!begun_ || finished_) return;
  // Close partial windows in start order so frame ordinals stay sorted.
  for (;;) {
    std::size_t oldest = open_.size();
    for (std::size_t i = 0; i < open_.size(); ++i) {
      if (open_[i].active && open_[i].start_n < ticks_seen_ &&
          (oldest == open_.size() ||
           open_[i].start_n < open_[oldest].start_n)) {
        oldest = i;
      }
    }
    if (oldest == open_.size()) break;
    close_window(oldest, last_tick_, /*partial=*/true);
  }
  for (OpenWindow& slot : open_) slot.active = false;
  finished_ = true;
}

void WindowAggregator::close_window(std::size_t slot_index, sim::Tick end_tick,
                                    bool partial) {
  OpenWindow& slot = open_[slot_index];
  const std::int64_t covered = ticks_seen_ - slot.start_n + (partial ? 0 : 1);
  const std::size_t ring = std::size_t(windows_closed_ % frame_capacity_);
  if (windows_closed_ >= frame_capacity_) ++dropped_frames_;

  FrameView& meta = meta_[ring];
  meta.index = windows_closed_;
  meta.start_tick = slot.start_tick;
  meta.end_tick = end_tick;
  meta.ticks = covered;
  meta.partial = partial;

  double* values = frame_values(ring);
  values[0] = double(meta.start_tick);
  values[1] = double(meta.end_tick);
  values[2] = double(meta.ticks);

  const double ticks = double(covered);
  const std::uint64_t* cbase =
      counter_base_.data() + slot_index * counters_.size();
  for (std::size_t c = 0; c < counters_.size(); ++c) {
    const std::uint64_t delta = clamped_delta(counters_[c]->value(), cbase[c]);
    values[counter_cols_[c]] = double(delta) / ticks;
  }
  for (std::size_t g = 0; g < gauges_.size(); ++g) {
    values[gauge_cols_[g]] = gauges_[g]->value();
  }

  const std::uint64_t* hbase =
      hist_base_.data() + slot_index * hist_slots_total_;
  const double* sbase = hist_sum_base_.data() + slot_index * hists_.size();
  std::uint64_t* hdelta = hist_delta_.data() + ring * hist_slots_total_;
  double* sdelta = hist_sum_delta_.data() + ring * hists_.size();
  for (std::size_t h = 0; h < hists_.size(); ++h) {
    const HistShape& shape = hists_[h];
    const std::uint64_t* base = hbase + shape.offset;
    std::uint64_t* delta = hdelta + shape.offset;
    for (std::size_t b = 0; b < shape.buckets; ++b) {
      delta[b] = clamped_delta(shape.hist->bucket(b), base[b]);
    }
    delta[shape.buckets] =
        clamped_delta(shape.hist->underflow(), base[shape.buckets]);
    delta[shape.buckets + 1] =
        clamped_delta(shape.hist->overflow(), base[shape.buckets + 1]);
    delta[shape.buckets + 2] =
        clamped_delta(shape.hist->nan_count(), base[shape.buckets + 2]);
    sdelta[h] = shape.hist->sum() - sbase[h];
  }
  recompute_hist_columns(ring);

  slot.active = false;
  ++windows_closed_;
  if (listener_ != nullptr) {
    listener_->on_window(*this, frames() - 1);
  }
}

void WindowAggregator::recompute_hist_columns(std::size_t ring) {
  double* values = frame_values(ring);
  const std::uint64_t* hdelta = hist_delta_.data() + ring * hist_slots_total_;
  const double* sdelta = hist_sum_delta_.data() + ring * hists_.size();
  for (std::size_t h = 0; h < hists_.size(); ++h) {
    const HistShape& shape = hists_[h];
    const std::uint64_t* delta = hdelta + shape.offset;
    const std::uint64_t under = delta[shape.buckets];
    const std::uint64_t over = delta[shape.buckets + 1];
    const std::uint64_t nan = delta[shape.buckets + 2];
    std::uint64_t finite = under + over;
    for (std::size_t b = 0; b < shape.buckets; ++b) finite += delta[b];
    const std::size_t col = hist_cols_[h];
    values[col + 0] = percentile_from_deltas(delta, shape.buckets, under, over,
                                             shape.lo, shape.width, shape.hi,
                                             0.50);
    values[col + 1] = percentile_from_deltas(delta, shape.buckets, under, over,
                                             shape.lo, shape.width, shape.hi,
                                             0.90);
    values[col + 2] = percentile_from_deltas(delta, shape.buckets, under, over,
                                             shape.lo, shape.width, shape.hi,
                                             0.99);
    values[col + 3] = finite ? sdelta[h] / double(finite) : 0.0;
    values[col + 4] = double(finite + nan);
  }
}

std::size_t WindowAggregator::column_index(
    const std::string& name) const noexcept {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return npos;
}

std::size_t WindowAggregator::frames() const noexcept {
  return std::size_t(std::min<std::uint64_t>(windows_closed_, frame_capacity_));
}

std::size_t WindowAggregator::ring_of(std::size_t frame) const {
  if (frame >= frames()) {
    throw std::out_of_range("WindowAggregator: frame out of range");
  }
  const std::uint64_t ordinal = windows_closed_ - frames() + frame;
  return std::size_t(ordinal % frame_capacity_);
}

WindowAggregator::FrameView WindowAggregator::frame(std::size_t frame) const {
  return meta_[ring_of(frame)];
}

double WindowAggregator::value(std::size_t frame, std::size_t column) const {
  if (column >= columns_.size()) {
    throw std::out_of_range("WindowAggregator: column out of range");
  }
  return frame_values(ring_of(frame))[column];
}

double WindowAggregator::value(std::size_t frame,
                               const std::string& column) const {
  const std::size_t index = column_index(column);
  if (index == npos) {
    throw std::out_of_range("WindowAggregator: unknown column " + column);
  }
  return value(frame, index);
}

void WindowAggregator::merge_from(const WindowAggregator& other) {
  if (window_ticks_ != other.window_ticks_ ||
      stride_ticks_ != other.stride_ticks_ ||
      frame_capacity_ != other.frame_capacity_ ||
      windows_closed_ != other.windows_closed_ ||
      columns_.size() != other.columns_.size() ||
      hist_slots_total_ != other.hist_slots_total_) {
    throw std::invalid_argument("WindowAggregator::merge_from: geometry");
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name) {
      throw std::invalid_argument("WindowAggregator::merge_from: columns");
    }
  }
  for (std::size_t h = 0; h < hists_.size(); ++h) {
    if (hists_[h].lo != other.hists_[h].lo ||
        hists_[h].hi != other.hists_[h].hi ||
        hists_[h].buckets != other.hists_[h].buckets) {
      throw std::invalid_argument(
          "WindowAggregator::merge_from: histogram shape");
    }
  }
  for (std::size_t f = 0; f < frames(); ++f) {
    const std::size_t ring = ring_of(f);
    const std::size_t oring = other.ring_of(f);
    const FrameView& mine = meta_[ring];
    const FrameView& theirs = other.meta_[oring];
    if (mine.index != theirs.index || mine.start_tick != theirs.start_tick ||
        mine.end_tick != theirs.end_tick || mine.ticks != theirs.ticks ||
        mine.partial != theirs.partial) {
      throw std::invalid_argument("WindowAggregator::merge_from: frames");
    }
    double* values = frame_values(ring);
    const double* ovalues = other.frame_values(oring);
    for (std::size_t col = 0; col < columns_.size(); ++col) {
      if (columns_[col].kind == ColKind::kRate ||
          columns_[col].kind == ColKind::kLast) {
        values[col] += ovalues[col];
      }
    }
    std::uint64_t* hdelta = hist_delta_.data() + ring * hist_slots_total_;
    const std::uint64_t* odelta =
        other.hist_delta_.data() + oring * hist_slots_total_;
    for (std::size_t s = 0; s < hist_slots_total_; ++s) hdelta[s] += odelta[s];
    double* sdelta = hist_sum_delta_.data() + ring * hists_.size();
    const double* osdelta = other.hist_sum_delta_.data() + oring * hists_.size();
    for (std::size_t h = 0; h < hists_.size(); ++h) sdelta[h] += osdelta[h];
    recompute_hist_columns(ring);
  }
  dropped_frames_ += other.dropped_frames_;
}

std::string WindowAggregator::to_json() const {
  std::string out;
  out.reserve(256 + frames() * columns_.size() * 12);
  out += "{\"schema\":\"mobicache.windows.v1\"";
  out += ",\"window_ticks\":" + std::to_string(window_ticks_);
  out += ",\"stride_ticks\":" + std::to_string(stride_ticks_);
  out += ",\"windows_closed\":" + std::to_string(windows_closed_);
  out += ",\"dropped_frames\":" + std::to_string(dropped_frames_);
  out += ",\"windows\":[";
  for (std::size_t f = 0; f < frames(); ++f) {
    if (f) out += ',';
    out += std::to_string(meta_[ring_of(f)].index);
  }
  out += "],\"series\":{";
  for (std::size_t col = 0; col < columns_.size(); ++col) {
    if (col) out += ',';
    out += '"';
    out += json::escape(columns_[col].name);
    out += "\":[";
    for (std::size_t f = 0; f < frames(); ++f) {
      if (f) out += ',';
      out += json::number(frame_values(ring_of(f))[col]);
    }
    out += ']';
  }
  out += "}}";
  return out;
}

std::string WindowAggregator::to_jsonl() const {
  std::string out;
  out += "{\"schema\":\"mobicache.windows.v1\",\"streamed\":true";
  out += ",\"window_ticks\":" + std::to_string(window_ticks_);
  out += ",\"stride_ticks\":" + std::to_string(stride_ticks_);
  out += "}\n";
  for (std::size_t f = 0; f < frames(); ++f) {
    const std::size_t ring = ring_of(f);
    const FrameView& meta = meta_[ring];
    out += "{\"w\":" + std::to_string(meta.index);
    out += ",\"start\":" + std::to_string(meta.start_tick);
    out += ",\"end\":" + std::to_string(meta.end_tick);
    out += ",\"ticks\":" + std::to_string(meta.ticks);
    out += ",\"partial\":";
    out += meta.partial ? '1' : '0';
    out += ",\"series\":{";
    const double* values = frame_values(ring);
    for (std::size_t col = 0; col < columns_.size(); ++col) {
      if (col) out += ',';
      out += '"';
      out += json::escape(columns_[col].name);
      out += "\":";
      out += json::number(values[col]);
    }
    out += "}}\n";
  }
  return out;
}

}  // namespace mobi::obs
