// Prometheus text exposition format (version 0.0.4) for point-in-time
// registry snapshots — the second exporter next to the JSON family, so a
// scrape endpoint or a file-based textfile collector can ingest the same
// metrics the SeriesRecorder snapshots per tick.
#pragma once

#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace mobi::obs {

/// Maps a dotted metric name onto the Prometheus charset: every character
/// outside [a-zA-Z0-9_:] becomes '_' (so `bs.cache.hits` scrapes as
/// `bs_cache_hits`). Distinct dotted names that collide after mapping are
/// the caller's responsibility — the registry's naming convention (dots
/// only) cannot collide.
std::string prometheus_name(const std::string& name);

/// Escapes a label *value* per the text exposition format: backslash ->
/// `\\`, double quote -> `\"`, newline -> `\n`. Required for any value
/// interpolated inside `{name="..."}` — an unescaped `"` truncates the
/// label and corrupts the whole scrape.
std::string prometheus_escape_label(const std::string& value);

///// Escapes a HELP docstring: backslash -> `\\`, newline -> `\n` (quotes
/// are legal in HELP text and pass through verbatim).
std::string prometheus_escape_help(const std::string& value);

/// Renders every metric, sorted by name, as
///   # TYPE <name> counter|gauge|histogram
/// followed by its sample lines. Histograms follow the Prometheus
/// cumulative-bucket convention: `<name>_bucket{le="<hi>"}` per bucket
/// (underflow mass included from the first bucket up), an `le="+Inf"`
/// bucket equal to `_count`, plus `_sum` and `_count`. NaN observations
/// appear in `_count` (and the +Inf bucket) but in no finite bucket and
/// not in `_sum` — see FixedHistogram's NaN contract.
/// Values are formatted with json::number (locale-independent, shortest
/// round-trip form), so output is byte-stable across platforms. No
/// OpenMetrics `_created` series are ever emitted (the registry has no
/// creation timestamps, and golden outputs must stay wall-clock-free).
std::string to_prometheus(const MetricsRegistry& registry);

/// Same, additionally emitting a `# HELP <name> <text>` line (escaped via
/// prometheus_escape_help) before the TYPE line for every metric whose
/// dotted name appears in `help`. Metrics without an entry render exactly
/// as the plain overload.
std::string to_prometheus(const MetricsRegistry& registry,
                          const std::map<std::string, std::string>& help);

}  // namespace mobi::obs
