#include "obs/profiler.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobi::obs {

PhaseProfiler::PhaseProfiler(const Config& config) : config_(config) {
  if (config_.max_phases == 0 || config_.max_depth == 0 ||
      config_.max_nodes == 0) {
    throw std::invalid_argument("PhaseProfiler: limits must be > 0");
  }
  phases_.reserve(config_.max_phases);
  nodes_.reserve(config_.max_nodes);
  stack_.resize(config_.max_depth);
}

PhaseProfiler::PhaseId PhaseProfiler::phase(const std::string& name) {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].name == name) return PhaseId(i);
  }
  if (phases_.size() >= config_.max_phases) {
    throw std::length_error("PhaseProfiler: max_phases exceeded");
  }
  phases_.push_back(Phase{});
  phases_.back().name = name;
  if (registry_ != nullptr) register_live_counters(phases_.back());
  return PhaseId(phases_.size() - 1);
}

void PhaseProfiler::register_live_counters(Phase& phase) {
  const std::string base = prefix_ + "." + phase.name;
  phase.calls_counter = &registry_->register_counter(base + ".calls");
  phase.cost_counter = &registry_->register_counter(base + ".sim_cost");
  phase.wall_counter = &registry_->register_counter(base + ".wall_ns");
}

void PhaseProfiler::attach_registry(MetricsRegistry* registry,
                                    const std::string& prefix) {
  registry_ = registry;
  prefix_ = prefix;
  for (Phase& phase : phases_) {
    if (registry_ != nullptr) {
      register_live_counters(phase);
    } else {
      phase.calls_counter = nullptr;
      phase.cost_counter = nullptr;
      phase.wall_counter = nullptr;
    }
  }
}

std::int32_t PhaseProfiler::find_or_create_node(std::int32_t parent,
                                                PhaseId id) noexcept {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent == parent && nodes_[i].phase == id) {
      return std::int32_t(i);
    }
  }
  if (nodes_.size() >= config_.max_nodes) {
    ++node_overflows_;
    return -1;
  }
  Node node;
  node.parent = parent;
  node.phase = id;
  nodes_.push_back(node);  // within reserve(): no allocation
  return std::int32_t(nodes_.size() - 1);
}

void PhaseProfiler::enter(PhaseId id) noexcept {
  if (overflow_depth_ > 0 || depth_ >= config_.max_depth ||
      id >= phases_.size()) {
    ++overflow_depth_;
    ++depth_overflows_;
    return;
  }
  const std::int32_t parent = depth_ > 0 ? stack_[depth_ - 1].node : -1;
  Frame& frame = stack_[depth_++];
  frame.node = find_or_create_node(parent, id);
  frame.phase = id;
  frame.child_ns = 0;
  frame.start = Clock::now();
}

void PhaseProfiler::add_cost(std::uint64_t units) noexcept {
  if (overflow_depth_ > 0 || depth_ == 0) {
    dropped_cost_ += units;
    return;
  }
  Phase& phase = phases_[stack_[depth_ - 1].phase];
  phase.sim_cost += units;
  if (phase.cost_counter != nullptr) phase.cost_counter->add(units);
}

void PhaseProfiler::exit() noexcept {
  if (overflow_depth_ > 0) {
    --overflow_depth_;
    return;
  }
  if (depth_ == 0) return;  // unbalanced exit; ignore
  Frame& frame = stack_[--depth_];
  const auto elapsed = Clock::now() - frame.start;
  const std::uint64_t dt = std::uint64_t(std::max<std::int64_t>(
      0, std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
             .count()));
  Phase& phase = phases_[frame.phase];
  ++phase.calls;
  phase.total_ns += dt;
  // child_ns is a sum of disjoint sub-intervals of this span measured
  // with the same monotonic clock, so dt >= child_ns and self stays
  // exact — the Σself == root-total invariant depends on no clamping.
  phase.self_ns += dt - frame.child_ns;
  if (depth_ > 0) {
    stack_[depth_ - 1].child_ns += dt;
  } else {
    root_total_ns_ += dt;
  }
  if (frame.node >= 0) {
    nodes_[frame.node].wall_ns += dt;
    ++nodes_[frame.node].calls;
  }
  if (phase.calls_counter != nullptr) phase.calls_counter->add(1);
  if (phase.wall_counter != nullptr) phase.wall_counter->add(dt);
}

std::string PhaseProfiler::flamegraph_collapsed() const {
  // Self wall ns per node = node total minus its children's totals.
  std::vector<std::uint64_t> self(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) self[i] = nodes_[i].wall_ns;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent >= 0) {
      std::uint64_t& parent_self = self[std::size_t(nodes_[i].parent)];
      parent_self -= std::min(parent_self, nodes_[i].wall_ns);
    }
  }
  std::vector<std::string> lines;
  lines.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::string path = phases_[nodes_[i].phase].name;
    for (std::int32_t p = nodes_[i].parent; p >= 0;
         p = nodes_[std::size_t(p)].parent) {
      path = phases_[nodes_[std::size_t(p)].phase].name + ";" + path;
    }
    lines.push_back(path + " " + std::to_string(self[i]) + "\n");
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) out += line;
  return out;
}

void PhaseProfiler::export_metrics(MetricsRegistry& registry,
                                   const std::string& prefix) const {
  for (const Phase& phase : phases_) {
    const std::string base = prefix + "." + phase.name;
    registry.register_counter(base + ".calls").add(phase.calls);
    registry.register_counter(base + ".sim_cost").add(phase.sim_cost);
    registry.register_counter(base + ".wall_ns").add(phase.total_ns);
    registry.register_counter(base + ".self_wall_ns").add(phase.self_ns);
  }
}

void PhaseProfiler::reset() noexcept {
  for (Phase& phase : phases_) {
    phase.calls = 0;
    phase.sim_cost = 0;
    phase.total_ns = 0;
    phase.self_ns = 0;
  }
  nodes_.clear();  // keeps reserve()d capacity
  depth_ = 0;
  overflow_depth_ = 0;
  root_total_ns_ = 0;
  depth_overflows_ = 0;
  node_overflows_ = 0;
  dropped_cost_ = 0;
}

}  // namespace mobi::obs
