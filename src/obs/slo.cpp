#include "obs/slo.hpp"

#include <stdexcept>

namespace mobi::obs {

SloMonitor::SloMonitor(MetricsRegistry* registry,
                       std::vector<SloObjective> objectives) {
  states_.reserve(objectives.size());
  for (SloObjective& objective : objectives) {
    if (objective.column.empty()) {
      throw std::invalid_argument("SloMonitor: objective needs a column");
    }
    if (objective.fast_windows == 0 ||
        objective.fast_windows > objective.slow_windows) {
      throw std::invalid_argument(
          "SloMonitor: need 1 <= fast_windows <= slow_windows");
    }
    State state;
    state.objective = std::move(objective);
    state.ring.assign(state.objective.slow_windows, 0);
    states_.push_back(std::move(state));
  }
  if (registry != nullptr) {
    evaluations_counter_ = &registry->register_counter("slo.evaluations");
    breaches_counter_ = &registry->register_counter("slo.breaches");
    alerts_counter_ = &registry->register_counter("slo.alerts");
  }
}

void SloMonitor::resolve_columns(const WindowAggregator& agg) {
  for (State& state : states_) {
    state.column = agg.column_index(state.objective.column);
    if (state.column == WindowAggregator::npos) {
      throw std::invalid_argument("SloMonitor: unknown column " +
                                  state.objective.column);
    }
    if (!state.objective.denominator.empty()) {
      state.denominator = agg.column_index(state.objective.denominator);
      if (state.denominator == WindowAggregator::npos) {
        throw std::invalid_argument("SloMonitor: unknown column " +
                                    state.objective.denominator);
      }
    }
  }
  resolved_ = true;
}

std::size_t SloMonitor::breaches_in_last(const State& state,
                                         std::size_t count) const {
  const std::size_t window = std::min(count, state.seen);
  std::size_t total = 0;
  for (std::size_t back = 0; back < window; ++back) {
    const std::size_t slot =
        (state.seen - 1 - back) % state.objective.slow_windows;
    total += state.ring[slot];
  }
  return total;
}

std::size_t SloMonitor::fast_breaches(std::size_t i) const {
  const State& state = states_.at(i);
  return breaches_in_last(state, state.objective.fast_windows);
}

std::size_t SloMonitor::slow_breaches(std::size_t i) const {
  const State& state = states_.at(i);
  return breaches_in_last(state, state.objective.slow_windows);
}

void SloMonitor::on_window(const WindowAggregator& agg, std::size_t frame) {
  if (!resolved_) resolve_columns(agg);
  const WindowAggregator::FrameView meta = agg.frame(frame);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    State& state = states_[i];
    const SloObjective& objective = state.objective;

    bool vacuous = false;
    double value = agg.value(frame, state.column);
    if (state.denominator != WindowAggregator::npos) {
      const double denom = agg.value(frame, state.denominator);
      if (denom == 0.0) {
        vacuous = true;
        value = 0.0;
      } else {
        value /= denom;
      }
    }
    state.last_value = value;

    const bool holds =
        vacuous || (objective.cmp == SloObjective::Cmp::kLe
                        ? value <= objective.threshold
                        : value >= objective.threshold);
    ++evaluations_;
    if (evaluations_counter_ != nullptr) evaluations_counter_->add(1);
    if (!holds) {
      ++breaches_;
      if (breaches_counter_ != nullptr) breaches_counter_->add(1);
    }
    state.ring[state.seen % objective.slow_windows] = holds ? 0 : 1;
    ++state.seen;

    bool burn = false;
    if (state.seen >= objective.fast_windows) {
      const std::size_t fast = breaches_in_last(state, objective.fast_windows);
      const std::size_t slow_span =
          std::min(state.seen, objective.slow_windows);
      const std::size_t slow = breaches_in_last(state, slow_span);
      burn = double(fast) >= objective.fast_burn *
                                 double(objective.fast_windows) &&
             double(slow) >= objective.slow_burn * double(slow_span);
    }
    if (burn && !state.alerting) {
      state.alerting = true;
      ++alerts_;
      if (alerts_counter_ != nullptr) alerts_counter_->add(1);
      if (sink_ != nullptr) {
        RequestEvent event;
        event.tick = meta.end_tick;
        event.kind = EventKind::kSloAlert;
        event.attempt = std::uint32_t(i);
        event.object = std::uint32_t(meta.index);
        event.client = RequestEvent::kNoClient;
        event.value =
            double(breaches_in_last(state, objective.fast_windows)) /
            double(objective.fast_windows);
        sink_->write(event);
      }
    } else if (!burn && state.alerting) {
      state.alerting = false;
    }
  }
}

}  // namespace mobi::obs
