// Request-lifecycle tracing in *simulation time*: structured events per
// request (arrival -> cache-hit / degraded-serve / fetch-selected /
// retry[k] / drop / delivery) recorded into a pre-sized EventLog, plus
// sim-time latency histograms (ticks-to-serve, retry delay, downlink
// queue wait, served-recency gap) derived on the fly.
//
// Unlike obs::ScopedTrace (wall-clock phase spans), everything here is
// measured in ticks and recency units, so traces are bit-reproducible.
// The same contracts as the metrics layer apply: components hold a
// null-by-default RequestTracer pointer (the disabled path is one
// branch), observation never feeds back into simulation state, and the
// steady state allocates nothing — the event buffer is reserved up
// front and a full log *drops* (with a counter) rather than grows.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/tick.hpp"

namespace mobi::obs {

/// Lifecycle stages. Request-scoped kinds (arrival/hit/miss/degraded/
/// delivery) are subject to the tracer's 1-in-N sampling knob;
/// object-scoped kinds (fetch/retry) and link-scoped kinds (downlink,
/// net batch) are rare enough to always record.
enum class EventKind : std::uint8_t {
  kArrival,            // request entered the serve loop
  kCacheHit,           // served from cache; value = copy recency
  kCacheMiss,          // no cached copy at serve time
  kDegradedServe,      // the refresh this request wanted failed this tick
  kDelivery,           // response handed to the downlink; value = score
  kFetchSelected,      // policy picked the object for remote fetch
  kFetchDone,          // remote fetch succeeded; value = ticks-to-serve
  kFetchFailed,        // injected/legacy fault blocked the fetch
  kRetryAttempt,       // backoff expired, attempt made; value = waited ticks
  kRetryDrop,          // retry budget exhausted, object dropped
  kDownlinkDelivered,  // chunk fully delivered; value = queue-wait ticks
  kDownlinkDrop,       // chunk dropped mid-flight; value = dropped units
  kNetBatch,           // fixed-network batch; value = completion time
  kHandoff,            // client crossed a cell boundary; attempt = dest
                       // cell, value = migrated cache units
  kSloAlert,           // SLO burn-rate alert fired; obj = window ordinal,
                       // attempt = objective index, value = fast burn rate
};

const char* event_kind_name(EventKind kind) noexcept;

/// One structured lifecycle event. POD on purpose: recording is a bounds
/// check plus a copy into a reserved buffer.
struct RequestEvent {
  sim::Tick tick = 0;
  EventKind kind = EventKind::kArrival;
  std::uint32_t attempt = 0;  // retry ordinal / batch size, kind-specific
  std::uint32_t object = 0;
  std::uint32_t client = kNoClient;
  double value = 0.0;  // kind-specific payload (see EventKind comments)

  static constexpr std::uint32_t kNoClient = 0xffffffffu;
};

/// Appends one compact JSONL object for `event` to `out` (including the
/// trailing newline) — the body-line format of `mobicache.trace.v1`.
/// Shared by EventLog::to_jsonl and the streaming sinks, so a streamed
/// trace's event lines are byte-identical to the buffered export's.
void append_event_jsonl(std::string& out, const RequestEvent& event);

/// Where streamed trace events go. Implementations must tolerate write()
/// from exactly one producer thread (the owning simulation); flushing
/// may happen on a background thread internal to the sink.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Accepts one event. Hot path: must not allocate in the steady state
  /// (buffers reach a high-water mark, then are reused).
  virtual void write(const RequestEvent& event) noexcept = 0;
  /// Blocks until everything written so far is durably emitted.
  virtual void flush() = 0;

  /// Events accepted by write().
  virtual std::uint64_t streamed_events() const noexcept = 0;
  /// Events serialized and emitted so far (== streamed_events() after a
  /// flush). Default 0 for sinks with no internal buffering.
  virtual std::uint64_t flushed_events() const noexcept { return 0; }
  /// Times the producer stalled waiting for an in-flight flush.
  virtual std::uint64_t flush_blocks() const noexcept { return 0; }
};

/// Streams events to a JSONL file through a reserved double buffer:
/// write() copies the event into the active half (no allocation); when a
/// half fills it is handed to the flusher — a background thread by
/// default, or flushed inline when `background_flush` is off (the
/// per-shard sinks of a multi-cell run use inline mode so a thousand
/// cells do not spawn a thousand flusher threads). Serialization reuses
/// a grow-only scratch string, so the steady state allocates nothing.
///
/// File format (`mobicache.trace.v1` streamed framing): a header line
/// {"schema":"mobicache.trace.v1","streamed":true}, one event line per
/// write (byte-identical to EventLog::to_jsonl body lines), and a footer
/// {"streamed_end":true,"events":N,"flushes":K,"flush_blocks":B} written
/// by close(). Totals live in the footer because a stream cannot know
/// them up front.
class JsonlTraceSink final : public EventSink {
 public:
  struct Config {
    std::size_t buffer_events = 1 << 13;  // capacity of each half
    bool background_flush = true;
  };

  explicit JsonlTraceSink(const std::string& path);  // default Config
  JsonlTraceSink(const std::string& path, const Config& config);
  ~JsonlTraceSink() override;  // closes (flushing everything pending)

  void write(const RequestEvent& event) noexcept override;
  void flush() override;
  /// Flush + footer + fclose; idempotent. write() after close is a
  /// counted no-op (streamed_events still advances; nothing is emitted).
  void close();

  const std::string& path() const noexcept { return path_; }
  bool ok() const noexcept { return ok_; }
  std::uint64_t streamed_events() const noexcept override {
    return streamed_;
  }
  std::uint64_t flushed_events() const noexcept override {
    return flushed_.load(std::memory_order_relaxed);
  }
  std::uint64_t flush_blocks() const noexcept override {
    return flush_blocks_;
  }
  std::uint64_t flushes() const noexcept {
    return flushes_.load(std::memory_order_relaxed);
  }

 private:
  void swap_and_dispatch();                      // producer side
  void flush_buffer(std::vector<RequestEvent>& buffer);  // flusher side
  void flusher_loop();

  std::string path_;
  std::FILE* file_ = nullptr;
  bool ok_ = true;
  bool closed_ = false;
  bool background_;

  std::vector<RequestEvent> active_;
  std::vector<RequestEvent> pending_;
  std::string scratch_;  // grow-only serialization buffer (flusher side)
  std::size_t capacity_;

  std::uint64_t streamed_ = 0;      // producer thread only
  std::uint64_t flush_blocks_ = 0;  // producer thread only
  std::atomic<std::uint64_t> flushed_{0};
  std::atomic<std::uint64_t> flushes_{0};

  // Background mode: the producer hands `pending_` to the flusher under
  // `mutex_`; `pending_ready_` signals work, `pending_done_` signals the
  // buffer was drained and may be reused.
  std::mutex mutex_;
  std::condition_variable pending_ready_;
  std::condition_variable pending_done_;
  bool pending_full_ = false;
  bool stopping_ = false;
  std::thread flusher_;
};

/// Bounded, pre-sized event buffer. `record` never allocates: the buffer
/// is reserved to `capacity` at construction and events past capacity are
/// counted as dropped instead of stored — long soaks stay zero-alloc and
/// the drop counter makes the truncation visible.
///
/// With a EventSink attached (`set_sink`), every recorded event is
/// *also* streamed to the sink — including the ones the bounded buffer
/// drops — so the trace on disk is complete however small the in-memory
/// buffer, and trace capacity no longer bounds the horizon. The null
/// sink (default) is exactly the historical drop-with-count behavior,
/// and the in-memory accounting (size/dropped/count) is bit-identical
/// whether or not a sink is attached.
class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 1 << 16);

  /// Returns false (and counts a drop) when the log is full. A drop
  /// only affects the in-memory buffer: an attached sink still receives
  /// the event.
  bool record(const RequestEvent& event) noexcept;

  /// Attaches (or detaches, with nullptr) a streaming sink. The caller
  /// owns the sink and must keep it alive while attached.
  void set_sink(EventSink* sink) noexcept { sink_ = sink; }
  EventSink* sink() const noexcept { return sink_; }

  std::size_t size() const noexcept { return events_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  const std::vector<RequestEvent>& events() const noexcept { return events_; }
  /// Events recorded with this kind (linear scan; tests/diagnostics).
  std::uint64_t count(EventKind kind) const noexcept;
  /// Keeps capacity, clears events and the drop counter.
  void clear() noexcept;

  /// JSONL span export, schema `mobicache.trace.v1`: a header line
  /// {"schema":"mobicache.trace.v1","events":N,"dropped":D} followed by
  /// one compact object per event:
  ///   {"t":<tick>,"ev":"<kind>","obj":<id>,"client":<id|absent>,
  ///    "k":<attempt|absent>,"v":<value|absent>}
  std::string to_jsonl() const;

 private:
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::vector<RequestEvent> events_;
  EventSink* sink_ = nullptr;
};

/// Emission facade the instrumented components (BaseStation, downlink,
/// fixed network, retry path) call into. Owns the EventLog; the sim-time
/// latency histograms live in an attached MetricsRegistry (null default,
/// same discipline as set_metrics) so they export through the existing
/// SeriesRecorder / Prometheus paths.
///
/// Sampling is deterministic, not random: request-scoped events are kept
/// for every `sample_every`-th arrival (a plain counter), so a traced
/// re-run of the same seed samples the same requests — and the knob
/// consumes no RNG, keeping traced runs bit-identical to untraced ones.
class RequestTracer {
 public:
  struct Config {
    std::size_t sample_every = 1;  // 1 = every request; N = 1-in-N
    std::size_t event_capacity = 1 << 16;
  };

  RequestTracer();  // default Config: sample every arrival, 64Ki events
  explicit RequestTracer(const Config& config);

  /// Registers the `<prefix>.*` histograms (ticks_to_serve, retry_delay,
  /// queue_wait, served_recency_gap) in `registry` and observes into them
  /// from then on; nullptr detaches (events still go to the log).
  void register_histograms(MetricsRegistry* registry,
                           const std::string& prefix = "lat");

  EventLog& log() noexcept { return log_; }
  const EventLog& log() const noexcept { return log_; }
  std::size_t sample_every() const noexcept { return sample_every_; }
  /// Arrivals seen (sampled or not) — the sampling counter.
  std::uint64_t arrivals() const noexcept { return arrivals_; }
  std::uint64_t sampled_arrivals() const noexcept { return sampled_; }

  /// Components do not know the tick; the owning BaseStation stamps it
  /// once per batch and every event inherits it.
  void begin_tick(sim::Tick now) noexcept { now_ = now; }
  sim::Tick now() const noexcept { return now_; }

  // --- request-scoped (serve loop); pass on_arrival's decision through.
  bool on_arrival(std::uint32_t object, std::uint32_t client) noexcept;
  void on_serve(bool sampled, std::uint32_t object, std::uint32_t client,
                bool cached, bool degraded, double recency, double target,
                double score) noexcept;

  // --- object-scoped (fetch + retry path); always recorded.
  void on_fetch_selected(std::uint32_t object) noexcept;
  void on_fetch_done(std::uint32_t object, sim::Tick ticks_to_serve) noexcept;
  void on_fetch_failed(std::uint32_t object, std::uint32_t attempt) noexcept;
  void on_retry_attempt(std::uint32_t object, std::uint32_t attempt,
                        sim::Tick waited) noexcept;
  void on_retry_drop(std::uint32_t object, std::uint32_t attempts) noexcept;

  // --- link-scoped.
  void on_downlink_delivered(sim::Tick queue_wait) noexcept;
  void on_downlink_drop(double units) noexcept;
  void on_net_batch(std::size_t transfers, double completion) noexcept;

  // --- mobility-scoped; always recorded (a crossing is as rare as a
  // fetch). `to_cell` rides in the attempt field, migrated cache units in
  // the value, so the POD event layout is unchanged.
  void on_handoff(std::uint32_t client, std::uint32_t to_cell,
                  double migrated_units) noexcept;

 private:
  void emit(EventKind kind, std::uint32_t object, std::uint32_t client,
            std::uint32_t attempt, double value) noexcept {
    log_.record(RequestEvent{now_, kind, attempt, object, client, value});
  }

  std::size_t sample_every_;
  EventLog log_;
  sim::Tick now_ = 0;
  std::uint64_t arrivals_ = 0;
  std::uint64_t sampled_ = 0;

  struct Instruments {
    FixedHistogram* ticks_to_serve = nullptr;
    FixedHistogram* retry_delay = nullptr;
    FixedHistogram* queue_wait = nullptr;
    FixedHistogram* served_recency_gap = nullptr;
  };
  Instruments inst_;
};

/// Registers `<prefix>.{events,dropped,arrivals,streamed_events,
/// flushed_events,flush_blocks}` counters in `registry` and sets them
/// from the tracer's current log/sink state, so soak and fleet runs
/// expose trace truncation and flush behavior through the ordinary
/// metrics exports instead of requiring JSONL header parsing. Sinkless
/// tracers report zero for the sink counters. Strict-registry contract:
/// call at most once per (registry, prefix).
void export_trace_metrics(MetricsRegistry& registry,
                          const RequestTracer& tracer,
                          const std::string& prefix = "trace");

}  // namespace mobi::obs
