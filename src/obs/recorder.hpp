// SeriesRecorder: per-tick snapshots of every scalar metric (counter or
// gauge) in a registry, accumulated into aligned time series. Counters are
// recorded cumulatively — downstream tooling diffs adjacent samples for
// per-tick rates. Histograms are not sampled per tick; their final state
// is exported once alongside the series.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/tick.hpp"
#include "util/table.hpp"

namespace mobi::obs {

class SeriesRecorder {
 public:
  /// The registry must outlive the recorder.
  explicit SeriesRecorder(MetricsRegistry& registry) : registry_(&registry) {}

  MetricsRegistry& registry() noexcept { return *registry_; }
  const MetricsRegistry& registry() const noexcept { return *registry_; }

  /// Snapshots every counter and gauge currently registered. A metric
  /// registered after the first sample joins with zeros backfilled for the
  /// ticks it missed, so every series stays aligned with ticks().
  void sample(sim::Tick tick);

  std::size_t samples() const noexcept { return ticks_.size(); }
  const std::vector<sim::Tick>& ticks() const noexcept { return ticks_; }
  /// Throws std::out_of_range for a name never sampled.
  const std::vector<double>& series(const std::string& name) const;
  std::vector<std::string> series_names() const;

  /// {"schema":"mobicache.metrics.v1","ticks":[...],
  ///  "series":{name:[...]},"histograms":{name:{...final state...}}}
  std::string to_json() const;
  /// One row per tick, one column per series (plus the tick column).
  util::Table to_table() const;

 private:
  MetricsRegistry* registry_;
  std::vector<sim::Tick> ticks_;
  std::map<std::string, std::vector<double>> series_;
};

}  // namespace mobi::obs
