// SeriesRecorder: per-tick snapshots of every scalar metric (counter or
// gauge) in a registry, accumulated into aligned time series. Counters are
// recorded cumulatively — downstream tooling diffs adjacent samples for
// per-tick rates. Histograms are not sampled per tick; their final state
// is exported once alongside the series.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/tick.hpp"
#include "util/arena.hpp"
#include "util/table.hpp"

namespace mobi::obs {

class SeriesRecorder {
 public:
  /// Series storage type: arena-backed when the recorder was built with
  /// an arena, plain-heap otherwise (the default allocator falls back to
  /// operator new). Same element layout either way.
  using Series = std::vector<double, util::ArenaAllocator<double>>;

  /// The registry must outlive the recorder. With an arena, the tick and
  /// value series allocate from it (the arena must outlive the recorder);
  /// the arena's single-thread contract applies — sample() from one
  /// thread only, which the post-join recording discipline already
  /// guarantees.
  explicit SeriesRecorder(MetricsRegistry& registry,
                          util::MonotonicArena* arena = nullptr)
      : registry_(&registry),
        arena_(arena),
        ticks_(util::ArenaAllocator<sim::Tick>(arena)) {}

  MetricsRegistry& registry() noexcept { return *registry_; }
  const MetricsRegistry& registry() const noexcept { return *registry_; }

  /// Capacity hint: total samples this run will take. Reserves the tick
  /// series and every known value series now, and sizes series that join
  /// later, so steady-state sampling never reallocates.
  void reserve(std::size_t samples);

  /// Snapshots every counter and gauge currently registered. A metric
  /// registered after the first sample joins with zeros backfilled for the
  /// ticks it missed, so every series stays aligned with ticks().
  void sample(sim::Tick tick);

  std::size_t samples() const noexcept { return ticks_.size(); }
  const std::vector<sim::Tick, util::ArenaAllocator<sim::Tick>>& ticks()
      const noexcept {
    return ticks_;
  }
  /// Throws std::out_of_range for a name never sampled.
  const Series& series(const std::string& name) const;
  std::vector<std::string> series_names() const;

  /// {"schema":"mobicache.metrics.v1","ticks":[...],
  ///  "series":{name:[...]},"histograms":{name:{...final state...}}}
  std::string to_json() const;
  /// One row per tick, one column per series (plus the tick column).
  util::Table to_table() const;

 private:
  MetricsRegistry* registry_;
  util::MonotonicArena* arena_ = nullptr;
  std::size_t reserve_hint_ = 0;
  std::vector<sim::Tick, util::ArenaAllocator<sim::Tick>> ticks_;
  std::map<std::string, Series> series_;
};

}  // namespace mobi::obs
