#include "obs/event_log.hpp"

#include <sstream>
#include <stdexcept>

namespace mobi::obs {

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kArrival: return "arrival";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kDegradedServe: return "degraded_serve";
    case EventKind::kDelivery: return "delivery";
    case EventKind::kFetchSelected: return "fetch_selected";
    case EventKind::kFetchDone: return "fetch_done";
    case EventKind::kFetchFailed: return "fetch_failed";
    case EventKind::kRetryAttempt: return "retry_attempt";
    case EventKind::kRetryDrop: return "retry_drop";
    case EventKind::kDownlinkDelivered: return "downlink_delivered";
    case EventKind::kDownlinkDrop: return "downlink_drop";
    case EventKind::kNetBatch: return "net_batch";
  }
  return "?";
}

EventLog::EventLog(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("EventLog: capacity must be > 0");
  }
  events_.reserve(capacity);
}

bool EventLog::record(const RequestEvent& event) noexcept {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  events_.push_back(event);
  return true;
}

std::uint64_t EventLog::count(EventKind kind) const noexcept {
  std::uint64_t n = 0;
  for (const RequestEvent& event : events_) {
    if (event.kind == kind) ++n;
  }
  return n;
}

void EventLog::clear() noexcept {
  events_.clear();
  dropped_ = 0;
}

std::string EventLog::to_jsonl() const {
  std::ostringstream out;
  out << "{\"schema\":\"mobicache.trace.v1\",\"events\":" << events_.size()
      << ",\"dropped\":" << dropped_ << "}\n";
  for (const RequestEvent& event : events_) {
    out << "{\"t\":" << event.tick << ",\"ev\":\""
        << event_kind_name(event.kind) << "\",\"obj\":" << event.object;
    if (event.client != RequestEvent::kNoClient) {
      out << ",\"client\":" << event.client;
    }
    if (event.attempt != 0) out << ",\"k\":" << event.attempt;
    if (event.value != 0.0) out << ",\"v\":" << json::number(event.value);
    out << "}\n";
  }
  return out.str();
}

RequestTracer::RequestTracer() : RequestTracer(Config{}) {}

RequestTracer::RequestTracer(const Config& config)
    : sample_every_(config.sample_every), log_(config.event_capacity) {
  if (config.sample_every == 0) {
    throw std::invalid_argument("RequestTracer: sample_every must be >= 1");
  }
}

void RequestTracer::register_histograms(MetricsRegistry* registry,
                                        const std::string& prefix) {
  inst_ = {};
  if (!registry) return;
  // Tick-valued histograms share one shape: most lifecycles resolve
  // within a few ticks, the capped exponential backoff (2^10 max) sets
  // the interesting tail, and overflow keeps anything beyond it visible.
  inst_.ticks_to_serve =
      &registry->register_histogram(prefix + ".ticks_to_serve", 0.0, 64.0, 64);
  inst_.retry_delay =
      &registry->register_histogram(prefix + ".retry_delay", 0.0, 64.0, 64);
  inst_.queue_wait =
      &registry->register_histogram(prefix + ".queue_wait", 0.0, 32.0, 32);
  inst_.served_recency_gap = &registry->register_histogram(
      prefix + ".served_recency_gap", 0.0, 1.0, 20);
}

bool RequestTracer::on_arrival(std::uint32_t object,
                               std::uint32_t client) noexcept {
  const bool sampled = (arrivals_++ % sample_every_) == 0;
  if (!sampled) return false;
  ++sampled_;
  emit(EventKind::kArrival, object, client, 0, 0.0);
  return true;
}

void RequestTracer::on_serve(bool sampled, std::uint32_t object,
                             std::uint32_t client, bool cached, bool degraded,
                             double recency, double target,
                             double score) noexcept {
  if (inst_.served_recency_gap) {
    // How far the served copy fell short of what the client asked for;
    // 0 = the target was met (possibly exceeded).
    const double gap = target > recency ? target - recency : 0.0;
    inst_.served_recency_gap->observe(gap);
  }
  if (!sampled) return;
  if (cached) {
    emit(EventKind::kCacheHit, object, client, 0, recency);
  } else {
    emit(EventKind::kCacheMiss, object, client, 0, 0.0);
  }
  if (degraded) emit(EventKind::kDegradedServe, object, client, 0, recency);
  emit(EventKind::kDelivery, object, client, 0, score);
}

void RequestTracer::on_fetch_selected(std::uint32_t object) noexcept {
  emit(EventKind::kFetchSelected, object, RequestEvent::kNoClient, 0, 0.0);
}

void RequestTracer::on_fetch_done(std::uint32_t object,
                                  sim::Tick ticks_to_serve) noexcept {
  if (inst_.ticks_to_serve) {
    inst_.ticks_to_serve->observe(double(ticks_to_serve));
  }
  emit(EventKind::kFetchDone, object, RequestEvent::kNoClient, 0,
       double(ticks_to_serve));
}

void RequestTracer::on_fetch_failed(std::uint32_t object,
                                    std::uint32_t attempt) noexcept {
  emit(EventKind::kFetchFailed, object, RequestEvent::kNoClient, attempt, 0.0);
}

void RequestTracer::on_retry_attempt(std::uint32_t object,
                                     std::uint32_t attempt,
                                     sim::Tick waited) noexcept {
  if (inst_.retry_delay) inst_.retry_delay->observe(double(waited));
  emit(EventKind::kRetryAttempt, object, RequestEvent::kNoClient, attempt,
       double(waited));
}

void RequestTracer::on_retry_drop(std::uint32_t object,
                                  std::uint32_t attempts) noexcept {
  emit(EventKind::kRetryDrop, object, RequestEvent::kNoClient, attempts, 0.0);
}

void RequestTracer::on_downlink_delivered(sim::Tick queue_wait) noexcept {
  if (inst_.queue_wait) inst_.queue_wait->observe(double(queue_wait));
  emit(EventKind::kDownlinkDelivered, 0, RequestEvent::kNoClient, 0,
       double(queue_wait));
}

void RequestTracer::on_downlink_drop(double units) noexcept {
  emit(EventKind::kDownlinkDrop, 0, RequestEvent::kNoClient, 0, units);
}

void RequestTracer::on_net_batch(std::size_t transfers,
                                 double completion) noexcept {
  emit(EventKind::kNetBatch, 0, RequestEvent::kNoClient,
       std::uint32_t(transfers), completion);
}

}  // namespace mobi::obs
