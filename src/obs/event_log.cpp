#include "obs/event_log.hpp"

#include <sstream>
#include <stdexcept>

namespace mobi::obs {

void append_event_jsonl(std::string& out, const RequestEvent& event) {
  out += "{\"t\":";
  out += std::to_string(event.tick);
  out += ",\"ev\":\"";
  out += event_kind_name(event.kind);
  out += "\",\"obj\":";
  out += std::to_string(event.object);
  if (event.client != RequestEvent::kNoClient) {
    out += ",\"client\":";
    out += std::to_string(event.client);
  }
  if (event.attempt != 0) {
    out += ",\"k\":";
    out += std::to_string(event.attempt);
  }
  if (event.value != 0.0) {
    out += ",\"v\":";
    out += json::number(event.value);
  }
  out += "}\n";
}

// ---------------------------------------------------------------------------
// JsonlTraceSink.

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : JsonlTraceSink(path, Config{}) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path, const Config& config)
    : path_(path), background_(config.background_flush),
      capacity_(config.buffer_events) {
  if (capacity_ == 0) {
    throw std::invalid_argument("JsonlTraceSink: buffer_events must be > 0");
  }
  file_ = std::fopen(path_.c_str(), "wb");
  if (!file_) {
    throw std::runtime_error("JsonlTraceSink: cannot open " + path_);
  }
  active_.reserve(capacity_);
  pending_.reserve(capacity_);
  // Worst-case line is well under 128 bytes; pre-grow the scratch so the
  // very first flush is already steady-state.
  scratch_.reserve(capacity_ * 64);
  const std::string header =
      "{\"schema\":\"mobicache.trace.v1\",\"streamed\":true}\n";
  ok_ = std::fwrite(header.data(), 1, header.size(), file_) == header.size();
  if (background_) {
    flusher_ = std::thread([this] { flusher_loop(); });
  }
}

JsonlTraceSink::~JsonlTraceSink() { close(); }

void JsonlTraceSink::write(const RequestEvent& event) noexcept {
  ++streamed_;
  if (closed_) return;
  active_.push_back(event);  // reserved: no allocation until a swap
  if (active_.size() >= capacity_) swap_and_dispatch();
}

void JsonlTraceSink::swap_and_dispatch() {
  if (!background_) {
    flush_buffer(active_);
    return;
  }
  std::unique_lock lock(mutex_);
  if (pending_full_) {
    // The flusher still owns the other half: the producer runs ahead of
    // the disk. Stall (counted — `flush_blocks` is the backpressure
    // signal) rather than allocate a third buffer.
    ++flush_blocks_;
    pending_done_.wait(lock, [this] { return !pending_full_; });
  }
  std::swap(active_, pending_);
  pending_full_ = true;
  pending_ready_.notify_one();
}

void JsonlTraceSink::flush_buffer(std::vector<RequestEvent>& buffer) {
  scratch_.clear();
  for (const RequestEvent& event : buffer) {
    append_event_jsonl(scratch_, event);
  }
  if (!scratch_.empty() && file_) {
    ok_ = std::fwrite(scratch_.data(), 1, scratch_.size(), file_) ==
              scratch_.size() &&
          ok_;
  }
  flushed_.fetch_add(buffer.size(), std::memory_order_relaxed);
  flushes_.fetch_add(1, std::memory_order_relaxed);
  buffer.clear();
}

void JsonlTraceSink::flusher_loop() {
  for (;;) {
    std::unique_lock lock(mutex_);
    pending_ready_.wait(lock, [this] { return pending_full_ || stopping_; });
    if (!pending_full_) return;  // stopping and drained
    // Serialize + write outside the lock: the producer may keep filling
    // (and even swap-wait on pending_done_) meanwhile.
    std::vector<RequestEvent>& buffer = pending_;
    lock.unlock();
    flush_buffer(buffer);
    lock.lock();
    pending_full_ = false;
    pending_done_.notify_one();
  }
}

void JsonlTraceSink::flush() {
  if (closed_) return;
  if (background_) {
    // Wait out any in-flight half, then drain the active one inline.
    std::unique_lock lock(mutex_);
    pending_done_.wait(lock, [this] { return !pending_full_; });
  }
  flush_buffer(active_);
  if (file_) std::fflush(file_);
}

void JsonlTraceSink::close() {
  if (closed_) return;
  flush();
  if (background_) {
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
      pending_ready_.notify_one();
    }
    flusher_.join();
  }
  closed_ = true;
  if (file_) {
    std::string footer = "{\"streamed_end\":true,\"events\":";
    footer += std::to_string(streamed_);
    footer += ",\"flushes\":";
    footer += std::to_string(flushes_.load(std::memory_order_relaxed));
    footer += ",\"flush_blocks\":";
    footer += std::to_string(flush_blocks_);
    footer += "}\n";
    ok_ = std::fwrite(footer.data(), 1, footer.size(), file_) ==
              footer.size() &&
          ok_;
    std::fclose(file_);
    file_ = nullptr;
  }
}

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kArrival: return "arrival";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kDegradedServe: return "degraded_serve";
    case EventKind::kDelivery: return "delivery";
    case EventKind::kFetchSelected: return "fetch_selected";
    case EventKind::kFetchDone: return "fetch_done";
    case EventKind::kFetchFailed: return "fetch_failed";
    case EventKind::kRetryAttempt: return "retry_attempt";
    case EventKind::kRetryDrop: return "retry_drop";
    case EventKind::kDownlinkDelivered: return "downlink_delivered";
    case EventKind::kDownlinkDrop: return "downlink_drop";
    case EventKind::kNetBatch: return "net_batch";
    case EventKind::kHandoff: return "handoff";
    case EventKind::kSloAlert: return "slo_alert";
  }
  return "?";
}

EventLog::EventLog(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("EventLog: capacity must be > 0");
  }
  events_.reserve(capacity);
}

bool EventLog::record(const RequestEvent& event) noexcept {
  // Dual-write: the sink sees every event, including the ones the
  // bounded buffer drops, and the buffer accounting below is identical
  // with or without a sink attached.
  if (sink_) sink_->write(event);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  events_.push_back(event);
  return true;
}

std::uint64_t EventLog::count(EventKind kind) const noexcept {
  std::uint64_t n = 0;
  for (const RequestEvent& event : events_) {
    if (event.kind == kind) ++n;
  }
  return n;
}

void EventLog::clear() noexcept {
  events_.clear();
  dropped_ = 0;
}

std::string EventLog::to_jsonl() const {
  std::ostringstream header;
  header << "{\"schema\":\"mobicache.trace.v1\",\"events\":" << events_.size()
         << ",\"dropped\":" << dropped_ << "}\n";
  std::string out = header.str();
  for (const RequestEvent& event : events_) {
    append_event_jsonl(out, event);
  }
  return out;
}

RequestTracer::RequestTracer() : RequestTracer(Config{}) {}

RequestTracer::RequestTracer(const Config& config)
    : sample_every_(config.sample_every), log_(config.event_capacity) {
  if (config.sample_every == 0) {
    throw std::invalid_argument("RequestTracer: sample_every must be >= 1");
  }
}

void RequestTracer::register_histograms(MetricsRegistry* registry,
                                        const std::string& prefix) {
  inst_ = {};
  if (!registry) return;
  // Tick-valued histograms share one shape: most lifecycles resolve
  // within a few ticks, the capped exponential backoff (2^10 max) sets
  // the interesting tail, and overflow keeps anything beyond it visible.
  inst_.ticks_to_serve =
      &registry->register_histogram(prefix + ".ticks_to_serve", 0.0, 64.0, 64);
  inst_.retry_delay =
      &registry->register_histogram(prefix + ".retry_delay", 0.0, 64.0, 64);
  inst_.queue_wait =
      &registry->register_histogram(prefix + ".queue_wait", 0.0, 32.0, 32);
  inst_.served_recency_gap = &registry->register_histogram(
      prefix + ".served_recency_gap", 0.0, 1.0, 20);
}

bool RequestTracer::on_arrival(std::uint32_t object,
                               std::uint32_t client) noexcept {
  const bool sampled = (arrivals_++ % sample_every_) == 0;
  if (!sampled) return false;
  ++sampled_;
  emit(EventKind::kArrival, object, client, 0, 0.0);
  return true;
}

void RequestTracer::on_serve(bool sampled, std::uint32_t object,
                             std::uint32_t client, bool cached, bool degraded,
                             double recency, double target,
                             double score) noexcept {
  if (inst_.served_recency_gap) {
    // How far the served copy fell short of what the client asked for;
    // 0 = the target was met (possibly exceeded).
    const double gap = target > recency ? target - recency : 0.0;
    inst_.served_recency_gap->observe(gap);
  }
  if (!sampled) return;
  if (cached) {
    emit(EventKind::kCacheHit, object, client, 0, recency);
  } else {
    emit(EventKind::kCacheMiss, object, client, 0, 0.0);
  }
  if (degraded) emit(EventKind::kDegradedServe, object, client, 0, recency);
  emit(EventKind::kDelivery, object, client, 0, score);
}

void RequestTracer::on_fetch_selected(std::uint32_t object) noexcept {
  emit(EventKind::kFetchSelected, object, RequestEvent::kNoClient, 0, 0.0);
}

void RequestTracer::on_fetch_done(std::uint32_t object,
                                  sim::Tick ticks_to_serve) noexcept {
  if (inst_.ticks_to_serve) {
    inst_.ticks_to_serve->observe(double(ticks_to_serve));
  }
  emit(EventKind::kFetchDone, object, RequestEvent::kNoClient, 0,
       double(ticks_to_serve));
}

void RequestTracer::on_fetch_failed(std::uint32_t object,
                                    std::uint32_t attempt) noexcept {
  emit(EventKind::kFetchFailed, object, RequestEvent::kNoClient, attempt, 0.0);
}

void RequestTracer::on_retry_attempt(std::uint32_t object,
                                     std::uint32_t attempt,
                                     sim::Tick waited) noexcept {
  if (inst_.retry_delay) inst_.retry_delay->observe(double(waited));
  emit(EventKind::kRetryAttempt, object, RequestEvent::kNoClient, attempt,
       double(waited));
}

void RequestTracer::on_retry_drop(std::uint32_t object,
                                  std::uint32_t attempts) noexcept {
  emit(EventKind::kRetryDrop, object, RequestEvent::kNoClient, attempts, 0.0);
}

void RequestTracer::on_downlink_delivered(sim::Tick queue_wait) noexcept {
  if (inst_.queue_wait) inst_.queue_wait->observe(double(queue_wait));
  emit(EventKind::kDownlinkDelivered, 0, RequestEvent::kNoClient, 0,
       double(queue_wait));
}

void RequestTracer::on_downlink_drop(double units) noexcept {
  emit(EventKind::kDownlinkDrop, 0, RequestEvent::kNoClient, 0, units);
}

void RequestTracer::on_net_batch(std::size_t transfers,
                                 double completion) noexcept {
  emit(EventKind::kNetBatch, 0, RequestEvent::kNoClient,
       std::uint32_t(transfers), completion);
}

void RequestTracer::on_handoff(std::uint32_t client, std::uint32_t to_cell,
                               double migrated_units) noexcept {
  emit(EventKind::kHandoff, 0, client, to_cell, migrated_units);
}

void export_trace_metrics(MetricsRegistry& registry,
                          const RequestTracer& tracer,
                          const std::string& prefix) {
  registry.register_counter(prefix + ".events").add(tracer.log().size());
  registry.register_counter(prefix + ".dropped").add(tracer.log().dropped());
  registry.register_counter(prefix + ".arrivals").add(tracer.arrivals());
  const EventSink* sink = tracer.log().sink();
  registry.register_counter(prefix + ".streamed_events")
      .add(sink ? sink->streamed_events() : 0);
  registry.register_counter(prefix + ".flushed_events")
      .add(sink ? sink->flushed_events() : 0);
  registry.register_counter(prefix + ".flush_blocks")
      .add(sink ? sink->flush_blocks() : 0);
}

}  // namespace mobi::obs
