#include "obs/trace.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace mobi::obs {

util::Summary TraceSink::summary(const std::string& name) const {
  util::Summary result;
  for (const TraceEvent& event : events_) {
    if (event.name == name) result.add(event.duration_us);
  }
  return result;
}

std::string TraceSink::to_json() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i) out << ',';
    out << "{\"name\":\"" << json::escape(events_[i].name)
        << "\",\"tick\":" << events_[i].tick
        << ",\"us\":" << json::number(events_[i].duration_us) << '}';
  }
  out << ']';
  return out.str();
}

}  // namespace mobi::obs
