// Lightweight scoped tracing: a ScopedTrace measures the wall-clock
// duration of a block and records it, tagged with the simulation tick,
// into a TraceSink. The sink pointer defaults to null and the disabled
// path is a single branch — safe to leave in hot loops.
//
// Wall-clock durations are observational only: they never feed back into
// simulation state, so tracing cannot perturb results (the determinism
// suite enforces this).
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "sim/tick.hpp"
#include "util/stats.hpp"

namespace mobi::obs {

struct TraceEvent {
  std::string name;
  sim::Tick tick = 0;
  double duration_us = 0.0;  // wall clock
};

class TraceSink {
 public:
  void record(std::string name, sim::Tick tick, double duration_us) {
    events_.push_back(TraceEvent{std::move(name), tick, duration_us});
  }

  std::size_t size() const noexcept { return events_.size(); }
  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  void clear() noexcept { events_.clear(); }

  /// Duration statistics over all events with this name.
  util::Summary summary(const std::string& name) const;

  /// [{"name":...,"tick":...,"us":...}, ...]
  std::string to_json() const;

 private:
  std::vector<TraceEvent> events_;
};

/// RAII span. `name` must outlive the span (string literals do).
class ScopedTrace {
 public:
  ScopedTrace(TraceSink* sink, const char* name, sim::Tick tick) noexcept
      : sink_(sink), name_(name), tick_(tick) {
    if (sink_) start_ = std::chrono::steady_clock::now();
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  ~ScopedTrace() {
    if (!sink_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_->record(
        name_, tick_,
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

 private:
  TraceSink* sink_;
  const char* name_;
  sim::Tick tick_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mobi::obs
