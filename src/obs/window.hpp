// Online sim-time window aggregation over a MetricsRegistry: tumbling or
// sliding windows whose frames materialize *during* the run (counter
// deltas -> per-tick rates, histogram bucket diffs -> per-window
// p50/p90/p99/mean, gauges -> last value), so controllers and SLO
// monitors can react to the last W ticks instead of parsing a cumulative
// dump after the fact.
//
// Contracts, same as the rest of the obs layer:
//   - Observation is read-only: the aggregator only *reads* the registry,
//     never feeds back into simulation state.
//   - Zero steady-state allocations: begin() preallocates the open-window
//     baseline slots and the frame ring; on_tick()/finish() touch only
//     that storage. Exports (to_json/to_jsonl) are post-run and may
//     allocate freely.
//   - Pool-size independence: windows are keyed on sim ticks (the caller
//     invokes on_tick once per completed tick), so a sharded run produces
//     bit-identical frames for any pool size, exactly like SeriesRecorder.
//
// Windows are half-open in tick *count*: with window_ticks=W and
// stride_ticks=S, window k covers the ticks delivered by on_tick calls
// [k*S, k*S+W). stride == window (the default, stride_ticks=0) gives
// tumbling windows; stride < window gives overlapping sliding windows
// (at most ceil(W/S) open at once, all preallocated).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/tick.hpp"

namespace mobi::obs {

/// Tumbling/sliding window aggregator. Construct, begin() once every
/// metric the run will touch is registered (registration order is the
/// column order via MetricsRegistry::names()), then on_tick() once per
/// completed tick and finish() at end of run.
class WindowAggregator {
 public:
  struct Config {
    sim::Tick window_ticks = 50;
    /// 0 means tumbling (stride == window_ticks). Must divide nothing —
    /// any 1 <= stride <= window_ticks works.
    sim::Tick stride_ticks = 0;
    /// Closed frames retained in the ring; older frames are overwritten
    /// (counted in dropped_frames()) once the ring wraps.
    std::size_t frame_capacity = 256;
  };

  /// Closed-frame callback. `frame` is the retained index (pass to
  /// frame()/value()); fired inside on_tick()/finish() right after the
  /// frame lands in the ring, on the simulation thread. Implementations
  /// must not mutate the aggregator and should not allocate if the run
  /// is under the zero-alloc contract.
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void on_window(const WindowAggregator& agg, std::size_t frame) = 0;
  };

  /// One closed window's metadata. start/end ticks are the labels of the
  /// first and last on_tick call the window covered (inclusive).
  struct FrameView {
    std::uint64_t index = 0;  // global window ordinal (0-based)
    sim::Tick start_tick = 0;
    sim::Tick end_tick = 0;
    sim::Tick ticks = 0;  // ticks actually covered (< window for partial)
    bool partial = false;
  };

  WindowAggregator(const MetricsRegistry& registry, const Config& config);

  void set_listener(Listener* listener) noexcept { listener_ = listener; }

  /// Snapshots the column set and every baseline, resets all frames.
  /// Call after the last metric registration and before the first
  /// on_tick; calling again restarts aggregation from fresh baselines
  /// (the counter-reset story: deltas never go negative, they restart).
  void begin();

  /// Ingest one completed tick. `now` is a label only — window geometry
  /// counts on_tick calls, so gaps in tick numbering cannot skew rates.
  void on_tick(sim::Tick now);

  /// Closes every open window that covered at least one tick as a
  /// partial frame. on_tick after finish throws; begin() re-arms.
  void finish();

  // --- column / frame accessors (valid after begin()).
  std::size_t column_count() const noexcept { return columns_.size(); }
  const std::string& column_name(std::size_t column) const {
    return columns_.at(column).name;
  }
  /// Index of a column by full name, or npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t column_index(const std::string& name) const noexcept;

  /// Retained closed frames (<= frame_capacity).
  std::size_t frames() const noexcept;
  std::uint64_t windows_closed() const noexcept { return windows_closed_; }
  std::uint64_t dropped_frames() const noexcept { return dropped_frames_; }
  FrameView frame(std::size_t frame) const;
  double value(std::size_t frame, std::size_t column) const;
  double value(std::size_t frame, const std::string& column) const;

  sim::Tick window_ticks() const noexcept { return window_ticks_; }
  sim::Tick stride_ticks() const noexcept { return stride_ticks_; }

  /// Folds another aggregator's frames into this one — the sharded-merge
  /// path for per-shard `mc.*` aggregation. Both must have identical
  /// geometry, column sets, and frame metadata (same windows over the
  /// same ticks). Counter rates and gauge last-values add; histogram
  /// bucket deltas add and the percentile/mean/count columns are
  /// recomputed from the merged buckets, so merged percentiles are exact,
  /// not averaged. Throws std::invalid_argument on any mismatch.
  void merge_from(const WindowAggregator& other);

  /// `mobicache.windows.v1` document: {"schema","window_ticks",
  /// "stride_ticks","windows_closed","dropped_frames","windows":[ordinal
  /// per retained frame],"series":{column:[value per frame]}}.
  std::string to_json() const;
  /// Streamed framing of the same schema: a header line with the
  /// geometry, then one object per retained frame
  /// {"w":ordinal,"start":t0,"end":t1,"ticks":n,"partial":0|1,
  ///  "series":{...}}.
  std::string to_jsonl() const;

 private:
  enum class ColKind : std::uint8_t {
    kStartTick,
    kEndTick,
    kTicks,
    kRate,   // counter delta / ticks
    kLast,   // gauge value at close
    kP50,
    kP90,
    kP99,
    kMean,   // histogram sum delta / finite-count delta
    kCount,  // histogram total delta (includes NaN slot)
  };
  struct Column {
    std::string name;
    ColKind kind;
    std::size_t source = 0;  // index into counters_/gauges_/hists_
  };
  struct HistShape {
    const FixedHistogram* hist = nullptr;
    double lo = 0.0;
    double hi = 0.0;
    double width = 0.0;
    std::size_t buckets = 0;
    std::size_t offset = 0;  // into a frame/slot hist-delta block
  };
  struct OpenWindow {
    bool active = false;
    std::int64_t start_n = 0;  // in on_tick-call counts
    sim::Tick start_tick = 0;
    bool start_labeled = false;
  };

  void build_columns(const MetricsRegistry& registry);
  void open_window(OpenWindow& slot, std::int64_t start_n);
  void snapshot_baseline(std::size_t slot);
  void close_window(std::size_t slot, sim::Tick end_tick, bool partial);
  void recompute_hist_columns(std::size_t ring);
  double* frame_values(std::size_t ring) noexcept {
    return values_.data() + ring * columns_.size();
  }
  const double* frame_values(std::size_t ring) const noexcept {
    return values_.data() + ring * columns_.size();
  }
  std::size_t ring_of(std::size_t frame) const;

  // Per-histogram delta block layout: buckets, then underflow, overflow,
  // NaN — kHistExtra trailing slots.
  static constexpr std::size_t kHistExtra = 3;

  sim::Tick window_ticks_;
  sim::Tick stride_ticks_;
  std::size_t frame_capacity_;
  const MetricsRegistry& registry_;
  Listener* listener_ = nullptr;

  bool begun_ = false;
  bool finished_ = false;
  std::int64_t ticks_seen_ = 0;
  std::int64_t next_open_start_ = 0;
  sim::Tick last_tick_ = 0;
  std::uint64_t windows_closed_ = 0;
  std::uint64_t dropped_frames_ = 0;

  std::vector<Column> columns_;
  std::vector<const Counter*> counters_;
  std::vector<std::size_t> counter_cols_;  // column of each counter's rate
  std::vector<const Gauge*> gauges_;
  std::vector<std::size_t> gauge_cols_;
  std::vector<HistShape> hists_;
  std::vector<std::size_t> hist_cols_;  // first of each hist's 5 columns
  std::size_t hist_slots_total_ = 0;

  // Open-window baseline storage, slot-major.
  std::vector<OpenWindow> open_;
  std::vector<std::uint64_t> counter_base_;  // open_ x counters_
  std::vector<std::uint64_t> hist_base_;     // open_ x hist_slots_total_
  std::vector<double> hist_sum_base_;        // open_ x hists_

  // Closed-frame ring, ring-slot-major.
  std::vector<FrameView> meta_;
  std::vector<double> values_;            // capacity x columns
  std::vector<std::uint64_t> hist_delta_;  // capacity x hist_slots_total_
  std::vector<double> hist_sum_delta_;     // capacity x hists_
};

}  // namespace mobi::obs
