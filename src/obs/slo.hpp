// Declarative SLOs over WindowAggregator frames with multi-window
// burn-rate alerting (the Google SRE workbook shape: a *fast* window
// that reacts quickly and a *slow* window that suppresses flapping; an
// alert fires only when both burn rates are over their thresholds).
//
// Everything here is deterministic: objectives are evaluated against
// sim-time window columns, the breach history is a preallocated ring of
// bits, and no RNG is consumed — a monitored run is bit-identical to an
// unmonitored one. Alerts emit `slo.{evaluations,breaches,alerts}`
// counters plus a kSloAlert trace event written *directly* to an
// attached EventSink, deliberately bypassing EventLog so the in-memory
// trace accounting (`trace.events` series, log sizes) stays untouched
// by monitoring.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/window.hpp"

namespace mobi::obs {

/// One objective over a window column. `column` names a WindowAggregator
/// column (e.g. "lat.ticks_to_serve.p99" or "bs.cache.hits.rate"); with
/// a non-empty `denominator` the evaluated value is the ratio
/// column/denominator per window (hit-rate style), and a zero
/// denominator makes the window vacuously compliant (no traffic, no
/// breach). The objective holds when `value cmp threshold`.
struct SloObjective {
  std::string name;         // short id, used in accessors/diagnostics
  std::string column;       // numerator window column
  std::string denominator;  // optional denominator window column
  enum class Cmp { kLe, kGe };
  Cmp cmp = Cmp::kLe;
  double threshold = 0.0;

  // Burn-rate pair: breached-window fraction over the last
  // `fast_windows` frames must reach `fast_burn` AND the fraction over
  // the last `slow_windows` frames must reach `slow_burn` for the alert
  // to fire. fast <= slow; an alert re-arms once the condition clears.
  std::size_t fast_windows = 3;
  double fast_burn = 1.0;
  std::size_t slow_windows = 12;
  double slow_burn = 0.5;
};

/// Evaluates objectives on every closed frame (attach with
/// `aggregator.set_listener(&monitor)`). Counters registered at
/// construction (strict-name contract; pass nullptr to skip metrics):
///   slo.evaluations  — objective-window evaluations performed
///   slo.breaches     — evaluations that violated their objective
///   slo.alerts       — burn-rate alert *firings* (transitions into the
///                      alerting state, not per-window re-assertions)
/// Column indices resolve lazily on the first frame; an objective naming
/// an unknown column throws std::invalid_argument there.
class SloMonitor final : public WindowAggregator::Listener {
 public:
  SloMonitor(MetricsRegistry* registry, std::vector<SloObjective> objectives);

  /// Alerts stream here as kSloAlert events (object = window ordinal,
  /// attempt = objective index, value = fast burn rate). Caller owns the
  /// sink; nullptr detaches.
  void set_sink(EventSink* sink) noexcept { sink_ = sink; }

  void on_window(const WindowAggregator& agg, std::size_t frame) override;

  std::size_t objective_count() const noexcept { return states_.size(); }
  const SloObjective& objective(std::size_t i) const {
    return states_.at(i).objective;
  }
  std::uint64_t evaluations() const noexcept { return evaluations_; }
  std::uint64_t breaches() const noexcept { return breaches_; }
  std::uint64_t alerts() const noexcept { return alerts_; }
  /// Is objective `i` currently in the alerting state?
  bool alerting(std::size_t i) const { return states_.at(i).alerting; }
  /// Breached-window count over the last min(seen, fast/slow) frames.
  std::size_t fast_breaches(std::size_t i) const;
  std::size_t slow_breaches(std::size_t i) const;
  /// Value evaluated on the most recent frame.
  double last_value(std::size_t i) const { return states_.at(i).last_value; }

 private:
  struct State {
    SloObjective objective;
    std::size_t column = WindowAggregator::npos;
    std::size_t denominator = WindowAggregator::npos;
    std::vector<std::uint8_t> ring;  // breach bits, slow_windows long
    std::size_t seen = 0;
    bool alerting = false;
    double last_value = 0.0;
  };

  void resolve_columns(const WindowAggregator& agg);
  std::size_t breaches_in_last(const State& state, std::size_t count) const;

  std::vector<State> states_;
  bool resolved_ = false;
  EventSink* sink_ = nullptr;
  std::uint64_t evaluations_ = 0;
  std::uint64_t breaches_ = 0;
  std::uint64_t alerts_ = 0;
  Counter* evaluations_counter_ = nullptr;
  Counter* breaches_counter_ = nullptr;
  Counter* alerts_counter_ = nullptr;
};

}  // namespace mobi::obs
