#include "net/fault_injector.hpp"

#include "obs/metrics.hpp"

namespace mobi::net {

FaultInjector::FaultInjector(const sim::FaultPlan& plan,
                             std::size_t server_count)
    : plan_(plan) {
  plan_.validate();
  // Fixed stream positions per category: toggling one category's rate
  // never reseeds or advances another's stream.
  util::SplitMix64 mixer(plan_.seed);
  fetch_rng_.reseed(mixer.next());
  slowdown_rng_.reseed(mixer.next());
  downlink_rng_.reseed(mixer.next());
  server_rng_.reseed(mixer.next());
  handoff_rng_.reseed(mixer.next());
  outage_until_.assign(server_count, 0);
}

void FaultInjector::begin_tick(sim::Tick now) {
  if (ticked_ && now == last_tick_) return;  // idempotent within a tick
  ticked_ = true;
  last_tick_ = now;
  if (plan_.server_outage_rate <= 0.0) return;
  for (sim::Tick& until : outage_until_) {
    if (until > now) continue;  // window still open; no reopen draw
    if (server_rng_.bernoulli(plan_.server_outage_rate)) {
      until = now + plan_.server_outage_ticks;
      ++counters_.server_outages;
      if (metrics_) inst_.server_outages->add();
    }
  }
}

bool FaultInjector::draw_fetch_failure() {
  if (plan_.fetch_failure_rate <= 0.0) return false;
  if (!fetch_rng_.bernoulli(plan_.fetch_failure_rate)) return false;
  ++counters_.fetch_failures;
  if (metrics_) inst_.fetch_failures->add();
  return true;
}

double FaultInjector::draw_fetch_slowdown() {
  if (plan_.fetch_slowdown_rate <= 0.0) return 1.0;
  if (!slowdown_rng_.bernoulli(plan_.fetch_slowdown_rate)) return 1.0;
  ++counters_.fetch_slowdowns;
  if (metrics_) inst_.fetch_slowdowns->add();
  return plan_.fetch_slowdown_factor;
}

bool FaultInjector::draw_downlink_drop() {
  if (plan_.downlink_drop_rate <= 0.0) return false;
  if (!downlink_rng_.bernoulli(plan_.downlink_drop_rate)) return false;
  ++counters_.downlink_drops;
  if (metrics_) inst_.downlink_drops->add();
  return true;
}

bool FaultInjector::draw_handoff() {
  if (plan_.handoff_rate <= 0.0) return false;
  if (!handoff_rng_.bernoulli(plan_.handoff_rate)) return false;
  ++counters_.handoffs;
  if (metrics_) inst_.handoffs->add();
  return true;
}

bool FaultInjector::server_down(std::size_t server) const noexcept {
  return server < outage_until_.size() && outage_until_[server] > last_tick_;
}

void FaultInjector::set_metrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) {
  metrics_ = registry;
  inst_ = {};
  if (!registry) return;
  inst_.fetch_failures =
      &registry->register_counter(prefix + ".injected.fetch_failures");
  inst_.fetch_slowdowns =
      &registry->register_counter(prefix + ".injected.fetch_slowdowns");
  inst_.downlink_drops =
      &registry->register_counter(prefix + ".injected.downlink_drops");
  inst_.server_outages =
      &registry->register_counter(prefix + ".injected.server_outages");
  inst_.handoffs = &registry->register_counter(prefix + ".injected.handoffs");
}

}  // namespace mobi::net
