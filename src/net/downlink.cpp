#include "net/downlink.hpp"

#include <stdexcept>

#include "net/fault_injector.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace mobi::net {

WirelessDownlink::WirelessDownlink(object::Units capacity_per_tick)
    : capacity_(capacity_per_tick) {
  if (capacity_per_tick <= 0) {
    throw std::invalid_argument("WirelessDownlink: capacity must be > 0");
  }
}

void WirelessDownlink::enqueue(object::Units units) {
  if (units < 0) throw std::invalid_argument("WirelessDownlink: negative size");
  if (units == 0) return;
  pending_.push_back(units);
  if (tracer_) pending_stamp_.push_back(ticks_);
  queued_ += units;
  enqueued_ += units;
  if (metrics_) {
    inst_.enqueued_units->add(std::uint64_t(units));
    inst_.queue_depth->set(double(queued_));
  }
}

object::Units WirelessDownlink::tick() {
  ++ticks_;
  object::Units budget = capacity_;
  object::Units delivered_now = 0;
  object::Units dropped_now = 0;
  while (budget > 0 && head_ < pending_.size()) {
    object::Units& head = pending_[head_];
    const object::Units moved = head <= budget ? head : budget;
    if (fault_ && fault_->draw_downlink_drop()) {
      // Dropped mid-flight: `moved` units of airtime are spent on a
      // transfer nobody receives, and only the chunk's *remaining* bytes
      // count as dropped — the prefix delivered on earlier ticks stays
      // delivered, so enqueued == delivered + queued + dropped exactly.
      budget -= moved;
      queued_ -= head;
      dropped_ += head;
      dropped_now += head;
      wasted_ += moved;
      if (tracer_) tracer_->on_downlink_drop(double(head));
      head = 0;
      ++head_;
      continue;
    }
    head -= moved;
    budget -= moved;
    queued_ -= moved;
    delivered_ += moved;
    delivered_now += moved;
    if (head == 0) {
      if (tracer_ && head_ < pending_stamp_.size()) {
        // Same-tick delivery waits 0 (ticks_ was bumped on entry).
        tracer_->on_downlink_delivered((ticks_ - 1) - pending_stamp_[head_]);
      }
      ++head_;
    }
  }
  if (head_ == pending_.size()) {
    // Drained: reset without releasing capacity.
    pending_.clear();
    pending_stamp_.clear();
    head_ = 0;
  } else if (head_ > 64 && head_ * 2 > pending_.size()) {
    // Backlogged: drop the consumed prefix once it dominates the buffer
    // (amortized O(1) per chunk, in-place move, no allocation).
    pending_.erase(pending_.begin(), pending_.begin() + std::ptrdiff_t(head_));
    if (!pending_stamp_.empty()) {
      pending_stamp_.erase(pending_stamp_.begin(),
                           pending_stamp_.begin() + std::ptrdiff_t(head_));
    }
    head_ = 0;
  }
  idle_ += budget;
  if (metrics_) {
    inst_.delivered_units->add(std::uint64_t(delivered_now));
    if (dropped_now > 0) inst_.dropped_units->add(std::uint64_t(dropped_now));
    if (capacity_ - budget > delivered_now) {
      inst_.wasted_airtime_units->add(
          std::uint64_t(capacity_ - budget - delivered_now));
    }
    inst_.idle_units->add(std::uint64_t(budget));
    inst_.queue_depth->set(double(queued_));
  }
  return delivered_now;
}

void WirelessDownlink::set_metrics(obs::MetricsRegistry* registry,
                                   const std::string& prefix) {
  metrics_ = registry;
  inst_ = {};
  if (!registry) return;
  inst_.enqueued_units = &registry->register_counter(prefix + ".enqueued_units");
  inst_.delivered_units =
      &registry->register_counter(prefix + ".delivered_units");
  inst_.dropped_units = &registry->register_counter(prefix + ".dropped_units");
  inst_.wasted_airtime_units =
      &registry->register_counter(prefix + ".wasted_airtime_units");
  inst_.idle_units = &registry->register_counter(prefix + ".idle_units");
  inst_.queue_depth = &registry->register_gauge(prefix + ".queue_depth");
  inst_.queue_depth->set(double(queued_));
}

void WirelessDownlink::set_tracer(obs::RequestTracer* tracer) {
  tracer_ = tracer;
  if (!tracer) {
    pending_stamp_.clear();
    pending_stamp_.shrink_to_fit();
    return;
  }
  // Backfill stamps for whatever is already queued (attach-mid-run), and
  // match pending_'s capacity so mirrored pushes never reallocate first.
  pending_stamp_.reserve(pending_.capacity());
  pending_stamp_.assign(pending_.size(), ticks_);
}

double WirelessDownlink::utilization() const noexcept {
  const double offered = double(capacity_) * double(ticks_);
  return offered > 0.0 ? double(delivered_) / offered : 0.0;
}

}  // namespace mobi::net
