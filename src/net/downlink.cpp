#include "net/downlink.hpp"

#include <stdexcept>

namespace mobi::net {

WirelessDownlink::WirelessDownlink(object::Units capacity_per_tick)
    : capacity_(capacity_per_tick) {
  if (capacity_per_tick <= 0) {
    throw std::invalid_argument("WirelessDownlink: capacity must be > 0");
  }
}

void WirelessDownlink::enqueue(object::Units units) {
  if (units < 0) throw std::invalid_argument("WirelessDownlink: negative size");
  if (units == 0) return;
  pending_.push_back(units);
  queued_ += units;
}

object::Units WirelessDownlink::tick() {
  ++ticks_;
  object::Units budget = capacity_;
  while (budget > 0 && !pending_.empty()) {
    object::Units& head = pending_.front();
    const object::Units moved = head <= budget ? head : budget;
    head -= moved;
    budget -= moved;
    queued_ -= moved;
    delivered_ += moved;
    if (head == 0) pending_.pop_front();
  }
  idle_ += budget;
  return capacity_ - budget;
}

double WirelessDownlink::utilization() const noexcept {
  const double offered = double(capacity_) * double(ticks_);
  return offered > 0.0 ? double(delivered_) / offered : 0.0;
}

}  // namespace mobi::net
