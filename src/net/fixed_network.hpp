// Fixed-network model between the base station and remote servers.
//
// Latency grows with concurrent load ("as the base station downloads more
// data over the fixed network, the overall latency may increase due to
// bandwidth contention" — paper §1). Transfers submitted in the same tick
// share the link processor-sharing style: each transfer's completion time
// reflects the amount of competing traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "net/link.hpp"
#include "object/object.hpp"

namespace mobi::obs {
class RequestTracer;
}  // namespace mobi::obs

namespace mobi::net {

class FaultInjector;

struct TransferStats {
  std::uint64_t transfers = 0;
  /// Units pulled from the origin over the fixed network (the only
  /// source class before coherent peer caching; submit/record_batch
  /// account here).
  object::Units units = 0;
  /// Units copied from peer base stations over the inter-station link
  /// (discounted budget weight; see core/peer_source.hpp).
  object::Units peer_units = 0;
  /// Units spent pushing propagated updates to sharers (the coherence
  /// protocol's own wire traffic; coop/coherence.hpp kPropagate).
  object::Units coherence_units = 0;
  double total_time = 0.0;  // summed per-transfer completion times

  double mean_time() const noexcept {
    return transfers ? total_time / double(transfers) : 0.0;
  }
};

class FixedNetwork {
 public:
  /// `contention` scales how strongly concurrent traffic inflates latency:
  /// a batch of total size B completes in latency + B/bandwidth, and each
  /// member transfer is charged latency + (own + contention*(B-own))/bw.
  FixedNetwork(double bandwidth, double latency, double contention = 1.0);

  /// Computes per-transfer completion times for a batch submitted
  /// together, updating the running stats. Returns one completion time per
  /// input size, in order.
  std::vector<double> submit_batch(const std::vector<object::Units>& sizes);

  /// Same accounting as submit_batch (identical stats to the bit), without
  /// materializing the per-transfer completion vector — the allocation-free
  /// hot-path entry point for callers that discard the completions.
  void record_batch(const std::vector<object::Units>& sizes);

  /// Time for the whole batch to finish (the last completion).
  double batch_completion_time(const std::vector<object::Units>& sizes) const;

  /// record_batch + batch_completion_time fused into one call that
  /// consults the attached fault injector exactly once per batch: a
  /// congestion fault multiplies every completion time (stats included)
  /// by the plan's slowdown factor. With no injector — or an idle one —
  /// this is bit-identical to calling batch_completion_time followed by
  /// record_batch, and it is the resilient hot-path entry point
  /// (allocation-free, like record_batch).
  double record_batch_completion(const std::vector<object::Units>& sizes);

  /// Accounts units copied from a peer base station (inter-station link;
  /// no fixed-network transfer, no latency contribution).
  void record_peer_units(object::Units units) noexcept {
    stats_.peer_units += units;
  }

  /// Accounts coherence-protocol wire traffic (propagated updates).
  void record_coherence_units(object::Units units) noexcept {
    stats_.coherence_units += units;
  }

  /// Attaches the fault injector consulted by record_batch_completion;
  /// nullptr (the default) detaches.
  void set_fault_injector(FaultInjector* injector) noexcept {
    fault_ = injector;
  }

  /// Attaches request-lifecycle tracing: record_batch_completion emits one
  /// net-batch event (transfer count + completion time, slowdown factor
  /// included) per non-empty batch. nullptr detaches.
  void set_tracer(obs::RequestTracer* tracer) noexcept { tracer_ = tracer; }

  const TransferStats& stats() const noexcept { return stats_; }
  double bandwidth() const noexcept { return link_.bandwidth(); }
  double latency() const noexcept { return link_.latency(); }

 private:
  Link link_;
  double contention_;
  TransferStats stats_;
  FaultInjector* fault_ = nullptr;
  obs::RequestTracer* tracer_ = nullptr;
};

}  // namespace mobi::net
