// FaultInjector: the runtime instantiation of a sim::FaultPlan.
//
// One injector is shared by every component of a station's pipeline —
// FixedNetwork (fetch slowdowns), WirelessDownlink (mid-flight drops),
// ServerPool (outage windows), BaseStation (fetch failures) and the cell
// driver (client handoffs) — each consulting the draw for its own fault
// category. Categories draw from independent SplitMix64-derived streams,
// so the schedule of one fault class is a pure function of (plan seed,
// class, draw index) and never shifts when another class is toggled.
//
// Contract with the zero-allocation hot path: every draw on a category
// whose rate is zero returns "no fault" without touching its RNG, so an
// attached-but-idle injector (empty plan) is free, allocation-less, and
// leaves every stream untouched — runs are bit-identical to having no
// injector at all (tests/fault_plan_test.cpp, alloc_regression_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault_plan.hpp"
#include "sim/tick.hpp"
#include "util/rng.hpp"

namespace mobi::obs {
class MetricsRegistry;
class Counter;
}  // namespace mobi::obs

namespace mobi::net {

/// Always-on plain counters of injected events (available without a
/// metrics registry; mirrored into `fault.injected.*` obs counters when
/// set_metrics is attached).
struct FaultCounters {
  std::uint64_t fetch_failures = 0;
  std::uint64_t fetch_slowdowns = 0;
  std::uint64_t downlink_drops = 0;
  std::uint64_t server_outages = 0;  // outage windows opened
  std::uint64_t handoffs = 0;
};

class FaultInjector {
 public:
  /// Validates and captures the plan. `server_count` sizes the outage
  /// window table; 0 disables server outages regardless of the rate.
  explicit FaultInjector(const sim::FaultPlan& plan,
                         std::size_t server_count = 0);

  const sim::FaultPlan& plan() const noexcept { return plan_; }
  /// All rates zero: components may treat the injector as absent.
  bool idle() const noexcept { return plan_.empty(); }
  std::size_t server_count() const noexcept { return outage_until_.size(); }

  /// Advances per-tick fault state (server outage windows open here).
  /// Idempotent within a tick, so the cell driver and the station may
  /// both call it for the same `now` without double-drawing.
  void begin_tick(sim::Tick now);

  /// One fetch-failure draw; true = the fetch faults.
  bool draw_fetch_failure();

  /// One per-batch congestion draw; returns the latency multiplier to
  /// apply to the whole batch (1.0 = healthy).
  double draw_fetch_slowdown();

  /// One per-chunk downlink draw; true = the transfer drops mid-flight.
  bool draw_downlink_drop();

  /// One per-client handoff draw; true = the client leaves the cell for
  /// plan().handoff_ticks ticks.
  bool draw_handoff();

  /// Whether `server` is inside an outage window at the last begun tick.
  bool server_down(std::size_t server) const noexcept;

  const FaultCounters& counters() const noexcept { return counters_; }

  /// Registers `<prefix>.injected.{fetch_failures,fetch_slowdowns,
  /// downlink_drops,server_outages,handoffs}` counters and keeps them in
  /// step with counters(); nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "fault");

 private:
  struct Instruments {
    obs::Counter* fetch_failures = nullptr;
    obs::Counter* fetch_slowdowns = nullptr;
    obs::Counter* downlink_drops = nullptr;
    obs::Counter* server_outages = nullptr;
    obs::Counter* handoffs = nullptr;
  };

  sim::FaultPlan plan_;
  // Independent per-category streams (see header comment).
  util::Rng fetch_rng_;
  util::Rng slowdown_rng_;
  util::Rng downlink_rng_;
  util::Rng server_rng_;
  util::Rng handoff_rng_;
  std::vector<sim::Tick> outage_until_;
  sim::Tick last_tick_ = 0;
  bool ticked_ = false;
  FaultCounters counters_;
  obs::MetricsRegistry* metrics_ = nullptr;
  Instruments inst_;
};

}  // namespace mobi::net
