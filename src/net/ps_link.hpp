// Event-driven processor-sharing link.
//
// FixedNetwork charges contention analytically per batch; this class
// models it dynamically on the event kernel: all in-flight transfers
// share the link's bandwidth equally (processor sharing — the standard
// fluid model of TCP-fair links), so a transfer's completion time depends
// on exactly which other transfers overlap it and for how long. Used by
// the examples/extensions that need real latency dynamics; the paper's
// experiment harnesses keep the budget abstraction.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <string>

#include "object/object.hpp"
#include "sim/simulator.hpp"

namespace mobi::obs {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace mobi::obs

namespace mobi::net {

class PsLink {
 public:
  /// `bandwidth`: units per time unit across all transfers (> 0).
  PsLink(sim::Simulator& simulator, double bandwidth);

  PsLink(const PsLink&) = delete;
  PsLink& operator=(const PsLink&) = delete;

  /// Starts a transfer of `size` units now. `on_done(start, finish)` runs
  /// when the last byte clears the link.
  void submit(object::Units size,
              std::function<void(double start, double finish)> on_done = {});

  std::size_t active() const noexcept { return transfers_.size(); }
  double bandwidth() const noexcept { return bandwidth_; }
  std::uint64_t completed() const noexcept { return completed_; }

  /// Registers submitted/completed counters, a units-moved counter and an
  /// in-flight gauge under `prefix`; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "ps_link");

 private:
  struct Transfer {
    double remaining = 0.0;
    double start = 0.0;
    std::function<void(double, double)> on_done;
  };

  /// Advances every in-flight transfer to the current time and completes
  /// the finished ones, then schedules the next completion event.
  void advance_and_reschedule();

  sim::Simulator* simulator_;
  double bandwidth_;
  std::list<Transfer> transfers_;
  double last_progress_time_ = 0.0;
  // Guards stale completion events: only the latest scheduled event acts.
  std::uint64_t schedule_generation_ = 0;
  std::uint64_t completed_ = 0;

  struct Instruments {
    obs::Counter* submitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* units_moved = nullptr;
    obs::Gauge* in_flight = nullptr;
  };
  obs::MetricsRegistry* metrics_ = nullptr;
  Instruments inst_;
};

}  // namespace mobi::net
