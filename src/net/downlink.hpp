// Wireless downlink from the base station to the clients in its cell.
//
// The downlink has a hard per-tick capacity. Deliveries are queued FIFO
// and drained each tick; capacity left over when the queue empties is
// *idle bandwidth* — the waste the paper's on-demand strategy is designed
// to avoid ("if there is too much delay in downloading data from remote
// sources, some of the available downlink bandwidth may be idle").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "object/object.hpp"

namespace mobi::obs {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace mobi::obs

namespace mobi::net {

class WirelessDownlink {
 public:
  explicit WirelessDownlink(object::Units capacity_per_tick);

  object::Units capacity() const noexcept { return capacity_; }

  /// Queues `units` of data for delivery to clients.
  void enqueue(object::Units units);

  /// Advances one tick: delivers up to capacity units from the queue.
  /// Returns the units actually delivered this tick.
  object::Units tick();

  object::Units queued() const noexcept { return queued_; }
  object::Units delivered_total() const noexcept { return delivered_; }
  object::Units idle_total() const noexcept { return idle_; }
  std::uint64_t ticks() const noexcept { return ticks_; }

  /// Fraction of downlink capacity used so far (0 if no ticks have run).
  double utilization() const noexcept;

  /// Registers enqueued/delivered/idle unit counters and a queue-depth
  /// gauge under `prefix` and keeps them updated; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "downlink");

 private:
  struct Instruments {
    obs::Counter* enqueued_units = nullptr;
    obs::Counter* delivered_units = nullptr;
    obs::Counter* idle_units = nullptr;
    obs::Gauge* queue_depth = nullptr;
  };

  object::Units capacity_;
  object::Units queued_ = 0;
  object::Units delivered_ = 0;
  object::Units idle_ = 0;
  std::uint64_t ticks_ = 0;
  // Per-item FIFO as a vector + head cursor: enqueues append, tick()
  // consumes from head_, and the consumed prefix is dropped wholesale —
  // no per-chunk deque churn, no allocations once capacity is warm.
  std::vector<object::Units> pending_;
  std::size_t head_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  Instruments inst_;
};

}  // namespace mobi::net
