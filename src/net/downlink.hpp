// Wireless downlink from the base station to the clients in its cell.
//
// The downlink has a hard per-tick capacity. Deliveries are queued FIFO
// and drained each tick; capacity left over when the queue empties is
// *idle bandwidth* — the waste the paper's on-demand strategy is designed
// to avoid ("if there is too much delay in downloading data from remote
// sources, some of the available downlink bandwidth may be idle").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "object/object.hpp"

namespace mobi::obs {
class MetricsRegistry;
class Counter;
class Gauge;
class RequestTracer;
}  // namespace mobi::obs

namespace mobi::net {

class FaultInjector;

class WirelessDownlink {
 public:
  explicit WirelessDownlink(object::Units capacity_per_tick);

  object::Units capacity() const noexcept { return capacity_; }

  /// Queues `units` of data for delivery to clients.
  void enqueue(object::Units units);

  /// Advances one tick: delivers up to capacity units from the queue.
  /// Returns the units actually delivered this tick. With a fault
  /// injector attached, a chunk touched this tick may be dropped
  /// mid-flight: the airtime it consumed is charged against capacity but
  /// delivered to nobody, and its undelivered remainder leaves the queue
  /// as dropped bytes — delivered/queued/dropped always conserve
  /// enqueued_total() exactly.
  object::Units tick();

  object::Units queued() const noexcept { return queued_; }
  object::Units enqueued_total() const noexcept { return enqueued_; }
  object::Units delivered_total() const noexcept { return delivered_; }
  /// Bytes that were queued but dropped mid-transfer (never delivered).
  object::Units dropped_total() const noexcept { return dropped_; }
  /// Airtime charged for transfers that were then dropped — capacity
  /// consumed without delivery (the waste faults cause on the air).
  object::Units wasted_airtime_total() const noexcept { return wasted_; }
  object::Units idle_total() const noexcept { return idle_; }
  std::uint64_t ticks() const noexcept { return ticks_; }

  /// Fraction of downlink capacity used so far (0 if no ticks have run).
  double utilization() const noexcept;

  /// Attaches a fault injector whose downlink-drop draws are consulted
  /// once per queued chunk touched per tick; nullptr (the default)
  /// detaches. An idle injector (empty plan) draws nothing and the tick
  /// is bit-identical to the detached path.
  void set_fault_injector(FaultInjector* injector) noexcept {
    fault_ = injector;
  }

  /// Registers enqueued/delivered/dropped/wasted-airtime/idle unit
  /// counters and a queue-depth gauge under `prefix` and keeps them
  /// updated; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "downlink");

  /// Attaches request-lifecycle tracing: a delivered event (with
  /// queue-wait ticks) per chunk that fully drains and a drop event (with
  /// the dropped units) per mid-flight drop. Enqueue-tick stamps are kept
  /// in a parallel vector maintained only while a tracer is attached, so
  /// the untraced path carries no extra state. nullptr detaches.
  void set_tracer(obs::RequestTracer* tracer);

 private:
  struct Instruments {
    obs::Counter* enqueued_units = nullptr;
    obs::Counter* delivered_units = nullptr;
    obs::Counter* dropped_units = nullptr;
    obs::Counter* wasted_airtime_units = nullptr;
    obs::Counter* idle_units = nullptr;
    obs::Gauge* queue_depth = nullptr;
  };

  object::Units capacity_;
  object::Units queued_ = 0;
  object::Units enqueued_ = 0;
  object::Units delivered_ = 0;
  object::Units dropped_ = 0;
  object::Units wasted_ = 0;
  object::Units idle_ = 0;
  std::uint64_t ticks_ = 0;
  // Per-item FIFO as a vector + head cursor: enqueues append, tick()
  // consumes from head_, and the consumed prefix is dropped wholesale —
  // no per-chunk deque churn, no allocations once capacity is warm.
  std::vector<object::Units> pending_;
  std::size_t head_ = 0;
  // Enqueue-tick stamp per pending chunk (queue-wait tracing); mirrors
  // pending_ exactly while a tracer is attached, empty otherwise.
  std::vector<std::uint64_t> pending_stamp_;
  FaultInjector* fault_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::RequestTracer* tracer_ = nullptr;
  Instruments inst_;
};

}  // namespace mobi::net
