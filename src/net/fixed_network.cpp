#include "net/fixed_network.hpp"

#include <numeric>
#include <stdexcept>

#include "net/fault_injector.hpp"
#include "obs/event_log.hpp"

namespace mobi::net {

FixedNetwork::FixedNetwork(double bandwidth, double latency, double contention)
    : link_(bandwidth, latency), contention_(contention) {
  if (contention < 0.0) {
    throw std::invalid_argument("FixedNetwork: contention must be >= 0");
  }
}

std::vector<double> FixedNetwork::submit_batch(
    const std::vector<object::Units>& sizes) {
  const object::Units total =
      std::accumulate(sizes.begin(), sizes.end(), object::Units{0});
  std::vector<double> completions;
  completions.reserve(sizes.size());
  for (object::Units own : sizes) {
    if (own < 0) throw std::invalid_argument("FixedNetwork: negative size");
    const double competing = contention_ * double(total - own);
    const double time =
        link_.latency() + (double(own) + competing) / link_.bandwidth();
    completions.push_back(time);
    link_.account(own);
    ++stats_.transfers;
    stats_.units += own;
    stats_.total_time += time;
  }
  return completions;
}

void FixedNetwork::record_batch(const std::vector<object::Units>& sizes) {
  const object::Units total =
      std::accumulate(sizes.begin(), sizes.end(), object::Units{0});
  for (object::Units own : sizes) {
    if (own < 0) throw std::invalid_argument("FixedNetwork: negative size");
    const double competing = contention_ * double(total - own);
    const double time =
        link_.latency() + (double(own) + competing) / link_.bandwidth();
    link_.account(own);
    ++stats_.transfers;
    stats_.units += own;
    stats_.total_time += time;
  }
}

double FixedNetwork::batch_completion_time(
    const std::vector<object::Units>& sizes) const {
  if (sizes.empty()) return 0.0;
  const object::Units total =
      std::accumulate(sizes.begin(), sizes.end(), object::Units{0});
  return link_.latency() + double(total) / link_.bandwidth();
}

double FixedNetwork::record_batch_completion(
    const std::vector<object::Units>& sizes) {
  if (sizes.empty()) return 0.0;
  // One congestion draw per batch; factor 1.0 multiplies exactly, so the
  // healthy path reproduces batch_completion_time + record_batch bit for
  // bit (the perf differential suites pin this).
  const double factor = fault_ ? fault_->draw_fetch_slowdown() : 1.0;
  const object::Units total =
      std::accumulate(sizes.begin(), sizes.end(), object::Units{0});
  for (object::Units own : sizes) {
    if (own < 0) throw std::invalid_argument("FixedNetwork: negative size");
    const double competing = contention_ * double(total - own);
    const double time =
        factor *
        (link_.latency() + (double(own) + competing) / link_.bandwidth());
    link_.account(own);
    ++stats_.transfers;
    stats_.units += own;
    stats_.total_time += time;
  }
  const double completion =
      factor * (link_.latency() + double(total) / link_.bandwidth());
  if (tracer_) tracer_->on_net_batch(sizes.size(), completion);
  return completion;
}

}  // namespace mobi::net
