#include "net/ps_link.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace mobi::net {

PsLink::PsLink(sim::Simulator& simulator, double bandwidth)
    : simulator_(&simulator), bandwidth_(bandwidth) {
  if (!(bandwidth > 0.0)) {
    throw std::invalid_argument("PsLink: bandwidth must be > 0");
  }
}

void PsLink::submit(object::Units size,
                    std::function<void(double, double)> on_done) {
  if (size < 0) throw std::invalid_argument("PsLink::submit: negative size");
  // Bring existing transfers up to date before the share changes.
  advance_and_reschedule();
  Transfer transfer;
  transfer.remaining = double(size);
  transfer.start = simulator_->now();
  transfer.on_done = std::move(on_done);
  transfers_.push_back(std::move(transfer));
  if (metrics_) {
    inst_.submitted->add();
    inst_.units_moved->add(std::uint64_t(size));
    inst_.in_flight->set(double(transfers_.size()));
  }
  advance_and_reschedule();
}

void PsLink::set_metrics(obs::MetricsRegistry* registry,
                         const std::string& prefix) {
  metrics_ = registry;
  inst_ = {};
  if (!registry) return;
  inst_.submitted = &registry->register_counter(prefix + ".submitted");
  inst_.completed = &registry->register_counter(prefix + ".completed");
  inst_.units_moved = &registry->register_counter(prefix + ".units_moved");
  inst_.in_flight = &registry->register_gauge(prefix + ".in_flight");
  inst_.in_flight->set(double(transfers_.size()));
}

void PsLink::advance_and_reschedule() {
  const double now = simulator_->now();
  // Progress the fluid model: each of k transfers advanced by
  // elapsed * bandwidth / k.
  if (!transfers_.empty() && now > last_progress_time_) {
    const double per_transfer = (now - last_progress_time_) * bandwidth_ /
                                double(transfers_.size());
    for (auto& transfer : transfers_) {
      transfer.remaining -= per_transfer;
    }
  }
  last_progress_time_ = now;

  for (;;) {
    // Complete transfers whose remaining volume is (numerically) gone.
    for (auto it = transfers_.begin(); it != transfers_.end();) {
      if (it->remaining <= 1e-9) {
        if (it->on_done) it->on_done(it->start, now);
        ++completed_;
        if (metrics_) inst_.completed->add();
        it = transfers_.erase(it);
      } else {
        ++it;
      }
    }
    if (metrics_) inst_.in_flight->set(double(transfers_.size()));
    if (transfers_.empty()) return;

    // Next completion: the smallest remaining volume at the current share.
    double smallest = std::numeric_limits<double>::infinity();
    for (const auto& transfer : transfers_) {
      smallest = std::min(smallest, transfer.remaining);
    }
    const double delay = smallest * double(transfers_.size()) / bandwidth_;
    if (now + delay > now) {
      const std::uint64_t generation = ++schedule_generation_;
      simulator_->schedule_in(delay, [this, generation] {
        // A later submit() superseded this event; ignore it.
        if (generation != schedule_generation_) return;
        advance_and_reschedule();
      });
      return;
    }
    // The delay is below the floating-point resolution of `now` (e.g. an
    // extremely fast link): the clock cannot advance, so drain the
    // sub-resolution volume directly instead of live-locking on
    // zero-delay events.
    for (auto& transfer : transfers_) {
      transfer.remaining -= smallest;
    }
  }
}

}  // namespace mobi::net
