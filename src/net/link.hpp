// Network link primitives.
//
// The paper's knapsack mapping deliberately abstracts the network down to
// a per-batch download budget; these classes model what that budget
// abstracts — transfer times, queueing, contention and downlink
// utilization — so the examples and the BaseStation orchestrator can
// report latency and idle-bandwidth effects the paper discusses
// qualitatively in its introduction.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "object/object.hpp"
#include "sim/simulator.hpp"

namespace mobi::net {

/// A point-to-point link with fixed bandwidth and propagation latency.
class Link {
 public:
  /// bandwidth: data units per time unit (> 0); latency: time units (>= 0).
  Link(double bandwidth, double latency);

  double bandwidth() const noexcept { return bandwidth_; }
  double latency() const noexcept { return latency_; }

  /// Time to move `units` across an otherwise idle link.
  double transfer_time(object::Units units) const;

  /// Records a transfer for utilization accounting.
  void account(object::Units units) noexcept {
    transferred_ += units;
    ++transfers_;
  }
  object::Units transferred() const noexcept { return transferred_; }
  std::uint64_t transfers() const noexcept { return transfers_; }

 private:
  double bandwidth_;
  double latency_;
  object::Units transferred_ = 0;
  std::uint64_t transfers_ = 0;
};

}  // namespace mobi::net
