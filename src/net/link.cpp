#include "net/link.hpp"

namespace mobi::net {

Link::Link(double bandwidth, double latency)
    : bandwidth_(bandwidth), latency_(latency) {
  if (bandwidth <= 0.0) throw std::invalid_argument("Link: bandwidth must be > 0");
  if (latency < 0.0) throw std::invalid_argument("Link: latency must be >= 0");
}

double Link::transfer_time(object::Units units) const {
  if (units < 0) throw std::invalid_argument("Link::transfer_time: negative size");
  return latency_ + double(units) / bandwidth_;
}

}  // namespace mobi::net
