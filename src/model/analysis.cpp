#include "model/analysis.hpp"

#include <cmath>
#include <stdexcept>

namespace mobi::model {

double probability_requested(double p, std::uint64_t requests) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("probability_requested: p outside [0, 1]");
  }
  if (p == 0.0) return 0.0;
  if (p == 1.0) return requests > 0 ? 1.0 : 0.0;
  // 1 - (1-p)^requests, computed in log space for tiny p.
  return -std::expm1(double(requests) * std::log1p(-p));
}

double expected_on_demand_downloads(std::span<const double> access_probs,
                                    std::size_t requests_per_tick,
                                    sim::Tick update_period,
                                    sim::Tick measure_ticks) {
  if (update_period <= 0 || measure_ticks < 0) {
    throw std::invalid_argument("expected_on_demand_downloads: bad ticks");
  }
  const auto requests_per_cycle =
      std::uint64_t(requests_per_tick) * std::uint64_t(update_period);
  double per_cycle = 0.0;
  for (double p : access_probs) {
    per_cycle += probability_requested(p, requests_per_cycle);
  }
  const double cycles = double(measure_ticks) / double(update_period);
  return per_cycle * cycles;
}

double expected_async_downloads(std::size_t object_count,
                                sim::Tick update_period,
                                sim::Tick measure_ticks) {
  if (update_period <= 0 || measure_ticks < 0) {
    throw std::invalid_argument("expected_async_downloads: bad ticks");
  }
  return double(object_count) * double(measure_ticks) / double(update_period);
}

double steady_state_recency_harmonic(unsigned refresh_every_updates) {
  if (refresh_every_updates == 0) {
    throw std::invalid_argument("steady_state_recency_harmonic: k must be >= 1");
  }
  double harmonic = 0.0;
  for (unsigned j = 1; j <= refresh_every_updates; ++j) {
    harmonic += 1.0 / double(j);
  }
  return harmonic / double(refresh_every_updates);
}

double expected_async_recency(std::size_t object_count,
                              std::size_t budget_per_tick,
                              sim::Tick update_period) {
  if (object_count == 0 || budget_per_tick == 0 || update_period <= 0) {
    throw std::invalid_argument("expected_async_recency: bad parameters");
  }
  // A full round-robin sweep refreshes every object once in n/k ticks;
  // the copy then ages one decay per update cycle until its next turn.
  const double sweep_ticks =
      double(object_count) / double(budget_per_tick);
  const auto aged_cycles =
      unsigned(std::ceil(sweep_ticks / double(update_period)));
  return steady_state_recency_harmonic(std::max(1u, aged_cycles));
}

}  // namespace mobi::model
