// Closed-form analytical models for the quantities the paper measures by
// simulation. These serve two purposes: they are the "analytical results"
// the paper's abstract promises, and the test suite validates the
// simulator against them (model ~ simulation is a strong correctness
// check for both sides).
#pragma once

#include <cstddef>
#include <span>

#include "sim/tick.hpp"

namespace mobi::model {

/// Probability that an object with per-request probability `p` is
/// requested at least once during `requests` independent requests.
double probability_requested(double p, std::uint64_t requests);

/// Expected on-demand downloads per update cycle (Figure 2's quantity).
///
/// Between consecutive synchronized updates (period T ticks, rate R
/// requests per tick) each object is downloaded at most once — on its
/// first request after the update. So
///   E[downloads/cycle] = sum_i P(object i requested within R*T requests)
/// and over a measure window of W ticks there are W/T cycles.
double expected_on_demand_downloads(std::span<const double> access_probs,
                                    std::size_t requests_per_tick,
                                    sim::Tick update_period,
                                    sim::Tick measure_ticks);

/// The asynchronous strategy's downloads over the same window: every
/// object, every cycle (the paper's dotted line).
double expected_async_downloads(std::size_t object_count,
                                sim::Tick update_period,
                                sim::Tick measure_ticks);

/// Steady-state recency of a cached copy that is refreshed every `k`
/// synchronized update cycles under harmonic decay with C = 1: the copy's
/// score cycles 1, 1/2, ..., 1/k; the time-averaged score is H_k / k
/// (H_k the k-th harmonic number). `k` >= 1.
double steady_state_recency_harmonic(unsigned refresh_every_updates);

/// Expected recency of copies served by the asynchronous round-robin
/// refresh (Figure 3's async curve) in steady state: with n objects,
/// budget k per tick and update period T, a full refresh sweep takes
/// n/k ticks = (n/k)/T update cycles, so a uniformly sampled copy has
/// aged uniformly over {0, 1, ..., ceil(sweep_cycles) - 1} cycles
/// (0 aged copies score 1). Approximate but accurate for n >> k.
double expected_async_recency(std::size_t object_count,
                              std::size_t budget_per_tick,
                              sim::Tick update_period);

}  // namespace mobi::model
