// TTL freshness — the modern proxy-cache analog of the paper's recency
// model (HTTP max-age / stale-while-revalidate descend from exactly this
// problem; the paper's §1 notes its results "could be applied to web
// proxy caching").
//
// A TTL view derives a binary freshness verdict and a synthetic recency
// score from *time since fetch*, with no knowledge of server updates:
//   fresh(age)   = age <= ttl
//   recency(age) = 1.0 while fresh, then harmonic in expired periods —
//                  1/2 after one extra TTL, 1/3 after two, ...
// This is exactly what an HTTP cache can compute from Cache-Control
// headers, and lets the paper's policies run in environments where no
// invalidation channel exists.
#pragma once

#include "cache/cache.hpp"
#include "object/object.hpp"
#include "sim/tick.hpp"

namespace mobi::cache {

class TtlView {
 public:
  /// `ttl`: ticks a fetched copy is considered fully fresh. Must be > 0.
  TtlView(const Cache& cache, sim::Tick ttl);

  sim::Tick ttl() const noexcept { return ttl_; }

  /// Age in ticks of the cached copy at `now`; nullopt if not cached.
  std::optional<sim::Tick> age(object::ObjectId id, sim::Tick now) const;

  /// True when cached and within the TTL.
  bool fresh(object::ObjectId id, sim::Tick now) const;

  /// Synthetic recency score from age alone (see file comment); 0 when
  /// the object is not cached.
  double recency(object::ObjectId id, sim::Tick now) const;

 private:
  const Cache* cache_;
  sim::Tick ttl_;
};

}  // namespace mobi::cache
