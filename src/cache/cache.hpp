// The base-station cache.
//
// Tracks, per object: whether a copy is cached, the cached version, a
// recency score in (0, 1] (1.0 = as fresh as the master, decayed once per
// missed server update), and bookkeeping counters. This is the paper's
// unbounded cache ("we assume that the base station can cache a copy of
// every object that is requested"); the bounded variant with replacement
// lives in replacement.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/decay.hpp"
#include "object/object.hpp"
#include "server/remote_server.hpp"
#include "sim/tick.hpp"

namespace mobi::obs {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace mobi::obs

namespace mobi::cache {

struct Entry {
  server::Version version = 0;
  double recency = 1.0;
  sim::Tick fetched_at = 0;
  std::uint32_t hits = 0;
  std::uint32_t refreshes = 0;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;   // reads of objects not present at all
  std::uint64_t refreshes = 0;
  std::uint64_t decays = 0;
};

class Cache {
 public:
  /// `decay` is shared so many caches can use one model; must be non-null.
  Cache(std::size_t object_count, std::shared_ptr<const DecayModel> decay);

  std::size_t object_count() const noexcept { return entries_.size(); }
  bool contains(object::ObjectId id) const;

  /// Installs a copy: version from the fetch, recency reset to `recency`
  /// (1.0 for a copy straight from the master; lower when the installed
  /// copy is itself a relay of a stale cache entry).
  void refresh(object::ObjectId id, const server::FetchResult& fetch,
               sim::Tick now, double recency = 1.0);

  /// Notification that the master of `id` changed; decays the cached
  /// copy's recency score (no-op if not cached).
  void on_server_update(object::ObjectId id);

  /// Recency score of the cached copy; nullopt if not cached.
  std::optional<double> recency(object::ObjectId id) const;
  /// Recency treating "not cached" as 0 (useful for profit computations).
  double recency_or_zero(object::ObjectId id) const;

  /// Cached version; nullopt if not cached.
  std::optional<server::Version> version(object::ObjectId id) const;

  /// True when the cached copy is older than `server_version` (or absent).
  bool is_stale(object::ObjectId id, server::Version server_version) const;

  /// Records a read served from the cache (hit/miss accounting only).
  void record_read(object::ObjectId id);

  /// Drops the cached copy of `id` (no-op when absent). Returns whether a
  /// copy was present. Used by bounded caches for replacement.
  bool evict(object::ObjectId id);

  const Entry& entry(object::ObjectId id) const;
  const CacheStats& stats() const noexcept { return stats_; }
  const DecayModel& decay_model() const noexcept { return *decay_; }

  /// Number of objects currently cached.
  std::size_t resident() const noexcept { return resident_; }

  /// Registers hit/miss/refresh/decay/eviction counters and an occupancy
  /// gauge under `prefix` (e.g. `<prefix>.hits`) in `registry` and keeps
  /// them updated from here on; nullptr detaches. The detached path costs
  /// one branch per event.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "cache");

 private:
  void check(object::ObjectId id) const;

  struct Instruments {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* refreshes = nullptr;
    obs::Counter* decays = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Gauge* occupancy = nullptr;
  };

  std::vector<std::optional<Entry>> entries_;
  std::shared_ptr<const DecayModel> decay_;
  CacheStats stats_;
  std::size_t resident_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  Instruments inst_;
};

}  // namespace mobi::cache
