#include "cache/invalidation.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobi::cache {

InvalidationLog::InvalidationLog(std::size_t object_count)
    : object_count_(object_count), updates_(object_count) {}

void InvalidationLog::record_update(object::ObjectId id, sim::Tick tick) {
  if (id >= object_count_) throw std::out_of_range("InvalidationLog: bad id");
  auto& history = updates_[id];
  if (!history.empty() && tick < history.back()) {
    throw std::logic_error("InvalidationLog: updates must be time-ordered");
  }
  history.push_back(tick);
  ++total_;
}

InvalidationReport InvalidationLog::make_report(sim::Tick from,
                                                sim::Tick to) const {
  InvalidationReport report;
  make_report_into(from, to, report);
  return report;
}

void InvalidationLog::make_report_into(sim::Tick from, sim::Tick to,
                                       InvalidationReport& out) const {
  if (from > to) throw std::invalid_argument("InvalidationLog: from > to");
  out.window_start = from;
  out.window_end = to;
  out.items.clear();
  for (object::ObjectId id = 0; id < object_count_; ++id) {
    const auto& history = updates_[id];
    const auto lo = std::lower_bound(history.begin(), history.end(), from);
    const auto hi = std::lower_bound(history.begin(), history.end(), to);
    const auto count = std::uint32_t(hi - lo);
    if (count > 0) {
      out.items.push_back(InvalidationReport::Item{id, count});
    }
  }
}

void InvalidationLog::prune(sim::Tick before) {
  for (auto& history : updates_) {
    const auto cut = std::lower_bound(history.begin(), history.end(), before);
    history.erase(history.begin(), cut);
  }
}

InvalidationSink make_sink(Cache& cache) {
  InvalidationSink sink;
  sink.object_count = [&cache] { return cache.object_count(); };
  sink.contains = [&cache](object::ObjectId id) { return cache.contains(id); };
  sink.decay = [&cache](object::ObjectId id) { cache.on_server_update(id); };
  sink.drop = [&cache](object::ObjectId id) { cache.evict(id); };
  return sink;
}

InvalidationSink make_sink(BoundedCache& cache) {
  InvalidationSink sink;
  sink.object_count = [&cache] { return cache.inner().object_count(); };
  sink.contains = [&cache](object::ObjectId id) { return cache.contains(id); };
  sink.decay = [&cache](object::ObjectId id) { cache.on_server_update(id); };
  sink.drop = [&cache](object::ObjectId id) { cache.evict(id); };
  return sink;
}

InvalidationListener::InvalidationListener(Cache& cache)
    : InvalidationListener(make_sink(cache)) {}

InvalidationListener::InvalidationListener(BoundedCache& cache)
    : InvalidationListener(make_sink(cache)) {}

InvalidationListener::InvalidationListener(InvalidationSink sink)
    : sink_(std::move(sink)) {
  if (!sink_.object_count || !sink_.contains || !sink_.decay || !sink_.drop) {
    throw std::invalid_argument("InvalidationListener: incomplete sink");
  }
}

int InvalidationListener::apply(const InvalidationReport& report) {
  if (report.window_end < report.window_start) {
    throw std::invalid_argument("InvalidationListener: bad report window");
  }
  // Sleeper rule: a gap between the last report heard and this one means
  // we may have missed invalidations — nothing cached can be trusted.
  if (heard_any_ && report.window_start > last_end_) {
    const std::size_t n = sink_.object_count();
    for (object::ObjectId id = 0; id < n; ++id) sink_.drop(id);
    ++drops_;
    last_end_ = report.window_end;
    ++applied_;
    // The report's own contents are irrelevant: the cache is empty now.
    return -1;
  }
  int decayed = 0;
  for (const auto& item : report.items) {
    for (std::uint32_t k = 0; k < item.updates; ++k) {
      if (sink_.contains(item.object)) {
        sink_.decay(item.object);
        ++decayed;
      }
    }
  }
  heard_any_ = true;
  last_end_ = std::max(last_end_, report.window_end);
  ++applied_;
  return decayed;
}

}  // namespace mobi::cache
