// Recency-score decay models.
//
// A cached copy's recency score starts at 1.0 when freshly fetched and
// decays every time the master copy changes at the remote server without
// the cache being refreshed. The paper's model (§3.2): each missed update
// applies x' = C / (1/x + 1); with the default C = 1 this is the harmonic
// ramp 1, 1/2, 1/3, ... An exponential alternative is provided for
// ablation.
#pragma once

#include <memory>
#include <string>

namespace mobi::cache {

class DecayModel {
 public:
  virtual ~DecayModel() = default;
  /// Score after one more missed server update. Must map (0, 1] into
  /// (0, 1] and never increase the score.
  virtual double decayed(double score) const = 0;
  virtual std::string name() const = 0;

  /// Score after `misses` consecutive missed updates starting from
  /// `score`; the default iterates decayed().
  virtual double after_misses(double score, unsigned misses) const;
};

/// The paper's decay: x' = C / (1/x + 1) = C*x / (1 + x), with 0 < C <= 1.
class HarmonicDecay final : public DecayModel {
 public:
  explicit HarmonicDecay(double c = 1.0);
  double decayed(double score) const override;
  double after_misses(double score, unsigned misses) const override;
  std::string name() const override;
  double c() const noexcept { return c_; }

 private:
  double c_;
};

/// x' = factor * x with 0 < factor < 1.
class ExponentialDecay final : public DecayModel {
 public:
  explicit ExponentialDecay(double factor = 0.5);
  double decayed(double score) const override;
  double after_misses(double score, unsigned misses) const override;
  std::string name() const override;
  double factor() const noexcept { return factor_; }

 private:
  double factor_;
};

std::unique_ptr<DecayModel> make_harmonic_decay(double c = 1.0);
std::unique_ptr<DecayModel> make_exponential_decay(double factor = 0.5);

}  // namespace mobi::cache
