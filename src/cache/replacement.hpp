// Bounded cache with pluggable replacement — the paper's §6 future-work
// extension ("developing caching policies when cache space at the base
// station is limited ... cache replacement policies based on client
// requests and knowledge of server updates").
//
// Victim selection is expressed as an eviction priority: the resident
// entry with the highest priority is evicted first. Built-in policies:
//   * LRU             — least-recently-used first;
//   * LFU             — least-frequently-used first;
//   * SizeAware       — largest object first (frees space fastest);
//   * RecencyProfit   — lowest retention value first, where retention
//                       value = popularity * recency / size: keep small,
//                       popular, fresh objects (uses "client requests and
//                       knowledge of server updates" exactly as §6 asks).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "object/object.hpp"

namespace mobi::cache {

/// Per-entry metadata visible to replacement policies.
struct Residency {
  object::ObjectId id = 0;
  object::Units size = 0;
  double recency = 1.0;
  sim::Tick last_access = 0;
  std::uint64_t access_count = 0;
};

/// Returns the eviction priority of an entry (higher = evict sooner).
using EvictionPriority = std::function<double(const Residency&, sim::Tick now)>;

struct ReplacementPolicy {
  std::string name;
  EvictionPriority priority;
};

ReplacementPolicy lru_policy();
ReplacementPolicy lfu_policy();
ReplacementPolicy size_aware_policy();
ReplacementPolicy recency_profit_policy();

/// A capacity-limited cache front. Tracks residency and sizes; the actual
/// recency/version state lives in the wrapped Cache.
class BoundedCache {
 public:
  BoundedCache(const object::Catalog& catalog,
               std::shared_ptr<const DecayModel> decay,
               object::Units capacity, ReplacementPolicy policy);

  object::Units capacity() const noexcept { return capacity_; }
  object::Units used() const noexcept { return used_; }
  const std::string& policy_name() const noexcept { return policy_.name; }
  std::uint64_t evictions() const noexcept { return evictions_; }

  bool contains(object::ObjectId id) const { return cache_.contains(id); }
  std::optional<double> recency(object::ObjectId id) const {
    return cache_.recency(id);
  }

  /// Installs a fetched copy, evicting victims as needed. Objects larger
  /// than the whole capacity are rejected (returns false, nothing evicted).
  /// `recency` is the installed copy's score (1.0 = straight from master).
  bool admit(object::ObjectId id, const server::FetchResult& fetch,
             sim::Tick now, double recency = 1.0);

  /// Read through the cache: bumps access stats; returns the recency of
  /// the copy served, or nullopt on miss.
  std::optional<double> read(object::ObjectId id, sim::Tick now);

  void on_server_update(object::ObjectId id);

  /// Drops the entry for `id` (no-op when absent), releasing its space.
  bool evict(object::ObjectId id);

  const Cache& inner() const noexcept { return cache_; }
  std::vector<Residency> residents() const;

 private:
  void evict_until_fits(object::Units need, sim::Tick now);

  const object::Catalog* catalog_;
  Cache cache_;
  object::Units capacity_;
  object::Units used_ = 0;
  ReplacementPolicy policy_;
  std::vector<std::optional<Residency>> residency_;
  std::uint64_t evictions_ = 0;
};

}  // namespace mobi::cache
