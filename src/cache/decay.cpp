#include "cache/decay.hpp"

#include <cmath>
#include <stdexcept>

namespace mobi::cache {

namespace {
void check_score(double score) {
  if (!(score > 0.0) || score > 1.0) {
    throw std::invalid_argument("DecayModel: score must be in (0, 1]");
  }
}
}  // namespace

double DecayModel::after_misses(double score, unsigned misses) const {
  check_score(score);
  for (unsigned i = 0; i < misses; ++i) score = decayed(score);
  return score;
}

HarmonicDecay::HarmonicDecay(double c) : c_(c) {
  if (!(c > 0.0) || c > 1.0) {
    throw std::invalid_argument("HarmonicDecay: C must be in (0, 1]");
  }
}

double HarmonicDecay::decayed(double score) const {
  check_score(score);
  return c_ / (1.0 / score + 1.0);  // == c*x / (1 + x)
}

double HarmonicDecay::after_misses(double score, unsigned misses) const {
  check_score(score);
  if (c_ == 1.0) {
    // Closed form for C = 1: x_k = x / (1 + k*x).
    return score / (1.0 + double(misses) * score);
  }
  return DecayModel::after_misses(score, misses);
}

std::string HarmonicDecay::name() const {
  return "harmonic(C=" + std::to_string(c_) + ")";
}

ExponentialDecay::ExponentialDecay(double factor) : factor_(factor) {
  if (!(factor > 0.0) || factor >= 1.0) {
    throw std::invalid_argument("ExponentialDecay: factor must be in (0, 1)");
  }
}

double ExponentialDecay::decayed(double score) const {
  check_score(score);
  return factor_ * score;
}

double ExponentialDecay::after_misses(double score, unsigned misses) const {
  check_score(score);
  return score * std::pow(factor_, double(misses));
}

std::string ExponentialDecay::name() const {
  return "exponential(f=" + std::to_string(factor_) + ")";
}

std::unique_ptr<DecayModel> make_harmonic_decay(double c) {
  return std::make_unique<HarmonicDecay>(c);
}

std::unique_ptr<DecayModel> make_exponential_decay(double factor) {
  return std::make_unique<ExponentialDecay>(factor);
}

}  // namespace mobi::cache
