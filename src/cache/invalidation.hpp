// Invalidation reports (related work, paper §5 [8]: Barbara & Imielinski,
// "Sleepers and Workaholics").
//
// In the paper's base model the base station learns of every server
// update instantly. Realistically, servers broadcast periodic
// *invalidation reports* listing the objects updated in a recent window;
// a cache that has been listening continuously applies each report to
// decay/invalidate affected entries, while a cache that slept through
// more than the report's window can no longer trust anything it holds.
// This module implements report generation on the server side, report
// application on the cache side, and the sleeper rule. The listener works
// against any cache-like target through InvalidationSink (adapters for
// Cache and BoundedCache are provided).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cache/cache.hpp"
#include "cache/replacement.hpp"
#include "object/object.hpp"
#include "sim/tick.hpp"

namespace mobi::cache {

struct InvalidationReport {
  sim::Tick window_start = 0;  // report covers updates in [start, end)
  sim::Tick window_end = 0;
  /// Objects updated during the window with their update multiplicity
  /// (an object updated k times in the window appears once with count k).
  struct Item {
    object::ObjectId object = 0;
    std::uint32_t updates = 0;
  };
  std::vector<Item> items;
};

/// Server-side: records updates as they happen and cuts periodic reports.
class InvalidationLog {
 public:
  explicit InvalidationLog(std::size_t object_count);

  void record_update(object::ObjectId id, sim::Tick tick);

  /// Builds the report covering [from, to); items appear in id order.
  InvalidationReport make_report(sim::Tick from, sim::Tick to) const;

  /// make_report into a caller-owned report (cleared first). Reusing one
  /// scratch report per reporting site makes the periodic-report tick
  /// allocation-free once `out.items` reaches its high-water capacity —
  /// the mobility fleet's steady state depends on this.
  void make_report_into(sim::Tick from, sim::Tick to,
                        InvalidationReport& out) const;

  /// Drops records older than `before` (bounded memory for long runs).
  void prune(sim::Tick before);

  std::size_t recorded_updates() const noexcept { return total_; }

 private:
  std::size_t object_count_;
  // Per-object sorted update ticks; simulations are append-only in time.
  std::vector<std::vector<sim::Tick>> updates_;
  std::size_t total_ = 0;
};

/// What a listener needs from the cache it maintains.
struct InvalidationSink {
  std::function<std::size_t()> object_count;
  std::function<bool(object::ObjectId)> contains;
  std::function<void(object::ObjectId)> decay;  // one missed update
  std::function<void(object::ObjectId)> drop;   // evict the entry
};

InvalidationSink make_sink(Cache& cache);
InvalidationSink make_sink(BoundedCache& cache);

/// Cache-side listener. Tracks the last report heard; applies decay for
/// each reported update. If a gap is detected (the new report's window
/// does not start where the previous ended), the listener must assume it
/// missed updates and — per the sleeper rule — drops every cached entry.
class InvalidationListener {
 public:
  explicit InvalidationListener(Cache& cache);
  explicit InvalidationListener(BoundedCache& cache);
  explicit InvalidationListener(InvalidationSink sink);

  /// Applies a report. Returns the number of cache entries decayed, or
  /// -1 if the sleeper rule fired and the cache was dropped.
  int apply(const InvalidationReport& report);

  sim::Tick last_heard_end() const noexcept { return last_end_; }
  std::uint64_t reports_applied() const noexcept { return applied_; }
  std::uint64_t cache_drops() const noexcept { return drops_; }

 private:
  InvalidationSink sink_;
  sim::Tick last_end_ = 0;
  bool heard_any_ = false;
  std::uint64_t applied_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace mobi::cache
