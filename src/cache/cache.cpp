#include "cache/cache.hpp"

#include <stdexcept>

namespace mobi::cache {

Cache::Cache(std::size_t object_count,
             std::shared_ptr<const DecayModel> decay)
    : entries_(object_count), decay_(std::move(decay)) {
  if (!decay_) throw std::invalid_argument("Cache: null decay model");
}

void Cache::check(object::ObjectId id) const {
  if (id >= entries_.size()) throw std::out_of_range("Cache: bad object id");
}

bool Cache::contains(object::ObjectId id) const {
  check(id);
  return entries_[id].has_value();
}

void Cache::refresh(object::ObjectId id, const server::FetchResult& fetch,
                    sim::Tick now, double recency) {
  check(id);
  if (!(recency > 0.0) || recency > 1.0) {
    throw std::invalid_argument("Cache::refresh: recency must be in (0, 1]");
  }
  auto& slot = entries_[id];
  if (!slot) {
    slot.emplace();
    ++resident_;
  }
  slot->version = fetch.version;
  slot->recency = recency;
  slot->fetched_at = now;
  ++slot->refreshes;
  ++stats_.refreshes;
}

void Cache::on_server_update(object::ObjectId id) {
  check(id);
  auto& slot = entries_[id];
  if (!slot) return;
  slot->recency = decay_->decayed(slot->recency);
  ++stats_.decays;
}

std::optional<double> Cache::recency(object::ObjectId id) const {
  check(id);
  const auto& slot = entries_[id];
  if (!slot) return std::nullopt;
  return slot->recency;
}

double Cache::recency_or_zero(object::ObjectId id) const {
  return recency(id).value_or(0.0);
}

std::optional<server::Version> Cache::version(object::ObjectId id) const {
  check(id);
  const auto& slot = entries_[id];
  if (!slot) return std::nullopt;
  return slot->version;
}

bool Cache::is_stale(object::ObjectId id,
                     server::Version server_version) const {
  check(id);
  const auto& slot = entries_[id];
  return !slot || slot->version < server_version;
}

void Cache::record_read(object::ObjectId id) {
  check(id);
  auto& slot = entries_[id];
  if (slot) {
    ++slot->hits;
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
}

bool Cache::evict(object::ObjectId id) {
  check(id);
  auto& slot = entries_[id];
  if (!slot) return false;
  slot.reset();
  --resident_;
  return true;
}

const Entry& Cache::entry(object::ObjectId id) const {
  check(id);
  const auto& slot = entries_[id];
  if (!slot) throw std::logic_error("Cache::entry: object not cached");
  return *slot;
}

}  // namespace mobi::cache
