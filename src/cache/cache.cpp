#include "cache/cache.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace mobi::cache {

Cache::Cache(std::size_t object_count,
             std::shared_ptr<const DecayModel> decay)
    : entries_(object_count), decay_(std::move(decay)) {
  if (!decay_) throw std::invalid_argument("Cache: null decay model");
}

void Cache::check(object::ObjectId id) const {
  if (id >= entries_.size()) throw std::out_of_range("Cache: bad object id");
}

bool Cache::contains(object::ObjectId id) const {
  check(id);
  return entries_[id].has_value();
}

void Cache::refresh(object::ObjectId id, const server::FetchResult& fetch,
                    sim::Tick now, double recency) {
  check(id);
  if (!(recency > 0.0) || recency > 1.0) {
    throw std::invalid_argument("Cache::refresh: recency must be in (0, 1]");
  }
  auto& slot = entries_[id];
  if (!slot) {
    slot.emplace();
    ++resident_;
  }
  slot->version = fetch.version;
  slot->recency = recency;
  slot->fetched_at = now;
  ++slot->refreshes;
  ++stats_.refreshes;
  if (metrics_) {
    inst_.refreshes->add();
    inst_.occupancy->set(double(resident_));
  }
}

void Cache::on_server_update(object::ObjectId id) {
  check(id);
  auto& slot = entries_[id];
  if (!slot) return;
  slot->recency = decay_->decayed(slot->recency);
  ++stats_.decays;
  if (metrics_) inst_.decays->add();
}

std::optional<double> Cache::recency(object::ObjectId id) const {
  check(id);
  const auto& slot = entries_[id];
  if (!slot) return std::nullopt;
  return slot->recency;
}

double Cache::recency_or_zero(object::ObjectId id) const {
  return recency(id).value_or(0.0);
}

std::optional<server::Version> Cache::version(object::ObjectId id) const {
  check(id);
  const auto& slot = entries_[id];
  if (!slot) return std::nullopt;
  return slot->version;
}

bool Cache::is_stale(object::ObjectId id,
                     server::Version server_version) const {
  check(id);
  const auto& slot = entries_[id];
  return !slot || slot->version < server_version;
}

void Cache::record_read(object::ObjectId id) {
  check(id);
  auto& slot = entries_[id];
  if (slot) {
    ++slot->hits;
    ++stats_.hits;
    if (metrics_) inst_.hits->add();
  } else {
    ++stats_.misses;
    if (metrics_) inst_.misses->add();
  }
}

bool Cache::evict(object::ObjectId id) {
  check(id);
  auto& slot = entries_[id];
  if (!slot) return false;
  slot.reset();
  --resident_;
  if (metrics_) {
    inst_.evictions->add();
    inst_.occupancy->set(double(resident_));
  }
  return true;
}

void Cache::set_metrics(obs::MetricsRegistry* registry,
                        const std::string& prefix) {
  metrics_ = registry;
  inst_ = {};
  if (!registry) return;
  inst_.hits = &registry->register_counter(prefix + ".hits");
  inst_.misses = &registry->register_counter(prefix + ".misses");
  inst_.refreshes = &registry->register_counter(prefix + ".refreshes");
  inst_.decays = &registry->register_counter(prefix + ".decays");
  inst_.evictions = &registry->register_counter(prefix + ".evictions");
  inst_.occupancy = &registry->register_gauge(prefix + ".occupancy");
  inst_.occupancy->set(double(resident_));
}

const Entry& Cache::entry(object::ObjectId id) const {
  check(id);
  const auto& slot = entries_[id];
  if (!slot) throw std::logic_error("Cache::entry: object not cached");
  return *slot;
}

}  // namespace mobi::cache
