#include "cache/ttl.hpp"

#include <stdexcept>

namespace mobi::cache {

TtlView::TtlView(const Cache& cache, sim::Tick ttl)
    : cache_(&cache), ttl_(ttl) {
  if (ttl <= 0) throw std::invalid_argument("TtlView: ttl must be > 0");
}

std::optional<sim::Tick> TtlView::age(object::ObjectId id,
                                      sim::Tick now) const {
  if (!cache_->contains(id)) return std::nullopt;
  const sim::Tick fetched = cache_->entry(id).fetched_at;
  if (now < fetched) {
    throw std::invalid_argument("TtlView::age: now precedes the fetch");
  }
  return now - fetched;
}

bool TtlView::fresh(object::ObjectId id, sim::Tick now) const {
  const auto copy_age = age(id, now);
  return copy_age.has_value() && *copy_age <= ttl_;
}

double TtlView::recency(object::ObjectId id, sim::Tick now) const {
  const auto copy_age = age(id, now);
  if (!copy_age) return 0.0;
  if (*copy_age <= ttl_) return 1.0;
  // Expired: harmonic ramp per whole TTL period beyond expiry, mirroring
  // the paper's decay with "one update per TTL" as the staleness unit.
  const auto expired_periods = 1 + (*copy_age - ttl_ - 1) / ttl_;
  return 1.0 / double(1 + expired_periods);
}

}  // namespace mobi::cache
