#include "cache/replacement.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mobi::cache {

ReplacementPolicy lru_policy() {
  return ReplacementPolicy{
      "lru", [](const Residency& r, sim::Tick now) {
        return double(now - r.last_access);  // older access = higher priority
      }};
}

ReplacementPolicy lfu_policy() {
  return ReplacementPolicy{"lfu", [](const Residency& r, sim::Tick) {
                             return -double(r.access_count);
                           }};
}

ReplacementPolicy size_aware_policy() {
  return ReplacementPolicy{
      "size-aware",
      [](const Residency& r, sim::Tick) { return double(r.size); }};
}

ReplacementPolicy recency_profit_policy() {
  return ReplacementPolicy{
      "recency-profit", [](const Residency& r, sim::Tick) {
        // Retention value: popular, fresh, small objects are worth
        // keeping; evict the lowest value = highest priority.
        const double popularity = double(r.access_count) + 1.0;
        const double value = popularity * r.recency / double(r.size);
        return -value;
      }};
}

BoundedCache::BoundedCache(const object::Catalog& catalog,
                           std::shared_ptr<const DecayModel> decay,
                           object::Units capacity, ReplacementPolicy policy)
    : catalog_(&catalog),
      cache_(catalog.size(), std::move(decay)),
      capacity_(capacity),
      policy_(std::move(policy)),
      residency_(catalog.size()) {
  if (capacity <= 0) {
    throw std::invalid_argument("BoundedCache: capacity must be > 0");
  }
  if (!policy_.priority) {
    throw std::invalid_argument("BoundedCache: policy has no priority fn");
  }
}

bool BoundedCache::admit(object::ObjectId id, const server::FetchResult& fetch,
                         sim::Tick now, double recency) {
  const object::Units size = catalog_->object_size(id);
  if (size > capacity_) return false;
  if (cache_.contains(id)) {
    // Refresh in place: size already accounted.
    cache_.refresh(id, fetch, now, recency);
    residency_[id]->recency = recency;
    return true;
  }
  evict_until_fits(size, now);
  cache_.refresh(id, fetch, now, recency);
  residency_[id] = Residency{id, size, recency, now, 0};
  used_ += size;
  return true;
}

std::optional<double> BoundedCache::read(object::ObjectId id, sim::Tick now) {
  cache_.record_read(id);
  const auto score = cache_.recency(id);
  if (score) {
    auto& meta = residency_[id];
    meta->last_access = now;
    ++meta->access_count;
    meta->recency = *score;
  }
  return score;
}

void BoundedCache::on_server_update(object::ObjectId id) {
  cache_.on_server_update(id);
  if (auto& meta = residency_[id]) {
    meta->recency = cache_.recency(id).value_or(meta->recency);
  }
}

bool BoundedCache::evict(object::ObjectId id) {
  if (!cache_.evict(id)) return false;
  used_ -= residency_[id]->size;
  residency_[id].reset();
  return true;
}

std::vector<Residency> BoundedCache::residents() const {
  std::vector<Residency> result;
  result.reserve(cache_.resident());
  for (const auto& meta : residency_) {
    if (meta) result.push_back(*meta);
  }
  return result;
}

void BoundedCache::evict_until_fits(object::Units need, sim::Tick now) {
  while (capacity_ - used_ < need) {
    // Select the resident entry with the highest eviction priority.
    double best_priority = -std::numeric_limits<double>::infinity();
    std::optional<object::ObjectId> victim;
    for (const auto& meta : residency_) {
      if (!meta) continue;
      const double priority = policy_.priority(*meta, now);
      if (priority > best_priority) {
        best_priority = priority;
        victim = meta->id;
      }
    }
    if (!victim) {
      throw std::logic_error("BoundedCache: no victim but cache is full");
    }
    used_ -= residency_[*victim]->size;
    residency_[*victim].reset();
    cache_.evict(*victim);
    ++evictions_;
  }
}

}  // namespace mobi::cache
