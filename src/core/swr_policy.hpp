// TTL revalidation policy (stale-while-revalidate scheduling).
//
// The strategy OSS proxies ship today, and a direct descendant of the
// paper's problem: entries are trusted for a TTL after fetch, and the
// download budget goes to revalidating the TTL-expired objects that
// clients are asking for right now, most-requested first. Differences
// from the paper's knapsack policy:
//   * staleness is binary (fresh-by-TTL or not) — no scoring function,
//     no knowledge of actual server updates;
//   * a fresh-by-TTL copy is never refreshed even if the master changed
//     (the TTL lie), and an expired copy is refreshed even if unchanged.
// Included as the modern baseline the knapsack policy is measured against
// in bench/ablation_swr.
#pragma once

#include "core/policy.hpp"
#include "sim/tick.hpp"

namespace mobi::core {

class StaleWhileRevalidatePolicy final : public DownloadPolicy {
 public:
  /// `ttl`: ticks a fetched copy counts as fresh (no revalidation while
  /// fresh). Must be > 0.
  explicit StaleWhileRevalidatePolicy(sim::Tick ttl);

  void select_into(const workload::RequestBatch& batch,
                   const PolicyContext& ctx,
                   std::vector<object::ObjectId>& out) override;
  std::string name() const override;

  sim::Tick ttl() const noexcept { return ttl_; }

 private:
  sim::Tick ttl_;
  std::vector<object::ObjectId> stale_ids_;
  // (count, id) runs, sorted most-requested first (id breaks ties) —
  // replaces the reference map + stable_sort.
  std::vector<std::pair<std::uint32_t, object::ObjectId>> counts_;
};

}  // namespace mobi::core
