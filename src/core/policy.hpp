// Download policies: given the tick's requests and the cache/server state,
// decide which objects the base station fetches remotely. Everything not
// selected is served from the (possibly stale) cache.
//
//  * OnDemandKnapsackPolicy    — the paper's contribution (§2): profit-per-
//    size knapsack over the requested objects, exact DP by default.
//  * OnDemandLowestRecency     — §3.2's simpler on-demand rule: fill the
//    budget with requested objects of lowest cached recency.
//  * OnDemandStaleOnly         — §3.1: fetch every requested object whose
//    cached copy is stale; no budget.
//  * AsyncRoundRobin           — §3.2 baseline: k objects per tick in a
//    fixed circular order, independent of requests.
//  * AsyncRefreshUpdated       — §3.1 baseline: re-fetch every object each
//    time it is updated at the server.
//  * DownloadAll / CacheOnly   — bracketing baselines.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/cache.hpp"
#include "core/benefit.hpp"
#include "core/knapsack.hpp"
#include "core/residency.hpp"
#include "core/scoring.hpp"
#include "object/object.hpp"
#include "server/remote_server.hpp"
#include "sim/tick.hpp"
#include "workload/requests.hpp"

namespace mobi::obs {
class MetricsRegistry;
}  // namespace mobi::obs

namespace mobi::core {

class ParallelKnapsackEngine;

/// Read-only view of the world a policy may consult.
struct PolicyContext {
  const object::Catalog* catalog = nullptr;
  const cache::Cache* cache = nullptr;
  const server::ServerPool* servers = nullptr;
  const RecencyScorer* scorer = nullptr;
  /// Coherent peer-cache view (core/peer_source.hpp); non-null lets the
  /// knapsack price a third source tier (local / peer / origin) with the
  /// peer tier's discounted weight and relayed recency. nullptr (the
  /// default) is bit-identical to the pre-peer candidate builder.
  const PeerSource* peers = nullptr;
  /// Mobility probe (core/residency.hpp); non-null makes the knapsack
  /// builder scale each requester's benefit by the probability the client
  /// is still resident when the fetch lands. nullptr (the default) is
  /// bit-identical to the residence-blind builder.
  const ResidencyProbe* residency = nullptr;
  sim::Tick now = 0;
  /// Download budget for this tick, in data units; negative = unlimited.
  object::Units budget = -1;
};

class DownloadPolicy {
 public:
  virtual ~DownloadPolicy() = default;
  /// Objects to fetch this tick (each id at most once, any order),
  /// written into `out` (cleared first). The hot-path entry point:
  /// policies reuse internal scratch, and a caller that retains `out`
  /// across ticks allocates nothing once capacities are warm.
  virtual void select_into(const workload::RequestBatch& batch,
                           const PolicyContext& ctx,
                           std::vector<object::ObjectId>& out) = 0;
  /// Convenience wrapper returning a fresh vector.
  std::vector<object::ObjectId> select(const workload::RequestBatch& batch,
                                       const PolicyContext& ctx) {
    std::vector<object::ObjectId> out;
    select_into(batch, ctx, out);
    return out;
  }
  virtual std::string name() const = 0;

  /// Lets a policy export its own counter family under `<prefix>.*`
  /// (called by BaseStation::set_metrics with the station's prefix; the
  /// default exports nothing). nullptr detaches.
  virtual void set_metrics(obs::MetricsRegistry* /*registry*/,
                           const std::string& /*prefix*/) {}
};

/// Which solver the knapsack policy uses. kParallelBnb routes through the
/// ParallelKnapsackEngine (knapsack_parallel.hpp): bit-identical
/// selections to kExactDp, multi-threaded for large batches. The default
/// everywhere stays the serial exact DP.
enum class KnapsackSolver { kExactDp, kGreedy, kFptas, kParallelBnb };

const char* solver_name(KnapsackSolver solver) noexcept;

class OnDemandKnapsackPolicy final : public DownloadPolicy {
 public:
  /// `bnb_threads` sizes the parallel engine when solver == kParallelBnb
  /// (0 = hardware concurrency); ignored otherwise.
  explicit OnDemandKnapsackPolicy(KnapsackSolver solver = KnapsackSolver::kExactDp,
                                  double fptas_epsilon = 0.1,
                                  std::size_t bnb_threads = 0);
  ~OnDemandKnapsackPolicy() override;
  void select_into(const workload::RequestBatch& batch,
                   const PolicyContext& ctx,
                   std::vector<object::ObjectId>& out) override;
  std::string name() const override;
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix) override;

 private:
  KnapsackSolver solver_;
  double fptas_epsilon_;
  CandidateBuilder builder_;
  KnapsackWorkspace ws_;
  std::vector<KnapsackItem> items_;
  KnapsackSolution solution_;
  std::unique_ptr<ParallelKnapsackEngine> engine_;  // kParallelBnb only
};

class OnDemandLowestRecencyPolicy final : public DownloadPolicy {
 public:
  void select_into(const workload::RequestBatch& batch,
                   const PolicyContext& ctx,
                   std::vector<object::ObjectId>& out) override;
  std::string name() const override { return "on-demand-lowest-recency"; }

 private:
  // (recency, id) pairs: sorting pairs reproduces the reference
  // stable_sort-by-recency over ascending ids.
  std::vector<std::pair<double, object::ObjectId>> by_recency_;
  std::vector<object::ObjectId> ids_;
};

class OnDemandStaleOnlyPolicy final : public DownloadPolicy {
 public:
  void select_into(const workload::RequestBatch& batch,
                   const PolicyContext& ctx,
                   std::vector<object::ObjectId>& out) override;
  std::string name() const override { return "on-demand-stale-only"; }

 private:
  std::vector<object::ObjectId> ids_;
};

class AsyncRoundRobinPolicy final : public DownloadPolicy {
 public:
  void select_into(const workload::RequestBatch& batch,
                   const PolicyContext& ctx,
                   std::vector<object::ObjectId>& out) override;
  std::string name() const override { return "async-round-robin"; }

 private:
  object::ObjectId cursor_ = 0;
};

/// Re-fetches every object whose server version moved past the cached one,
/// regardless of requests. Unbounded unless the context sets a budget.
class AsyncRefreshUpdatedPolicy final : public DownloadPolicy {
 public:
  void select_into(const workload::RequestBatch& batch,
                   const PolicyContext& ctx,
                   std::vector<object::ObjectId>& out) override;
  std::string name() const override { return "async-refresh-updated"; }
};

class DownloadAllPolicy final : public DownloadPolicy {
 public:
  void select_into(const workload::RequestBatch& batch,
                   const PolicyContext& ctx,
                   std::vector<object::ObjectId>& out) override;
  std::string name() const override { return "download-all"; }
};

class CacheOnlyPolicy final : public DownloadPolicy {
 public:
  void select_into(const workload::RequestBatch& batch,
                   const PolicyContext& ctx,
                   std::vector<object::ObjectId>& out) override;
  std::string name() const override { return "cache-only"; }
};

std::unique_ptr<DownloadPolicy> make_policy(const std::string& name);

}  // namespace mobi::core
