// Fairness measures over per-client recency scores.
//
// The paper's objective is the *average* client score; averages can hide
// starvation (a policy could lift popular objects' clients to 1.0 and
// abandon the tail). These helpers quantify the distribution's shape:
// Jain's fairness index (1 = perfectly equal, 1/n = one client has it
// all), the minimum score, and low quantiles.
#pragma once

#include <span>

namespace mobi::core {

/// Jain's fairness index: (sum x)^2 / (n * sum x^2). Defined for
/// non-negative scores; returns 1.0 for an empty or all-zero set (no
/// inequality to measure).
double jain_index(std::span<const double> scores);

/// Minimum score (1.0 for an empty set — vacuously fair).
double min_score(std::span<const double> scores);

/// The q-quantile (0 <= q <= 1) of the score distribution, by sorting;
/// linear interpolation between order statistics.
double score_quantile(std::span<const double> scores, double q);

}  // namespace mobi::core
