#include "core/knapsack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace mobi::core {

namespace {

void validate_items(std::span<const KnapsackItem> items) {
  for (const KnapsackItem& item : items) {
    if (item.size <= 0) {
      throw std::invalid_argument("knapsack: item sizes must be > 0");
    }
    if (item.profit < 0.0 || !std::isfinite(item.profit)) {
      throw std::invalid_argument("knapsack: profits must be finite, >= 0");
    }
  }
}

}  // namespace

KnapsackProfile::KnapsackProfile(std::span<const KnapsackItem> items,
                                 object::Units max_capacity) {
  validate_items(items);
  if (max_capacity < 0) {
    throw std::invalid_argument("KnapsackProfile: negative capacity");
  }
  const std::size_t n = items.size();
  const auto cap = std::size_t(max_capacity);
  item_sizes_.reserve(n);
  for (const auto& item : items) item_sizes_.push_back(item.size);

  values_.assign(cap + 1, 0.0);
  row_words_ = (cap + 1 + 63) / 64;
  take_bits_.assign(n * row_words_, 0);
  // Classic row-by-row DP; strict improvement keeps solutions minimal
  // (zero-profit items are never taken). The decision matrix is a single
  // flat allocation; each item touches only its own contiguous row, and
  // the value scan walks values_ backwards at two fixed offsets — both
  // streams prefetch-friendly, no per-row pointer chasing.
  std::uint64_t* row = take_bits_.data();
  for (std::size_t i = 0; i < n; ++i, row += row_words_) {
    const auto size = std::size_t(items[i].size);
    const double profit = items[i].profit;
    if (size > cap) continue;
    for (std::size_t c = cap; c >= size; --c) {
      const double candidate = values_[c - size] + profit;
      if (candidate > values_[c]) {
        values_[c] = candidate;
        row[c >> 6] |= std::uint64_t{1} << (c & 63);
      }
      if (c == size) break;  // avoid size_t underflow
    }
  }
}

double KnapsackProfile::value_at(object::Units c) const {
  if (c < 0 || c > max_capacity()) {
    throw std::out_of_range("KnapsackProfile::value_at");
  }
  return values_[std::size_t(c)];
}

KnapsackSolution KnapsackProfile::solution_at(object::Units c) const {
  if (c < 0 || c > max_capacity()) {
    throw std::out_of_range("KnapsackProfile::solution_at");
  }
  KnapsackSolution solution;
  solution.value = values_[std::size_t(c)];
  auto remaining = std::size_t(c);
  for (std::size_t i = item_sizes_.size(); i-- > 0;) {
    if (taken(i, remaining)) {
      solution.chosen.push_back(i);
      solution.used += item_sizes_[i];
      remaining -= std::size_t(item_sizes_[i]);
    }
  }
  std::reverse(solution.chosen.begin(), solution.chosen.end());
  return solution;
}

KnapsackSolution solve_dp(std::span<const KnapsackItem> items,
                          object::Units capacity) {
  return KnapsackProfile(items, capacity).solution_at(capacity);
}

KnapsackSolution solve_greedy(std::span<const KnapsackItem> items,
                              object::Units capacity) {
  validate_items(items);
  if (capacity < 0) throw std::invalid_argument("solve_greedy: negative capacity");
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = items[a].profit / double(items[a].size);
    const double db = items[b].profit / double(items[b].size);
    if (da != db) return da > db;
    if (items[a].size != items[b].size) return items[a].size < items[b].size;
    return a < b;
  });
  KnapsackSolution greedy;
  object::Units left = capacity;
  for (std::size_t index : order) {
    if (items[index].profit <= 0.0) break;  // sorted: the rest are worthless
    if (items[index].size <= left) {
      greedy.chosen.push_back(index);
      greedy.value += items[index].profit;
      greedy.used += items[index].size;
      left -= items[index].size;
    }
  }
  // 1/2-approximation guarantee needs max(greedy, best single item).
  KnapsackSolution best_single;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].size <= capacity && items[i].profit > best_single.value) {
      best_single = KnapsackSolution{items[i].profit, items[i].size, {i}};
    }
  }
  if (best_single.value > greedy.value) return best_single;
  std::sort(greedy.chosen.begin(), greedy.chosen.end());
  return greedy;
}

KnapsackSolution solve_fptas(std::span<const KnapsackItem> items,
                             object::Units capacity, double epsilon) {
  validate_items(items);
  if (capacity < 0) throw std::invalid_argument("solve_fptas: negative capacity");
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    throw std::invalid_argument("solve_fptas: epsilon must be in (0, 1)");
  }
  const std::size_t n = items.size();
  double max_profit = 0.0;
  for (const auto& item : items) {
    if (item.size <= capacity) max_profit = std::max(max_profit, item.profit);
  }
  if (n == 0 || max_profit <= 0.0) return {};

  // Scale profits to integers: q_i = floor(p_i / K), K = eps * P / n.
  const double scale = epsilon * max_profit / double(n);
  std::vector<std::uint64_t> scaled(n);
  std::uint64_t total_scaled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = std::uint64_t(items[i].profit / scale);
    total_scaled += scaled[i];
  }
  // Guard the decision-matrix footprint (bits = n * (total_scaled + 1)).
  constexpr std::uint64_t kMaxBits = 64ULL * 1024 * 1024 * 8;
  if (std::uint64_t(n) * (total_scaled + 1) > kMaxBits) {
    throw std::invalid_argument(
        "solve_fptas: instance too large for reconstruction memory budget");
  }

  // min_weight[q] = least total size achieving scaled profit exactly q.
  const auto q_max = std::size_t(total_scaled);
  constexpr object::Units kInfeasible = std::numeric_limits<object::Units>::max();
  std::vector<object::Units> min_weight(q_max + 1, kInfeasible);
  min_weight[0] = 0;
  std::vector<std::vector<bool>> take(n, std::vector<bool>(q_max + 1, false));
  for (std::size_t i = 0; i < n; ++i) {
    const auto q_i = std::size_t(scaled[i]);
    if (q_i == 0) continue;  // adds no scaled profit; skip (keeps DP tight)
    auto& row = take[i];
    for (std::size_t q = q_max; q >= q_i; --q) {
      if (min_weight[q - q_i] == kInfeasible) {
        if (q == q_i) break;
        continue;
      }
      const object::Units weight = min_weight[q - q_i] + items[i].size;
      if (weight < min_weight[q]) {
        min_weight[q] = weight;
        row[q] = true;
      }
      if (q == q_i) break;
    }
  }
  std::size_t best_q = 0;
  for (std::size_t q = 0; q <= q_max; ++q) {
    if (min_weight[q] <= capacity) best_q = q;
  }
  // Reconstruct and report the *true* (unscaled) value of the chosen set.
  KnapsackSolution solution;
  std::size_t q = best_q;
  for (std::size_t i = n; i-- > 0;) {
    if (q == 0) break;
    if (take[i][q]) {
      solution.chosen.push_back(i);
      solution.value += items[i].profit;
      solution.used += items[i].size;
      q -= std::size_t(scaled[i]);
    }
  }
  std::reverse(solution.chosen.begin(), solution.chosen.end());
  return solution;
}

KnapsackSolution solve_brute_force(std::span<const KnapsackItem> items,
                                   object::Units capacity) {
  validate_items(items);
  if (capacity < 0) {
    throw std::invalid_argument("solve_brute_force: negative capacity");
  }
  if (items.size() > 30) {
    throw std::invalid_argument("solve_brute_force: too many items");
  }
  const std::uint32_t n = std::uint32_t(items.size());
  KnapsackSolution best;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    double value = 0.0;
    object::Units used = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) {
        value += items[i].profit;
        used += items[i].size;
      }
    }
    if (used <= capacity && value > best.value) {
      best.value = value;
      best.used = used;
      best.chosen.clear();
      for (std::uint32_t i = 0; i < n; ++i) {
        if (mask & (1ULL << i)) best.chosen.push_back(i);
      }
    }
  }
  return best;
}

namespace {

/// Depth-first branch and bound over items pre-sorted by profit density.
class BranchAndBound {
 public:
  BranchAndBound(std::span<const KnapsackItem> items, object::Units capacity,
                 std::uint64_t node_limit)
      : items_(items), capacity_(capacity), node_limit_(node_limit) {
    order_.resize(items.size());
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
      const double da = items[a].profit / double(items[a].size);
      const double db = items[b].profit / double(items[b].size);
      if (da != db) return da > db;
      return a < b;
    });
    taken_.assign(items.size(), false);
  }

  KnapsackSolution run() {
    descend(0, 0, 0.0);
    std::sort(best_.chosen.begin(), best_.chosen.end());
    return best_;
  }

 private:
  /// LP relaxation: fill greedily from `depth`, fractionally at the end.
  double fractional_bound(std::size_t depth, object::Units used,
                          double value) const {
    object::Units left = capacity_ - used;
    for (std::size_t i = depth; i < order_.size() && left > 0; ++i) {
      const KnapsackItem& item = items_[order_[i]];
      if (item.profit <= 0.0) break;  // density-sorted: rest are worthless
      if (item.size <= left) {
        value += item.profit;
        left -= item.size;
      } else {
        value += item.profit * double(left) / double(item.size);
        left = 0;
      }
    }
    return value;
  }

  void descend(std::size_t depth, object::Units used, double value) {
    if (++nodes_ > node_limit_) {
      throw std::runtime_error("solve_branch_and_bound: node limit exceeded");
    }
    if (value > best_.value) {
      best_.value = value;
      best_.used = used;
      best_.chosen.clear();
      for (std::size_t i = 0; i < depth; ++i) {
        if (taken_[i]) best_.chosen.push_back(order_[i]);
      }
    }
    if (depth == order_.size()) return;
    // A strict comparison would also prune ties with the incumbent, which
    // is correct but makes zero-profit instances degenerate; epsilon keeps
    // the pruning strict on real profit.
    if (fractional_bound(depth, used, value) <= best_.value + 1e-12) return;

    const KnapsackItem& item = items_[order_[depth]];
    if (item.size <= capacity_ - used && item.profit > 0.0) {
      taken_[depth] = true;
      descend(depth + 1, used + item.size, value + item.profit);
      taken_[depth] = false;
    }
    descend(depth + 1, used, value);
  }

  std::span<const KnapsackItem> items_;
  object::Units capacity_;
  std::uint64_t node_limit_;
  std::uint64_t nodes_ = 0;
  std::vector<std::size_t> order_;
  std::vector<bool> taken_;
  KnapsackSolution best_;
};

}  // namespace

KnapsackSolution solve_branch_and_bound(std::span<const KnapsackItem> items,
                                        object::Units capacity,
                                        std::uint64_t node_limit) {
  validate_items(items);
  if (capacity < 0) {
    throw std::invalid_argument("solve_branch_and_bound: negative capacity");
  }
  return BranchAndBound(items, capacity, node_limit).run();
}

}  // namespace mobi::core
