#include "core/knapsack.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace mobi::core {

namespace detail {

void validate_items(std::span<const KnapsackItem> items) {
  for (const KnapsackItem& item : items) {
    if (item.size <= 0) {
      throw std::invalid_argument("knapsack: item sizes must be > 0");
    }
    if (item.profit < 0.0 || !std::isfinite(item.profit)) {
      throw std::invalid_argument("knapsack: profits must be finite, >= 0");
    }
  }
}

/// Density order shared by the greedy solver, the DP shortcut and the
/// parallel branch-and-bound: profit density descending, then size
/// ascending, then index ascending. The comparator must stay identical in
/// all places — the shortcut's optimality argument assumes the greedy's
/// exact order.
void density_order(std::span<const KnapsackItem> items,
                   std::vector<std::size_t>& order) {
  order.resize(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = items[a].profit / double(items[a].size);
    const double db = items[b].profit / double(items[b].size);
    if (da != db) return da > db;
    if (items[a].size != items[b].size) return items[a].size < items[b].size;
    return a < b;
  });
}

/// Shortcut 1: when every positive-profit item fits within the capacity
/// together, the optimum is forced — any optimal set contains all of them
/// (dropping one loses its profit) and nothing else (the strict-improvement
/// DP never takes zero-profit items). The DP reconstructs exactly this set
/// and accumulates its value item-by-item in ascending index order, so the
/// ascending fold below reproduces the DP's double bit-for-bit.
bool take_all_shortcut(std::span<const KnapsackItem> items,
                       object::Units capacity, KnapsackSolution& out) {
  object::Units need = 0;
  for (const KnapsackItem& item : items) {
    if (item.profit > 0.0) {
      need += item.size;
      if (need > capacity) return false;
    }
  }
  out.reset();
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].profit > 0.0) {
      out.chosen.push_back(i);
      out.value += items[i].profit;
      out.used += items[i].size;
    }
  }
  return true;
}

/// Shortcut 2: when the density-greedy prefix fills the capacity *exactly*
/// — no skipped item, no leftover — and there is a strict density gap to
/// the first positive-profit item left out, the greedy value equals the
/// fractional (LP) upper bound and the integral optimum is unique: every
/// item outside the prefix has strictly lower density, so any other
/// feasible set is strictly worse. The DP must therefore reconstruct this
/// same set; value is folded in ascending index order to match its double.
bool greedy_prefix_shortcut(std::span<const KnapsackItem> items,
                            object::Units capacity,
                            std::vector<std::size_t>& order,
                            KnapsackSolution& out) {
  density_order(items, order);
  object::Units left = capacity;
  std::size_t k = 0;
  for (; k < order.size(); ++k) {
    const KnapsackItem& item = items[order[k]];
    if (item.profit <= 0.0) return false;  // positives ran out before fill
    if (item.size > left) break;           // a skip: prefix ends short
    left -= item.size;
    if (left == 0) {
      ++k;
      break;
    }
  }
  if (left != 0) return false;  // not an exact fill
  if (k == 0) {                 // capacity 0: the empty set is the optimum
    out.reset();
    return true;
  }
  if (k < order.size()) {
    const KnapsackItem& last = items[order[k - 1]];
    const KnapsackItem& next = items[order[k]];
    if (next.profit > 0.0) {
      const double dl = last.profit / double(last.size);
      const double dn = next.profit / double(next.size);
      if (!(dl > dn)) return false;  // tie across the cut: not provably unique
    }
  }
  out.reset();
  out.chosen.assign(order.begin(), order.begin() + std::ptrdiff_t(k));
  std::sort(out.chosen.begin(), out.chosen.end());
  for (std::size_t index : out.chosen) {
    out.value += items[index].profit;
    out.used += items[index].size;
  }
  return true;
}

// ---------------------------------------------------------------------------
// DP kernels. All three produce bit-identical value curves and decision
// matrices; the word-parallel pair trades the scalar loop's early-exit
// branch for straight-line lane math that vectorizes.
// ---------------------------------------------------------------------------

#if defined(__x86_64__) && defined(__GNUC__)
#define MOBI_KNAPSACK_AVX2_DISPATCH 1
#else
#define MOBI_KNAPSACK_AVX2_DISPATCH 0
#endif

namespace {

/// The classic in-place descending-capacity row update. `values` must be
/// zero-filled, `bits` zero-filled with `row_words` words per item row.
void dp_kernel_scalar(std::span<const KnapsackItem> items, std::size_t cap,
                      double* values, std::uint64_t* bits,
                      std::size_t row_words) {
  std::uint64_t* row = bits;
  for (std::size_t i = 0; i < items.size(); ++i, row += row_words) {
    const auto size = std::size_t(items[i].size);
    const double profit = items[i].profit;
    if (size > cap) continue;
    for (std::size_t c = cap; c >= size; --c) {
      const double candidate = values[c - size] + profit;
      if (candidate > values[c]) {
        values[c] = candidate;
        row[c >> 6] |= std::uint64_t{1} << (c & 63);
      }
      if (c == size) break;  // avoid size_t underflow
    }
  }
}

/// Two-row word-parallel kernel body. Instead of updating one row in
/// place right-to-left (a loop-carried dependence plus an unpredictable
/// store branch), each item reads `prev` and writes `curr`:
///
///   curr[c] = max(prev[c], prev[c - size] + profit)      (c >= size)
///   curr[c] = prev[c]                                    (c <  size)
///
/// which is the same recurrence, so values are bit-identical — and the
/// max form is branch-free, letting the compiler turn the value pass into
/// packed-double maxpd lanes. The decision bit is `curr[c] > prev[c]`
/// (taking strictly improved), packed 64 columns per word so each output
/// word of the flat bit-matrix is produced by one lane-comparison sweep.
/// `curr > prev` equals the scalar kernel's `candidate > values[c]` test:
/// curr is either prev (bit 0) or a strictly greater candidate (bit 1).
///
/// Buffer parity: the caller pre-swaps so that after one swap per
/// *effective* item (size <= cap; skipped rows advance `row` but not the
/// buffers) the final curve lands in ws.values_ without a copy.
///
/// Marked always_inline so the AVX2-targeted wrapper below absorbs the
/// body and recompiles it with 256-bit lanes.
__attribute__((always_inline)) inline void dp_kernel_two_row_body(
    std::span<const KnapsackItem> items, std::size_t cap, double* a, double* b,
    std::uint64_t* bits, std::size_t row_words) {
  std::uint64_t* row = bits;
  for (std::size_t i = 0; i < items.size(); ++i, row += row_words) {
    const auto size = std::size_t(items[i].size);
    const double profit = items[i].profit;
    if (size > cap) continue;
    const double* __restrict prev = a;
    double* __restrict curr = b;
    for (std::size_t c = 0; c < size; ++c) curr[c] = prev[c];
    for (std::size_t c = size; c <= cap; ++c) {
      const double cand = prev[c - size] + profit;
      curr[c] = cand > prev[c] ? cand : prev[c];
    }
    for (std::size_t w = 0; w < row_words; ++w) {
      const std::size_t base = w << 6;
      const std::size_t lanes = std::min<std::size_t>(64, cap + 1 - base);
      std::uint64_t packed = 0;
      for (std::size_t l = 0; l < lanes; ++l) {
        packed |= std::uint64_t(curr[base + l] > prev[base + l]) << l;
      }
      row[w] = packed;
      if (base + 64 > cap) break;
    }
    std::swap(a, b);
  }
}

void dp_kernel_two_row(std::span<const KnapsackItem> items, std::size_t cap,
                       double* a, double* b, std::uint64_t* bits,
                       std::size_t row_words) {
  dp_kernel_two_row_body(items, cap, a, b, bits, row_words);
}

#if MOBI_KNAPSACK_AVX2_DISPATCH
/// Same body, recompiled for AVX2 (4 double lanes per op). Only additions
/// and max/compare on non-negative finite doubles — no FMA contraction is
/// possible, so the lanes compute the exact same IEEE results.
__attribute__((target("avx2"))) void dp_kernel_two_row_avx2(
    std::span<const KnapsackItem> items, std::size_t cap, double* a, double* b,
    std::uint64_t* bits, std::size_t row_words) {
  dp_kernel_two_row_body(items, cap, a, b, bits, row_words);
}
#endif

DpKernel detect_best_kernel() noexcept {
#if MOBI_KNAPSACK_AVX2_DISPATCH
  if (__builtin_cpu_supports("avx2")) return DpKernel::kWordParallelAvx2;
#endif
  return DpKernel::kWordParallel;
}

std::atomic<DpKernel>& dp_kernel_slot() {
  static std::atomic<DpKernel> slot{detect_best_kernel()};
  return slot;
}

}  // namespace

bool dp_kernel_supported(DpKernel kernel) noexcept {
  switch (kernel) {
    case DpKernel::kAuto:
    case DpKernel::kScalar:
    case DpKernel::kWordParallel:
      return true;
    case DpKernel::kWordParallelAvx2:
#if MOBI_KNAPSACK_AVX2_DISPATCH
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

void set_dp_kernel(DpKernel kernel) {
  if (!dp_kernel_supported(kernel)) {
    throw std::invalid_argument("set_dp_kernel: kernel not supported here");
  }
  dp_kernel_slot().store(
      kernel == DpKernel::kAuto ? detect_best_kernel() : kernel,
      std::memory_order_relaxed);
}

DpKernel active_dp_kernel() noexcept {
  return dp_kernel_slot().load(std::memory_order_relaxed);
}

void dp_fill(std::span<const KnapsackItem> items, std::size_t cap,
             KnapsackWorkspace& ws, std::size_t row_words, DpKernel kernel) {
  const std::size_t n = items.size();
  std::vector<double>& values = WorkspaceAccess::values(ws);
  std::vector<std::uint64_t>& bits = WorkspaceAccess::take_bits(ws);
  // resize + fill instead of assign: once the workspace has seen its
  // high-water capacity, later fills touch no allocator at all.
  values.resize(cap + 1);
  bits.resize(n * row_words);
  std::fill(bits.begin(), bits.end(), 0);
  if (kernel == DpKernel::kAuto) kernel = active_dp_kernel();
  if (kernel == DpKernel::kScalar) {
    std::fill(values.begin(), values.end(), 0.0);
    dp_kernel_scalar(items, cap, values.data(), bits.data(), row_words);
    return;
  }
  std::vector<double>& prev = WorkspaceAccess::values_prev(ws);
  prev.resize(cap + 1);
  double* a = values.data();
  double* b = prev.data();
  std::size_t effective = 0;
  for (const KnapsackItem& item : items) {
    if (std::size_t(item.size) <= cap) ++effective;
  }
  // One buffer swap per effective item: start so the result ends in a.
  if (effective & 1) std::swap(a, b);
  std::fill(a, a + cap + 1, 0.0);
#if MOBI_KNAPSACK_AVX2_DISPATCH
  if (kernel == DpKernel::kWordParallelAvx2) {
    dp_kernel_two_row_avx2(items, cap, a, b, bits.data(), row_words);
    return;
  }
#endif
  dp_kernel_two_row(items, cap, a, b, bits.data(), row_words);
}

}  // namespace detail

KnapsackProfile::KnapsackProfile(std::span<const KnapsackItem> items,
                                 object::Units max_capacity)
    : ws_(&own_) {
  detail::validate_items(items);
  build(items, max_capacity);
}

KnapsackProfile::KnapsackProfile(std::span<const KnapsackItem> items,
                                 object::Units max_capacity,
                                 KnapsackWorkspace& workspace)
    : ws_(&workspace) {
  detail::validate_items(items);
  build(items, max_capacity);
}

KnapsackProfile::KnapsackProfile(std::span<const KnapsackItem> items,
                                 object::Units max_capacity,
                                 KnapsackWorkspace* workspace,
                                 AlreadyValidated)
    : ws_(workspace ? workspace : &own_) {
  build(items, max_capacity);
}

void KnapsackProfile::build(std::span<const KnapsackItem> items,
                            object::Units max_capacity) {
  if (max_capacity < 0) {
    throw std::invalid_argument("KnapsackProfile: negative capacity");
  }
  const std::size_t n = items.size();
  const auto cap = std::size_t(max_capacity);
  ws_->item_sizes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) ws_->item_sizes_[i] = items[i].size;

  // Row-by-row DP through the pluggable kernel (detail::DpKernel); strict
  // improvement keeps solutions minimal (zero-profit items never taken).
  // The decision matrix is a single flat allocation; each item touches
  // only its own contiguous row — prefetch-friendly, no pointer chasing.
  row_words_ = (cap + 1 + 63) / 64;
  detail::dp_fill(items, cap, *ws_, row_words_);
}

double KnapsackProfile::value_at(object::Units c) const {
  if (c < 0 || c > max_capacity()) {
    throw std::out_of_range("KnapsackProfile::value_at");
  }
  return ws_->values_[std::size_t(c)];
}

KnapsackSolution KnapsackProfile::solution_at(object::Units c) const {
  KnapsackSolution solution;
  solution_into(c, solution);
  return solution;
}

void KnapsackProfile::solution_into(object::Units c,
                                    KnapsackSolution& out) const {
  if (c < 0 || c > max_capacity()) {
    throw std::out_of_range("KnapsackProfile::solution_at");
  }
  out.reset();
  out.value = ws_->values_[std::size_t(c)];
  auto remaining = std::size_t(c);
  const std::vector<object::Units>& sizes = ws_->item_sizes_;
  for (std::size_t i = sizes.size(); i-- > 0;) {
    if (taken(i, remaining)) {
      out.chosen.push_back(i);
      out.used += sizes[i];
      remaining -= std::size_t(sizes[i]);
    }
  }
  std::reverse(out.chosen.begin(), out.chosen.end());
}

KnapsackSolution solve_dp(std::span<const KnapsackItem> items,
                          object::Units capacity) {
  KnapsackWorkspace ws;
  KnapsackSolution out;
  solve_dp(items, capacity, ws, out);
  return out;
}

void solve_dp(std::span<const KnapsackItem> items, object::Units capacity,
              KnapsackWorkspace& ws, KnapsackSolution& out) {
  // The batch is validated exactly once here; the profile construction
  // below skips re-validation (AlreadyValidated route).
  detail::validate_items(items);
  if (capacity < 0) {
    throw std::invalid_argument("KnapsackProfile: negative capacity");
  }
  if (detail::take_all_shortcut(items, capacity, out)) return;
  if (detail::greedy_prefix_shortcut(items, capacity, ws.order_, out)) return;
  const KnapsackProfile profile(items, capacity, &ws,
                                KnapsackProfile::AlreadyValidated{});
  profile.solution_into(capacity, out);
}

KnapsackSolution solve_greedy(std::span<const KnapsackItem> items,
                              object::Units capacity) {
  KnapsackWorkspace ws;
  KnapsackSolution out;
  solve_greedy(items, capacity, ws, out);
  return out;
}

void solve_greedy(std::span<const KnapsackItem> items, object::Units capacity,
                  KnapsackWorkspace& ws, KnapsackSolution& out) {
  detail::validate_items(items);
  if (capacity < 0) {
    throw std::invalid_argument("solve_greedy: negative capacity");
  }
  detail::density_order(items, ws.order_);
  out.reset();
  object::Units left = capacity;
  for (std::size_t index : ws.order_) {
    if (items[index].profit <= 0.0) break;  // sorted: the rest are worthless
    if (items[index].size <= left) {
      out.chosen.push_back(index);
      out.value += items[index].profit;
      out.used += items[index].size;
      left -= items[index].size;
    }
  }
  // 1/2-approximation guarantee needs max(greedy, best single item).
  std::size_t best_single = items.size();
  double best_value = 0.0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].size <= capacity && items[i].profit > best_value) {
      best_single = i;
      best_value = items[i].profit;
    }
  }
  if (best_value > out.value) {
    out.reset();
    out.chosen.push_back(best_single);
    out.value = best_value;
    out.used = items[best_single].size;
    return;
  }
  std::sort(out.chosen.begin(), out.chosen.end());
}

KnapsackSolution solve_fptas(std::span<const KnapsackItem> items,
                             object::Units capacity, double epsilon) {
  KnapsackWorkspace ws;
  KnapsackSolution out;
  solve_fptas(items, capacity, epsilon, ws, out);
  return out;
}

void solve_fptas(std::span<const KnapsackItem> items, object::Units capacity,
                 double epsilon, KnapsackWorkspace& ws,
                 KnapsackSolution& out) {
  detail::validate_items(items);
  if (capacity < 0) {
    throw std::invalid_argument("solve_fptas: negative capacity");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    throw std::invalid_argument("solve_fptas: epsilon must be in (0, 1)");
  }
  out.reset();
  const std::size_t n = items.size();
  double max_profit = 0.0;
  for (const auto& item : items) {
    if (item.size <= capacity) max_profit = std::max(max_profit, item.profit);
  }
  if (n == 0 || max_profit <= 0.0) return;

  // Scale profits to integers: q_i = floor(p_i / K), K = eps * P / n.
  const double scale = epsilon * max_profit / double(n);
  ws.scaled_.resize(n);
  std::uint64_t total_scaled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ws.scaled_[i] = std::uint64_t(items[i].profit / scale);
    total_scaled += ws.scaled_[i];
  }
  // Guard the decision-matrix footprint (bits = n * (total_scaled + 1)).
  constexpr std::uint64_t kMaxBits = 64ULL * 1024 * 1024 * 8;
  if (std::uint64_t(n) * (total_scaled + 1) > kMaxBits) {
    throw std::invalid_argument(
        "solve_fptas: instance too large for reconstruction memory budget");
  }

  // min_weight[q] = least total size achieving scaled profit exactly q.
  // The take matrix is flat 64-bit words, one padded row per item, reusing
  // the workspace's bit buffer like the profile DP does.
  const auto q_max = std::size_t(total_scaled);
  constexpr object::Units kInfeasible = std::numeric_limits<object::Units>::max();
  ws.min_weight_.resize(q_max + 1);
  std::fill(ws.min_weight_.begin(), ws.min_weight_.end(), kInfeasible);
  ws.min_weight_[0] = 0;
  const std::size_t row_words = (q_max + 1 + 63) / 64;
  ws.take_bits_.resize(n * row_words);
  std::fill(ws.take_bits_.begin(), ws.take_bits_.end(), 0);
  std::uint64_t* row = ws.take_bits_.data();
  for (std::size_t i = 0; i < n; ++i, row += row_words) {
    const auto q_i = std::size_t(ws.scaled_[i]);
    if (q_i == 0) continue;  // adds no scaled profit; skip (keeps DP tight)
    for (std::size_t q = q_max; q >= q_i; --q) {
      if (ws.min_weight_[q - q_i] == kInfeasible) {
        if (q == q_i) break;
        continue;
      }
      const object::Units weight = ws.min_weight_[q - q_i] + items[i].size;
      if (weight < ws.min_weight_[q]) {
        ws.min_weight_[q] = weight;
        row[q >> 6] |= std::uint64_t{1} << (q & 63);
      }
      if (q == q_i) break;
    }
  }
  std::size_t best_q = 0;
  for (std::size_t q = 0; q <= q_max; ++q) {
    if (ws.min_weight_[q] <= capacity) best_q = q;
  }
  // Reconstruct and report the *true* (unscaled) value of the chosen set.
  std::size_t q = best_q;
  for (std::size_t i = n; i-- > 0;) {
    if (q == 0) break;
    if ((ws.take_bits_[i * row_words + (q >> 6)] >> (q & 63)) & 1u) {
      out.chosen.push_back(i);
      out.value += items[i].profit;
      out.used += items[i].size;
      q -= std::size_t(ws.scaled_[i]);
    }
  }
  std::reverse(out.chosen.begin(), out.chosen.end());
}

KnapsackSolution solve_brute_force(std::span<const KnapsackItem> items,
                                   object::Units capacity) {
  detail::validate_items(items);
  if (capacity < 0) {
    throw std::invalid_argument("solve_brute_force: negative capacity");
  }
  if (items.size() > 30) {
    throw std::invalid_argument("solve_brute_force: too many items");
  }
  const std::uint32_t n = std::uint32_t(items.size());
  KnapsackSolution best;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    double value = 0.0;
    object::Units used = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) {
        value += items[i].profit;
        used += items[i].size;
      }
    }
    if (used <= capacity && value > best.value) {
      best.value = value;
      best.used = used;
      best.chosen.clear();
      for (std::uint32_t i = 0; i < n; ++i) {
        if (mask & (1ULL << i)) best.chosen.push_back(i);
      }
    }
  }
  return best;
}

namespace {

/// Depth-first branch and bound over items pre-sorted by profit density.
class BranchAndBound {
 public:
  BranchAndBound(std::span<const KnapsackItem> items, object::Units capacity,
                 std::uint64_t node_limit)
      : items_(items), capacity_(capacity), node_limit_(node_limit) {
    order_.resize(items.size());
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
      const double da = items[a].profit / double(items[a].size);
      const double db = items[b].profit / double(items[b].size);
      if (da != db) return da > db;
      return a < b;
    });
    taken_.assign(items.size(), false);
  }

  KnapsackSolution run() {
    descend(0, 0, 0.0);
    std::sort(best_.chosen.begin(), best_.chosen.end());
    return best_;
  }

 private:
  /// LP relaxation: fill greedily from `depth`, fractionally at the end.
  double fractional_bound(std::size_t depth, object::Units used,
                          double value) const {
    object::Units left = capacity_ - used;
    for (std::size_t i = depth; i < order_.size() && left > 0; ++i) {
      const KnapsackItem& item = items_[order_[i]];
      if (item.profit <= 0.0) break;  // density-sorted: rest are worthless
      if (item.size <= left) {
        value += item.profit;
        left -= item.size;
      } else {
        value += item.profit * double(left) / double(item.size);
        left = 0;
      }
    }
    return value;
  }

  void descend(std::size_t depth, object::Units used, double value) {
    if (++nodes_ > node_limit_) {
      throw std::runtime_error("solve_branch_and_bound: node limit exceeded");
    }
    if (value > best_.value) {
      best_.value = value;
      best_.used = used;
      best_.chosen.clear();
      for (std::size_t i = 0; i < depth; ++i) {
        if (taken_[i]) best_.chosen.push_back(order_[i]);
      }
    }
    if (depth == order_.size()) return;
    // A strict comparison would also prune ties with the incumbent, which
    // is correct but makes zero-profit instances degenerate; epsilon keeps
    // the pruning strict on real profit.
    if (fractional_bound(depth, used, value) <= best_.value + 1e-12) return;

    const KnapsackItem& item = items_[order_[depth]];
    if (item.size <= capacity_ - used && item.profit > 0.0) {
      taken_[depth] = true;
      descend(depth + 1, used + item.size, value + item.profit);
      taken_[depth] = false;
    }
    descend(depth + 1, used, value);
  }

  std::span<const KnapsackItem> items_;
  object::Units capacity_;
  std::uint64_t node_limit_;
  std::uint64_t nodes_ = 0;
  std::vector<std::size_t> order_;
  std::vector<bool> taken_;
  KnapsackSolution best_;
};

}  // namespace

KnapsackSolution solve_branch_and_bound(std::span<const KnapsackItem> items,
                                        object::Units capacity,
                                        std::uint64_t node_limit) {
  detail::validate_items(items);
  if (capacity < 0) {
    throw std::invalid_argument("solve_branch_and_bound: negative capacity");
  }
  return BranchAndBound(items, capacity, node_limit).run();
}

}  // namespace mobi::core
