// ResidencyProbe: the policy layer's view of client mobility.
//
// A probe answers one question per requesting client: with what
// probability is this client still resident in the station's cell when a
// download issued now lands? The knapsack's per-client benefit is scaled
// by that probability (MobiCacher's utility term, PAPERS.md arXiv
// 1407.1307), so the station stops spending budget on clients about to
// hand off. The core layer only sees this interface; the concrete
// implementation wraps sim::ResidencyPredictor (src/sim/mobility.hpp) and
// is attached by the mobility fleet (src/exp/mobility_fleet.hpp).
//
// Contract: probability() is a pure read in [0, 1] — no RNG draws, no
// state mutation — so attaching a probe never perturbs the simulation
// stream, and a nullptr probe is bit-identical to the pre-mobility build.
#pragma once

#include "workload/requests.hpp"

namespace mobi::core {

class ResidencyProbe {
 public:
  virtual ~ResidencyProbe() = default;

  /// P(client still resident at fetch-landing time), in [0, 1].
  virtual double probability(workload::ClientId client) const = 0;
};

}  // namespace mobi::core
