#include "core/benefit.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace mobi::core {

const CandidateSet& CandidateBuilder::build(const workload::RequestBatch& batch,
                                            const object::Catalog& catalog,
                                            const cache::Cache& cache,
                                            const RecencyScorer& scorer) {
  return build(batch, catalog, cache, scorer, nullptr, 0);
}

const CandidateSet& CandidateBuilder::build(const workload::RequestBatch& batch,
                                            const object::Catalog& catalog,
                                            const cache::Cache& cache,
                                            const RecencyScorer& scorer,
                                            const PeerSource* peers,
                                            sim::Tick now) {
  return build(batch, catalog, cache, scorer, peers, now, nullptr);
}

const CandidateSet& CandidateBuilder::build(const workload::RequestBatch& batch,
                                            const object::Catalog& catalog,
                                            const cache::Cache& cache,
                                            const RecencyScorer& scorer,
                                            const PeerSource* peers,
                                            sim::Tick now,
                                            const ResidencyProbe* residency) {
  set_.candidates.clear();
  set_.total_requests = batch.size();
  set_.baseline_score_sum = 0.0;
  if (stamp_.size() < catalog.size()) {
    stamp_.resize(catalog.size(), 0);
    slot_.resize(catalog.size());
  }
  ++epoch_;
  for (const workload::Request& request : batch) {
    const double x = cache.recency_or_zero(request.object);
    const double cached_score = scorer.score(x, request.target_recency);
    const object::ObjectId id = request.object;
    if (id >= stamp_.size()) {
      catalog.object_size(id);  // out-of-catalog id: throw as the map did
    }
    if (stamp_[id] != epoch_) {
      stamp_[id] = epoch_;
      slot_[id] = std::uint32_t(set_.candidates.size());
      DownloadCandidate fresh;
      fresh.object = id;
      fresh.size = catalog.object_size(id);
      if (peers) {
        // One directory lookup per distinct object. The peer tier wins
        // only when it strictly beats the own cached recency, so
        // tier_profit stays >= 0 (the scorer is monotone in recency).
        const PeerCopy pc = peers->lookup(id, now);
        if (pc.valid && pc.recency > x) {
          fresh.tier = SourceTier::kPeer;
          fresh.peer_recency = pc.recency;
          fresh.peer_size = peer_cost(fresh.size, pc.cost_factor);
        }
      }
      set_.candidates.push_back(fresh);
    }
    DownloadCandidate& cand = set_.candidates[slot_[id]];
    ++cand.requests;
    cand.cached_score_sum += cached_score;
    if (residency == nullptr) {
      // Residence-blind accumulation, expression-for-expression the
      // pre-mobility builder (bit-identity is load-bearing: the probe-off
      // differential locks on it).
      cand.profit += 1.0 - cached_score;
      if (cand.tier == SourceTier::kPeer) {
        cand.peer_score_sum +=
            scorer.score(cand.peer_recency, request.target_recency);
      }
    } else {
      const double p = residency->probability(request.client);
      // Expected value of the download under delivery latency: the
      // serve pays (1 - cached_score) only if the client is still
      // resident when the payload lands, which is what p estimates.
      cand.profit += p * (1.0 - cached_score);
      if (cand.tier == SourceTier::kPeer) {
        // tier_profit reads peer_score_sum - cached_score_sum, so fold
        // the weighting into the stored sum: the delta contributed here
        // is p * (peer score - cached score).
        const double peer_score =
            scorer.score(cand.peer_recency, request.target_recency);
        cand.peer_score_sum += cached_score + p * (peer_score - cached_score);
      }
    }
    set_.baseline_score_sum += cached_score;
  }
  // First-encounter order -> id order, matching the reference map's
  // iteration. Ids are distinct, so the sort result is unique and std::sort
  // (in-place, allocation-free) is safe.
  std::sort(set_.candidates.begin(), set_.candidates.end(),
            [](const DownloadCandidate& a, const DownloadCandidate& b) {
              return a.object < b.object;
            });
  return set_;
}

CandidateSet build_candidates(const workload::RequestBatch& batch,
                              const object::Catalog& catalog,
                              const cache::Cache& cache,
                              const RecencyScorer& scorer) {
  CandidateBuilder builder;
  return builder.build(batch, catalog, cache, scorer);
}

CandidateSet build_candidates_reference(const workload::RequestBatch& batch,
                                        const object::Catalog& catalog,
                                        const cache::Cache& cache,
                                        const RecencyScorer& scorer) {
  // Aggregate per object in id order for deterministic output.
  std::map<object::ObjectId, DownloadCandidate> by_object;
  CandidateSet set;
  set.total_requests = batch.size();
  for (const workload::Request& request : batch) {
    const double x = cache.recency_or_zero(request.object);
    const double cached_score = scorer.score(x, request.target_recency);
    auto [it, inserted] = by_object.try_emplace(request.object);
    DownloadCandidate& cand = it->second;
    if (inserted) {
      cand.object = request.object;
      cand.size = catalog.object_size(request.object);
    }
    ++cand.requests;
    cand.cached_score_sum += cached_score;
    cand.profit += 1.0 - cached_score;
    set.baseline_score_sum += cached_score;
  }
  set.candidates.reserve(by_object.size());
  for (auto& [id, cand] : by_object) set.candidates.push_back(cand);
  return set;
}

CandidateSet build_candidates_from_aggregates(
    std::span<const object::Units> sizes,
    std::span<const std::uint32_t> num_requests,
    std::span<const double> avg_cached_score) {
  if (sizes.size() != num_requests.size() ||
      sizes.size() != avg_cached_score.size()) {
    throw std::invalid_argument(
        "build_candidates_from_aggregates: size mismatch");
  }
  CandidateSet set;
  set.candidates.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double score = avg_cached_score[i];
    if (score < 0.0 || score > 1.0) {
      throw std::invalid_argument(
          "build_candidates_from_aggregates: score outside [0, 1]");
    }
    DownloadCandidate cand;
    cand.object = object::ObjectId(i);
    cand.size = sizes[i];
    cand.requests = num_requests[i];
    cand.cached_score_sum = double(num_requests[i]) * score;
    cand.profit = double(num_requests[i]) * (1.0 - score);
    set.candidates.push_back(cand);
    set.total_requests += num_requests[i];
    set.baseline_score_sum += cand.cached_score_sum;
  }
  return set;
}

double average_score(const CandidateSet& set,
                     std::span<const std::size_t> chosen) {
  if (set.total_requests == 0) return 1.0;  // vacuously perfect
  double score_sum = set.baseline_score_sum;
  for (std::size_t index : chosen) {
    const DownloadCandidate& cand = set.candidates.at(index);
    // Downloading lifts every requesting client to 1.0.
    score_sum += double(cand.requests) - cand.cached_score_sum;
  }
  return score_sum / double(set.total_requests);
}

}  // namespace mobi::core
