// Adaptive download-bound selection (paper §6: "In future work, we will
// develop techniques to determine how much data the base station should
// download to satisfy a set of requests. The techniques will use knowledge
// of the current workload and recency of cached data to determine an upper
// bound...").
//
// AdaptiveKnapsackPolicy implements that technique: per batch it builds
// the DP value-vs-capacity profile of the current candidates, runs a bound
// estimator (marginal knee or chord elbow) to pick this tick's budget, and
// downloads the optimal set at that budget. An optional EWMA smooths the
// budget across ticks, and hard min/max clamps bound worst-case usage.
#pragma once

#include <memory>
#include <string>

#include "core/bound_estimator.hpp"
#include "core/policy.hpp"

namespace mobi::core {

enum class BoundRule { kMarginalKnee, kChordElbow };

struct AdaptiveBudgetConfig {
  BoundRule rule = BoundRule::kMarginalKnee;
  /// Marginal-knee parameters (ignored by the elbow rule).
  object::Units knee_window = 20;
  double knee_threshold = 0.25;
  /// EWMA smoothing weight on the new estimate; 1 = no smoothing.
  double smoothing = 1.0;
  /// Hard clamps on the per-tick budget (max < 0 = no upper clamp).
  object::Units min_budget = 0;
  object::Units max_budget = -1;
};

class AdaptiveKnapsackPolicy final : public DownloadPolicy {
 public:
  explicit AdaptiveKnapsackPolicy(AdaptiveBudgetConfig config = {});

  void select_into(const workload::RequestBatch& batch,
                   const PolicyContext& ctx,
                   std::vector<object::ObjectId>& out) override;
  std::string name() const override;

  /// The budget chosen on the most recent select() call.
  object::Units last_budget() const noexcept { return last_budget_; }
  /// Total units of budget granted so far (for bandwidth accounting).
  object::Units budget_granted() const noexcept { return granted_; }

 private:
  AdaptiveBudgetConfig config_;
  double smoothed_ = -1.0;  // < 0 until the first estimate
  object::Units last_budget_ = 0;
  object::Units granted_ = 0;
  CandidateBuilder builder_;
  KnapsackWorkspace ws_;
  std::vector<KnapsackItem> items_;
  KnapsackSolution solution_;
};

}  // namespace mobi::core
