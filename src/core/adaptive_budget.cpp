#include "core/adaptive_budget.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mobi::core {

AdaptiveKnapsackPolicy::AdaptiveKnapsackPolicy(AdaptiveBudgetConfig config)
    : config_(config) {
  if (config.knee_window <= 0) {
    throw std::invalid_argument("AdaptiveKnapsackPolicy: knee_window <= 0");
  }
  if (!(config.knee_threshold > 0.0) || config.knee_threshold > 1.0) {
    throw std::invalid_argument("AdaptiveKnapsackPolicy: knee_threshold");
  }
  if (!(config.smoothing > 0.0) || config.smoothing > 1.0) {
    throw std::invalid_argument("AdaptiveKnapsackPolicy: smoothing in (0, 1]");
  }
  if (config.min_budget < 0) {
    throw std::invalid_argument("AdaptiveKnapsackPolicy: min_budget < 0");
  }
}

std::string AdaptiveKnapsackPolicy::name() const {
  return std::string("adaptive-knapsack(") +
         (config_.rule == BoundRule::kMarginalKnee ? "knee" : "elbow") + ")";
}

void AdaptiveKnapsackPolicy::select_into(const workload::RequestBatch& batch,
                                         const PolicyContext& ctx,
                                         std::vector<object::ObjectId>& out) {
  if (!ctx.catalog || !ctx.cache || !ctx.scorer) {
    throw std::invalid_argument("AdaptiveKnapsackPolicy: incomplete context");
  }
  out.clear();
  const CandidateSet& set =
      builder_.build(batch, *ctx.catalog, *ctx.cache, *ctx.scorer);
  if (set.candidates.empty()) {
    last_budget_ = 0;
    return;
  }
  items_.clear();
  object::Units demand = 0;
  for (const auto& cand : set.candidates) {
    items_.push_back(KnapsackItem{cand.size, cand.profit});
    demand += cand.size;
  }

  // Build the profile over the full demand and estimate the worthwhile
  // bound from the current workload and cache state.
  const KnapsackProfile profile(items_, demand, ws_);
  const BoundEstimate estimate =
      config_.rule == BoundRule::kMarginalKnee
          ? estimate_bound_marginal(profile,
                                    std::min(config_.knee_window, demand > 0 ? demand : 1),
                                    config_.knee_threshold)
          : estimate_bound_elbow(profile);

  double target = double(estimate.capacity);
  if (smoothed_ < 0.0) {
    smoothed_ = target;
  } else {
    smoothed_ = config_.smoothing * target +
                (1.0 - config_.smoothing) * smoothed_;
  }
  auto budget = object::Units(std::llround(smoothed_));
  budget = std::max(budget, config_.min_budget);
  if (config_.max_budget >= 0) budget = std::min(budget, config_.max_budget);
  // The surrounding BaseStation may also impose a hard budget; honor it.
  if (ctx.budget >= 0) budget = std::min(budget, ctx.budget);
  last_budget_ = budget;
  granted_ += budget;

  profile.solution_into(std::min(budget, demand), solution_);
  for (std::size_t index : solution_.chosen) {
    out.push_back(set.candidates[index].object);
  }
}

}  // namespace mobi::core
