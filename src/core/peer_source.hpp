// Peer source tier: a base station's view of copies cached by peer
// stations reachable over the cheap inter-station wired link.
//
// The paper's fetch model has two source classes: the station's own cache
// (local, free) and the remote origin (fixed network, full cost). A peer
// tier sits between them — a neighbor station's coherent copy can be
// copied for a fraction of the origin's fixed-network cost, at the
// neighbor copy's (possibly reduced) recency. PeerSource is the minimal
// interface the core layer needs to price that third class: lookups are
// pure queries, and fill notifications let the implementation (the
// coherence directory in src/coop/coherence.hpp) track the attached
// station as a sharer.
//
// Determinism contract: lookup() must be a pure function of simulation
// state — no RNG draws, no wall-clock — so attaching a peer source keeps
// runs bit-identical across thread pools and replays.
#pragma once

#include <cmath>

#include "object/object.hpp"
#include "sim/tick.hpp"

namespace mobi::core {

/// Result of a peer lookup: the best coherent peer copy, if any.
struct PeerCopy {
  /// Recency score of the peer's copy (what the local copy inherits).
  double recency = 0.0;
  /// Inter-station cost per origin unit: a peer transfer of an object of
  /// size S is charged peer_cost(S, cost_factor) units against the
  /// station's download budget. In (0, 1].
  double cost_factor = 1.0;
  bool valid = false;
};

/// Budget cost of copying `size` origin units over the inter-station
/// link. Always at least one unit — a peer copy is cheap, never free.
inline object::Units peer_cost(object::Units size,
                               double cost_factor) noexcept {
  const auto scaled = object::Units(std::ceil(double(size) * cost_factor));
  return scaled > 1 ? scaled : object::Units(1);
}

class PeerSource {
 public:
  virtual ~PeerSource() = default;

  /// Best coherent peer copy of `id` as of `now`; !valid when no peer
  /// holds a serveable copy. Pure query (see determinism contract above).
  virtual PeerCopy lookup(object::ObjectId id, sim::Tick now) const = 0;

  /// Notification that the attached station installed a copy of `id`
  /// (origin or peer fetch) at `recency` — lets a coherence directory
  /// register the station in the object's sharer set.
  virtual void on_cache_fill(object::ObjectId id, sim::Tick now,
                             double recency) = 0;

  /// Notification that the attached station dropped its copy of `id`.
  virtual void on_cache_evict(object::ObjectId id) = 0;
};

}  // namespace mobi::core
