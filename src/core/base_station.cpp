#include "core/base_station.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mobi::core {

BaseStation::BaseStation(const object::Catalog& catalog,
                         server::ServerPool& servers,
                         std::shared_ptr<const cache::DecayModel> decay,
                         std::unique_ptr<RecencyScorer> scorer,
                         std::unique_ptr<DownloadPolicy> policy,
                         const BaseStationConfig& config)
    : catalog_(&catalog),
      servers_(&servers),
      cache_(catalog.size(), std::move(decay)),
      scorer_(std::move(scorer)),
      policy_(std::move(policy)),
      config_(config),
      network_(config.network_bandwidth, config.network_latency,
               config.network_contention),
      downlink_(config.downlink_capacity),
      failure_rng_(config.failure_seed) {
  if (!scorer_) throw std::invalid_argument("BaseStation: null scorer");
  if (!policy_) throw std::invalid_argument("BaseStation: null policy");
  if (config.fetch_failure_rate < 0.0 || config.fetch_failure_rate > 1.0) {
    throw std::invalid_argument("BaseStation: fetch_failure_rate in [0, 1]");
  }
  if (config.coalesce_downlink) {
    sent_epoch_.assign(catalog.size(), 0);  // epoch 0 = never sent
  }
}

void BaseStation::on_server_update(object::ObjectId id, sim::Tick now) {
  servers_->apply_update(id, now);
  cache_.on_server_update(id);
}

void BaseStation::apply_updates(workload::UpdateProcess& updates,
                                sim::Tick now) {
  updates.for_each_updated(
      now, [&](object::ObjectId id) { on_server_update(id, now); });
}

TickResult BaseStation::process_batch(const workload::RequestBatch& batch,
                                      sim::Tick now) {
  TickResult result;
  result.tick = now;
  result.requests = batch.size();

  PolicyContext ctx;
  ctx.catalog = catalog_;
  ctx.cache = &cache_;
  ctx.servers = servers_;
  ctx.scorer = scorer_.get();
  ctx.now = now;
  ctx.budget = config_.download_budget;
  {
    obs::ScopedTrace span(trace_, "bs.select", now);
    if (metrics_) {
      // Wall-clock solve time is observational only: the select call is
      // identical on both branches, so enabling metrics cannot change
      // what gets fetched.
      const auto t0 = std::chrono::steady_clock::now();
      policy_->select_into(batch, ctx, to_fetch_);
      inst_.solve_time_us->observe(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count());
    } else {
      policy_->select_into(batch, ctx, to_fetch_);
    }
  }

  // Fetch the selected objects over the fixed network.
  transfer_sizes_.clear();
  {
    obs::ScopedTrace span(trace_, "bs.fetch", now);
    for (object::ObjectId id : to_fetch_) {
      if (config_.fetch_failure_rate > 0.0 &&
          failure_rng_.bernoulli(config_.fetch_failure_rate)) {
        ++result.failed_fetches;  // fault: no transfer, cache untouched
        continue;
      }
      const server::FetchResult fetched = servers_->fetch(id);
      cache_.refresh(id, fetched, now);
      transfer_sizes_.push_back(fetched.size);
      result.units_downloaded += fetched.size;
      ++result.objects_downloaded;
    }
    if (!transfer_sizes_.empty()) {
      result.fetch_latency = network_.batch_completion_time(transfer_sizes_);
      network_.record_batch(transfer_sizes_);
    }
  }
  if (metrics_) {
    inst_.fetches->add(result.objects_downloaded);
    inst_.failed_fetches->add(result.failed_fetches);
    inst_.units_downloaded->add(std::uint64_t(result.units_downloaded));
    inst_.budget_spent->set(double(result.units_downloaded));
    inst_.budget_left->set(
        config_.download_budget < 0
            ? -1.0
            : double(config_.download_budget - result.units_downloaded));
    if (!transfer_sizes_.empty()) {
      inst_.fetch_latency->observe(result.fetch_latency);
    }
  }

  // Serve every request from the (now partially refreshed) cache and push
  // the payload onto the downlink. In coalescing mode the downlink is a
  // broadcast: one transmission per distinct object serves all of its
  // requesters this tick. "Sent this tick" is an epoch stamp, so starting
  // a fresh tick is one counter bump instead of an O(catalog) clear.
  ++serve_epoch_;
  {
    obs::ScopedTrace span(trace_, "bs.serve", now);
    for (const workload::Request& request : batch) {
      cache_.record_read(request.object);
      const double x = cache_.recency_or_zero(request.object);
      result.recency_sum += x;
      result.score_sum += scorer_->score(x, request.target_recency);
      const bool cached = cache_.contains(request.object);
      if (metrics_) {
        if (cached) {
          inst_.hits->add();
          if (cache_.is_stale(request.object,
                              servers_->version(request.object))) {
            inst_.stale_serves->add();
          } else {
            inst_.fresh_serves->add();
          }
        } else {
          inst_.misses->add();
        }
      }
      if (cached) {
        if (config_.coalesce_downlink) {
          if (sent_epoch_[request.object] == serve_epoch_) {
            if (metrics_) inst_.coalesced_responses->add();
            continue;
          }
          sent_epoch_[request.object] = serve_epoch_;
        }
        downlink_.enqueue(catalog_->object_size(request.object));
      }
    }
    result.downlink_delivered = downlink_.tick();
  }
  if (metrics_) {
    inst_.requests->add(result.requests);
    inst_.tick_score_avg->set(result.average_score());
  }

  totals_.add(result);
  return result;
}

void BaseStation::set_metrics(obs::MetricsRegistry* registry,
                              const std::string& prefix) {
  metrics_ = registry;
  inst_ = {};
  cache_.set_metrics(registry, prefix + ".cache");
  downlink_.set_metrics(registry, prefix + ".downlink");
  if (!registry) return;
  inst_.requests = &registry->register_counter(prefix + ".requests");
  inst_.hits = &registry->register_counter(prefix + ".hits");
  inst_.misses = &registry->register_counter(prefix + ".misses");
  inst_.stale_serves = &registry->register_counter(prefix + ".stale_serves");
  inst_.fresh_serves = &registry->register_counter(prefix + ".fresh_serves");
  inst_.fetches = &registry->register_counter(prefix + ".fetches");
  inst_.failed_fetches =
      &registry->register_counter(prefix + ".failed_fetches");
  inst_.units_downloaded =
      &registry->register_counter(prefix + ".units_downloaded");
  inst_.coalesced_responses =
      &registry->register_counter(prefix + ".coalesced_responses");
  inst_.budget_spent = &registry->register_gauge(prefix + ".budget_spent");
  inst_.budget_left = &registry->register_gauge(prefix + ".budget_left");
  inst_.tick_score_avg =
      &registry->register_gauge(prefix + ".tick_score_avg");
  inst_.solve_time_us = &registry->register_histogram(
      prefix + ".solve_time_us", 0.0, 1000.0, 50);
  inst_.fetch_latency =
      &registry->register_histogram(prefix + ".fetch_latency", 0.0, 100.0, 50);
}

}  // namespace mobi::core
