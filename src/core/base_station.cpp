#include "core/base_station.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "net/fault_injector.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace mobi::core {

BaseStation::BaseStation(const object::Catalog& catalog,
                         server::ServerPool& servers,
                         std::shared_ptr<const cache::DecayModel> decay,
                         std::unique_ptr<RecencyScorer> scorer,
                         std::unique_ptr<DownloadPolicy> policy,
                         const BaseStationConfig& config)
    : catalog_(&catalog),
      servers_(&servers),
      cache_(catalog.size(), std::move(decay)),
      scorer_(std::move(scorer)),
      policy_(std::move(policy)),
      config_(config),
      network_(config.network_bandwidth, config.network_latency,
               config.network_contention),
      downlink_(config.downlink_capacity),
      failure_rng_(config.failure_seed) {
  if (!scorer_) throw std::invalid_argument("BaseStation: null scorer");
  if (!policy_) throw std::invalid_argument("BaseStation: null policy");
  if (config.fetch_failure_rate < 0.0 || config.fetch_failure_rate > 1.0) {
    throw std::invalid_argument("BaseStation: fetch_failure_rate in [0, 1]");
  }
  if (config.coalesce_downlink) {
    sent_epoch_.assign(catalog.size(), 0);  // epoch 0 = never sent
  }
  if (config.fetch_retry_limit > 0) ensure_fault_scratch();
}

void BaseStation::set_request_tracer(obs::RequestTracer* tracer) noexcept {
  tracer_ = tracer;
  network_.set_tracer(tracer);
  downlink_.set_tracer(tracer);
}

void BaseStation::set_fault_injector(net::FaultInjector* injector) {
  fault_ = injector;
  network_.set_fault_injector(injector);
  downlink_.set_fault_injector(injector);
  // An idle injector (empty plan) must be observably absent, so it gets
  // no fault scratch: legacy-rate failures keep their pre-fault
  // accounting (no failed-this-tick stamps, no degraded-serve counts).
  if (injector && !injector->idle()) ensure_fault_scratch();
}

void BaseStation::ensure_fault_scratch() {
  if (!failed_stamp_.empty()) return;
  failed_stamp_.assign(catalog_->size(), 0);  // stamp 0 = never failed
  retry_pending_.assign(catalog_->size(), 0);
  retry_queue_.reserve(catalog_->size());
  // Hard per-tick bound: at most one retry success plus one policy fetch
  // per catalog object. Without faults the warm-up high-water suffices;
  // with them, fault timing must never force a mid-run reallocation.
  transfer_sizes_.reserve(2 * catalog_->size());
}

bool BaseStation::fetch_blocked(object::ObjectId id) {
  if (config_.fetch_failure_rate > 0.0 &&
      failure_rng_.bernoulli(config_.fetch_failure_rate)) {
    return true;
  }
  if (fault_) {
    if (fault_->draw_fetch_failure()) return true;
    if (!servers_->available(id)) return true;
  }
  return false;
}

void BaseStation::on_server_update(object::ObjectId id, sim::Tick now) {
  servers_->apply_update(id, now);
  cache_.on_server_update(id);
}

void BaseStation::apply_updates(workload::UpdateProcess& updates,
                                sim::Tick now) {
  updates.for_each_updated(
      now, [&](object::ObjectId id) { on_server_update(id, now); });
}

TickResult BaseStation::process_batch(const workload::RequestBatch& batch,
                                      sim::Tick now) {
  TickResult result;
  result.tick = now;
  result.requests = batch.size();

  // The serve epoch stamps both "sent this tick" (downlink coalescing)
  // and "fetch failed this tick" (degraded-serve accounting), so bump it
  // before any phase can stamp. Values only ever compare for equality,
  // so bumping here rather than before the serve loop changes nothing.
  ++serve_epoch_;
  if (fault_) fault_->begin_tick(now);
  if (tracer_) tracer_->begin_tick(now);

  // Budget left after the retry phase; the policy selects within it.
  object::Units budget_left = config_.download_budget;
  transfer_sizes_.clear();
  const bool fault_scratch = !failed_stamp_.empty();

  // Retry phase: previously failed fetches whose backoff expired go
  // first, ahead of the policy's own picks — a refresh the station
  // already promised outranks new speculation. In-place compaction keeps
  // the surviving entries in insertion order without allocating.
  if (!retry_queue_.empty()) {
    obs::ScopedTrace span(trace_, "bs.retry", now);
    obs::ScopedPhase phase(profiler_, phase_ids_.retry);
    std::size_t keep = 0;
    for (std::size_t i = 0; i < retry_queue_.size(); ++i) {
      RetryEntry entry = retry_queue_[i];
      if (entry.next_attempt > now) {
        retry_queue_[keep++] = entry;
        continue;
      }
      const object::Units size = catalog_->object_size(entry.id);
      if (budget_left >= 0 && size > budget_left) {
        // Not affordable this tick: keep waiting, no attempt consumed.
        retry_queue_[keep++] = entry;
        continue;
      }
      ++result.retries;
      if (tracer_) {
        tracer_->on_retry_attempt(entry.id, entry.attempts,
                                  now - entry.last_attempt);
      }
      if (fetch_blocked(entry.id)) {
        ++result.failed_fetches;
        failed_stamp_[entry.id] = serve_epoch_;
        ++entry.attempts;
        if (tracer_) tracer_->on_fetch_failed(entry.id, entry.attempts);
        if (entry.attempts - 1 >= config_.fetch_retry_limit) {
          // Out of retries: drop the entry; requesters get the stale
          // cached copy at its decayed score from here on.
          ++result.retry_exhausted;
          retry_pending_[entry.id] = 0;
          if (tracer_) tracer_->on_retry_drop(entry.id, entry.attempts);
        } else {
          entry.next_attempt =
              now + (sim::Tick(1)
                     << std::min<std::uint32_t>(entry.attempts - 1, 10));
          entry.last_attempt = now;
          retry_queue_[keep++] = entry;
        }
        continue;
      }
      const server::FetchResult fetched = servers_->fetch(entry.id);
      cache_.refresh(entry.id, fetched, now);
      if (peers_) peers_->on_cache_fill(entry.id, now, 1.0);
      transfer_sizes_.push_back(fetched.size);
      result.units_downloaded += fetched.size;
      ++result.objects_downloaded;
      ++result.retry_successes;
      if (budget_left >= 0) budget_left -= fetched.size;
      retry_pending_[entry.id] = 0;
      if (tracer_) tracer_->on_fetch_done(entry.id, now - entry.first_failure);
    }
    retry_queue_.resize(keep);
    phase.add_cost(result.retries);
  }

  PolicyContext ctx;
  ctx.catalog = catalog_;
  ctx.cache = &cache_;
  ctx.servers = servers_;
  ctx.scorer = scorer_.get();
  ctx.peers = peers_;
  ctx.residency = residency_;
  ctx.now = now;
  ctx.budget = budget_left;
  {
    obs::ScopedTrace span(trace_, "bs.select", now);
    obs::ScopedPhase phase(profiler_, phase_ids_.select);
    phase.add_cost(batch.size());
    if (metrics_) {
      // Wall-clock solve time is observational only: the select call is
      // identical on both branches, so enabling metrics cannot change
      // what gets fetched.
      const auto t0 = std::chrono::steady_clock::now();
      policy_->select_into(batch, ctx, to_fetch_);
      inst_.solve_time_us->observe(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count());
    } else {
      policy_->select_into(batch, ctx, to_fetch_);
    }
  }

  // Fetch the selected objects over the fixed network. Retry successes
  // recorded above share the same batch, so one congestion draw covers
  // the whole tick's traffic.
  {
    obs::ScopedTrace span(trace_, "bs.fetch", now);
    obs::ScopedPhase phase(profiler_, phase_ids_.fetch);
    phase.add_cost(to_fetch_.size());
    for (object::ObjectId id : to_fetch_) {
      if (tracer_) tracer_->on_fetch_selected(id);
      if (peers_) {
        // Re-derive the tier with the candidate builder's exact rule (a
        // valid peer copy strictly fresher than the own cache): neither
        // this station's entry for `id` nor the peer state changed since
        // select, so the decision matches what the knapsack priced. A
        // peer copy rides the inter-station link — no fixed-network
        // transfer, no fault draw — and lands at the relayed recency
        // (recency, not the version counter, is what policies consult).
        const PeerCopy pc = peers_->lookup(id, now);
        if (pc.valid && pc.recency > cache_.recency_or_zero(id)) {
          const server::FetchResult fetched = servers_->fetch(id);
          cache_.refresh(id, fetched, now, pc.recency);
          peers_->on_cache_fill(id, now, pc.recency);
          const object::Units cost = peer_cost(fetched.size, pc.cost_factor);
          result.peer_units += cost;
          ++result.peer_fetches;
          network_.record_peer_units(cost);
          if (tracer_) tracer_->on_fetch_done(id, 0);
          continue;
        }
      }
      if (fetch_blocked(id)) {
        ++result.failed_fetches;  // fault: no transfer, cache untouched
        if (tracer_) tracer_->on_fetch_failed(id, 1);
        if (fault_scratch) {
          failed_stamp_[id] = serve_epoch_;
          if (config_.fetch_retry_limit > 0 && !retry_pending_[id]) {
            retry_pending_[id] = 1;
            retry_queue_.push_back(RetryEntry{id, now + 1, 1, now, now});
          }
        }
        continue;
      }
      const server::FetchResult fetched = servers_->fetch(id);
      cache_.refresh(id, fetched, now);
      if (peers_) peers_->on_cache_fill(id, now, 1.0);
      transfer_sizes_.push_back(fetched.size);
      result.units_downloaded += fetched.size;
      ++result.objects_downloaded;
      if (tracer_) tracer_->on_fetch_done(id, 0);
    }
    if (!transfer_sizes_.empty()) {
      result.fetch_latency = network_.record_batch_completion(transfer_sizes_);
    }
  }
  if (metrics_) {
    inst_.fetches->add(result.objects_downloaded);
    inst_.failed_fetches->add(result.failed_fetches);
    if (result.retries) inst_.fault_retries->add(result.retries);
    if (result.retry_successes) {
      inst_.fault_retry_successes->add(result.retry_successes);
    }
    if (result.retry_exhausted) {
      inst_.fault_retry_exhausted->add(result.retry_exhausted);
    }
    inst_.fault_retry_queue_depth->set(double(retry_queue_.size()));
    inst_.units_downloaded->add(std::uint64_t(result.units_downloaded));
    if (result.peer_fetches) inst_.peer_fetches->add(result.peer_fetches);
    if (result.peer_units) {
      inst_.peer_units->add(std::uint64_t(result.peer_units));
    }
    // Peer units count against the same budget the knapsack spent from.
    const object::Units spent = result.units_downloaded + result.peer_units;
    inst_.budget_spent->set(double(spent));
    inst_.budget_left->set(config_.download_budget < 0
                               ? -1.0
                               : double(config_.download_budget - spent));
    if (!transfer_sizes_.empty()) {
      inst_.fetch_latency->observe(result.fetch_latency);
    }
  }

  // Serve every request from the (now partially refreshed) cache and push
  // the payload onto the downlink. In coalescing mode the downlink is a
  // broadcast: one transmission per distinct object serves all of its
  // requesters this tick. "Sent this tick" is an epoch stamp, so starting
  // a fresh tick is one counter bump instead of an O(catalog) clear
  // (the bump happened at the top of this function).
  {
    obs::ScopedTrace span(trace_, "bs.serve", now);
    obs::ScopedPhase phase(profiler_, phase_ids_.serve);
    phase.add_cost(batch.size());
    for (const workload::Request& request : batch) {
      cache_.record_read(request.object);
      const double x = cache_.recency_or_zero(request.object);
      result.recency_sum += x;
      const double score = scorer_->score(x, request.target_recency);
      result.score_sum += score;
      const bool cached = cache_.contains(request.object);
      const bool degraded =
          fault_scratch && failed_stamp_[request.object] == serve_epoch_;
      if (degraded) {
        // The refresh this request wanted failed this tick: it is served
        // whatever decayed copy the cache holds (or a miss) — count it
        // as a degraded serve. The score above already reflects the
        // decay; degradation is graceful, not special-cased.
        ++result.degraded_serves;
        if (metrics_) inst_.fault_degraded_serves->add();
      }
      if (tracer_) {
        const bool sampled =
            tracer_->on_arrival(request.object, request.client);
        tracer_->on_serve(sampled, request.object, request.client, cached,
                          degraded, x, request.target_recency, score);
      }
      if (metrics_) {
        if (cached) {
          inst_.hits->add();
          if (cache_.is_stale(request.object,
                              servers_->version(request.object))) {
            inst_.stale_serves->add();
          } else {
            inst_.fresh_serves->add();
          }
        } else {
          inst_.misses->add();
        }
      }
      if (cached) {
        if (config_.coalesce_downlink) {
          if (sent_epoch_[request.object] == serve_epoch_) {
            if (metrics_) inst_.coalesced_responses->add();
            continue;
          }
          sent_epoch_[request.object] = serve_epoch_;
        }
        downlink_.enqueue(catalog_->object_size(request.object));
      }
    }
    {
      obs::ScopedPhase downlink_phase(profiler_, phase_ids_.downlink);
      result.downlink_delivered = downlink_.tick();
      downlink_phase.add_cost(std::uint64_t(result.downlink_delivered));
    }
  }
  if (metrics_) {
    inst_.requests->add(result.requests);
    inst_.tick_score_avg->set(result.average_score());
  }

  totals_.add(result);
  return result;
}

void BaseStation::set_profiler(obs::PhaseProfiler* profiler) {
  profiler_ = profiler;
  if (profiler_ != nullptr) {
    phase_ids_.retry = profiler_->phase("bs.retry");
    phase_ids_.select = profiler_->phase("bs.select");
    phase_ids_.fetch = profiler_->phase("bs.fetch");
    phase_ids_.serve = profiler_->phase("bs.serve");
    phase_ids_.downlink = profiler_->phase("bs.downlink");
  }
}

void BaseStation::set_metrics(obs::MetricsRegistry* registry,
                              const std::string& prefix) {
  metrics_ = registry;
  inst_ = {};
  cache_.set_metrics(registry, prefix + ".cache");
  downlink_.set_metrics(registry, prefix + ".downlink");
  policy_->set_metrics(registry, prefix);  // e.g. bs.knapsack.parallel.*
  if (!registry) return;
  inst_.requests = &registry->register_counter(prefix + ".requests");
  inst_.hits = &registry->register_counter(prefix + ".hits");
  inst_.misses = &registry->register_counter(prefix + ".misses");
  inst_.stale_serves = &registry->register_counter(prefix + ".stale_serves");
  inst_.fresh_serves = &registry->register_counter(prefix + ".fresh_serves");
  inst_.fetches = &registry->register_counter(prefix + ".fetches");
  inst_.failed_fetches =
      &registry->register_counter(prefix + ".failed_fetches");
  inst_.units_downloaded =
      &registry->register_counter(prefix + ".units_downloaded");
  inst_.peer_fetches = &registry->register_counter(prefix + ".peer_fetches");
  inst_.peer_units = &registry->register_counter(prefix + ".peer_units");
  inst_.coalesced_responses =
      &registry->register_counter(prefix + ".coalesced_responses");
  inst_.fault_retries = &registry->register_counter(prefix + ".fault.retries");
  inst_.fault_retry_successes =
      &registry->register_counter(prefix + ".fault.retry_successes");
  inst_.fault_retry_exhausted =
      &registry->register_counter(prefix + ".fault.retry_exhausted");
  inst_.fault_degraded_serves =
      &registry->register_counter(prefix + ".fault.degraded_serves");
  inst_.fault_retry_queue_depth =
      &registry->register_gauge(prefix + ".fault.retry_queue_depth");
  inst_.budget_spent = &registry->register_gauge(prefix + ".budget_spent");
  inst_.budget_left = &registry->register_gauge(prefix + ".budget_left");
  inst_.tick_score_avg =
      &registry->register_gauge(prefix + ".tick_score_avg");
  inst_.solve_time_us = &registry->register_histogram(
      prefix + ".solve_time_us", 0.0, 1000.0, 50);
  inst_.fetch_latency =
      &registry->register_histogram(prefix + ".fetch_latency", 0.0, 100.0, 50);
}

}  // namespace mobi::core
