#include "core/base_station.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobi::core {

BaseStation::BaseStation(const object::Catalog& catalog,
                         server::ServerPool& servers,
                         std::shared_ptr<const cache::DecayModel> decay,
                         std::unique_ptr<RecencyScorer> scorer,
                         std::unique_ptr<DownloadPolicy> policy,
                         const BaseStationConfig& config)
    : catalog_(&catalog),
      servers_(&servers),
      cache_(catalog.size(), std::move(decay)),
      scorer_(std::move(scorer)),
      policy_(std::move(policy)),
      config_(config),
      network_(config.network_bandwidth, config.network_latency,
               config.network_contention),
      downlink_(config.downlink_capacity),
      failure_rng_(config.failure_seed) {
  if (!scorer_) throw std::invalid_argument("BaseStation: null scorer");
  if (!policy_) throw std::invalid_argument("BaseStation: null policy");
  if (config.fetch_failure_rate < 0.0 || config.fetch_failure_rate > 1.0) {
    throw std::invalid_argument("BaseStation: fetch_failure_rate in [0, 1]");
  }
}

void BaseStation::on_server_update(object::ObjectId id, sim::Tick now) {
  servers_->apply_update(id, now);
  cache_.on_server_update(id);
}

void BaseStation::apply_updates(workload::UpdateProcess& updates,
                                sim::Tick now) {
  updates.for_each_updated(
      now, [&](object::ObjectId id) { on_server_update(id, now); });
}

TickResult BaseStation::process_batch(const workload::RequestBatch& batch,
                                      sim::Tick now) {
  TickResult result;
  result.tick = now;
  result.requests = batch.size();

  PolicyContext ctx;
  ctx.catalog = catalog_;
  ctx.cache = &cache_;
  ctx.servers = servers_;
  ctx.scorer = scorer_.get();
  ctx.now = now;
  ctx.budget = config_.download_budget;
  const std::vector<object::ObjectId> to_fetch = policy_->select(batch, ctx);

  // Fetch the selected objects over the fixed network.
  std::vector<object::Units> transfer_sizes;
  transfer_sizes.reserve(to_fetch.size());
  for (object::ObjectId id : to_fetch) {
    if (config_.fetch_failure_rate > 0.0 &&
        failure_rng_.bernoulli(config_.fetch_failure_rate)) {
      ++result.failed_fetches;  // fault: no transfer, cache untouched
      continue;
    }
    const server::FetchResult fetched = servers_->fetch(id);
    cache_.refresh(id, fetched, now);
    transfer_sizes.push_back(fetched.size);
    result.units_downloaded += fetched.size;
    ++result.objects_downloaded;
  }
  if (!transfer_sizes.empty()) {
    result.fetch_latency = network_.batch_completion_time(transfer_sizes);
    network_.submit_batch(transfer_sizes);
  }

  // Serve every request from the (now partially refreshed) cache and push
  // the payload onto the downlink. In coalescing mode the downlink is a
  // broadcast: one transmission per distinct object serves all of its
  // requesters this tick.
  std::vector<bool> already_sent;
  if (config_.coalesce_downlink) {
    already_sent.assign(catalog_->size(), false);
  }
  for (const workload::Request& request : batch) {
    cache_.record_read(request.object);
    const double x = cache_.recency_or_zero(request.object);
    result.recency_sum += x;
    result.score_sum += scorer_->score(x, request.target_recency);
    if (cache_.contains(request.object)) {
      if (config_.coalesce_downlink) {
        if (already_sent[request.object]) continue;
        already_sent[request.object] = true;
      }
      downlink_.enqueue(catalog_->object_size(request.object));
    }
  }
  result.downlink_delivered = downlink_.tick();

  totals_.add(result);
  return result;
}

}  // namespace mobi::core
