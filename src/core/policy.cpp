#include "core/policy.hpp"

#include "core/adaptive_budget.hpp"
#include "core/knapsack_parallel.hpp"
#include "core/latency_aware.hpp"
#include "core/swr_policy.hpp"

#include <algorithm>
#include <stdexcept>
#include <string_view>

namespace mobi::core {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

void check_context(const PolicyContext& ctx, bool needs_scorer = false,
                   bool needs_servers = false) {
  require(ctx.catalog != nullptr, "PolicyContext: catalog is null");
  require(ctx.cache != nullptr, "PolicyContext: cache is null");
  if (needs_scorer) require(ctx.scorer != nullptr, "PolicyContext: scorer is null");
  if (needs_servers) require(ctx.servers != nullptr, "PolicyContext: servers null");
}

/// Distinct requested objects, ascending id, into a reused buffer —
/// sort+unique replaces the reference std::set with zero allocations once
/// `out` is at capacity.
void distinct_objects_into(const workload::RequestBatch& batch,
                           std::vector<object::ObjectId>& out) {
  out.clear();
  for (const auto& request : batch) out.push_back(request.object);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace

const char* solver_name(KnapsackSolver solver) noexcept {
  switch (solver) {
    case KnapsackSolver::kExactDp: return "dp";
    case KnapsackSolver::kGreedy: return "greedy";
    case KnapsackSolver::kFptas: return "fptas";
    case KnapsackSolver::kParallelBnb: return "bnb-par";
  }
  return "?";
}

OnDemandKnapsackPolicy::OnDemandKnapsackPolicy(KnapsackSolver solver,
                                               double fptas_epsilon,
                                               std::size_t bnb_threads)
    : solver_(solver), fptas_epsilon_(fptas_epsilon) {
  if (solver == KnapsackSolver::kFptas &&
      (!(fptas_epsilon > 0.0) || fptas_epsilon >= 1.0)) {
    throw std::invalid_argument("OnDemandKnapsackPolicy: bad epsilon");
  }
  if (solver == KnapsackSolver::kParallelBnb) {
    ParallelBnbConfig config;
    config.threads = bnb_threads;
    engine_ = std::make_unique<ParallelKnapsackEngine>(config);
  }
}

OnDemandKnapsackPolicy::~OnDemandKnapsackPolicy() = default;

std::string OnDemandKnapsackPolicy::name() const {
  return std::string("on-demand-knapsack(") + solver_name(solver_) + ")";
}

void OnDemandKnapsackPolicy::set_metrics(obs::MetricsRegistry* registry,
                                         const std::string& prefix) {
  if (engine_) engine_->set_metrics(registry, prefix + ".knapsack.parallel");
}

void OnDemandKnapsackPolicy::select_into(const workload::RequestBatch& batch,
                                         const PolicyContext& ctx,
                                         std::vector<object::ObjectId>& out) {
  check_context(ctx, /*needs_scorer=*/true);
  out.clear();
  const CandidateSet& set =
      builder_.build(batch, *ctx.catalog, *ctx.cache, *ctx.scorer, ctx.peers,
                     ctx.now, ctx.residency);
  if (set.candidates.empty()) return;

  // Unlimited budget: take everything with positive tier profit.
  if (ctx.budget < 0) {
    for (const auto& cand : set.candidates) {
      if (tier_profit(cand) > 0.0) out.push_back(cand.object);
    }
    return;
  }

  // Each candidate enters the knapsack at its source tier's weight and
  // gain: peer-tier copies are cheaper (peer_size) but only lift
  // requesters to the peer copy's recency. With ctx.peers null every
  // tier is kOrigin and this is the pre-peer item list exactly.
  items_.clear();
  for (const auto& cand : set.candidates) {
    items_.push_back(KnapsackItem{tier_size(cand), tier_profit(cand)});
  }
  switch (solver_) {
    case KnapsackSolver::kExactDp:
      solve_dp(items_, ctx.budget, ws_, solution_);
      break;
    case KnapsackSolver::kGreedy:
      solve_greedy(items_, ctx.budget, ws_, solution_);
      break;
    case KnapsackSolver::kFptas:
      solve_fptas(items_, ctx.budget, fptas_epsilon_, ws_, solution_);
      break;
    case KnapsackSolver::kParallelBnb:
      engine_->solve(items_, ctx.budget, ws_, solution_);
      break;
  }
  for (std::size_t index : solution_.chosen) {
    out.push_back(set.candidates[index].object);
  }
}

void OnDemandLowestRecencyPolicy::select_into(
    const workload::RequestBatch& batch, const PolicyContext& ctx,
    std::vector<object::ObjectId>& out) {
  check_context(ctx);
  distinct_objects_into(batch, ids_);
  // Ascending cached recency; absent entries count as 0 (most urgent).
  // Pair sort over (recency, id): ids_ is ascending and distinct, so the
  // id tie-break reproduces the reference stable_sort exactly.
  by_recency_.clear();
  for (object::ObjectId id : ids_) {
    by_recency_.emplace_back(ctx.cache->recency_or_zero(id), id);
  }
  std::sort(by_recency_.begin(), by_recency_.end());
  out.clear();
  if (ctx.budget < 0) {
    for (const auto& [recency, id] : by_recency_) out.push_back(id);
    return;
  }
  object::Units left = ctx.budget;
  for (const auto& [recency, id] : by_recency_) {
    const object::Units size = ctx.catalog->object_size(id);
    if (size <= left) {
      out.push_back(id);
      left -= size;
    }
  }
}

void OnDemandStaleOnlyPolicy::select_into(const workload::RequestBatch& batch,
                                          const PolicyContext& ctx,
                                          std::vector<object::ObjectId>& out) {
  check_context(ctx, /*needs_scorer=*/false, /*needs_servers=*/true);
  distinct_objects_into(batch, ids_);
  out.clear();
  for (object::ObjectId id : ids_) {
    if (ctx.cache->is_stale(id, ctx.servers->version(id))) {
      out.push_back(id);
    }
  }
  // A budget, when set, truncates in id order (the paper uses no budget);
  // in-place compaction replaces the reference's second vector.
  if (ctx.budget >= 0) {
    object::Units left = ctx.budget;
    std::size_t kept = 0;
    for (object::ObjectId id : out) {
      const object::Units size = ctx.catalog->object_size(id);
      if (size <= left) {
        out[kept++] = id;
        left -= size;
      }
    }
    out.resize(kept);
  }
}

void AsyncRoundRobinPolicy::select_into(const workload::RequestBatch& /*batch*/,
                                        const PolicyContext& ctx,
                                        std::vector<object::ObjectId>& out) {
  check_context(ctx);
  require(ctx.budget >= 0, "AsyncRoundRobinPolicy: needs a finite budget");
  out.clear();
  const auto n = object::ObjectId(ctx.catalog->size());
  if (n == 0) return;
  object::Units left = ctx.budget;
  for (object::ObjectId visited = 0; visited < n; ++visited) {
    const object::ObjectId id = cursor_;
    const object::Units size = ctx.catalog->object_size(id);
    if (size > left) break;  // fixed order: stop at the first non-fit
    out.push_back(id);
    left -= size;
    cursor_ = object::ObjectId((cursor_ + 1) % n);
  }
}

void AsyncRefreshUpdatedPolicy::select_into(
    const workload::RequestBatch& /*batch*/, const PolicyContext& ctx,
    std::vector<object::ObjectId>& out) {
  check_context(ctx, /*needs_scorer=*/false, /*needs_servers=*/true);
  out.clear();
  object::Units left = ctx.budget;
  for (object::ObjectId id = 0; id < ctx.catalog->size(); ++id) {
    if (!ctx.cache->is_stale(id, ctx.servers->version(id))) continue;
    const object::Units size = ctx.catalog->object_size(id);
    if (ctx.budget >= 0) {
      if (size > left) continue;
      left -= size;
    }
    out.push_back(id);
  }
}

void DownloadAllPolicy::select_into(const workload::RequestBatch& batch,
                                    const PolicyContext& ctx,
                                    std::vector<object::ObjectId>& out) {
  check_context(ctx);
  distinct_objects_into(batch, out);
}

void CacheOnlyPolicy::select_into(const workload::RequestBatch& /*batch*/,
                                  const PolicyContext& /*ctx*/,
                                  std::vector<object::ObjectId>& out) {
  out.clear();
}

std::unique_ptr<DownloadPolicy> make_policy(const std::string& name) {
  if (name == "on-demand-knapsack" || name == "knapsack") {
    return std::make_unique<OnDemandKnapsackPolicy>();
  }
  if (name == "on-demand-knapsack-greedy") {
    return std::make_unique<OnDemandKnapsackPolicy>(KnapsackSolver::kGreedy);
  }
  // "on-demand-knapsack-bnb" with an optional ":<threads>" suffix, e.g.
  // "on-demand-knapsack-bnb:4"; no suffix (or :0) = hardware concurrency.
  if (constexpr std::string_view kBnb = "on-demand-knapsack-bnb";
      name.compare(0, kBnb.size(), kBnb) == 0) {
    std::size_t threads = 0;
    if (name.size() > kBnb.size()) {
      if (name[kBnb.size()] != ':' || name.size() == kBnb.size() + 1) {
        throw std::invalid_argument("make_policy: bad bnb suffix '" + name +
                                    "'");
      }
      const std::string suffix = name.substr(kBnb.size() + 1);
      std::size_t consumed = 0;
      threads = std::stoul(suffix, &consumed);
      if (consumed != suffix.size()) {
        throw std::invalid_argument("make_policy: bad bnb thread count '" +
                                    name + "'");
      }
    }
    return std::make_unique<OnDemandKnapsackPolicy>(
        KnapsackSolver::kParallelBnb, 0.1, threads);
  }
  if (name == "on-demand-lowest-recency") {
    return std::make_unique<OnDemandLowestRecencyPolicy>();
  }
  if (name == "on-demand-stale-only") {
    return std::make_unique<OnDemandStaleOnlyPolicy>();
  }
  if (name == "async-round-robin") {
    return std::make_unique<AsyncRoundRobinPolicy>();
  }
  if (name == "async-refresh-updated") {
    return std::make_unique<AsyncRefreshUpdatedPolicy>();
  }
  if (name == "adaptive-knapsack") {
    return std::make_unique<AdaptiveKnapsackPolicy>();
  }
  if (name == "on-demand-latency-aware") {
    return std::make_unique<OnDemandLatencyAwarePolicy>(2);
  }
  if (name == "stale-while-revalidate") {
    return std::make_unique<StaleWhileRevalidatePolicy>(5);
  }
  if (name == "download-all") return std::make_unique<DownloadAllPolicy>();
  if (name == "cache-only") return std::make_unique<CacheOnlyPolicy>();
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

}  // namespace mobi::core
