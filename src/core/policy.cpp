#include "core/policy.hpp"

#include "core/adaptive_budget.hpp"
#include "core/latency_aware.hpp"
#include "core/swr_policy.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace mobi::core {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

void check_context(const PolicyContext& ctx, bool needs_scorer = false,
                   bool needs_servers = false) {
  require(ctx.catalog != nullptr, "PolicyContext: catalog is null");
  require(ctx.cache != nullptr, "PolicyContext: cache is null");
  if (needs_scorer) require(ctx.scorer != nullptr, "PolicyContext: scorer is null");
  if (needs_servers) require(ctx.servers != nullptr, "PolicyContext: servers null");
}

/// Distinct requested objects, ascending id.
std::vector<object::ObjectId> distinct_objects(
    const workload::RequestBatch& batch) {
  std::set<object::ObjectId> ids;
  for (const auto& request : batch) ids.insert(request.object);
  return {ids.begin(), ids.end()};
}

}  // namespace

const char* solver_name(KnapsackSolver solver) noexcept {
  switch (solver) {
    case KnapsackSolver::kExactDp: return "dp";
    case KnapsackSolver::kGreedy: return "greedy";
    case KnapsackSolver::kFptas: return "fptas";
  }
  return "?";
}

OnDemandKnapsackPolicy::OnDemandKnapsackPolicy(KnapsackSolver solver,
                                               double fptas_epsilon)
    : solver_(solver), fptas_epsilon_(fptas_epsilon) {
  if (solver == KnapsackSolver::kFptas &&
      (!(fptas_epsilon > 0.0) || fptas_epsilon >= 1.0)) {
    throw std::invalid_argument("OnDemandKnapsackPolicy: bad epsilon");
  }
}

std::string OnDemandKnapsackPolicy::name() const {
  return std::string("on-demand-knapsack(") + solver_name(solver_) + ")";
}

std::vector<object::ObjectId> OnDemandKnapsackPolicy::select(
    const workload::RequestBatch& batch, const PolicyContext& ctx) {
  check_context(ctx, /*needs_scorer=*/true);
  const CandidateSet set =
      build_candidates(batch, *ctx.catalog, *ctx.cache, *ctx.scorer);
  if (set.candidates.empty()) return {};

  // Unlimited budget: take everything with positive profit.
  if (ctx.budget < 0) {
    std::vector<object::ObjectId> all;
    for (const auto& cand : set.candidates) {
      if (cand.profit > 0.0) all.push_back(cand.object);
    }
    return all;
  }

  std::vector<KnapsackItem> items;
  items.reserve(set.candidates.size());
  for (const auto& cand : set.candidates) {
    items.push_back(KnapsackItem{cand.size, cand.profit});
  }
  KnapsackSolution solution;
  switch (solver_) {
    case KnapsackSolver::kExactDp:
      solution = solve_dp(items, ctx.budget);
      break;
    case KnapsackSolver::kGreedy:
      solution = solve_greedy(items, ctx.budget);
      break;
    case KnapsackSolver::kFptas:
      solution = solve_fptas(items, ctx.budget, fptas_epsilon_);
      break;
  }
  std::vector<object::ObjectId> selected;
  selected.reserve(solution.chosen.size());
  for (std::size_t index : solution.chosen) {
    selected.push_back(set.candidates[index].object);
  }
  return selected;
}

std::vector<object::ObjectId> OnDemandLowestRecencyPolicy::select(
    const workload::RequestBatch& batch, const PolicyContext& ctx) {
  check_context(ctx);
  auto ids = distinct_objects(batch);
  // Ascending cached recency; absent entries count as 0 (most urgent).
  std::stable_sort(ids.begin(), ids.end(),
                   [&](object::ObjectId a, object::ObjectId b) {
                     return ctx.cache->recency_or_zero(a) <
                            ctx.cache->recency_or_zero(b);
                   });
  if (ctx.budget < 0) return ids;
  std::vector<object::ObjectId> selected;
  object::Units left = ctx.budget;
  for (object::ObjectId id : ids) {
    const object::Units size = ctx.catalog->object_size(id);
    if (size <= left) {
      selected.push_back(id);
      left -= size;
    }
  }
  return selected;
}

std::vector<object::ObjectId> OnDemandStaleOnlyPolicy::select(
    const workload::RequestBatch& batch, const PolicyContext& ctx) {
  check_context(ctx, /*needs_scorer=*/false, /*needs_servers=*/true);
  std::vector<object::ObjectId> selected;
  for (object::ObjectId id : distinct_objects(batch)) {
    if (ctx.cache->is_stale(id, ctx.servers->version(id))) {
      selected.push_back(id);
    }
  }
  // A budget, when set, truncates in id order (the paper uses no budget).
  if (ctx.budget >= 0) {
    object::Units left = ctx.budget;
    std::vector<object::ObjectId> fitting;
    for (object::ObjectId id : selected) {
      const object::Units size = ctx.catalog->object_size(id);
      if (size <= left) {
        fitting.push_back(id);
        left -= size;
      }
    }
    selected = std::move(fitting);
  }
  return selected;
}

std::vector<object::ObjectId> AsyncRoundRobinPolicy::select(
    const workload::RequestBatch& /*batch*/, const PolicyContext& ctx) {
  check_context(ctx);
  require(ctx.budget >= 0, "AsyncRoundRobinPolicy: needs a finite budget");
  const auto n = object::ObjectId(ctx.catalog->size());
  if (n == 0) return {};
  std::vector<object::ObjectId> selected;
  object::Units left = ctx.budget;
  for (object::ObjectId visited = 0; visited < n; ++visited) {
    const object::ObjectId id = cursor_;
    const object::Units size = ctx.catalog->object_size(id);
    if (size > left) break;  // fixed order: stop at the first non-fit
    selected.push_back(id);
    left -= size;
    cursor_ = object::ObjectId((cursor_ + 1) % n);
  }
  return selected;
}

std::vector<object::ObjectId> AsyncRefreshUpdatedPolicy::select(
    const workload::RequestBatch& /*batch*/, const PolicyContext& ctx) {
  check_context(ctx, /*needs_scorer=*/false, /*needs_servers=*/true);
  std::vector<object::ObjectId> selected;
  object::Units left = ctx.budget;
  for (object::ObjectId id = 0; id < ctx.catalog->size(); ++id) {
    if (!ctx.cache->is_stale(id, ctx.servers->version(id))) continue;
    const object::Units size = ctx.catalog->object_size(id);
    if (ctx.budget >= 0) {
      if (size > left) continue;
      left -= size;
    }
    selected.push_back(id);
  }
  return selected;
}

std::vector<object::ObjectId> DownloadAllPolicy::select(
    const workload::RequestBatch& batch, const PolicyContext& ctx) {
  check_context(ctx);
  return distinct_objects(batch);
}

std::vector<object::ObjectId> CacheOnlyPolicy::select(
    const workload::RequestBatch& /*batch*/, const PolicyContext& /*ctx*/) {
  return {};
}

std::unique_ptr<DownloadPolicy> make_policy(const std::string& name) {
  if (name == "on-demand-knapsack" || name == "knapsack") {
    return std::make_unique<OnDemandKnapsackPolicy>();
  }
  if (name == "on-demand-knapsack-greedy") {
    return std::make_unique<OnDemandKnapsackPolicy>(KnapsackSolver::kGreedy);
  }
  if (name == "on-demand-lowest-recency") {
    return std::make_unique<OnDemandLowestRecencyPolicy>();
  }
  if (name == "on-demand-stale-only") {
    return std::make_unique<OnDemandStaleOnlyPolicy>();
  }
  if (name == "async-round-robin") {
    return std::make_unique<AsyncRoundRobinPolicy>();
  }
  if (name == "async-refresh-updated") {
    return std::make_unique<AsyncRefreshUpdatedPolicy>();
  }
  if (name == "adaptive-knapsack") {
    return std::make_unique<AdaptiveKnapsackPolicy>();
  }
  if (name == "on-demand-latency-aware") {
    return std::make_unique<OnDemandLatencyAwarePolicy>(2);
  }
  if (name == "stale-while-revalidate") {
    return std::make_unique<StaleWhileRevalidatePolicy>(5);
  }
  if (name == "download-all") return std::make_unique<DownloadAllPolicy>();
  if (name == "cache-only") return std::make_unique<CacheOnlyPolicy>();
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

}  // namespace mobi::core
