#include "core/swr_policy.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "cache/ttl.hpp"

namespace mobi::core {

StaleWhileRevalidatePolicy::StaleWhileRevalidatePolicy(sim::Tick ttl)
    : ttl_(ttl) {
  if (ttl <= 0) {
    throw std::invalid_argument("StaleWhileRevalidatePolicy: ttl must be > 0");
  }
}

std::string StaleWhileRevalidatePolicy::name() const {
  return "stale-while-revalidate(ttl=" + std::to_string(ttl_) + ")";
}

std::vector<object::ObjectId> StaleWhileRevalidatePolicy::select(
    const workload::RequestBatch& batch, const PolicyContext& ctx) {
  if (!ctx.catalog || !ctx.cache) {
    throw std::invalid_argument("StaleWhileRevalidatePolicy: incomplete context");
  }
  const cache::TtlView ttl_view(*ctx.cache, ttl_);

  // Requested objects that are absent or TTL-expired, with their request
  // counts (popularity drives revalidation order, like proxy queues do).
  std::map<object::ObjectId, std::uint32_t> stale_counts;
  for (const auto& request : batch) {
    if (!ttl_view.fresh(request.object, ctx.now)) {
      ++stale_counts[request.object];
    }
  }
  std::vector<object::ObjectId> order;
  order.reserve(stale_counts.size());
  for (const auto& [id, count] : stale_counts) order.push_back(id);
  std::stable_sort(order.begin(), order.end(),
                   [&](object::ObjectId a, object::ObjectId b) {
                     return stale_counts[a] > stale_counts[b];
                   });

  if (ctx.budget < 0) return order;
  std::vector<object::ObjectId> selected;
  object::Units left = ctx.budget;
  for (object::ObjectId id : order) {
    const object::Units size = ctx.catalog->object_size(id);
    if (size <= left) {
      selected.push_back(id);
      left -= size;
    }
  }
  return selected;
}

}  // namespace mobi::core
