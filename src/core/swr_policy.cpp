#include "core/swr_policy.hpp"

#include <algorithm>
#include <stdexcept>

#include "cache/ttl.hpp"

namespace mobi::core {

StaleWhileRevalidatePolicy::StaleWhileRevalidatePolicy(sim::Tick ttl)
    : ttl_(ttl) {
  if (ttl <= 0) {
    throw std::invalid_argument("StaleWhileRevalidatePolicy: ttl must be > 0");
  }
}

std::string StaleWhileRevalidatePolicy::name() const {
  return "stale-while-revalidate(ttl=" + std::to_string(ttl_) + ")";
}

void StaleWhileRevalidatePolicy::select_into(
    const workload::RequestBatch& batch, const PolicyContext& ctx,
    std::vector<object::ObjectId>& out) {
  if (!ctx.catalog || !ctx.cache) {
    throw std::invalid_argument("StaleWhileRevalidatePolicy: incomplete context");
  }
  const cache::TtlView ttl_view(*ctx.cache, ttl_);

  // Requested objects that are absent or TTL-expired, with their request
  // counts (popularity drives revalidation order, like proxy queues do).
  // Sort + run-length-encode replaces the reference's counting map; the
  // (count desc, id asc) sort of distinct-id runs reproduces its
  // stable_sort over the id-ordered map exactly.
  stale_ids_.clear();
  for (const auto& request : batch) {
    if (!ttl_view.fresh(request.object, ctx.now)) {
      stale_ids_.push_back(request.object);
    }
  }
  std::sort(stale_ids_.begin(), stale_ids_.end());
  counts_.clear();
  for (std::size_t i = 0; i < stale_ids_.size();) {
    std::size_t j = i;
    while (j < stale_ids_.size() && stale_ids_[j] == stale_ids_[i]) ++j;
    counts_.emplace_back(std::uint32_t(j - i), stale_ids_[i]);
    i = j;
  }
  std::sort(counts_.begin(), counts_.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });

  out.clear();
  if (ctx.budget < 0) {
    for (const auto& [count, id] : counts_) out.push_back(id);
    return;
  }
  object::Units left = ctx.budget;
  for (const auto& [count, id] : counts_) {
    const object::Units size = ctx.catalog->object_size(id);
    if (size <= left) {
      out.push_back(id);
      left -= size;
    }
  }
}

}  // namespace mobi::core
