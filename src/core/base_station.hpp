// BaseStation: the orchestrator tying the whole architecture together
// (paper Figure 1). Per tick it:
//   1. applies server-side updates (decaying affected cache entries),
//   2. asks its DownloadPolicy which requested objects to fetch remotely,
//   3. fetches them over the fixed network (refreshing the cache and
//      accounting bandwidth/latency),
//   4. serves every request — fresh copy if just fetched, cached copy
//      otherwise — computing each client's recency score, and
//   5. pushes response payloads onto the wireless downlink.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"
#include "core/scoring.hpp"
#include "net/downlink.hpp"
#include "net/fixed_network.hpp"
#include "object/object.hpp"
#include "server/remote_server.hpp"
#include "sim/tick.hpp"
#include "workload/requests.hpp"
#include "workload/updates.hpp"

namespace mobi::obs {
class MetricsRegistry;
class Counter;
class Gauge;
class FixedHistogram;
class TraceSink;
class RequestTracer;
class PhaseProfiler;
}  // namespace mobi::obs

namespace mobi::core {

struct BaseStationConfig {
  /// Per-tick download budget in units; negative = unlimited.
  object::Units download_budget = -1;
  /// Fixed network (base station <-> servers).
  double network_bandwidth = 100.0;
  double network_latency = 1.0;
  double network_contention = 1.0;
  /// Wireless downlink (base station -> clients), units per tick.
  object::Units downlink_capacity = 100;
  /// When true, the downlink is treated as a broadcast medium: one
  /// transmission of an object serves every client that requested it this
  /// tick (response coalescing). When false each response is unicast.
  bool coalesce_downlink = false;
  /// Probability that a remote fetch fails this tick (transient fixed-
  /// network fault); failed fetches consume no bandwidth, leave the cache
  /// untouched, and the request is served stale. Deterministic under
  /// `failure_seed`.
  double fetch_failure_rate = 0.0;
  std::uint64_t failure_seed = 0x5eedf00dULL;
  /// Maximum retry attempts per failed fetch (0 = seed behavior: fail
  /// once, serve stale, never re-enqueue). With retries on, a failed
  /// fetch is re-enqueued with exponential backoff — 1, 2, 4, ... ticks
  /// between attempts — and retried ahead of the policy's own picks,
  /// consuming budget first. After the limit is exhausted the object is
  /// dropped from the retry queue and its requesters are served the
  /// stale cached copy at its naturally decayed score (graceful
  /// degradation rather than a stall).
  std::size_t fetch_retry_limit = 0;
};

struct TickResult {
  sim::Tick tick = 0;
  std::size_t requests = 0;
  std::size_t objects_downloaded = 0;  // origin fetches
  object::Units units_downloaded = 0;  // origin units (fixed network)
  std::size_t peer_fetches = 0;        // planned downloads served by a peer
  object::Units peer_units = 0;        // discounted inter-station units
  double score_sum = 0.0;          // summed per-client recency scores
  double recency_sum = 0.0;        // summed raw recency of copies served
  double fetch_latency = 0.0;      // fixed-network completion time
  std::size_t failed_fetches = 0;  // injected fixed-network faults
  std::size_t retries = 0;         // retry attempts made this tick
  std::size_t retry_successes = 0;
  std::size_t retry_exhausted = 0;  // objects dropped after the last retry
  std::size_t degraded_serves = 0;  // requests served past a failed fetch
  object::Units downlink_delivered = 0;

  double average_score() const noexcept {
    return requests ? score_sum / double(requests) : 1.0;
  }
};

struct RunTotals {
  std::size_t requests = 0;
  std::size_t objects_downloaded = 0;
  object::Units units_downloaded = 0;
  std::size_t peer_fetches = 0;
  object::Units peer_units = 0;
  double score_sum = 0.0;
  double recency_sum = 0.0;
  std::size_t failed_fetches = 0;
  std::size_t retries = 0;
  std::size_t retry_successes = 0;
  std::size_t retry_exhausted = 0;
  std::size_t degraded_serves = 0;

  void add(const TickResult& r) noexcept {
    requests += r.requests;
    objects_downloaded += r.objects_downloaded;
    units_downloaded += r.units_downloaded;
    peer_fetches += r.peer_fetches;
    peer_units += r.peer_units;
    score_sum += r.score_sum;
    recency_sum += r.recency_sum;
    failed_fetches += r.failed_fetches;
    retries += r.retries;
    retry_successes += r.retry_successes;
    retry_exhausted += r.retry_exhausted;
    degraded_serves += r.degraded_serves;
  }
  double average_score() const noexcept {
    return requests ? score_sum / double(requests) : 1.0;
  }
  double average_recency() const noexcept {
    return requests ? recency_sum / double(requests) : 1.0;
  }
};

class BaseStation {
 public:
  BaseStation(const object::Catalog& catalog, server::ServerPool& servers,
              std::shared_ptr<const cache::DecayModel> decay,
              std::unique_ptr<RecencyScorer> scorer,
              std::unique_ptr<DownloadPolicy> policy,
              const BaseStationConfig& config = {});

  /// Applies one object update at the servers and decays the cache entry.
  void on_server_update(object::ObjectId id, sim::Tick now);

  /// Runs an update process for this tick (steps 1 above).
  void apply_updates(workload::UpdateProcess& updates, sim::Tick now);

  /// Steps 2-5 for one request batch.
  TickResult process_batch(const workload::RequestBatch& batch, sim::Tick now);

  const cache::Cache& cache() const noexcept { return cache_; }
  cache::Cache& cache() noexcept { return cache_; }
  const net::WirelessDownlink& downlink() const noexcept { return downlink_; }
  const net::FixedNetwork& network() const noexcept { return network_; }
  const DownloadPolicy& policy() const noexcept { return *policy_; }
  const RecencyScorer& scorer() const noexcept { return *scorer_; }
  const RunTotals& totals() const noexcept { return totals_; }
  object::Units download_budget() const noexcept { return config_.download_budget; }
  void set_download_budget(object::Units budget) noexcept {
    config_.download_budget = budget;
  }

  /// Registers this station's metrics under `prefix` — serve mix
  /// (`<prefix>.requests/.hits/.stale_serves/.fresh_serves`), fetch
  /// accounting (`.fetches/.failed_fetches/.units_downloaded/
  /// .coalesced_responses`), per-tick budget gauges (`.budget_spent/
  /// .budget_left`), a per-tick score gauge (`.tick_score_avg`) and
  /// wall-clock histograms (`.solve_time_us`, `.fetch_latency`) — and
  /// wires the owned cache (`<prefix>.cache.*`) and downlink
  /// (`<prefix>.downlink.*`) into the same registry. Pass nullptr to
  /// detach; the detached hot path costs one branch per tick section.
  /// Wall-clock histograms are observational only and never feed back
  /// into simulation state.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "bs");

  /// Attaches scoped tracing of the per-tick phases (select/fetch/serve);
  /// nullptr (the default) disables it.
  void set_trace(obs::TraceSink* sink) noexcept { trace_ = sink; }

  /// Attaches sim-time request-lifecycle tracing: arrival/hit/degraded/
  /// delivery events in the serve loop, fetch/retry events on the fetch
  /// paths, and (via the owned links) downlink and fixed-network events.
  /// The tick is stamped once per batch with RequestTracer::begin_tick,
  /// so the links need no extra tick plumbing. Observation-only, same as
  /// set_metrics: a traced run is bit-identical to an untraced one.
  /// nullptr detaches everywhere.
  void set_request_tracer(obs::RequestTracer* tracer) noexcept;

  const obs::RequestTracer* request_tracer() const noexcept {
    return tracer_;
  }

  /// Attaches a phase profiler: the tick sections run under ScopedPhase
  /// spans (`bs.retry` / `bs.select` / `bs.fetch` / `bs.serve` with a
  /// nested `bs.downlink`) carrying deterministic sim costs — retries
  /// attempted, requests selected over, objects fetched, requests
  /// served, downlink units delivered. The profiler is single-threaded;
  /// attach one per driving thread. nullptr (the default) detaches and
  /// costs one branch per section.
  void set_profiler(obs::PhaseProfiler* profiler);

  obs::PhaseProfiler* profiler() const noexcept { return profiler_; }

  /// Attaches a fault injector: its per-tick windows are advanced at the
  /// top of process_batch, fetch-failure draws gate every remote fetch,
  /// congestion draws stretch fixed-network completions, and downlink-drop
  /// draws are wired into the owned downlink. The shared ServerPool is
  /// NOT wired here (it may serve several stations) — attach it to the
  /// pool separately with ServerPool::set_fault_injector so outage
  /// windows gate availability. nullptr detaches everything. An idle
  /// injector (empty plan) draws nothing and the tick stream is
  /// bit-identical to the detached path.
  void set_fault_injector(net::FaultInjector* injector);

  const net::FaultInjector* fault_injector() const noexcept { return fault_; }

  /// Attaches a coherent peer-cache view (core/peer_source.hpp): the
  /// policy context gains the peer tier, and the fetch phase resolves
  /// each selected object against the same rule the candidate builder
  /// used — a valid peer copy strictly fresher than the own cached
  /// recency is copied over the inter-station link (discounted units,
  /// immune to fixed-network faults, relayed recency) instead of pulled
  /// from the origin. Every cache fill is reported back through the
  /// source so a coherence directory can track this station as a sharer.
  /// nullptr (the default) detaches and the station behaves exactly as
  /// before the peer tier existed.
  void set_peer_source(PeerSource* peers) noexcept { peers_ = peers; }

  const PeerSource* peer_source() const noexcept { return peers_; }

  /// Attaches a mobility residency probe (core/residency.hpp): the policy
  /// context's knapsack benefit is scaled per requesting client by the
  /// probability the client is still resident when the fetch lands.
  /// Probes are pure reads (no draws, no mutation), so this only changes
  /// what the policy values — nullptr (the default) is bit-identical to
  /// the residence-blind station.
  void set_residency_probe(const ResidencyProbe* probe) noexcept {
    residency_ = probe;
  }

  const ResidencyProbe* residency_probe() const noexcept { return residency_; }

  /// Objects currently awaiting a backoff retry (tests/diagnostics).
  std::size_t retry_queue_depth() const noexcept { return retry_queue_.size(); }

 private:
  /// True when this fetch attempt must fail: legacy bernoulli fault
  /// first (stream-compatible with the pre-injector code), then the
  /// injector's fetch-failure draw, then the owning server's outage
  /// window. Short-circuits, so an idle injector costs two branches.
  bool fetch_blocked(object::ObjectId id);

  /// Allocates the retry/degraded-serve scratch once (outside the steady
  /// state): failure stamps, the retry-pending dedup bitmap, and a retry
  /// queue reserved to catalog size so in-loop pushes never reallocate.
  void ensure_fault_scratch();

  struct RetryEntry {
    object::ObjectId id;
    sim::Tick next_attempt;
    std::uint32_t attempts;   // failed attempts so far, initial included
    sim::Tick first_failure;  // tick of the initial failed fetch
    sim::Tick last_attempt;   // tick of the most recent attempt
  };

  const object::Catalog* catalog_;
  server::ServerPool* servers_;
  cache::Cache cache_;
  std::unique_ptr<RecencyScorer> scorer_;
  std::unique_ptr<DownloadPolicy> policy_;
  BaseStationConfig config_;
  net::FixedNetwork network_;
  net::WirelessDownlink downlink_;
  util::Rng failure_rng_;
  RunTotals totals_;

  // Per-batch scratch retained across ticks (docs/performance.md): fetch
  // list, transfer sizes, and the epoch-stamped coalesce array that
  // replaces a per-tick O(catalog) clear with one counter bump.
  std::vector<object::ObjectId> to_fetch_;
  std::vector<object::Units> transfer_sizes_;
  std::vector<std::uint64_t> sent_epoch_;
  std::uint64_t serve_epoch_ = 0;

  // Resilience state (allocated lazily by ensure_fault_scratch, only when
  // an injector is attached or retries are enabled — the fault-free
  // steady state never touches it). failed_stamp_[id] == serve_epoch_
  // marks "fetch of id failed this tick" for degraded-serve accounting;
  // retry_pending_ dedups queue entries so the preallocated retry queue
  // is bounded by the catalog.
  PeerSource* peers_ = nullptr;
  const ResidencyProbe* residency_ = nullptr;
  net::FaultInjector* fault_ = nullptr;
  std::vector<RetryEntry> retry_queue_;
  std::vector<std::uint8_t> retry_pending_;
  std::vector<std::uint64_t> failed_stamp_;

  struct Instruments {
    obs::Counter* requests = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* stale_serves = nullptr;
    obs::Counter* fresh_serves = nullptr;
    obs::Counter* fetches = nullptr;
    obs::Counter* failed_fetches = nullptr;
    obs::Counter* units_downloaded = nullptr;
    obs::Counter* peer_fetches = nullptr;
    obs::Counter* peer_units = nullptr;
    obs::Counter* coalesced_responses = nullptr;
    obs::Counter* fault_retries = nullptr;
    obs::Counter* fault_retry_successes = nullptr;
    obs::Counter* fault_retry_exhausted = nullptr;
    obs::Counter* fault_degraded_serves = nullptr;
    obs::Gauge* fault_retry_queue_depth = nullptr;
    obs::Gauge* budget_spent = nullptr;
    obs::Gauge* budget_left = nullptr;
    obs::Gauge* tick_score_avg = nullptr;
    obs::FixedHistogram* solve_time_us = nullptr;
    obs::FixedHistogram* fetch_latency = nullptr;
  };
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  obs::RequestTracer* tracer_ = nullptr;
  Instruments inst_;

  // Phase ids cached at set_profiler so the hot path never touches
  // strings (obs::PhaseProfiler::phase does a name lookup).
  obs::PhaseProfiler* profiler_ = nullptr;
  struct PhaseIds {
    std::uint32_t retry = 0;
    std::uint32_t select = 0;
    std::uint32_t fetch = 0;
    std::uint32_t serve = 0;
    std::uint32_t downlink = 0;
  };
  PhaseIds phase_ids_;
};

}  // namespace mobi::core
