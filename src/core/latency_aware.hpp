// Latency-aware on-demand selection.
//
// The paper notes its knapsack mapping "considers only the limit on the
// amount of bandwidth that can be used to answer a set of queries, and
// does not model network latency" (§2). On a real fixed network every
// fetch pays a fixed round-trip overhead before its bytes flow, so the
// true cost of downloading object u within a tick's time budget is
//   cost(u) = overhead_units + size(u)
// where overhead_units = per-fetch latency x bandwidth. With that cost the
// problem is still a 0/1 knapsack — just over effective costs — but its
// solutions shift away from "many tiny objects" toward fewer, larger
// downloads as the overhead grows. This policy implements the corrected
// mapping; setting overhead to zero recovers the paper's policy exactly.
#pragma once

#include "core/policy.hpp"

namespace mobi::core {

class OnDemandLatencyAwarePolicy final : public DownloadPolicy {
 public:
  /// `overhead_units`: per-fetch fixed cost, in data units (latency times
  /// bandwidth). Must be >= 0.
  explicit OnDemandLatencyAwarePolicy(object::Units overhead_units);

  void select_into(const workload::RequestBatch& batch,
                   const PolicyContext& ctx,
                   std::vector<object::ObjectId>& out) override;
  std::string name() const override;

  object::Units overhead_units() const noexcept { return overhead_; }

 private:
  object::Units overhead_;
  CandidateBuilder builder_;
  KnapsackWorkspace ws_;
  std::vector<KnapsackItem> items_;
  KnapsackSolution solution_;
};

}  // namespace mobi::core
