// Parallel knapsack engine for large batches (thousands of candidates x
// large budgets): a multi-threaded branch-and-bound with a shared best
// bound and per-thread subproblem deques over util::ThreadPool, plus a
// word-parallel DP entry point (the kernel itself lives in knapsack.cpp,
// see detail::DpKernel).
//
// Determinism contract: ParallelKnapsackEngine::solve returns *exactly*
// the solve_dp answer — same chosen indices, same value double, same used
// units — for any thread count, including 1 (locked by the differential
// fuzz in tests/knapsack_parallel_test.cpp). It does so in two phases:
//
//   Phase 1 (parallel)  — find the optimal *value* V. Workers race over a
//     BFS-decomposed prefix of the density-ordered search tree; a shared
//     atomic incumbent only ever increases towards V, and pruning against
//     a racy read of it is benign (the max found is schedule-independent
//     when profit sums are exactly representable; see the caveat below).
//     Candidate incumbents are folded over ascending item indices so the
//     double matches the DP's accumulation order bit for bit.
//
//   Phase 2 (serial, caller thread) — reconstruct the DP-canonical set:
//     among all optimal subsets, solve_dp returns the mask-minimal one
//     (see knapsack.hpp). A DFS over indices n-1..0 that explores the
//     exclude branch first visits complete assignments in ascending-mask
//     order, so the first completion whose ascending-fold value reaches V
//     *is* the canonical set. LP-bound pruning and a take-the-rest
//     shortcut keep this phase tiny in practice.
//
// Exactness caveat: bit-identity across thread counts is guaranteed when
// optimal profit sums are exactly representable (e.g. profits on a
// modest binary grid, as everywhere in this codebase where scores are
// folded). With adversarial doubles whose near-optimal sums differ by
// less than the pruning epsilon (1e-12), phase 1 may keep either; the
// engine still returns an optimal-value canonical solution.
//
// If either phase exceeds its node budget the engine falls back to
// solve_dp on the caller thread — the *result* is the same either way, so
// a schedule-dependent fallback decision never shows in the output.
//
// Zero-allocation contract: all scratch (worker deques, subproblem pool,
// per-thread taken flags, reconstruction stacks) is grown to the
// high-water mark of the instances seen, exactly like KnapsackWorkspace;
// steady-state solves allocate nothing (tests/alloc_regression_test.cpp).
// Workers are persistent: they are submitted to the pool once at
// construction and parked on a condition variable between solves.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/knapsack.hpp"
#include "object/object.hpp"

namespace mobi::obs {
class MetricsRegistry;
}  // namespace mobi::obs

namespace mobi::core {

struct ParallelBnbConfig {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (floor 1).
  std::size_t threads = 0;
  /// Target number of subproblems carved from the search-tree prefix; the
  /// decomposition depends only on the instance (never on the thread
  /// count), so work stealing cannot change what is explored.
  std::size_t subproblem_target = 64;
  /// Maximum prefix depth of the BFS decomposition (<= 60: a subproblem
  /// stores its taken-prefix as a 64-bit mask).
  std::size_t max_prefix_depth = 40;
  /// Per-phase node budget; exceeding it falls back to solve_dp.
  std::uint64_t node_limit = 20'000'000;
  /// Instances with at most this many items skip the parallel machinery
  /// and run the search inline on the caller thread.
  std::size_t serial_cutoff = 24;
};

/// Monotone since-construction totals; readable between solves.
struct ParallelBnbStats {
  std::uint64_t solves = 0;           // engine solve() calls
  std::uint64_t shortcut_solves = 0;  // settled by an exactness shortcut
  std::uint64_t bnb_runs = 0;         // reached the branch-and-bound
  std::uint64_t dp_fallbacks = 0;     // node budget hit -> solve_dp
  std::uint64_t subproblems = 0;      // prefix-tree subproblems dispatched
  std::uint64_t steals = 0;           // deque steals between workers
  std::uint64_t nodes = 0;            // phase-1 search nodes (all threads)
  std::uint64_t phase2_nodes = 0;     // canonical-reconstruction nodes
};

/// See the file comment for the algorithm and its contracts. One engine
/// per policy/owner; solve() is not reentrant (the engine's own workers
/// are the only concurrency).
class ParallelKnapsackEngine {
 public:
  explicit ParallelKnapsackEngine(ParallelBnbConfig config = {});
  ~ParallelKnapsackEngine();
  ParallelKnapsackEngine(const ParallelKnapsackEngine&) = delete;
  ParallelKnapsackEngine& operator=(const ParallelKnapsackEngine&) = delete;

  std::size_t threads() const noexcept;
  const ParallelBnbConfig& config() const noexcept;

  /// Exact solve, bit-identical to solve_dp(items, capacity, ws, out).
  /// Borrows `ws` for the density order, shortcut scratch, and any DP
  /// fallback; allocation-free once engine + workspace are warm.
  void solve(std::span<const KnapsackItem> items, object::Units capacity,
             KnapsackWorkspace& ws, KnapsackSolution& out);

  const ParallelBnbStats& stats() const noexcept;

  /// Registers the `<prefix>.*` counter/gauge family (solves, bnb_runs,
  /// dp_fallbacks, subproblems, steals, nodes, phase2_nodes, threads) and
  /// mirrors the stats into it after every solve, from the caller thread
  /// (MetricsRegistry is single-threaded by contract). nullptr detaches.
  /// Node/steal totals are schedule-dependent — export them to dashboards,
  /// never into golden comparisons.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "knapsack.parallel");

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Single solve through the word-parallel DP kernel regardless of the
/// process-wide kernel setting (detail::set_dp_kernel); bit-identical to
/// solve_dp. Test/bench entry point for kernel differentials.
void solve_dp_word_parallel(std::span<const KnapsackItem> items,
                            object::Units capacity, KnapsackWorkspace& ws,
                            KnapsackSolution& out);

}  // namespace mobi::core
