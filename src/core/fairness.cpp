#include "core/fairness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace mobi::core {

double jain_index(std::span<const double> scores) {
  double sum = 0.0, sum_sq = 0.0;
  for (double x : scores) {
    if (x < 0.0) throw std::invalid_argument("jain_index: negative score");
    sum += x;
    sum_sq += x * x;
  }
  if (scores.empty() || sum_sq == 0.0) return 1.0;
  return sum * sum / (double(scores.size()) * sum_sq);
}

double min_score(std::span<const double> scores) {
  double lowest = 1.0;
  for (double x : scores) lowest = std::min(lowest, x);
  return lowest;
}

double score_quantile(std::span<const double> scores, double q) {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("score_quantile: q outside [0, 1]");
  }
  if (scores.empty()) return 1.0;
  std::vector<double> sorted(scores.begin(), scores.end());
  std::sort(sorted.begin(), sorted.end());
  const double position = q * double(sorted.size() - 1);
  const auto lo = std::size_t(std::floor(position));
  const auto hi = std::size_t(std::ceil(position));
  const double frac = position - double(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace mobi::core
