#include "core/scoring.hpp"

#include <cmath>
#include <stdexcept>

namespace mobi::core {

double RecencyScorer::score(double x, double c) const {
  if (x < 0.0 || x > 1.0) {
    throw std::invalid_argument("RecencyScorer::score: x must be in [0, 1]");
  }
  if (!(c > 0.0) || c > 1.0) {
    throw std::invalid_argument("RecencyScorer::score: c must be in (0, 1]");
  }
  if (x >= c) return 1.0;
  return below_target(x, c);
}

double ReciprocalScorer::below_target(double x, double c) const {
  return 1.0 / (1.0 + std::abs(x / c - 1.0));
}

double ExponentialScorer::below_target(double x, double c) const {
  return std::exp(-std::abs(x / c - 1.0));
}

double StepScorer::below_target(double /*x*/, double /*c*/) const {
  return 0.0;
}

std::unique_ptr<RecencyScorer> make_scorer(const std::string& name) {
  if (name == "reciprocal") return std::make_unique<ReciprocalScorer>();
  if (name == "exponential") return std::make_unique<ExponentialScorer>();
  if (name == "step") return std::make_unique<StepScorer>();
  throw std::invalid_argument("make_scorer: unknown scorer '" + name + "'");
}

}  // namespace mobi::core
