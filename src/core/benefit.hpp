// Per-object download profit (paper §2's knapsack mapping).
//
// For a batch of requests, every object u accumulates:
//   profit(u) = sum over clients i requesting u of
//               benefit(i) = 1.0 - score(cached recency of u, C_i)
// Downloading u raises each requesting client's score to 1.0, so profit is
// exactly the total score gained by spending size(u) units of budget on u.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/cache.hpp"
#include "core/peer_source.hpp"
#include "core/residency.hpp"
#include "core/scoring.hpp"
#include "object/object.hpp"
#include "sim/tick.hpp"
#include "workload/requests.hpp"

namespace mobi::core {

/// Where a planned download would be sourced from. kLocal is implicit
/// (serving from the own cache needs no download); candidates carry kPeer
/// when a coherent peer copy beats the own cached recency, else kOrigin.
enum class SourceTier : std::uint8_t { kLocal, kPeer, kOrigin };

/// One knapsack candidate: an object someone asked for this batch.
struct DownloadCandidate {
  object::ObjectId object = 0;
  object::Units size = 0;
  double profit = 0.0;           // total benefit of an *origin* download
  std::uint32_t requests = 0;    // popularity within the batch
  double cached_score_sum = 0.0; // sum of per-client scores if served stale

  // Peer tier (populated only when a PeerSource was consulted and offered
  // a copy fresher than the own cache; defaults leave the origin-only
  // path bit-identical to the pre-peer builder).
  SourceTier tier = SourceTier::kOrigin;
  double peer_recency = 0.0;     // recency the copy would arrive with
  double peer_score_sum = 0.0;   // sum of per-client scores at peer_recency
  object::Units peer_size = 0;   // discounted budget weight of a peer fetch
};

/// Budget weight of downloading the candidate via its tier.
inline object::Units tier_size(const DownloadCandidate& cand) noexcept {
  return cand.tier == SourceTier::kPeer ? cand.peer_size : cand.size;
}

/// Score gained by downloading via the tier: an origin copy lifts every
/// requester to 1.0 (profit); a peer copy lifts them to
/// score(peer_recency, C) instead. Never negative — the peer tier is only
/// chosen when peer_recency strictly beats the cached recency, and the
/// scorer is monotone in recency.
inline double tier_profit(const DownloadCandidate& cand) noexcept {
  return cand.tier == SourceTier::kPeer
             ? cand.peer_score_sum - cand.cached_score_sum
             : cand.profit;
}

struct CandidateSet {
  std::vector<DownloadCandidate> candidates;
  std::size_t total_requests = 0;
  /// Sum over all requests of the score if *everything* were served from
  /// cache; Average Score of a solution = (baseline + value(solution)) /
  /// total_requests.
  double baseline_score_sum = 0.0;
};

/// Builds candidates from a request batch against the live cache state.
/// An uncached object has recency 0 (must be downloaded to score at all).
CandidateSet build_candidates(const workload::RequestBatch& batch,
                              const object::Catalog& catalog,
                              const cache::Cache& cache,
                              const RecencyScorer& scorer);

/// Reference implementation of build_candidates using an ordered map —
/// the original O(R log D) aggregation, kept verbatim as the oracle for
/// the differential fuzz in tests/benefit_diff_test.cpp.
CandidateSet build_candidates_reference(const workload::RequestBatch& batch,
                                        const object::Catalog& catalog,
                                        const cache::Cache& cache,
                                        const RecencyScorer& scorer);

/// Reusable aggregation state for build_candidates: an epoch-stamped dense
/// slot array over the catalog turns the per-batch map into O(R + D) with
/// zero allocations once the buffers reach their high-water size. Output
/// is bit-identical to build_candidates_reference (per-object doubles
/// accumulate in the same batch order; candidates are emitted in id
/// order). One builder per policy — the returned set aliases internal
/// storage and is valid until the next build() call.
class CandidateBuilder {
 public:
  CandidateBuilder() = default;
  CandidateBuilder(const CandidateBuilder&) = delete;
  CandidateBuilder& operator=(const CandidateBuilder&) = delete;

  const CandidateSet& build(const workload::RequestBatch& batch,
                            const object::Catalog& catalog,
                            const cache::Cache& cache,
                            const RecencyScorer& scorer);

  /// Peer-aware build: additionally consults `peers` (may be nullptr —
  /// then this is exactly the overload above) once per distinct object.
  /// A valid peer copy strictly fresher than the own cached recency tags
  /// the candidate kPeer with the discounted weight peer_cost(size,
  /// factor) and the per-request score sum at the peer's recency; the
  /// knapsack then weighs the peer tier against origin candidates inside
  /// one budget. The origin fields (size/profit/cached_score_sum) are
  /// computed identically either way.
  const CandidateSet& build(const workload::RequestBatch& batch,
                            const object::Catalog& catalog,
                            const cache::Cache& cache,
                            const RecencyScorer& scorer,
                            const PeerSource* peers, sim::Tick now);

  /// Mobility-aware build: additionally scales each requester's benefit
  /// contribution by `residency->probability(client)` — the chance the
  /// client is still resident when the download lands — so profit becomes
  ///   profit(u) = sum_i p_i * (1 - score(cached recency, C_i))
  /// and the peer tier's gain sum_i p_i * (peer score - cached score).
  /// Serving-outcome accounting (cached_score_sum, baseline_score_sum) is
  /// NOT weighted: those describe what actually happens, not what a
  /// download is worth. nullptr `residency` takes the exact unweighted
  /// code path of the overload above (bit-identical, branch not float
  /// math).
  const CandidateSet& build(const workload::RequestBatch& batch,
                            const object::Catalog& catalog,
                            const cache::Cache& cache,
                            const RecencyScorer& scorer,
                            const PeerSource* peers, sim::Tick now,
                            const ResidencyProbe* residency);

 private:
  std::vector<std::uint64_t> stamp_;  // per-object epoch of last touch
  std::vector<std::uint32_t> slot_;   // object -> index into set_.candidates
  std::uint64_t epoch_ = 0;           // 0 = never seen
  CandidateSet set_;
};

/// Builds candidates directly from per-object aggregates — the §4 setup,
/// where Cache Recency Score is itself the parameter ("the recency score
/// of a cached object averaged over the clients who request the object").
/// profit = num_requests * (1 - avg_cached_score).
CandidateSet build_candidates_from_aggregates(
    std::span<const object::Units> sizes,
    std::span<const std::uint32_t> num_requests,
    std::span<const double> avg_cached_score);

/// Average Score (paper §4.1) achieved by downloading the candidate subset
/// `chosen` (indices into set.candidates) and serving the rest from cache.
double average_score(const CandidateSet& set,
                     std::span<const std::size_t> chosen);

}  // namespace mobi::core
