// Per-object download profit (paper §2's knapsack mapping).
//
// For a batch of requests, every object u accumulates:
//   profit(u) = sum over clients i requesting u of
//               benefit(i) = 1.0 - score(cached recency of u, C_i)
// Downloading u raises each requesting client's score to 1.0, so profit is
// exactly the total score gained by spending size(u) units of budget on u.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/cache.hpp"
#include "core/scoring.hpp"
#include "object/object.hpp"
#include "workload/requests.hpp"

namespace mobi::core {

/// One knapsack candidate: an object someone asked for this batch.
struct DownloadCandidate {
  object::ObjectId object = 0;
  object::Units size = 0;
  double profit = 0.0;           // total benefit of downloading
  std::uint32_t requests = 0;    // popularity within the batch
  double cached_score_sum = 0.0; // sum of per-client scores if served stale
};

struct CandidateSet {
  std::vector<DownloadCandidate> candidates;
  std::size_t total_requests = 0;
  /// Sum over all requests of the score if *everything* were served from
  /// cache; Average Score of a solution = (baseline + value(solution)) /
  /// total_requests.
  double baseline_score_sum = 0.0;
};

/// Builds candidates from a request batch against the live cache state.
/// An uncached object has recency 0 (must be downloaded to score at all).
CandidateSet build_candidates(const workload::RequestBatch& batch,
                              const object::Catalog& catalog,
                              const cache::Cache& cache,
                              const RecencyScorer& scorer);

/// Builds candidates directly from per-object aggregates — the §4 setup,
/// where Cache Recency Score is itself the parameter ("the recency score
/// of a cached object averaged over the clients who request the object").
/// profit = num_requests * (1 - avg_cached_score).
CandidateSet build_candidates_from_aggregates(
    std::span<const object::Units> sizes,
    std::span<const std::uint32_t> num_requests,
    std::span<const double> avg_cached_score);

/// Average Score (paper §4.1) achieved by downloading the candidate subset
/// `chosen` (indices into set.candidates) and serving the rest from cache.
double average_score(const CandidateSet& set,
                     std::span<const std::size_t> chosen);

}  // namespace mobi::core
