// 0/1 knapsack solvers (paper §2: "the problem maps to the knapsack
// problem [3] and we use dynamic programming to solve it").
//
// The exact DP computes, in one pass, the optimal value at *every*
// capacity up to the bound — the KnapsackProfile — which is precisely what
// §4 plots (Average Score as a function of the upper bound on units
// downloaded) and what the bound estimator (§6 future work) consumes.
// A greedy density heuristic and an FPTAS are provided as the polynomial
// approximations the paper mentions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "object/object.hpp"

namespace mobi::core {

struct KnapsackItem {
  object::Units size = 1;   // > 0
  double profit = 0.0;      // >= 0
};

struct KnapsackSolution {
  double value = 0.0;
  object::Units used = 0;
  std::vector<std::size_t> chosen;  // indices into the item span, ascending
};

/// Exact optimal values for every capacity 0..max_capacity, with item
/// reconstruction at any capacity. The decision matrix is one flat
/// allocation of n rows x (max_capacity + 1) bits, packed into 64-bit
/// words (each row padded to a whole word), so memory is exactly
/// n * ceil((max_capacity + 1) / 64) words plus O(max_capacity) doubles —
/// no per-row vector headers, and row i lives contiguously at
/// [i * row_words, (i + 1) * row_words).
class KnapsackProfile {
 public:
  KnapsackProfile(std::span<const KnapsackItem> items,
                  object::Units max_capacity);

  object::Units max_capacity() const noexcept {
    return object::Units(values_.size()) - 1;
  }
  std::size_t item_count() const noexcept { return item_sizes_.size(); }

  /// Optimal total profit at capacity c (0 <= c <= max_capacity).
  double value_at(object::Units c) const;
  /// The full value curve, indexed by capacity.
  const std::vector<double>& values() const noexcept { return values_; }

  /// An optimal item subset at capacity c.
  KnapsackSolution solution_at(object::Units c) const;

 private:
  bool taken(std::size_t item, std::size_t c) const noexcept {
    return (take_bits_[item * row_words_ + (c >> 6)] >> (c & 63)) & 1u;
  }

  std::vector<double> values_;  // final row: best value per capacity
  // Flat bit-matrix: bit c of row i set iff item i is taken at capacity c.
  std::vector<std::uint64_t> take_bits_;
  std::size_t row_words_ = 0;  // 64-bit words per row
  std::vector<object::Units> item_sizes_;
};

/// Exact DP solution at a single capacity.
KnapsackSolution solve_dp(std::span<const KnapsackItem> items,
                          object::Units capacity);

/// Greedy by profit density (profit/size), with the classic best-single-
/// item fallback; a 1/2-approximation. O(n log n).
KnapsackSolution solve_greedy(std::span<const KnapsackItem> items,
                              object::Units capacity);

/// Fully polynomial approximation scheme via profit scaling: returns a
/// feasible solution with value >= (1 - epsilon) * OPT.
/// Memory grows as O(n^2 * (n/epsilon)) bits; throws std::invalid_argument
/// if that would exceed ~64 MiB (keep n or 1/epsilon moderate).
KnapsackSolution solve_fptas(std::span<const KnapsackItem> items,
                             object::Units capacity, double epsilon);

/// Exhaustive search; only for tests (throws if items.size() > 30).
KnapsackSolution solve_brute_force(std::span<const KnapsackItem> items,
                                   object::Units capacity);

/// Exact branch-and-bound with the fractional (LP) relaxation bound.
/// Often much faster than DP when the capacity is large relative to n;
/// worst case exponential. `node_limit` caps the search (throws
/// std::runtime_error when exceeded) so callers cannot hang.
KnapsackSolution solve_branch_and_bound(std::span<const KnapsackItem> items,
                                        object::Units capacity,
                                        std::uint64_t node_limit = 10'000'000);

}  // namespace mobi::core
