// 0/1 knapsack solvers (paper §2: "the problem maps to the knapsack
// problem [3] and we use dynamic programming to solve it").
//
// The exact DP computes, in one pass, the optimal value at *every*
// capacity up to the bound — the KnapsackProfile — which is precisely what
// §4 plots (Average Score as a function of the upper bound on units
// downloaded) and what the bound estimator (§6 future work) consumes.
// A greedy density heuristic and an FPTAS are provided as the polynomial
// approximations the paper mentions.
//
// The solve is the per-batch hot path of every cell (docs/performance.md),
// so every solver can borrow a KnapsackWorkspace: a bundle of scratch
// buffers that grow to the high-water mark of the instances seen and are
// then reused allocation-free across batches. Workspace-backed solves are
// bit-identical to fresh-construction solves (locked by the differential
// fuzz in tests/knapsack_diff_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "object/object.hpp"

namespace mobi::core {

struct KnapsackItem {
  object::Units size = 1;   // > 0
  double profit = 0.0;      // >= 0
};

struct KnapsackSolution {
  double value = 0.0;
  object::Units used = 0;
  std::vector<std::size_t> chosen;  // indices into the item span, ascending

  /// Resets to the empty solution; `chosen` keeps its capacity so a
  /// KnapsackSolution retained across batches never reallocates.
  void reset() noexcept {
    value = 0.0;
    used = 0;
    chosen.clear();
  }
};

class KnapsackProfile;

/// Reusable scratch for the solvers and for KnapsackProfile. Buffers only
/// ever grow (capacity high-water mark); contents are overwritten by each
/// borrowing solve, so a workspace must not back two live profiles at
/// once. One workspace per policy/thread — it is not synchronized.
class KnapsackWorkspace {
 public:
  KnapsackWorkspace() = default;
  KnapsackWorkspace(const KnapsackWorkspace&) = delete;
  KnapsackWorkspace& operator=(const KnapsackWorkspace&) = delete;

 private:
  friend class KnapsackProfile;
  friend void solve_dp(std::span<const KnapsackItem>, object::Units,
                       KnapsackWorkspace&, KnapsackSolution&);
  friend void solve_greedy(std::span<const KnapsackItem>, object::Units,
                           KnapsackWorkspace&, KnapsackSolution&);
  friend void solve_fptas(std::span<const KnapsackItem>, object::Units,
                          double, KnapsackWorkspace&, KnapsackSolution&);

  std::vector<double> values_;          // profile value curve
  std::vector<std::uint64_t> take_bits_;  // profile / FPTAS decision bits
  std::vector<object::Units> item_sizes_;
  std::vector<std::size_t> order_;      // density order (greedy, shortcuts)
  std::vector<std::uint64_t> scaled_;   // FPTAS scaled profits
  std::vector<object::Units> min_weight_;  // FPTAS weight-per-profit row
};

/// Exact optimal values for every capacity 0..max_capacity, with item
/// reconstruction at any capacity. The decision matrix is one flat
/// allocation of n rows x (max_capacity + 1) bits, packed into 64-bit
/// words (each row padded to a whole word), so memory is exactly
/// n * ceil((max_capacity + 1) / 64) words plus O(max_capacity) doubles —
/// no per-row vector headers, and row i lives contiguously at
/// [i * row_words, (i + 1) * row_words).
///
/// Constructed with an external KnapsackWorkspace the profile borrows the
/// workspace's buffers instead of allocating its own; the profile is then
/// valid only while the workspace outlives it and until the workspace is
/// lent to another solve. Profiles are neither copyable nor movable.
class KnapsackProfile {
 public:
  KnapsackProfile(std::span<const KnapsackItem> items,
                  object::Units max_capacity);
  KnapsackProfile(std::span<const KnapsackItem> items,
                  object::Units max_capacity, KnapsackWorkspace& workspace);

  KnapsackProfile(const KnapsackProfile&) = delete;
  KnapsackProfile& operator=(const KnapsackProfile&) = delete;

  object::Units max_capacity() const noexcept {
    return object::Units(ws_->values_.size()) - 1;
  }
  std::size_t item_count() const noexcept { return ws_->item_sizes_.size(); }

  /// Optimal total profit at capacity c (0 <= c <= max_capacity).
  double value_at(object::Units c) const;
  /// The full value curve, indexed by capacity (size max_capacity + 1).
  const std::vector<double>& values() const noexcept { return ws_->values_; }

  /// An optimal item subset at capacity c.
  KnapsackSolution solution_at(object::Units c) const;
  /// Same, written into `out` (cleared first) — allocation-free once
  /// out.chosen has capacity.
  void solution_into(object::Units c, KnapsackSolution& out) const;

 private:
  struct AlreadyValidated {};
  KnapsackProfile(std::span<const KnapsackItem> items,
                  object::Units max_capacity, KnapsackWorkspace* workspace,
                  AlreadyValidated);
  friend void solve_dp(std::span<const KnapsackItem>, object::Units,
                       KnapsackWorkspace&, KnapsackSolution&);

  void build(std::span<const KnapsackItem> items, object::Units max_capacity);

  bool taken(std::size_t item, std::size_t c) const noexcept {
    return (ws_->take_bits_[item * row_words_ + (c >> 6)] >> (c & 63)) & 1u;
  }

  KnapsackWorkspace own_;        // backs ws_ when no workspace was lent
  KnapsackWorkspace* ws_;        // &own_ or the external workspace
  std::size_t row_words_ = 0;    // 64-bit words per row
};

/// Exact DP solution at a single capacity.
KnapsackSolution solve_dp(std::span<const KnapsackItem> items,
                          object::Units capacity);

/// Allocation-free exact solve into `out`, borrowing `ws` for scratch.
/// Bit-identical to the other overload. Items are validated exactly once
/// here; two cheap exactness shortcuts (docs/performance.md) skip the
/// O(n * capacity) DP when the optimal set is provably forced:
///  * every positive-profit item fits within the capacity, or
///  * the density-greedy prefix fills the capacity exactly with a strict
///    density gap to the first item left out (the greedy value then meets
///    the fractional upper bound, and the optimum is unique).
void solve_dp(std::span<const KnapsackItem> items, object::Units capacity,
              KnapsackWorkspace& ws, KnapsackSolution& out);

/// Greedy by profit density (profit/size), with the classic best-single-
/// item fallback; a 1/2-approximation. O(n log n).
KnapsackSolution solve_greedy(std::span<const KnapsackItem> items,
                              object::Units capacity);
void solve_greedy(std::span<const KnapsackItem> items, object::Units capacity,
                  KnapsackWorkspace& ws, KnapsackSolution& out);

/// Fully polynomial approximation scheme via profit scaling: returns a
/// feasible solution with value >= (1 - epsilon) * OPT.
/// Memory grows as O(n^2 * (n/epsilon)) bits; throws std::invalid_argument
/// if that would exceed ~64 MiB (keep n or 1/epsilon moderate).
KnapsackSolution solve_fptas(std::span<const KnapsackItem> items,
                             object::Units capacity, double epsilon);
void solve_fptas(std::span<const KnapsackItem> items, object::Units capacity,
                 double epsilon, KnapsackWorkspace& ws, KnapsackSolution& out);

/// Exhaustive search; only for tests (throws if items.size() > 30).
KnapsackSolution solve_brute_force(std::span<const KnapsackItem> items,
                                   object::Units capacity);

/// Exact branch-and-bound with the fractional (LP) relaxation bound.
/// Often much faster than DP when the capacity is large relative to n;
/// worst case exponential. `node_limit` caps the search (throws
/// std::runtime_error when exceeded) so callers cannot hang.
KnapsackSolution solve_branch_and_bound(std::span<const KnapsackItem> items,
                                        object::Units capacity,
                                        std::uint64_t node_limit = 10'000'000);

}  // namespace mobi::core
