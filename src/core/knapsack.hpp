// 0/1 knapsack solvers (paper §2: "the problem maps to the knapsack
// problem [3] and we use dynamic programming to solve it").
//
// The exact DP computes, in one pass, the optimal value at *every*
// capacity up to the bound — the KnapsackProfile — which is precisely what
// §4 plots (Average Score as a function of the upper bound on units
// downloaded) and what the bound estimator (§6 future work) consumes.
// A greedy density heuristic and an FPTAS are provided as the polynomial
// approximations the paper mentions.
//
// The solve is the per-batch hot path of every cell (docs/performance.md),
// so every solver can borrow a KnapsackWorkspace: a bundle of scratch
// buffers that grow to the high-water mark of the instances seen and are
// then reused allocation-free across batches. Workspace-backed solves are
// bit-identical to fresh-construction solves (locked by the differential
// fuzz in tests/knapsack_diff_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "object/object.hpp"

namespace mobi::core {

struct KnapsackItem {
  object::Units size = 1;   // > 0
  double profit = 0.0;      // >= 0
};

struct KnapsackSolution {
  double value = 0.0;
  object::Units used = 0;
  std::vector<std::size_t> chosen;  // indices into the item span, ascending

  /// Resets to the empty solution; `chosen` keeps its capacity so a
  /// KnapsackSolution retained across batches never reallocates.
  void reset() noexcept {
    value = 0.0;
    used = 0;
    chosen.clear();
  }
};

class KnapsackProfile;

namespace detail {
struct WorkspaceAccess;
}  // namespace detail

/// Reusable scratch for the solvers and for KnapsackProfile. Buffers only
/// ever grow (capacity high-water mark); contents are overwritten by each
/// borrowing solve, so a workspace must not back two live profiles at
/// once. One workspace per policy/thread — it is not synchronized.
class KnapsackWorkspace {
 public:
  KnapsackWorkspace() = default;
  KnapsackWorkspace(const KnapsackWorkspace&) = delete;
  KnapsackWorkspace& operator=(const KnapsackWorkspace&) = delete;

 private:
  friend class KnapsackProfile;
  friend struct detail::WorkspaceAccess;
  friend void solve_dp(std::span<const KnapsackItem>, object::Units,
                       KnapsackWorkspace&, KnapsackSolution&);
  friend void solve_greedy(std::span<const KnapsackItem>, object::Units,
                           KnapsackWorkspace&, KnapsackSolution&);
  friend void solve_fptas(std::span<const KnapsackItem>, object::Units,
                          double, KnapsackWorkspace&, KnapsackSolution&);

  std::vector<double> values_;          // profile value curve
  std::vector<double> values_prev_;     // word-parallel kernel's second row
  std::vector<std::uint64_t> take_bits_;  // profile / FPTAS decision bits
  std::vector<object::Units> item_sizes_;
  std::vector<std::size_t> order_;      // density order (greedy, shortcuts)
  std::vector<std::uint64_t> scaled_;   // FPTAS scaled profits
  std::vector<object::Units> min_weight_;  // FPTAS weight-per-profit row
};

/// Internal building blocks shared by the serial solvers, the parallel
/// engine (knapsack_parallel.hpp), and the differential tests. Not a
/// stable API for simulation code.
namespace detail {

/// Throws std::invalid_argument unless every size is > 0 and every profit
/// is finite and >= 0.
void validate_items(std::span<const KnapsackItem> items);

/// Density order shared by the greedy solver, the DP shortcuts and the
/// parallel branch-and-bound: profit density descending, then size
/// ascending, then index ascending. The comparator must stay identical in
/// all places — the shortcut's optimality argument assumes it.
void density_order(std::span<const KnapsackItem> items,
                   std::vector<std::size_t>& order);

/// Exactness shortcut 1: all positive-profit items fit together. Returns
/// true and writes the (forced) DP-canonical optimum into `out`.
bool take_all_shortcut(std::span<const KnapsackItem> items,
                       object::Units capacity, KnapsackSolution& out);

/// Exactness shortcut 2: the density-greedy prefix fills the capacity
/// exactly with a strict density gap to the first item left out.
bool greedy_prefix_shortcut(std::span<const KnapsackItem> items,
                            object::Units capacity,
                            std::vector<std::size_t>& order,
                            KnapsackSolution& out);

/// Inner DP kernel used to fill the profile's value curve + decision
/// bit-matrix. All kernels are bit-identical (locked by the differential
/// suite in tests/knapsack_parallel_test.cpp):
///  * kScalar       — the classic in-place descending-capacity loop.
///  * kWordParallel — two-row forward kernel: a branch-free value pass the
///    compiler auto-vectorizes, then a word-parallel repack that emits 64
///    decision bits per output word from a lane-comparison sweep.
///  * kWordParallelAvx2 — the same kernel body compiled for AVX2 via
///    function multiversioning; selected at runtime when the CPU supports
///    it (x86-64 builds only).
/// kAuto resolves to the best supported kernel.
enum class DpKernel { kAuto, kScalar, kWordParallel, kWordParallelAvx2 };

/// Whether this build/CPU can execute the given kernel.
bool dp_kernel_supported(DpKernel kernel) noexcept;

/// Overrides the process-wide kernel (kAuto restores the default). Throws
/// std::invalid_argument for an unsupported kernel. Intended for tests and
/// benches; safe to call concurrently with solves (atomic, each dp_fill
/// reads it once).
void set_dp_kernel(DpKernel kernel);

/// The kernel kAuto currently resolves to (never kAuto itself).
DpKernel active_dp_kernel() noexcept;

/// Resizes ws.values_ / ws.take_bits_ (and ws.values_prev_ for the
/// two-row kernels) and fills the optimal value curve for capacities
/// 0..cap plus the flat take-bit matrix (`row_words` words per item row).
/// Grow-only resizes: allocation-free once the workspace is warm.
void dp_fill(std::span<const KnapsackItem> items, std::size_t cap,
             KnapsackWorkspace& ws, std::size_t row_words,
             DpKernel kernel = DpKernel::kAuto);

/// Test/engine access to the private workspace buffers.
struct WorkspaceAccess {
  static std::vector<double>& values(KnapsackWorkspace& ws) {
    return ws.values_;
  }
  static std::vector<double>& values_prev(KnapsackWorkspace& ws) {
    return ws.values_prev_;
  }
  static std::vector<std::uint64_t>& take_bits(KnapsackWorkspace& ws) {
    return ws.take_bits_;
  }
  static std::vector<object::Units>& item_sizes(KnapsackWorkspace& ws) {
    return ws.item_sizes_;
  }
  static std::vector<std::size_t>& order(KnapsackWorkspace& ws) {
    return ws.order_;
  }
};

}  // namespace detail

/// Exact optimal values for every capacity 0..max_capacity, with item
/// reconstruction at any capacity. The decision matrix is one flat
/// allocation of n rows x (max_capacity + 1) bits, packed into 64-bit
/// words (each row padded to a whole word), so memory is exactly
/// n * ceil((max_capacity + 1) / 64) words plus O(max_capacity) doubles —
/// no per-row vector headers, and row i lives contiguously at
/// [i * row_words, (i + 1) * row_words).
///
/// Constructed with an external KnapsackWorkspace the profile borrows the
/// workspace's buffers instead of allocating its own; the profile is then
/// valid only while the workspace outlives it and until the workspace is
/// lent to another solve. Profiles are neither copyable nor movable.
class KnapsackProfile {
 public:
  KnapsackProfile(std::span<const KnapsackItem> items,
                  object::Units max_capacity);
  KnapsackProfile(std::span<const KnapsackItem> items,
                  object::Units max_capacity, KnapsackWorkspace& workspace);

  KnapsackProfile(const KnapsackProfile&) = delete;
  KnapsackProfile& operator=(const KnapsackProfile&) = delete;

  object::Units max_capacity() const noexcept {
    return object::Units(ws_->values_.size()) - 1;
  }
  std::size_t item_count() const noexcept { return ws_->item_sizes_.size(); }

  /// Optimal total profit at capacity c (0 <= c <= max_capacity).
  double value_at(object::Units c) const;
  /// The full value curve, indexed by capacity (size max_capacity + 1).
  const std::vector<double>& values() const noexcept { return ws_->values_; }

  /// An optimal item subset at capacity c.
  KnapsackSolution solution_at(object::Units c) const;
  /// Same, written into `out` (cleared first) — allocation-free once
  /// out.chosen has capacity.
  void solution_into(object::Units c, KnapsackSolution& out) const;

 private:
  struct AlreadyValidated {};
  KnapsackProfile(std::span<const KnapsackItem> items,
                  object::Units max_capacity, KnapsackWorkspace* workspace,
                  AlreadyValidated);
  friend void solve_dp(std::span<const KnapsackItem>, object::Units,
                       KnapsackWorkspace&, KnapsackSolution&);

  void build(std::span<const KnapsackItem> items, object::Units max_capacity);

  bool taken(std::size_t item, std::size_t c) const noexcept {
    return (ws_->take_bits_[item * row_words_ + (c >> 6)] >> (c & 63)) & 1u;
  }

  KnapsackWorkspace own_;        // backs ws_ when no workspace was lent
  KnapsackWorkspace* ws_;        // &own_ or the external workspace
  std::size_t row_words_ = 0;    // 64-bit words per row
};

/// Exact DP solution at a single capacity.
///
/// Tie-break contract: among all optimal subsets the DP reconstruction
/// returns the *mask-minimal* one — the subset whose characteristic
/// bitmask (item i -> bit i) is smallest as an integer, i.e. at the
/// highest index where two optimal subsets differ, the canonical one
/// excludes that item. (The strict-improvement bit test walks indices
/// from the top and takes an item only when doing so is strictly
/// better, which greedily clears the highest differing bit.) Zero-profit
/// items are never taken. Every solver that promises solve_dp-identical
/// selections — the parallel engine in knapsack_parallel.hpp — targets
/// exactly this subset.
KnapsackSolution solve_dp(std::span<const KnapsackItem> items,
                          object::Units capacity);

/// Allocation-free exact solve into `out`, borrowing `ws` for scratch.
/// Bit-identical to the other overload. Items are validated exactly once
/// here; two cheap exactness shortcuts (docs/performance.md) skip the
/// O(n * capacity) DP when the optimal set is provably forced:
///  * every positive-profit item fits within the capacity, or
///  * the density-greedy prefix fills the capacity exactly with a strict
///    density gap to the first item left out (the greedy value then meets
///    the fractional upper bound, and the optimum is unique).
void solve_dp(std::span<const KnapsackItem> items, object::Units capacity,
              KnapsackWorkspace& ws, KnapsackSolution& out);

/// Greedy by profit density (profit/size), with the classic best-single-
/// item fallback; a 1/2-approximation. O(n log n).
KnapsackSolution solve_greedy(std::span<const KnapsackItem> items,
                              object::Units capacity);
void solve_greedy(std::span<const KnapsackItem> items, object::Units capacity,
                  KnapsackWorkspace& ws, KnapsackSolution& out);

/// Fully polynomial approximation scheme via profit scaling: returns a
/// feasible solution with value >= (1 - epsilon) * OPT.
/// Memory grows as O(n^2 * (n/epsilon)) bits; throws std::invalid_argument
/// if that would exceed ~64 MiB (keep n or 1/epsilon moderate).
KnapsackSolution solve_fptas(std::span<const KnapsackItem> items,
                             object::Units capacity, double epsilon);
void solve_fptas(std::span<const KnapsackItem> items, object::Units capacity,
                 double epsilon, KnapsackWorkspace& ws, KnapsackSolution& out);

/// Exhaustive search; only for tests (throws if items.size() > 30).
KnapsackSolution solve_brute_force(std::span<const KnapsackItem> items,
                                   object::Units capacity);

/// Exact branch-and-bound with the fractional (LP) relaxation bound.
/// Often much faster than DP when the capacity is large relative to n;
/// worst case exponential. `node_limit` caps the search (throws
/// std::runtime_error when exceeded) so callers cannot hang.
KnapsackSolution solve_branch_and_bound(std::span<const KnapsackItem> items,
                                        object::Units capacity,
                                        std::uint64_t node_limit = 10'000'000);

}  // namespace mobi::core
