#include "core/bound_estimator.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobi::core {

namespace {

BoundEstimate make_estimate(const KnapsackProfile& profile,
                            object::Units capacity) {
  const double max_value = profile.value_at(profile.max_capacity());
  BoundEstimate estimate;
  estimate.capacity = capacity;
  estimate.value = profile.value_at(capacity);
  estimate.fraction_of_max = max_value > 0.0 ? estimate.value / max_value : 1.0;
  return estimate;
}

}  // namespace

BoundEstimate estimate_bound_marginal(const KnapsackProfile& profile,
                                      object::Units window, double threshold) {
  if (window <= 0) {
    throw std::invalid_argument("estimate_bound_marginal: window must be > 0");
  }
  if (!(threshold > 0.0) || threshold > 1.0) {
    throw std::invalid_argument("estimate_bound_marginal: threshold in (0, 1]");
  }
  const object::Units cap = profile.max_capacity();
  if (cap == 0) return make_estimate(profile, 0);
  const double overall_slope =
      (profile.value_at(cap) - profile.value_at(0)) / double(cap);
  if (overall_slope <= 0.0) return make_estimate(profile, 0);
  for (object::Units c = 0; c + window <= cap; ++c) {
    const double gain = profile.value_at(c + window) - profile.value_at(c);
    if (gain / double(window) < threshold * overall_slope) {
      return make_estimate(profile, c);
    }
  }
  return make_estimate(profile, cap);
}

BoundEstimate estimate_bound_elbow(const KnapsackProfile& profile) {
  const object::Units cap = profile.max_capacity();
  if (cap == 0) return make_estimate(profile, 0);
  const double v0 = profile.value_at(0);
  const double v1 = profile.value_at(cap);
  object::Units best_c = 0;
  double best_distance = -1.0;
  for (object::Units c = 0; c <= cap; ++c) {
    // Vertical distance above the chord; the profile is non-decreasing so
    // the max gap is the visual elbow.
    const double chord = v0 + (v1 - v0) * double(c) / double(cap);
    const double distance = profile.value_at(c) - chord;
    if (distance > best_distance) {
      best_distance = distance;
      best_c = c;
    }
  }
  return make_estimate(profile, best_c);
}

BoundEstimate smallest_capacity_reaching(const KnapsackProfile& profile,
                                         double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("smallest_capacity_reaching: fraction in [0, 1]");
  }
  const object::Units cap = profile.max_capacity();
  const double target = fraction * profile.value_at(cap);
  for (object::Units c = 0; c <= cap; ++c) {
    if (profile.value_at(c) >= target) return make_estimate(profile, c);
  }
  return make_estimate(profile, cap);
}

}  // namespace mobi::core
