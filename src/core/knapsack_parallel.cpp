#include "core/knapsack_parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace mobi::core {

namespace {

// Same pruning convention as the serial solve_branch_and_bound: a strict
// comparison would also prune ties with the incumbent, which is correct
// but makes zero-profit instances degenerate; epsilon keeps the pruning
// strict on real profit.
constexpr double kPruneEps = 1e-12;

/// A fixed prefix of decisions along the density order: positions
/// [0, depth) decided, bit j of take_mask set iff position j was taken.
/// The prefix decomposition depends only on the instance and the config —
/// never on the thread count — so stealing cannot change what the search
/// explores, only who explores it.
struct Subproblem {
  std::uint32_t depth = 0;
  std::uint64_t take_mask = 0;
};

}  // namespace

struct ParallelKnapsackEngine::Impl {
  /// Per-worker state. Deques hold indices into subs_; the owner pops
  /// from the back (deepest subproblems first, closest to plain DFS),
  /// thieves take from the front. Cache-line aligned so the per-solve
  /// node counters never false-share.
  struct alignas(64) WorkerSlot {
    std::vector<std::uint32_t> deque;
    std::size_t head = 0;
    std::size_t tail = 0;
    std::mutex mu;
    std::vector<std::uint8_t> taken;     // decisions along the density order
    std::vector<std::size_t> scratch;    // incumbent canonical-fold buffer
    std::uint64_t nodes = 0;             // this solve's phase-1 nodes
    std::uint64_t steals = 0;
  };

  explicit Impl(ParallelBnbConfig cfg) : config(cfg) {
    if (config.threads == 0) {
      config.threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    config.max_prefix_depth = std::min<std::size_t>(config.max_prefix_depth, 60);
    config.subproblem_target = std::max<std::size_t>(1, config.subproblem_target);
    threads = config.threads;
    slots.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      slots.push_back(std::make_unique<WorkerSlot>());
      slots.back()->deque.reserve(config.subproblem_target + 2);
    }
    subs.reserve(2 * config.subproblem_target + 8);
    if (threads > 1) {
      // Persistent workers: submitted exactly once (submit allocates, so
      // only here), then parked on cv_work between solves.
      pool = std::make_unique<util::ThreadPool>(threads);
      for (std::size_t w = 0; w < threads; ++w) {
        pool->submit([this, w] { worker_main(w); });
      }
    }
  }

  ~Impl() {
    if (pool) {
      {
        std::lock_guard lock(mu);
        stop = true;
        cv_work.notify_all();
      }
      pool->shutdown();
    }
  }

  // -- configuration / lifetime ------------------------------------------
  ParallelBnbConfig config;
  std::size_t threads = 1;
  std::unique_ptr<util::ThreadPool> pool;  // only when threads > 1
  std::vector<std::unique_ptr<WorkerSlot>> slots;

  // -- worker parking ----------------------------------------------------
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t generation = 0;
  std::size_t workers_done = 0;
  bool stop = false;

  // -- per-solve job state (written by the caller before the generation
  //    bump, which publishes it to the workers via mu) -------------------
  const KnapsackItem* items = nullptr;
  std::size_t n = 0;
  object::Units capacity = 0;
  const std::size_t* order = nullptr;  // density order, |order| == n
  std::vector<Subproblem> subs;        // BFS prefix decomposition
  std::size_t subs_begin = 0;          // live range [subs_begin, subs.size())
  std::uint32_t depth_limit = 0;
  std::atomic<double> best{0.0};       // canonical (ascending-fold) incumbent
  std::atomic<std::uint64_t> nodes{0};
  std::atomic<bool> aborted{false};

  // -- phase-2 scratch (caller thread only) ------------------------------
  std::vector<std::size_t> chosen_hi;        // taken indices, descending
  std::vector<object::Units> pos_size_pref;  // eligible-positive size prefix
  std::vector<double> pos_value_pref;        // eligible-positive value fold
  std::vector<std::size_t> seed_chosen;
  std::uint64_t p2_nodes = 0;
  double vstar = 0.0;
  double slack = 0.0;

  // -- stats / metrics ---------------------------------------------------
  ParallelBnbStats stats;
  ParallelBnbStats exported;
  obs::Counter* c_solves = nullptr;
  obs::Counter* c_shortcuts = nullptr;
  obs::Counter* c_bnb_runs = nullptr;
  obs::Counter* c_fallbacks = nullptr;
  obs::Counter* c_subproblems = nullptr;
  obs::Counter* c_steals = nullptr;
  obs::Counter* c_nodes = nullptr;
  obs::Counter* c_p2_nodes = nullptr;

  // ----------------------------------------------------------------------

  void ensure_capacity(std::size_t items_count) {
    for (auto& slot : slots) {
      if (slot->taken.size() < items_count) slot->taken.resize(items_count);
      slot->scratch.reserve(items_count);
    }
    chosen_hi.reserve(items_count);
    seed_chosen.reserve(items_count);
    if (pos_size_pref.size() < items_count + 1) {
      pos_size_pref.resize(items_count + 1);
      pos_value_pref.resize(items_count + 1);
    }
  }

  /// LP relaxation from `depth` along the density order; identical to the
  /// serial solver's bound.
  double fractional_bound(std::size_t depth, object::Units used,
                          double value) const {
    object::Units left = capacity - used;
    for (std::size_t i = depth; i < n && left > 0; ++i) {
      const KnapsackItem& item = items[order[i]];
      if (item.profit <= 0.0) break;  // density-sorted: rest are worthless
      if (item.size <= left) {
        value += item.profit;
        left -= item.size;
      } else {
        value += item.profit * double(left) / double(item.size);
        left = 0;
      }
    }
    return value;
  }

  /// Canonical ascending-index fold of the positions flagged in
  /// slot.taken[0, depth); CAS-max into the shared incumbent. The fold
  /// order matches the DP's accumulation exactly, so the winning double
  /// is the DP's double.
  void try_improve(WorkerSlot& slot, std::size_t depth) {
    slot.scratch.clear();
    for (std::size_t j = 0; j < depth; ++j) {
      if (slot.taken[j]) slot.scratch.push_back(order[j]);
    }
    std::sort(slot.scratch.begin(), slot.scratch.end());
    double canon = 0.0;
    for (std::size_t index : slot.scratch) canon += items[index].profit;
    double cur = best.load(std::memory_order_relaxed);
    while (canon > cur &&
           !best.compare_exchange_weak(cur, canon, std::memory_order_relaxed)) {
    }
  }

  void dfs(WorkerSlot& slot, std::size_t depth, object::Units used,
           double value) {
    if ((++slot.nodes & 4095) == 0) {
      if (nodes.fetch_add(4096, std::memory_order_relaxed) + 4096 >=
          config.node_limit) {
        aborted.store(true, std::memory_order_relaxed);
      }
    }
    if (aborted.load(std::memory_order_relaxed)) return;
    if (value > best.load(std::memory_order_relaxed)) try_improve(slot, depth);
    if (depth == n) return;
    if (fractional_bound(depth, used, value) <=
        best.load(std::memory_order_relaxed) + kPruneEps) {
      return;
    }
    const KnapsackItem& item = items[order[depth]];
    if (item.profit > 0.0 && item.size <= capacity - used) {
      slot.taken[depth] = 1;
      dfs(slot, depth + 1, used + item.size, value + item.profit);
    }
    // Unconditional clear: when the include branch is skipped the bit
    // still holds whatever the previous subproblem on this slot left
    // behind, and a stale 1 would fold a phantom item into try_improve's
    // incumbent (inflating best past the true optimum and forcing a
    // spurious phase-2 fallback).
    slot.taken[depth] = 0;
    dfs(slot, depth + 1, used, value);
  }

  /// Replays a subproblem's decided prefix into slot.taken and runs the
  /// DFS below it. Path values accumulate in density-position order, the
  /// same order any DFS reaching this node would have used.
  void run_subproblem(WorkerSlot& slot, const Subproblem& sub) {
    object::Units used = 0;
    double value = 0.0;
    for (std::uint32_t j = 0; j < sub.depth; ++j) {
      const bool take = (sub.take_mask >> j) & 1u;
      slot.taken[j] = take ? 1 : 0;
      if (take) {
        const KnapsackItem& item = items[order[j]];
        used += item.size;
        value += item.profit;
      }
    }
    dfs(slot, sub.depth, used, value);
  }

  std::int64_t pop_back(WorkerSlot& slot) {
    std::lock_guard lock(slot.mu);
    if (slot.head == slot.tail) return -1;
    return std::int64_t(slot.deque[--slot.tail]);
  }

  std::int64_t pop_front(WorkerSlot& slot) {
    std::lock_guard lock(slot.mu);
    if (slot.head == slot.tail) return -1;
    return std::int64_t(slot.deque[slot.head++]);
  }

  void drain(std::size_t w) {
    WorkerSlot& self = *slots[w];
    for (;;) {
      std::int64_t id = pop_back(self);
      if (id < 0) {
        for (std::size_t off = 1; off < threads && id < 0; ++off) {
          id = pop_front(*slots[(w + off) % threads]);
        }
        if (id < 0) return;  // nobody pushes after the kick: done
        ++self.steals;
      }
      run_subproblem(self, subs[std::size_t(id)]);
    }
  }

  void worker_main(std::size_t w) {
    std::uint64_t seen = 0;
    std::unique_lock lock(mu);
    for (;;) {
      cv_work.wait(lock, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      lock.unlock();
      drain(w);
      lock.lock();
      if (++workers_done == threads) cv_done.notify_one();
    }
  }

  /// BFS expansion of the density-ordered tree into ~subproblem_target
  /// leaves. Pruning here uses only the greedy seed incumbent (computed
  /// before any worker runs), so the decomposition is deterministic.
  void decompose() {
    subs.clear();
    subs_begin = 0;
    subs.push_back(Subproblem{});
    depth_limit = std::uint32_t(std::min(n, config.max_prefix_depth));
    const double seed = best.load(std::memory_order_relaxed);
    // The size cap bounds both the vector (within its reservation — no
    // steady-state allocation) and the expansion work on prune-heavy
    // instances; stopping early just leaves a coarser partition.
    while (subs.size() - subs_begin < config.subproblem_target &&
           subs.size() < 2 * config.subproblem_target &&
           subs_begin < subs.size() &&
           subs[subs_begin].depth < depth_limit) {
      const Subproblem sub = subs[subs_begin++];
      object::Units used = 0;
      double value = 0.0;
      for (std::uint32_t j = 0; j < sub.depth; ++j) {
        if ((sub.take_mask >> j) & 1u) {
          const KnapsackItem& item = items[order[j]];
          used += item.size;
          value += item.profit;
        }
      }
      if (fractional_bound(sub.depth, used, value) <= seed + kPruneEps) {
        continue;  // the whole subtree is dominated by the greedy seed
      }
      const KnapsackItem& item = items[order[sub.depth]];
      if (item.profit > 0.0 && item.size <= capacity - used) {
        subs.push_back(Subproblem{sub.depth + 1,
                                  sub.take_mask | (std::uint64_t{1} << sub.depth)});
      }
      subs.push_back(Subproblem{sub.depth + 1, sub.take_mask});
    }
  }

  /// Phase 1: optimal canonical value into `best`.
  void find_optimal_value() {
    const std::size_t live = subs.size() - subs_begin;
    stats.subproblems += live;
    for (auto& slot : slots) {
      slot->nodes = 0;
      slot->steals = 0;
      slot->head = slot->tail = 0;
      slot->deque.clear();
    }
    if (live == 0) return;  // seed is optimal; nothing left to search
    // Round-robin distribution; owner pops from the back.
    for (std::size_t j = 0; j < live; ++j) {
      WorkerSlot& slot = *slots[j % threads];
      slot.deque.push_back(std::uint32_t(subs_begin + j));
      ++slot.tail;
    }
    {
      std::lock_guard lock(mu);
      workers_done = 0;
      ++generation;
      cv_work.notify_all();
    }
    {
      std::unique_lock lock(mu);
      cv_done.wait(lock, [&] { return workers_done == threads; });
    }
    for (auto& slot : slots) {
      stats.nodes += slot->nodes;
      stats.steals += slot->steals;
    }
  }

  /// Runs the whole tree inline on the caller thread (threads == 1 or a
  /// small instance): same search, same subproblem accounting.
  void find_optimal_value_inline() {
    stats.subproblems += 1;
    WorkerSlot& slot = *slots[0];
    slot.nodes = 0;
    slot.steals = 0;
    run_subproblem(slot, Subproblem{});
    stats.nodes += slot.nodes;
  }

  // -- phase 2: canonical reconstruction ---------------------------------

  /// LP bound over items with index <= i_limit only, walked in density
  /// order; `extra` is the already-committed high-index profit.
  double lp_bound_below(std::ptrdiff_t i_limit, object::Units left,
                        double extra) const {
    for (std::size_t k = 0; k < n && left > 0; ++k) {
      const std::size_t index = order[k];
      if (std::ptrdiff_t(index) > i_limit) continue;
      const KnapsackItem& item = items[index];
      if (item.profit <= 0.0) break;  // density-sorted: rest are worthless
      if (item.size <= left) {
        extra += item.profit;
        left -= item.size;
      } else {
        extra += item.profit * double(left) / double(item.size);
        left = 0;
      }
    }
    return extra;
  }

  /// Ascending fold of (low set = eligible positives 0..i | explicit
  /// base) plus chosen_hi (which holds descending indices, all > i).
  double canon_fold(double base) const {
    double value = base;
    for (std::size_t k = chosen_hi.size(); k-- > 0;) {
      value += items[chosen_hi[k]].profit;
    }
    return value;
  }

  enum class RecResult { kFound, kNotFound, kAborted };

  /// Decides indices i..0 (exclude branch first => completions visited in
  /// ascending characteristic-mask order); accepts the first completion
  /// whose canonical fold reaches vstar. That completion is exactly the
  /// mask-minimal optimal subset — solve_dp's answer.
  RecResult reconstruct(std::ptrdiff_t i, object::Units left,
                        double hi_sum, KnapsackSolution& out) {
    if (++p2_nodes > config.node_limit) return RecResult::kAborted;
    // Forced excludes: infeasible or zero-profit items are never in the
    // canonical set (the DP takes only strict improvements).
    while (i >= 0 &&
           (items[i].profit <= 0.0 || items[i].size > left)) {
      --i;
    }
    if (i < 0) {
      const double canon = canon_fold(0.0);
      if (canon < vstar) return RecResult::kNotFound;
      emit(i, left, canon, out);
      return RecResult::kFound;
    }
    // Take-the-rest shortcut: every eligible positive with index <= i
    // fits in the residual capacity, so the unique best completion takes
    // them all; O(1) acceptance or pruning for the whole subtree.
    if (pos_size_pref[std::size_t(i) + 1] <= left) {
      const double canon = canon_fold(pos_value_pref[std::size_t(i) + 1]);
      if (canon < vstar) return RecResult::kNotFound;
      emit(i, left, canon, out);
      return RecResult::kFound;
    }
    const KnapsackItem& item = items[i];
    if (lp_bound_below(i - 1, left, hi_sum) >= vstar - slack) {
      const RecResult r = reconstruct(i - 1, left, hi_sum, out);
      if (r != RecResult::kNotFound) return r;
    }
    if (lp_bound_below(i - 1, left - item.size, hi_sum + item.profit) >=
        vstar - slack) {
      chosen_hi.push_back(std::size_t(i));
      const RecResult r =
          reconstruct(i - 1, left - item.size, hi_sum + item.profit, out);
      if (r != RecResult::kNotFound) return r;
      chosen_hi.pop_back();
    }
    return RecResult::kNotFound;
  }

  /// Writes the accepted completion: eligible positives 0..i (the
  /// take-the-rest low set; empty when i < 0) then chosen_hi ascending.
  void emit(std::ptrdiff_t i, object::Units /*left*/, double canon,
            KnapsackSolution& out) {
    out.reset();
    for (std::ptrdiff_t j = 0; j <= i; ++j) {
      if (items[j].profit > 0.0 && items[j].size <= capacity) {
        out.chosen.push_back(std::size_t(j));
        out.used += items[j].size;
      }
    }
    for (std::size_t k = chosen_hi.size(); k-- > 0;) {
      out.chosen.push_back(chosen_hi[k]);
      out.used += items[chosen_hi[k]].size;
    }
    out.value = canon;
  }

  bool reconstruct_canonical(KnapsackSolution& out) {
    p2_nodes = 0;
    chosen_hi.clear();
    slack = 1e-9 * (1.0 + std::abs(vstar));
    // Eligibility: positive profit and individually feasible. Prefix
    // folds are ascending-index, matching the DP's accumulation.
    pos_size_pref[0] = 0;
    pos_value_pref[0] = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const bool eligible = items[j].profit > 0.0 && items[j].size <= capacity;
      pos_size_pref[j + 1] = pos_size_pref[j] + (eligible ? items[j].size : 0);
      pos_value_pref[j + 1] =
          eligible ? pos_value_pref[j] + items[j].profit : pos_value_pref[j];
    }
    const RecResult r =
        reconstruct(std::ptrdiff_t(n) - 1, capacity, 0.0, out);
    stats.phase2_nodes += p2_nodes;
    return r == RecResult::kFound;
  }

  // ----------------------------------------------------------------------

  /// Greedy walk down the density order as the phase-1 seed; the value is
  /// refolded over ascending indices so it is a genuine canonical value.
  double greedy_seed() {
    seed_chosen.clear();
    object::Units left = capacity;
    for (std::size_t k = 0; k < n; ++k) {
      const KnapsackItem& item = items[order[k]];
      if (item.profit <= 0.0) break;
      if (item.size <= left) {
        seed_chosen.push_back(order[k]);
        left -= item.size;
      }
    }
    std::sort(seed_chosen.begin(), seed_chosen.end());
    double value = 0.0;
    for (std::size_t index : seed_chosen) value += items[index].profit;
    return value;
  }

  void export_metrics() {
    if (!c_solves) return;
    c_solves->add(stats.solves - exported.solves);
    c_shortcuts->add(stats.shortcut_solves - exported.shortcut_solves);
    c_bnb_runs->add(stats.bnb_runs - exported.bnb_runs);
    c_fallbacks->add(stats.dp_fallbacks - exported.dp_fallbacks);
    c_subproblems->add(stats.subproblems - exported.subproblems);
    c_steals->add(stats.steals - exported.steals);
    c_nodes->add(stats.nodes - exported.nodes);
    c_p2_nodes->add(stats.phase2_nodes - exported.phase2_nodes);
    exported = stats;
  }

  void solve(std::span<const KnapsackItem> item_span, object::Units cap,
             KnapsackWorkspace& ws, KnapsackSolution& out) {
    detail::validate_items(item_span);
    if (cap < 0) {
      throw std::invalid_argument("ParallelKnapsackEngine: negative capacity");
    }
    ++stats.solves;
    if (detail::take_all_shortcut(item_span, cap, out) ||
        detail::greedy_prefix_shortcut(item_span, cap,
                                       detail::WorkspaceAccess::order(ws),
                                       out)) {
      ++stats.shortcut_solves;
      export_metrics();
      return;
    }
    ++stats.bnb_runs;
    // greedy_prefix_shortcut left the density order in ws.order_.
    const std::vector<std::size_t>& density =
        detail::WorkspaceAccess::order(ws);
    items = item_span.data();
    n = item_span.size();
    capacity = cap;
    order = density.data();
    ensure_capacity(n);
    best.store(greedy_seed(), std::memory_order_relaxed);
    nodes.store(0, std::memory_order_relaxed);
    aborted.store(false, std::memory_order_relaxed);

    if (threads == 1 || n <= config.serial_cutoff) {
      find_optimal_value_inline();
    } else {
      decompose();
      find_optimal_value();
    }
    if (aborted.load(std::memory_order_relaxed)) {
      ++stats.dp_fallbacks;
      solve_dp(item_span, cap, ws, out);
      export_metrics();
      return;
    }
    vstar = best.load(std::memory_order_relaxed);
    if (!reconstruct_canonical(out)) {
      // Phase-2 budget exceeded (or an FP pathology defeated the bound):
      // the DP answer is the contract, so fall back to it.
      ++stats.dp_fallbacks;
      solve_dp(item_span, cap, ws, out);
    }
    export_metrics();
  }
};

ParallelKnapsackEngine::ParallelKnapsackEngine(ParallelBnbConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

ParallelKnapsackEngine::~ParallelKnapsackEngine() = default;

std::size_t ParallelKnapsackEngine::threads() const noexcept {
  return impl_->threads;
}

const ParallelBnbConfig& ParallelKnapsackEngine::config() const noexcept {
  return impl_->config;
}

void ParallelKnapsackEngine::solve(std::span<const KnapsackItem> items,
                                   object::Units capacity,
                                   KnapsackWorkspace& ws,
                                   KnapsackSolution& out) {
  impl_->solve(items, capacity, ws, out);
}

const ParallelBnbStats& ParallelKnapsackEngine::stats() const noexcept {
  return impl_->stats;
}

void ParallelKnapsackEngine::set_metrics(obs::MetricsRegistry* registry,
                                         const std::string& prefix) {
  Impl& impl = *impl_;
  if (!registry) {
    impl.c_solves = impl.c_shortcuts = impl.c_bnb_runs = impl.c_fallbacks =
        impl.c_subproblems = impl.c_steals = impl.c_nodes = impl.c_p2_nodes =
            nullptr;
    return;
  }
  impl.c_solves = &registry->register_counter(prefix + ".solves");
  impl.c_shortcuts = &registry->register_counter(prefix + ".shortcut_solves");
  impl.c_bnb_runs = &registry->register_counter(prefix + ".bnb_runs");
  impl.c_fallbacks = &registry->register_counter(prefix + ".dp_fallbacks");
  impl.c_subproblems = &registry->register_counter(prefix + ".subproblems");
  impl.c_steals = &registry->register_counter(prefix + ".steals");
  impl.c_nodes = &registry->register_counter(prefix + ".nodes");
  impl.c_p2_nodes = &registry->register_counter(prefix + ".phase2_nodes");
  registry->register_gauge(prefix + ".threads").set(double(impl.threads));
  impl.exported = ParallelBnbStats{};
  // Counters start at zero: re-export the running totals so a registry
  // attached mid-life still sees monotone since-construction counts.
  impl.export_metrics();
}

void solve_dp_word_parallel(std::span<const KnapsackItem> items,
                            object::Units capacity, KnapsackWorkspace& ws,
                            KnapsackSolution& out) {
  detail::validate_items(items);
  if (capacity < 0) {
    throw std::invalid_argument("solve_dp_word_parallel: negative capacity");
  }
  if (detail::take_all_shortcut(items, capacity, out)) return;
  if (detail::greedy_prefix_shortcut(items, capacity,
                                     detail::WorkspaceAccess::order(ws), out)) {
    return;
  }
  const std::size_t n = items.size();
  const auto cap = std::size_t(capacity);
  const std::size_t row_words = (cap + 1 + 63) / 64;
  detail::dp_fill(items, cap, ws, row_words, detail::DpKernel::kWordParallel);
  // Reconstruction mirrors KnapsackProfile::solution_into.
  const std::vector<double>& values = detail::WorkspaceAccess::values(ws);
  const std::vector<std::uint64_t>& bits = detail::WorkspaceAccess::take_bits(ws);
  out.reset();
  out.value = values[cap];
  std::size_t remaining = cap;
  for (std::size_t i = n; i-- > 0;) {
    if ((bits[i * row_words + (remaining >> 6)] >> (remaining & 63)) & 1u) {
      out.chosen.push_back(i);
      out.used += items[i].size;
      remaining -= std::size_t(items[i].size);
    }
  }
  std::reverse(out.chosen.begin(), out.chosen.end());
}

}  // namespace mobi::core
