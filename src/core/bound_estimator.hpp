// Download-bound estimation (the paper's §6 future work, implemented).
//
// "Our analysis shows that under some circumstances there is not a great
// benefit to downloading large amounts of data. In these cases the
// techniques will choose a smaller upper bound."
//
// Both estimators consume the exact DP value-vs-capacity profile:
//  * marginal-gain knee — the smallest capacity after which the average
//    profit gained per extra unit of budget (over a look-ahead window)
//    drops below `threshold` times the overall average slope;
//  * chord elbow — the capacity maximizing the vertical distance between
//    the profile and the straight line joining its endpoints (the classic
//    "elbow" of a concave curve).
#pragma once

#include "core/knapsack.hpp"
#include "object/object.hpp"

namespace mobi::core {

struct BoundEstimate {
  object::Units capacity = 0;
  double value = 0.0;          // profile value at that capacity
  double fraction_of_max = 0.0;  // value / value(max capacity)
};

/// Marginal-gain knee. `window` is the look-ahead in capacity units;
/// `threshold` in (0, 1] is the fraction of the overall average slope
/// below which further budget is judged not worthwhile.
BoundEstimate estimate_bound_marginal(const KnapsackProfile& profile,
                                      object::Units window = 50,
                                      double threshold = 0.25);

/// Max-distance-to-chord elbow.
BoundEstimate estimate_bound_elbow(const KnapsackProfile& profile);

/// Smallest capacity achieving at least `fraction` of the maximum value
/// (a simple oracle both heuristics can be compared against).
BoundEstimate smallest_capacity_reaching(const KnapsackProfile& profile,
                                         double fraction);

}  // namespace mobi::core
