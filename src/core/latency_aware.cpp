#include "core/latency_aware.hpp"

#include <stdexcept>

#include "core/benefit.hpp"
#include "core/knapsack.hpp"

namespace mobi::core {

OnDemandLatencyAwarePolicy::OnDemandLatencyAwarePolicy(
    object::Units overhead_units)
    : overhead_(overhead_units) {
  if (overhead_units < 0) {
    throw std::invalid_argument("OnDemandLatencyAwarePolicy: overhead < 0");
  }
}

std::string OnDemandLatencyAwarePolicy::name() const {
  return "on-demand-latency-aware(overhead=" + std::to_string(overhead_) + ")";
}

std::vector<object::ObjectId> OnDemandLatencyAwarePolicy::select(
    const workload::RequestBatch& batch, const PolicyContext& ctx) {
  if (!ctx.catalog || !ctx.cache || !ctx.scorer) {
    throw std::invalid_argument("OnDemandLatencyAwarePolicy: incomplete context");
  }
  const CandidateSet set =
      build_candidates(batch, *ctx.catalog, *ctx.cache, *ctx.scorer);
  if (set.candidates.empty()) return {};

  if (ctx.budget < 0) {
    std::vector<object::ObjectId> all;
    for (const auto& cand : set.candidates) {
      if (cand.profit > 0.0) all.push_back(cand.object);
    }
    return all;
  }

  std::vector<KnapsackItem> items;
  items.reserve(set.candidates.size());
  for (const auto& cand : set.candidates) {
    items.push_back(KnapsackItem{cand.size + overhead_, cand.profit});
  }
  const KnapsackSolution solution = solve_dp(items, ctx.budget);
  std::vector<object::ObjectId> selected;
  selected.reserve(solution.chosen.size());
  for (std::size_t index : solution.chosen) {
    selected.push_back(set.candidates[index].object);
  }
  return selected;
}

}  // namespace mobi::core
