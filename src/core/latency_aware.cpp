#include "core/latency_aware.hpp"

#include <stdexcept>

#include "core/benefit.hpp"
#include "core/knapsack.hpp"

namespace mobi::core {

OnDemandLatencyAwarePolicy::OnDemandLatencyAwarePolicy(
    object::Units overhead_units)
    : overhead_(overhead_units) {
  if (overhead_units < 0) {
    throw std::invalid_argument("OnDemandLatencyAwarePolicy: overhead < 0");
  }
}

std::string OnDemandLatencyAwarePolicy::name() const {
  return "on-demand-latency-aware(overhead=" + std::to_string(overhead_) + ")";
}

void OnDemandLatencyAwarePolicy::select_into(
    const workload::RequestBatch& batch, const PolicyContext& ctx,
    std::vector<object::ObjectId>& out) {
  if (!ctx.catalog || !ctx.cache || !ctx.scorer) {
    throw std::invalid_argument("OnDemandLatencyAwarePolicy: incomplete context");
  }
  out.clear();
  const CandidateSet& set =
      builder_.build(batch, *ctx.catalog, *ctx.cache, *ctx.scorer);
  if (set.candidates.empty()) return;

  if (ctx.budget < 0) {
    for (const auto& cand : set.candidates) {
      if (cand.profit > 0.0) out.push_back(cand.object);
    }
    return;
  }

  items_.clear();
  for (const auto& cand : set.candidates) {
    items_.push_back(KnapsackItem{cand.size + overhead_, cand.profit});
  }
  solve_dp(items_, ctx.budget, ws_, solution_);
  for (std::size_t index : solution_.chosen) {
    out.push_back(set.candidates[index].object);
  }
}

}  // namespace mobi::core
