// Client recency scoring (paper §2).
//
// A client attaches a target recency C in (0, 1] to each request. Serving
// a copy whose recency score is x earns:
//   * 1.0 when x >= C (the copy meets the client's requirement), and
//   * f_C(x) < 1 otherwise, decreasing as x falls away from C.
// A remotely fetched copy always has x = 1.0 and therefore always scores
// 1.0. The paper gives two example scoring functions, both implemented
// here, plus a strict step function for ablation:
//   reciprocal:  f_C(x) = 1 / (1 + |x/C - 1|)
//   exponential: f_C(x) = exp(-|x/C - 1|)
//   step:        f_C(x) = 1 if x >= C else 0
#pragma once

#include <memory>
#include <string>

namespace mobi::core {

class RecencyScorer {
 public:
  virtual ~RecencyScorer() = default;

  /// Score of serving a copy with recency `x` to a client with target `c`.
  /// Preconditions: x in [0, 1], c in (0, 1]. Returns a value in [0, 1],
  /// with score(x, c) == 1.0 whenever x >= c.
  double score(double x, double c) const;

  /// The client's gain from a remote fetch instead of this cached copy:
  /// benefit = 1.0 - score(x, c) (paper §2's benefit(i)).
  double benefit(double x, double c) const { return 1.0 - score(x, c); }

  virtual std::string name() const = 0;

 protected:
  /// Score for the x < c case only; implementations need not re-check.
  virtual double below_target(double x, double c) const = 0;
};

class ReciprocalScorer final : public RecencyScorer {
 public:
  std::string name() const override { return "reciprocal"; }

 protected:
  double below_target(double x, double c) const override;
};

class ExponentialScorer final : public RecencyScorer {
 public:
  std::string name() const override { return "exponential"; }

 protected:
  double below_target(double x, double c) const override;
};

/// All-or-nothing: no partial credit below the target.
class StepScorer final : public RecencyScorer {
 public:
  std::string name() const override { return "step"; }

 protected:
  double below_target(double x, double c) const override;
};

std::unique_ptr<RecencyScorer> make_scorer(const std::string& name);

}  // namespace mobi::core
