#include "client/cell.hpp"

#include <memory>
#include <optional>

#include "cache/decay.hpp"
#include "cache/invalidation.hpp"
#include "core/base_station.hpp"
#include "net/fault_injector.hpp"
#include "object/builders.hpp"
#include "server/remote_server.hpp"
#include "workload/access.hpp"
#include "workload/updates.hpp"

namespace mobi::client {

namespace {

// One implementation for both series storages (plain vector and the
// arena-backed CellSeries): the allocator only changes where snapshots
// live, never what the simulation computes.
template <typename Series>
CellResult run_cell_impl(const CellConfig& config, Series* per_tick,
                         obs::RequestTracer* tracer) {
  util::Rng rng(config.seed);
  const object::Catalog catalog = object::make_random_catalog(
      config.object_count, config.size_lo, config.size_hi, rng);
  server::ServerPool servers(catalog, config.server_count);

  core::BaseStationConfig bs_config;
  bs_config.download_budget = config.base_budget;
  bs_config.downlink_capacity = std::max<object::Units>(
      1, object::Units(config.client_count) * config.size_hi);
  bs_config.fetch_retry_limit = config.fetch_retry_limit;
  core::BaseStation station(catalog, servers, cache::make_harmonic_decay(),
                            std::make_unique<core::ReciprocalScorer>(),
                            core::make_policy(config.base_policy), bs_config);

  // Nonzero fault plan: one injector per cell, reseeded from the cell's
  // own seed so every shard's fault stream is independent of how cells
  // are distributed over worker threads. An empty plan attaches nothing
  // — the run is the fault-free code path, bit for bit.
  std::optional<net::FaultInjector> injector;
  if (!config.faults.empty()) {
    sim::FaultPlan plan = config.faults;
    plan.seed = util::SplitMix64(plan.seed ^ config.seed).next();
    injector.emplace(plan, servers.server_count());
    station.set_fault_injector(&*injector);
    servers.set_fault_injector(&*injector);
  }

  if (tracer) station.set_request_tracer(tracer);

  cache::InvalidationLog log(config.object_count);
  auto updates = workload::make_periodic_staggered(config.object_count,
                                                   config.update_period);

  std::shared_ptr<const workload::AccessDistribution> access;
  switch (config.access) {
    case exp::AccessPattern::kUniform:
      access = workload::make_uniform_access(config.object_count);
      break;
    case exp::AccessPattern::kRankLinear:
      access = workload::make_rank_linear_access(config.object_count);
      break;
    case exp::AccessPattern::kZipf:
      access = workload::make_zipf_access(config.object_count,
                                          config.zipf_alpha);
      break;
  }

  std::vector<MobileClient> clients;
  clients.reserve(config.client_count);
  for (std::size_t i = 0; i < config.client_count; ++i) {
    clients.emplace_back(std::uint32_t(i), catalog, config.client);
  }

  CellResult result;
  util::Rng connectivity_rng = rng.split();
  util::Rng request_rng = rng.split();

  for (sim::Tick t = 0; t < config.ticks; ++t) {
    // 0. Open this tick's fault windows (idempotent — process_batch
    //    would do it too, but handoff draws below need the tick open).
    if (injector) injector->begin_tick(t);

    // 1. Server updates: base-station knowledge is immediate; clients
    //    must wait for the next report.
    updates->for_each_updated(t, [&](object::ObjectId id) {
      station.on_server_update(id, t);
      log.record_update(id, t);
    });

    // 2. Periodic invalidation report to connected clients.
    if (t > 0 && t % config.report_period == 0) {
      const auto report =
          log.make_report(t - config.report_period, t);
      for (auto& client : clients) {
        if (client.connected()) client.hear_report(report);
      }
    }

    // 3. Client activity.
    workload::RequestBatch to_base;
    std::vector<std::size_t> requester;  // client index per base request
    for (std::size_t i = 0; i < clients.size(); ++i) {
      MobileClient& mobile = clients[i];
      if (injector && mobile.connected() && injector->draw_handoff()) {
        mobile.begin_handoff(config.faults.handoff_ticks);
      }
      mobile.step_connectivity(connectivity_rng);
      if (!mobile.connected()) {
        ++result.disconnect_ticks;
        continue;
      }
      const object::ObjectId want = access->sample(request_rng);
      ++result.requests;
      const auto local = mobile.lookup(want, t);
      if (local && *local >= mobile.target_recency()) {
        ++result.served_locally;
        result.score_sum += 1.0;  // local copy meets the client's target
        continue;
      }
      to_base.push_back(
          workload::Request{want, mobile.target_recency(),
                            workload::ClientId(mobile.id())});
      requester.push_back(i);
    }

    const auto tick_result = station.process_batch(to_base, t);
    result.base_downloaded += tick_result.units_downloaded;
    result.served_by_base += to_base.size();
    result.score_sum += tick_result.score_sum;
    result.failed_fetches += tick_result.failed_fetches;
    result.retries += tick_result.retries;
    result.retry_successes += tick_result.retry_successes;
    result.degraded_serves += tick_result.degraded_serves;

    // Clients store what the base station served them, inheriting the
    // served copy's recency.
    for (std::size_t r = 0; r < to_base.size(); ++r) {
      const auto& request = to_base[r];
      const auto recency = station.cache().recency(request.object);
      if (!recency) continue;  // base had nothing either (cache-only policy)
      clients[requester[r]].store(request.object,
                                  servers.fetch(request.object), t, *recency);
    }

    if (per_tick) {
      CellResult snapshot = result;
      for (const auto& mobile : clients) {
        snapshot.sleeper_drops += mobile.sleeper_drops();
        snapshot.handoffs += mobile.handoff_count();
      }
      snapshot.downlink_dropped = station.downlink().dropped_total();
      per_tick->push_back(snapshot);
    }
  }

  for (const auto& mobile : clients) {
    result.sleeper_drops += mobile.sleeper_drops();
    result.handoffs += mobile.handoff_count();
  }
  result.downlink_dropped = station.downlink().dropped_total();
  return result;
}

}  // namespace

CellResult run_cell(const CellConfig& config) {
  return run_cell_impl<std::vector<CellResult>>(config, nullptr, nullptr);
}

CellResult run_cell(const CellConfig& config,
                    std::vector<CellResult>* per_tick) {
  return run_cell(config, per_tick, nullptr);
}

CellResult run_cell(const CellConfig& config,
                    std::vector<CellResult>* per_tick,
                    obs::RequestTracer* tracer) {
  return run_cell_impl(config, per_tick, tracer);
}

CellResult run_cell(const CellConfig& config, CellSeries* per_tick,
                    obs::RequestTracer* tracer) {
  return run_cell_impl(config, per_tick, tracer);
}

}  // namespace mobi::client
