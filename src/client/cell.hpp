// Two-tier cell simulation: mobile clients with local caches in front of
// a base station running a download policy, with periodic invalidation
// reports broadcast to the clients over the downlink.
//
// Per tick:
//   1. servers update; the base-station cache decays (it is co-located
//      with the report generator, so its knowledge is current), and the
//      updates are appended to the invalidation log;
//   2. every report_period ticks a report is broadcast; connected clients
//      apply it (the sleeper rule drops the local cache of clients that
//      slept through a window);
//   3. each connected client draws a request; if its local copy meets its
//      target recency it is served locally, otherwise the request goes to
//      the base station, which answers per its DownloadPolicy, and the
//      client stores the response (inheriting the served copy's recency).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "client/mobile_client.hpp"
#include "exp/fig2.hpp"
#include "object/object.hpp"
#include "sim/fault_plan.hpp"
#include "sim/tick.hpp"
#include "util/arena.hpp"

namespace mobi::obs {
class RequestTracer;
}  // namespace mobi::obs

namespace mobi::client {

struct CellConfig {
  std::size_t object_count = 200;
  object::Units size_lo = 1;
  object::Units size_hi = 8;
  std::size_t client_count = 50;
  MobileClientConfig client;
  exp::AccessPattern access = exp::AccessPattern::kZipf;
  double zipf_alpha = 1.0;
  sim::Tick update_period = 4;
  sim::Tick report_period = 5;
  sim::Tick ticks = 300;
  object::Units base_budget = 60;
  std::string base_policy = "on-demand-knapsack";
  std::uint64_t seed = 42;
  /// Servers behind the fixed network (objects assigned round-robin);
  /// > 1 makes per-server outage faults partial rather than total.
  std::size_t server_count = 1;
  /// Retry budget handed to the base station (0 = fail once, serve
  /// stale; see BaseStationConfig::fetch_retry_limit).
  std::size_t fetch_retry_limit = 0;
  /// Fault schedule. The default (empty) plan attaches no injector and
  /// the run is bit-identical to the fault-free code path. A nonzero
  /// plan is reseeded per cell (mixing faults.seed with `seed`), so
  /// multi-cell shards stay deterministic for any thread-pool size.
  sim::FaultPlan faults;
};

struct CellResult {
  std::size_t requests = 0;
  std::size_t served_locally = 0;     // from the client's own cache
  std::size_t served_by_base = 0;
  double score_sum = 0.0;             // true per-client recency scores
  object::Units base_downloaded = 0;  // fixed-network traffic
  std::uint64_t sleeper_drops = 0;
  std::uint64_t disconnect_ticks = 0;  // client-ticks spent disconnected
  // Resilience accounting (all zero when CellConfig::faults is empty).
  std::uint64_t failed_fetches = 0;
  std::uint64_t retries = 0;
  std::uint64_t retry_successes = 0;
  std::uint64_t degraded_serves = 0;
  std::uint64_t handoffs = 0;
  object::Units downlink_dropped = 0;

  double average_score() const noexcept {
    return requests ? score_sum / double(requests) : 1.0;
  }
  double local_hit_rate() const noexcept {
    return requests ? double(served_locally) / double(requests) : 0.0;
  }
};

CellResult run_cell(const CellConfig& config);

/// Same simulation, additionally appending one cumulative CellResult
/// snapshot per tick to `per_tick` (so per_tick->back() equals the return
/// value). Passing nullptr is identical to the plain overload; the
/// snapshots are read-only observation, so results are bit-identical
/// either way. The multi-cell driver (exp/multi_cell.hpp) aggregates
/// these shard-local series into registry-wide per-tick metrics.
CellResult run_cell(const CellConfig& config,
                    std::vector<CellResult>* per_tick);

/// Adds request-lifecycle tracing: the tracer is attached to this cell's
/// base station (and through it the downlink and fixed network) for the
/// whole run. The caller owns the tracer and its histogram registration;
/// nullptr tracer is identical to the two-argument overload. Tracing is
/// read-only observation — results stay bit-identical.
CellResult run_cell(const CellConfig& config, std::vector<CellResult>* per_tick,
                    obs::RequestTracer* tracer);

/// Arena-backed per-tick series: same element layout as the plain vector
/// overloads but allocated from a util::MonotonicArena, so a fleet run's
/// cold path (cells × ticks snapshots) lands in a few reused slabs
/// instead of per-cell heap growth. The arena is single-threaded: callers
/// running cells on worker threads must reserve() each series to its
/// final size (config.ticks snapshots are appended, exactly) *before*
/// dispatch — see util/arena.hpp.
using CellSeries = std::vector<CellResult, util::ArenaAllocator<CellResult>>;

/// CellSeries variant of the traced overload; identical simulation,
/// bit-identical results.
CellResult run_cell(const CellConfig& config, CellSeries* per_tick,
                    obs::RequestTracer* tracer);

}  // namespace mobi::client
