// Mobile clients with local caches, intermittent connectivity and
// invalidation-report listening.
//
// The paper's §1 motivates the base-station cache with client churn ("a
// client may be connected to the base station in its cell for a short
// period of time, and then disconnect"); its related work [8] (Barbara &
// Imielinski) studies what a *client-side* cache can keep across sleeps.
// This module models that tier: each client holds a small bounded cache
// fed by the base station's responses, hears the base station's periodic
// invalidation reports while connected, and applies the sleeper rule on
// reconnect. A request is then served at three possible levels: the
// client cache (free), the base-station cache (downlink cost), or a
// remote fetch (fixed-network cost).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/invalidation.hpp"
#include "cache/replacement.hpp"
#include "object/object.hpp"
#include "sim/tick.hpp"
#include "util/rng.hpp"

namespace mobi::client {

enum class Connectivity { kConnected, kDisconnected };

struct MobileClientConfig {
  /// Local cache capacity in data units.
  object::Units cache_units = 20;
  /// Target recency the client attaches to its requests.
  double target_recency = 1.0;
  /// Per-tick probability of disconnecting / reconnecting.
  double disconnect_rate = 0.01;
  double reconnect_rate = 0.3;
};

/// Where a request was ultimately served from.
enum class ServedBy { kClientCache, kBaseStation, kNotServed };

class MobileClient {
 public:
  MobileClient(std::uint32_t id, const object::Catalog& catalog,
               MobileClientConfig config);

  std::uint32_t id() const noexcept { return id_; }
  Connectivity connectivity() const noexcept { return connectivity_; }
  bool connected() const noexcept {
    return connectivity_ == Connectivity::kConnected;
  }
  double target_recency() const noexcept { return config_.target_recency; }

  /// Advances the connectivity state machine one tick. Returns true if
  /// the client just reconnected (the caller should deliver a report or
  /// let the sleeper rule fire on the next one). While a handoff is in
  /// progress the random disconnect/reconnect draws are suspended (no
  /// RNG is consumed) and the client reconnects deterministically when
  /// the handoff window closes.
  bool step_connectivity(util::Rng& rng);

  /// Forces the client off the air for `ticks` steps — a handoff to a
  /// neighboring cell and back (fault injection). Idempotent while one
  /// is already in progress: the longer window wins.
  void begin_handoff(sim::Tick ticks);

  bool in_handoff() const noexcept { return handoff_ticks_left_ > 0; }
  std::uint64_t handoff_count() const noexcept { return handoffs_; }

  /// Tries to serve `id` locally. Returns the recency of the local copy
  /// if present (and records a hit), nullopt on miss.
  std::optional<double> lookup(object::ObjectId id, sim::Tick now);

  /// Stores a copy received from the base station. `recency` is the copy's
  /// recency score at receipt; 1.0 when the base station relayed a fresh
  /// copy, lower when it served its own stale cache entry.
  void store(object::ObjectId id, const server::FetchResult& fetch,
             sim::Tick now, double recency = 1.0);

  /// Hears an invalidation report (only meaningful while connected).
  /// Returns -1 if the sleeper rule dropped the local cache.
  int hear_report(const cache::InvalidationReport& report);

  const cache::BoundedCache& local_cache() const noexcept { return cache_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t sleeper_drops() const noexcept {
    return listener_.cache_drops();
  }

 private:
  std::uint32_t id_;
  MobileClientConfig config_;
  cache::BoundedCache cache_;
  cache::InvalidationListener listener_;
  Connectivity connectivity_ = Connectivity::kConnected;
  sim::Tick handoff_ticks_left_ = 0;
  std::uint64_t handoffs_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mobi::client
