#include "client/mobile_client.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobi::client {

MobileClient::MobileClient(std::uint32_t id, const object::Catalog& catalog,
                           MobileClientConfig config)
    : id_(id),
      config_(config),
      cache_(catalog, cache::make_harmonic_decay(), config.cache_units,
             cache::lru_policy()),
      listener_(cache_) {
  if (config.disconnect_rate < 0.0 || config.disconnect_rate > 1.0 ||
      config.reconnect_rate < 0.0 || config.reconnect_rate > 1.0) {
    throw std::invalid_argument("MobileClient: rates must be in [0, 1]");
  }
  if (config.target_recency <= 0.0 || config.target_recency > 1.0) {
    throw std::invalid_argument("MobileClient: target_recency in (0, 1]");
  }
}

void MobileClient::begin_handoff(sim::Tick ticks) {
  if (ticks <= 0) return;
  if (!in_handoff()) ++handoffs_;
  handoff_ticks_left_ = std::max(handoff_ticks_left_, ticks);
  connectivity_ = Connectivity::kDisconnected;
}

bool MobileClient::step_connectivity(util::Rng& rng) {
  if (handoff_ticks_left_ > 0) {
    // Off the air mid-handoff: no disconnect/reconnect draws, so a
    // fault-free run's RNG stream is untouched by this branch.
    if (--handoff_ticks_left_ == 0) {
      connectivity_ = Connectivity::kConnected;
      return true;
    }
    return false;
  }
  if (connectivity_ == Connectivity::kConnected) {
    if (rng.bernoulli(config_.disconnect_rate)) {
      connectivity_ = Connectivity::kDisconnected;
    }
    return false;
  }
  if (rng.bernoulli(config_.reconnect_rate)) {
    connectivity_ = Connectivity::kConnected;
    return true;
  }
  return false;
}

std::optional<double> MobileClient::lookup(object::ObjectId id,
                                           sim::Tick now) {
  const auto recency = cache_.read(id, now);
  if (recency) {
    ++hits_;
  } else {
    ++misses_;
  }
  return recency;
}

void MobileClient::store(object::ObjectId id, const server::FetchResult& fetch,
                         sim::Tick now, double recency) {
  cache_.admit(id, fetch, now, recency);
}

int MobileClient::hear_report(const cache::InvalidationReport& report) {
  if (!connected()) {
    throw std::logic_error("MobileClient: disconnected clients hear nothing");
  }
  return listener_.apply(report);
}

}  // namespace mobi::client
