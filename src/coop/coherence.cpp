#include "coop/coherence.hpp"

#include <bit>
#include <stdexcept>

#include "cache/cache.hpp"

namespace mobi::coop {

const char* consistency_mode_name(ConsistencyMode mode) noexcept {
  switch (mode) {
    case ConsistencyMode::kInvalidate: return "invalidate";
    case ConsistencyMode::kPropagate: return "propagate";
    case ConsistencyMode::kLease: return "lease";
  }
  return "?";
}

const char* coherence_state_name(CoherenceState state) noexcept {
  switch (state) {
    case CoherenceState::kInvalid: return "invalid";
    case CoherenceState::kShared: return "shared";
    case CoherenceState::kExclusive: return "exclusive";
    case CoherenceState::kStalePendingRefresh: return "stale-pending-refresh";
  }
  return "?";
}

CoherenceDirectory::CoherenceDirectory(std::size_t object_count,
                                       std::size_t cell_count,
                                       const CoherenceConfig& config)
    : object_count_(object_count), cell_count_(cell_count), config_(config) {
  if (cell_count_ == 0 || cell_count_ > 64) {
    throw std::invalid_argument(
        "CoherenceDirectory: sharer sets are 64-bit masks; need 1..64 cells");
  }
  if (config_.lease_ticks < 1) {
    throw std::invalid_argument("CoherenceDirectory: lease_ticks must be >= 1");
  }
  if (config_.peer_cost_factor <= 0.0 || config_.peer_cost_factor > 1.0) {
    throw std::invalid_argument(
        "CoherenceDirectory: peer_cost_factor must be in (0, 1]");
  }
  sharers_.assign(object_count_, 0);
  states_.assign(cell_count_ * object_count_, CoherenceState::kInvalid);
  lease_expiry_.assign(cell_count_ * object_count_, 0);
}

void CoherenceDirectory::begin_tick(sim::Tick now) {
  if (config_.mode != ConsistencyMode::kLease) return;
  for (std::size_t obj = 0; obj < object_count_; ++obj) {
    std::uint64_t mask = sharers_[obj];
    while (mask) {
      const std::size_t cell = std::size_t(std::countr_zero(mask));
      mask &= mask - 1;
      const auto id = object::ObjectId(obj);
      if (lease_expiry_[index(cell, id)] > now) continue;
      if (listener_) listener_->expire_copy(cell, id);
      states_[index(cell, id)] = CoherenceState::kInvalid;
      sharers_[obj] &= ~(std::uint64_t(1) << cell);
      ++stats_.lease_expiries;
    }
    // A lone survivor of the sweep is the sole cached copy again.
    const std::uint64_t left = sharers_[obj];
    if (left && (left & (left - 1)) == 0) {
      const std::size_t cell = std::size_t(std::countr_zero(left));
      auto& state = states_[index(cell, object::ObjectId(obj))];
      if (state == CoherenceState::kShared) {
        state = CoherenceState::kExclusive;
      }
    }
  }
}

void CoherenceDirectory::on_fill(std::size_t cell, object::ObjectId id,
                                 sim::Tick now) {
  const std::uint64_t bit = std::uint64_t(1) << cell;
  const std::uint64_t others = sharers_[std::size_t(id)] & ~bit;
  if (others == 0) {
    states_[index(cell, id)] = CoherenceState::kExclusive;
  } else {
    // Downgrade the (at most one) Exclusive holder among the others.
    std::uint64_t mask = others;
    while (mask) {
      const std::size_t other = std::size_t(std::countr_zero(mask));
      mask &= mask - 1;
      if (states_[index(other, id)] == CoherenceState::kExclusive) {
        states_[index(other, id)] = CoherenceState::kShared;
      }
    }
    states_[index(cell, id)] = CoherenceState::kShared;
  }
  sharers_[std::size_t(id)] |= bit;
  lease_expiry_[index(cell, id)] = now + config_.lease_ticks;
}

void CoherenceDirectory::on_evict(std::size_t cell, object::ObjectId id) {
  const std::uint64_t bit = std::uint64_t(1) << cell;
  if (!(sharers_[std::size_t(id)] & bit)) return;
  sharers_[std::size_t(id)] &= ~bit;
  states_[index(cell, id)] = CoherenceState::kInvalid;
  const std::uint64_t left = sharers_[std::size_t(id)];
  if (left && (left & (left - 1)) == 0) {
    auto& state = states_[index(std::size_t(std::countr_zero(left)), id)];
    if (state == CoherenceState::kShared) {
      state = CoherenceState::kExclusive;
    }
  }
}

void CoherenceDirectory::on_server_update(object::ObjectId id) {
  std::uint64_t mask = sharers_[std::size_t(id)];
  switch (config_.mode) {
    case ConsistencyMode::kInvalidate:
      while (mask) {
        const std::size_t cell = std::size_t(std::countr_zero(mask));
        mask &= mask - 1;
        if (listener_) listener_->invalidate_copy(cell, id);
        states_[index(cell, id)] = CoherenceState::kInvalid;
        ++stats_.invalidations;
      }
      sharers_[std::size_t(id)] = 0;
      break;
    case ConsistencyMode::kPropagate:
      // Sharer set and states are untouched: every copy is refreshed in
      // place, paying the inter-station push cost per copy.
      while (mask) {
        const std::size_t cell = std::size_t(std::countr_zero(mask));
        mask &= mask - 1;
        if (listener_) listener_->propagate_copy(cell, id);
        ++stats_.propagations;
        stats_.coherence_units += config_.propagate_unit_cost;
      }
      break;
    case ConsistencyMode::kLease:
      // Copies keep serving until their lease runs out; just mark them.
      while (mask) {
        const std::size_t cell = std::size_t(std::countr_zero(mask));
        mask &= mask - 1;
        states_[index(cell, id)] = CoherenceState::kStalePendingRefresh;
      }
      break;
  }
}

void CoherenceDirectory::record_peer_fetch(object::Units charged_units) {
  ++stats_.peer_hits;
  stats_.peer_fetch_units += charged_units;
}

std::uint64_t CoherenceDirectory::sharer_mask(object::ObjectId id) const {
  return sharers_[std::size_t(id)];
}

std::size_t CoherenceDirectory::sharer_count(object::ObjectId id) const {
  return std::size_t(std::popcount(sharers_[std::size_t(id)]));
}

CoherenceState CoherenceDirectory::state(std::size_t cell,
                                         object::ObjectId id) const {
  return states_[index(cell, id)];
}

sim::Tick CoherenceDirectory::lease_expiry(std::size_t cell,
                                           object::ObjectId id) const {
  return lease_expiry_[index(cell, id)];
}

bool CoherenceDirectory::serveable(std::size_t cell, object::ObjectId id,
                                   sim::Tick now) const {
  const CoherenceState s = states_[index(cell, id)];
  if (s == CoherenceState::kInvalid) return false;
  if (config_.mode == ConsistencyMode::kLease) {
    return lease_expiry_[index(cell, id)] > now;
  }
  return true;
}

PeerCacheView::PeerCacheView(CoherenceDirectory& directory,
                             std::size_t own_cell, double min_recency)
    : directory_(&directory),
      own_cell_(own_cell),
      min_recency_(min_recency),
      caches_(directory.cell_count(), nullptr) {}

void PeerCacheView::set_cell_cache(std::size_t cell,
                                   const cache::Cache* cache) {
  caches_.at(cell) = cache;
}

core::PeerCopy PeerCacheView::lookup(object::ObjectId id,
                                     sim::Tick now) const {
  core::PeerCopy best;
  std::uint64_t mask =
      directory_->sharer_mask(id) & ~(std::uint64_t(1) << own_cell_);
  while (mask) {
    const std::size_t cell = std::size_t(std::countr_zero(mask));
    mask &= mask - 1;
    if (!directory_->serveable(cell, id, now)) continue;
    // Strict > keeps the lowest-cell winner on ties — deterministic and
    // independent of anything but directory + cache state.
    const double recency = caches_[cell]->recency_or_zero(id);
    if (recency > best.recency) best.recency = recency;
  }
  best.cost_factor = directory_->config().peer_cost_factor;
  best.valid = best.recency >= min_recency_ && best.recency > 0.0;
  return best;
}

void PeerCacheView::on_cache_fill(object::ObjectId id, sim::Tick now,
                                  double /*recency*/) {
  directory_->on_fill(own_cell_, id, now);
}

void PeerCacheView::on_cache_evict(object::ObjectId id) {
  directory_->on_evict(own_cell_, id);
}

}  // namespace mobi::coop
