// Cooperative caching across neighboring cells.
//
// Related work (paper §5) cites Harvest's hierarchical internet object
// cache [10]: caches ask nearby caches before going to the origin. In the
// mobile setting, neighboring base stations are connected by a cheap
// wired link, so a base station can satisfy a planned download from a
// neighbor's cache — paying less fixed-network bandwidth but inheriting
// the neighbor copy's (possibly reduced) recency — instead of always
// pulling from the remote origin.
//
// Fetch resolution per planned download of object u:
//   kOriginOnly     — always fetch from the origin (the paper's model);
//   kNeighborFirst  — if any neighbor caches u with recency >= the
//                     threshold, copy from the best neighbor; else origin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/fig2.hpp"
#include "object/object.hpp"
#include "sim/tick.hpp"

namespace mobi::coop {

enum class FetchMode { kOriginOnly, kNeighborFirst };

const char* fetch_mode_name(FetchMode mode) noexcept;

struct CoopConfig {
  std::size_t cell_count = 3;
  std::size_t object_count = 200;
  object::Units size_lo = 1;
  object::Units size_hi = 8;
  std::size_t requests_per_tick_per_cell = 40;
  exp::AccessPattern access = exp::AccessPattern::kZipf;
  double zipf_alpha = 1.0;
  /// Give each cell its own popularity permutation (different cells like
  /// different objects); false = identical interests (maximum overlap).
  bool distinct_interests = false;
  sim::Tick update_period = 4;
  sim::Tick warmup_ticks = 30;
  sim::Tick measure_ticks = 200;
  object::Units budget_per_cell = 50;
  FetchMode mode = FetchMode::kNeighborFirst;
  /// Minimum neighbor-copy recency to accept instead of the origin.
  double neighbor_recency_threshold = 0.5;
  std::uint64_t seed = 42;
};

struct CoopResult {
  std::size_t requests = 0;
  double score_sum = 0.0;
  double recency_sum = 0.0;
  object::Units origin_units = 0;    // pulled over the fixed network
  object::Units neighbor_units = 0;  // copied between base stations
  std::size_t origin_fetches = 0;
  std::size_t neighbor_fetches = 0;

  double average_score() const noexcept {
    return requests ? score_sum / double(requests) : 1.0;
  }
  double average_recency() const noexcept {
    return requests ? recency_sum / double(requests) : 1.0;
  }
  double neighbor_fraction() const noexcept {
    const auto total = origin_fetches + neighbor_fetches;
    return total ? double(neighbor_fetches) / double(total) : 0.0;
  }
};

CoopResult run_cooperative(const CoopConfig& config);

/// Same simulation, additionally appending one cumulative CoopResult
/// snapshot per tick (warmup ticks included — their rows simply carry
/// zeros, keeping the series aligned with the tick index) so
/// per_tick->back() equals the return value. Passing nullptr is identical
/// to the plain overload.
CoopResult run_cooperative(const CoopConfig& config,
                           std::vector<CoopResult>* per_tick);

}  // namespace mobi::coop
