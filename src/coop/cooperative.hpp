// Cooperative caching across neighboring cells.
//
// Related work (paper §5) cites Harvest's hierarchical internet object
// cache [10]: caches ask nearby caches before going to the origin. In the
// mobile setting, neighboring base stations are connected by a cheap
// wired link, so a base station can satisfy a planned download from a
// neighbor's cache — paying less fixed-network bandwidth but inheriting
// the neighbor copy's (possibly reduced) recency — instead of always
// pulling from the remote origin.
//
// Fetch resolution per planned download of object u:
//   kOriginOnly     — always fetch from the origin (the paper's model);
//   kNeighborFirst  — if any neighbor caches u with recency >= the
//                     threshold, copy from the best neighbor; else origin.
//
// With `coherence.enabled` the cluster additionally runs the directory
// protocol from coherence.hpp: every cached copy carries a coherence
// state, server updates drive the configured consistency mode
// (invalidate / propagate / lease), the knapsack prices a third source
// tier through a PeerCacheView, and neighbor fetches only happen through
// serveable directory entries. Coherence off is bit-identical to the
// pre-coherence loop (kept verbatim as detail::run_cooperative_reference
// and locked by tests/coherence_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coop/coherence.hpp"
#include "exp/fig2.hpp"
#include "object/object.hpp"
#include "sim/tick.hpp"

namespace mobi::obs {
class MetricsRegistry;
class SeriesRecorder;
class PhaseProfiler;
}  // namespace mobi::obs

namespace mobi::server {
class ServerPool;
}  // namespace mobi::server

namespace mobi::coop {

enum class FetchMode { kOriginOnly, kNeighborFirst };

const char* fetch_mode_name(FetchMode mode) noexcept;

struct CoopConfig {
  std::size_t cell_count = 3;
  std::size_t object_count = 200;
  object::Units size_lo = 1;
  object::Units size_hi = 8;
  std::size_t requests_per_tick_per_cell = 40;
  exp::AccessPattern access = exp::AccessPattern::kZipf;
  double zipf_alpha = 1.0;
  /// Give each cell its own popularity permutation (different cells like
  /// different objects); false = identical interests (maximum overlap).
  bool distinct_interests = false;
  sim::Tick update_period = 4;
  sim::Tick warmup_ticks = 30;
  sim::Tick measure_ticks = 200;
  object::Units budget_per_cell = 50;
  FetchMode mode = FetchMode::kNeighborFirst;
  /// Minimum neighbor-copy recency to accept instead of the origin.
  double neighbor_recency_threshold = 0.5;
  /// Per-cell download policy (core::make_policy name).
  std::string policy = "on-demand-knapsack";
  /// Consistency protocol (coherence.hpp); disabled by default.
  CoherenceConfig coherence;
  std::uint64_t seed = 42;
};

struct CoopResult {
  std::size_t requests = 0;
  double score_sum = 0.0;
  double recency_sum = 0.0;
  object::Units origin_units = 0;    // pulled over the fixed network
  object::Units neighbor_units = 0;  // copied between base stations
  std::size_t origin_fetches = 0;
  std::size_t neighbor_fetches = 0;

  // Coherence-protocol accounting (all zero when coherence is disabled,
  // keeping field-for-field equality with pre-coherence results).
  std::uint64_t invalidations = 0;
  std::uint64_t propagations = 0;
  std::uint64_t lease_expiries = 0;
  std::uint64_t peer_hits = 0;
  object::Units peer_fetch_units = 0;  // discounted units charged to budget
  object::Units coherence_units = 0;   // propagation wire traffic

  double average_score() const noexcept {
    return requests ? score_sum / double(requests) : 1.0;
  }
  double average_recency() const noexcept {
    return requests ? recency_sum / double(requests) : 1.0;
  }
  double neighbor_fraction() const noexcept {
    const auto total = origin_fetches + neighbor_fetches;
    return total ? double(neighbor_fetches) / double(total) : 0.0;
  }
};

/// One lock-step cluster of cooperating cells, steppable a tick at a
/// time so tests can check protocol invariants between ticks. Construction
/// order and per-tick work replicate the original run_cooperative loop
/// exactly (same RNG draws, same float accumulation order), so a
/// coherence-disabled cluster is bit-identical to
/// detail::run_cooperative_reference — the differential lock in
/// tests/coherence_test.cpp.
class CoopCluster : public CoherenceDirectory::Listener {
 public:
  explicit CoopCluster(const CoopConfig& config);
  ~CoopCluster() override;
  CoopCluster(const CoopCluster&) = delete;
  CoopCluster& operator=(const CoopCluster&) = delete;

  /// Advances one tick: lease sweep, server updates (driving the
  /// consistency mode), then per cell select / resolve / serve.
  void tick();

  sim::Tick now() const noexcept { return now_; }
  const CoopConfig& config() const noexcept { return config_; }
  const CoopResult& result() const noexcept { return result_; }
  std::size_t cell_count() const noexcept;
  const cache::Cache& cell_cache(std::size_t cell) const;
  const server::ServerPool& servers() const noexcept;
  const object::Catalog& catalog() const noexcept;
  /// nullptr when coherence is disabled.
  const CoherenceDirectory* directory() const noexcept;

  /// Attaches a phase profiler: each tick() runs a `coop.coherence` span
  /// (lease sweep + server updates driving the consistency mode; cost =
  /// objects updated) and a `coop.cells` span (per-cell select / resolve
  /// / serve; cost = requests served). Single-threaded — attach only
  /// when the cluster is driven from one thread (the parallel shard
  /// workers of run_multi_cell must not share one). nullptr detaches.
  void set_profiler(obs::PhaseProfiler* profiler);

  // CoherenceDirectory::Listener — protocol actions applied to the cells.
  void invalidate_copy(std::size_t cell, object::ObjectId id) override;
  void propagate_copy(std::size_t cell, object::ObjectId id) override;
  void expire_copy(std::size_t cell, object::ObjectId id) override;

 private:
  struct Impl;
  CoopConfig config_;
  sim::Tick now_ = 0;
  CoopResult result_;
  CoherenceStats warmup_snapshot_;
  std::unique_ptr<Impl> impl_;
  obs::PhaseProfiler* profiler_ = nullptr;
  std::uint32_t coherence_phase_ = 0;
  std::uint32_t cells_phase_ = 0;
  std::uint64_t updates_this_tick_ = 0;  // profiler cost scratch
};

CoopResult run_cooperative(const CoopConfig& config);

/// Same simulation, additionally appending one cumulative CoopResult
/// snapshot per tick (warmup ticks included — their rows simply carry
/// zeros, keeping the series aligned with the tick index) so
/// per_tick->back() equals the return value. Passing nullptr is identical
/// to the plain overload.
CoopResult run_cooperative(const CoopConfig& config,
                           std::vector<CoopResult>* per_tick);

/// Same simulation, recording per-tick `coop.*` metrics — request/score
/// aggregates plus the literal `coop.coherence.{invalidations,
/// propagations,lease_expiries,peer_hits,peer_fetch_units}` counters (and
/// `coop.coherence.wire_units` for propagation traffic) — into the
/// recorder's registry, one sample per tick. Sim-time only, so the
/// exported document is bit-reproducible (the golden_coop gate).
CoopResult run_cooperative(const CoopConfig& config,
                           obs::SeriesRecorder& recorder);

namespace detail {

/// The pre-coherence simulation loop, kept verbatim as the differential
/// oracle for CoopCluster (tests/coherence_test.cpp compares them
/// field-for-field). Throws std::invalid_argument if coherence is
/// enabled — the oracle predates the protocol.
CoopResult run_cooperative_reference(const CoopConfig& config,
                                     std::vector<CoopResult>* per_tick);

}  // namespace detail

}  // namespace mobi::coop
