#include "coop/cooperative.hpp"

#include <memory>

#include "cache/cache.hpp"
#include "cache/decay.hpp"
#include "core/policy.hpp"
#include "core/scoring.hpp"
#include "object/builders.hpp"
#include "server/remote_server.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/requests.hpp"
#include "workload/updates.hpp"

namespace mobi::coop {

const char* fetch_mode_name(FetchMode mode) noexcept {
  switch (mode) {
    case FetchMode::kOriginOnly: return "origin-only";
    case FetchMode::kNeighborFirst: return "neighbor-first";
  }
  return "?";
}

namespace {

std::shared_ptr<const workload::AccessDistribution> make_access(
    const CoopConfig& config, util::Rng& rng, std::size_t cell) {
  std::vector<object::ObjectId> mapping;
  if (config.distinct_interests && cell > 0) {
    mapping = [&] {
      std::vector<object::ObjectId> ids(config.object_count);
      const auto perm = rng.permutation(config.object_count);
      for (std::size_t i = 0; i < perm.size(); ++i) {
        ids[i] = object::ObjectId(perm[i]);
      }
      return ids;
    }();
  }
  switch (config.access) {
    case exp::AccessPattern::kUniform:
      return workload::make_uniform_access(config.object_count);
    case exp::AccessPattern::kRankLinear:
      return workload::make_rank_linear_access(config.object_count,
                                               std::move(mapping));
    case exp::AccessPattern::kZipf:
      return workload::make_zipf_access(config.object_count,
                                        config.zipf_alpha, std::move(mapping));
  }
  throw std::invalid_argument("make_access: bad pattern");
}

}  // namespace

CoopResult run_cooperative(const CoopConfig& config) {
  return run_cooperative(config, nullptr);
}

CoopResult run_cooperative(const CoopConfig& config,
                           std::vector<CoopResult>* per_tick) {
  if (config.cell_count == 0) {
    throw std::invalid_argument("run_cooperative: need >= 1 cell");
  }
  if (config.neighbor_recency_threshold <= 0.0 ||
      config.neighbor_recency_threshold > 1.0) {
    throw std::invalid_argument(
        "run_cooperative: neighbor threshold must be in (0, 1]");
  }
  util::Rng rng(config.seed);
  const object::Catalog catalog = object::make_random_catalog(
      config.object_count, config.size_lo, config.size_hi, rng);
  server::ServerPool servers(catalog, 1);
  const std::shared_ptr<const cache::DecayModel> decay =
      cache::make_harmonic_decay();
  core::ReciprocalScorer scorer;

  struct Cell {
    std::unique_ptr<cache::Cache> cache;
    std::unique_ptr<core::DownloadPolicy> policy;
    std::unique_ptr<workload::RequestGenerator> requests;
  };
  std::vector<Cell> cells(config.cell_count);
  for (std::size_t c = 0; c < config.cell_count; ++c) {
    cells[c].cache = std::make_unique<cache::Cache>(catalog.size(), decay);
    cells[c].policy = std::make_unique<core::OnDemandKnapsackPolicy>();
    cells[c].requests = std::make_unique<workload::RequestGenerator>(
        make_access(config, rng, c), workload::ConstantTarget{1.0},
        config.requests_per_tick_per_cell, rng.split());
  }
  auto updates = workload::make_periodic_staggered(config.object_count,
                                                   config.update_period);

  CoopResult result;
  const sim::Tick total = config.warmup_ticks + config.measure_ticks;
  for (sim::Tick t = 0; t < total; ++t) {
    updates->for_each_updated(t, [&](object::ObjectId id) {
      servers.apply_update(id, t);
      for (auto& cell : cells) cell.cache->on_server_update(id);
    });

    const bool measured = t >= config.warmup_ticks;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      Cell& cell = cells[c];
      const auto batch = cell.requests->next_batch();
      core::PolicyContext ctx;
      ctx.catalog = &catalog;
      ctx.cache = cell.cache.get();
      ctx.servers = &servers;
      ctx.scorer = &scorer;
      ctx.now = t;
      ctx.budget = config.budget_per_cell;

      for (object::ObjectId id : cell.policy->select(batch, ctx)) {
        // Resolve: best neighbor copy above the threshold, else origin.
        double best_recency = 0.0;
        if (config.mode == FetchMode::kNeighborFirst) {
          for (std::size_t other = 0; other < cells.size(); ++other) {
            if (other == c) continue;
            best_recency = std::max(
                best_recency, cells[other].cache->recency_or_zero(id));
          }
        }
        if (best_recency >= config.neighbor_recency_threshold) {
          // The copied entry keeps the neighbor's recency; recency (not
          // the version counter) is what every policy here consults.
          cell.cache->refresh(id, servers.fetch(id), t, best_recency);
          if (measured) {
            result.neighbor_units += catalog.object_size(id);
            ++result.neighbor_fetches;
          }
        } else {
          cell.cache->refresh(id, servers.fetch(id), t);
          if (measured) {
            result.origin_units += catalog.object_size(id);
            ++result.origin_fetches;
          }
        }
      }

      if (measured) {
        for (const auto& request : batch) {
          const double x = cell.cache->recency_or_zero(request.object);
          result.recency_sum += x;
          result.score_sum += scorer.score(x, request.target_recency);
          ++result.requests;
        }
      }
    }

    if (per_tick) per_tick->push_back(result);
  }
  return result;
}

}  // namespace mobi::coop
