#include "coop/cooperative.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "cache/cache.hpp"
#include "cache/decay.hpp"
#include "core/policy.hpp"
#include "core/scoring.hpp"
#include "object/builders.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "server/remote_server.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/requests.hpp"
#include "workload/updates.hpp"

namespace mobi::coop {

const char* fetch_mode_name(FetchMode mode) noexcept {
  switch (mode) {
    case FetchMode::kOriginOnly: return "origin-only";
    case FetchMode::kNeighborFirst: return "neighbor-first";
  }
  return "?";
}

namespace {

std::shared_ptr<const workload::AccessDistribution> make_access(
    const CoopConfig& config, util::Rng& rng, std::size_t cell) {
  std::vector<object::ObjectId> mapping;
  if (config.distinct_interests && cell > 0) {
    mapping = [&] {
      std::vector<object::ObjectId> ids(config.object_count);
      const auto perm = rng.permutation(config.object_count);
      for (std::size_t i = 0; i < perm.size(); ++i) {
        ids[i] = object::ObjectId(perm[i]);
      }
      return ids;
    }();
  }
  switch (config.access) {
    case exp::AccessPattern::kUniform:
      return workload::make_uniform_access(config.object_count);
    case exp::AccessPattern::kRankLinear:
      return workload::make_rank_linear_access(config.object_count,
                                               std::move(mapping));
    case exp::AccessPattern::kZipf:
      return workload::make_zipf_access(config.object_count,
                                        config.zipf_alpha, std::move(mapping));
  }
  throw std::invalid_argument("make_access: bad pattern");
}

void validate(const CoopConfig& config) {
  if (config.cell_count == 0) {
    throw std::invalid_argument("run_cooperative: need >= 1 cell");
  }
  if (config.neighbor_recency_threshold <= 0.0 ||
      config.neighbor_recency_threshold > 1.0) {
    throw std::invalid_argument(
        "run_cooperative: neighbor threshold must be in (0, 1]");
  }
}

}  // namespace

// One cooperating cell: the cache, its download policy, its request
// stream, a coherent window onto the peers (coherence only), and the
// per-tick scratch retained across ticks so the steady state allocates
// nothing (tests/alloc_regression_test.cpp).
struct CoopCluster::Impl {
  struct Cell {
    std::unique_ptr<cache::Cache> cache;
    std::unique_ptr<core::DownloadPolicy> policy;
    std::unique_ptr<workload::RequestGenerator> requests;
    std::unique_ptr<PeerCacheView> view;  // coherence only
    workload::RequestBatch batch;
    std::vector<object::ObjectId> to_fetch;
  };

  // Declaration order *is* the original construction order: the RNG
  // births the catalog, then each cell draws its access mapping and
  // split stream in cell order — the draw sequence the reference loop
  // consumes, bit for bit.
  util::Rng rng;
  object::Catalog catalog;
  server::ServerPool servers;
  std::shared_ptr<const cache::DecayModel> decay;
  core::ReciprocalScorer scorer;
  std::vector<Cell> cells;
  std::unique_ptr<workload::UpdateProcess> updates;
  std::unique_ptr<CoherenceDirectory> directory;  // coherence only

  explicit Impl(const CoopConfig& config)
      : rng(config.seed),
        catalog(object::make_random_catalog(config.object_count,
                                            config.size_lo, config.size_hi,
                                            rng)),
        servers(catalog, 1),
        decay(cache::make_harmonic_decay()),
        cells(config.cell_count) {
    for (std::size_t c = 0; c < config.cell_count; ++c) {
      cells[c].cache = std::make_unique<cache::Cache>(catalog.size(), decay);
      cells[c].policy = core::make_policy(config.policy);
      cells[c].requests = std::make_unique<workload::RequestGenerator>(
          make_access(config, rng, c), workload::ConstantTarget{1.0},
          config.requests_per_tick_per_cell, rng.split());
    }
    updates = workload::make_periodic_staggered(config.object_count,
                                                config.update_period);
    if (config.coherence.enabled) {
      directory = std::make_unique<CoherenceDirectory>(
          config.object_count, config.cell_count, config.coherence);
      for (std::size_t c = 0; c < config.cell_count; ++c) {
        cells[c].view = std::make_unique<PeerCacheView>(
            *directory, c, config.neighbor_recency_threshold);
        for (std::size_t d = 0; d < config.cell_count; ++d) {
          cells[c].view->set_cell_cache(d, cells[d].cache.get());
        }
      }
    }
  }
};

CoopCluster::CoopCluster(const CoopConfig& config) : config_(config) {
  validate(config_);
  impl_ = std::make_unique<Impl>(config_);
  if (impl_->directory) impl_->directory->set_listener(this);
}

CoopCluster::~CoopCluster() = default;

std::size_t CoopCluster::cell_count() const noexcept {
  return impl_->cells.size();
}

const cache::Cache& CoopCluster::cell_cache(std::size_t cell) const {
  return *impl_->cells.at(cell).cache;
}

const server::ServerPool& CoopCluster::servers() const noexcept {
  return impl_->servers;
}

const object::Catalog& CoopCluster::catalog() const noexcept {
  return impl_->catalog;
}

const CoherenceDirectory* CoopCluster::directory() const noexcept {
  return impl_->directory.get();
}

void CoopCluster::set_profiler(obs::PhaseProfiler* profiler) {
  profiler_ = profiler;
  if (profiler_ != nullptr) {
    coherence_phase_ = profiler_->phase("coop.coherence");
    cells_phase_ = profiler_->phase("coop.cells");
  }
}

void CoopCluster::invalidate_copy(std::size_t cell, object::ObjectId id) {
  impl_->cells[cell].cache->evict(id);
}

void CoopCluster::propagate_copy(std::size_t cell, object::ObjectId id) {
  // The pushed update installs the new master version at full recency;
  // the wire cost is accounted by the directory.
  impl_->cells[cell].cache->refresh(id, impl_->servers.fetch(id), now_, 1.0);
}

void CoopCluster::expire_copy(std::size_t cell, object::ObjectId id) {
  impl_->cells[cell].cache->evict(id);
}

void CoopCluster::tick() {
  Impl& im = *impl_;
  const sim::Tick t = now_;
  CoherenceDirectory* dir = im.directory.get();

  updates_this_tick_ = 0;
  if (profiler_) profiler_->enter(coherence_phase_);

  // Lease sweep first: copies whose TTL ran out overnight must not serve
  // this tick's requests (tests pin lease_expiry > t for every copy).
  if (dir) dir->begin_tick(t);

  // [this, t] fits std::function's small-buffer optimisation, so the
  // per-tick update walk allocates nothing.
  im.updates->for_each_updated(t, [this, t](object::ObjectId id) {
    Impl& im2 = *impl_;
    ++updates_this_tick_;
    im2.servers.apply_update(id, t);
    CoherenceDirectory* dir2 = im2.directory.get();
    if (!dir2) {
      // Pre-coherence behavior, bit for bit: every cell decays.
      for (auto& cell : im2.cells) cell.cache->on_server_update(id);
      return;
    }
    switch (config_.coherence.mode) {
      case ConsistencyMode::kInvalidate:
      case ConsistencyMode::kPropagate:
        // The protocol owns the copies: sharers are evicted or refreshed
        // in place via the listener; nothing else caches the object.
        dir2->on_server_update(id);
        break;
      case ConsistencyMode::kLease:
        // Leased copies keep serving but their recency decays honestly —
        // the scoring must reflect that a served copy missed an update.
        for (auto& cell : im2.cells) cell.cache->on_server_update(id);
        dir2->on_server_update(id);
        break;
    }
  });
  if (profiler_) {
    profiler_->add_cost(updates_this_tick_);
    profiler_->exit();
    profiler_->enter(cells_phase_);
  }

  const bool measured = t >= config_.warmup_ticks;
  for (std::size_t c = 0; c < im.cells.size(); ++c) {
    Impl::Cell& cell = im.cells[c];
    cell.requests->next_batch_into(cell.batch);
    if (profiler_) profiler_->add_cost(cell.batch.size());
    core::PolicyContext ctx;
    ctx.catalog = &im.catalog;
    ctx.cache = cell.cache.get();
    ctx.servers = &im.servers;
    ctx.scorer = &im.scorer;
    ctx.now = t;
    ctx.budget = config_.budget_per_cell;
    // The knapsack prices the peer tier only when the protocol is on and
    // peer fetches are allowed at all; kOriginOnly still runs the
    // protocol (sharer tracking, invalidations) without peer traffic.
    const bool peer_fetches_on =
        dir != nullptr && config_.mode == FetchMode::kNeighborFirst;
    ctx.peers = peer_fetches_on ? cell.view.get() : nullptr;

    cell.policy->select_into(cell.batch, ctx, cell.to_fetch);
    for (object::ObjectId id : cell.to_fetch) {
      if (dir) {
        // Coherent resolution: the same rule the candidate builder
        // priced — a serveable peer copy strictly fresher than our own.
        core::PeerCopy pc;
        if (peer_fetches_on) pc = cell.view->lookup(id, t);
        if (pc.valid && pc.recency > cell.cache->recency_or_zero(id)) {
          cell.cache->refresh(id, im.servers.fetch(id), t, pc.recency);
          cell.view->on_cache_fill(id, t, pc.recency);
          dir->record_peer_fetch(
              core::peer_cost(im.catalog.object_size(id), pc.cost_factor));
          if (measured) {
            result_.neighbor_units += im.catalog.object_size(id);
            ++result_.neighbor_fetches;
          }
        } else {
          cell.cache->refresh(id, im.servers.fetch(id), t);
          cell.view->on_cache_fill(id, t, 1.0);
          if (measured) {
            result_.origin_units += im.catalog.object_size(id);
            ++result_.origin_fetches;
          }
        }
        continue;
      }

      // Pre-coherence resolution, kept verbatim: best neighbor copy at
      // or above the threshold, else origin.
      double best_recency = 0.0;
      if (config_.mode == FetchMode::kNeighborFirst) {
        for (std::size_t other = 0; other < im.cells.size(); ++other) {
          if (other == c) continue;
          best_recency = std::max(best_recency,
                                  im.cells[other].cache->recency_or_zero(id));
        }
      }
      if (best_recency >= config_.neighbor_recency_threshold) {
        // The copied entry keeps the neighbor's recency; recency (not
        // the version counter) is what every policy here consults.
        cell.cache->refresh(id, im.servers.fetch(id), t, best_recency);
        if (measured) {
          result_.neighbor_units += im.catalog.object_size(id);
          ++result_.neighbor_fetches;
        }
      } else {
        cell.cache->refresh(id, im.servers.fetch(id), t);
        if (measured) {
          result_.origin_units += im.catalog.object_size(id);
          ++result_.origin_fetches;
        }
      }
    }

    if (measured) {
      for (const auto& request : cell.batch) {
        const double x = cell.cache->recency_or_zero(request.object);
        result_.recency_sum += x;
        result_.score_sum += im.scorer.score(x, request.target_recency);
        ++result_.requests;
      }
    }
  }

  if (profiler_) profiler_->exit();

  if (dir) {
    // Directory counters run from tick 0 (the protocol has no warmup);
    // the measured window reports deltas against the end-of-warmup
    // snapshot so warmup rows stay all-zero like every other field.
    if (t + 1 == config_.warmup_ticks) warmup_snapshot_ = dir->stats();
    if (measured) {
      const CoherenceStats& s = dir->stats();
      result_.invalidations = s.invalidations - warmup_snapshot_.invalidations;
      result_.propagations = s.propagations - warmup_snapshot_.propagations;
      result_.lease_expiries =
          s.lease_expiries - warmup_snapshot_.lease_expiries;
      result_.peer_hits = s.peer_hits - warmup_snapshot_.peer_hits;
      result_.peer_fetch_units =
          s.peer_fetch_units - warmup_snapshot_.peer_fetch_units;
      result_.coherence_units =
          s.coherence_units - warmup_snapshot_.coherence_units;
    }
  }
  ++now_;
}

CoopResult run_cooperative(const CoopConfig& config) {
  return run_cooperative(config, nullptr);
}

CoopResult run_cooperative(const CoopConfig& config,
                           std::vector<CoopResult>* per_tick) {
  CoopCluster cluster(config);
  const sim::Tick total = config.warmup_ticks + config.measure_ticks;
  for (sim::Tick t = 0; t < total; ++t) {
    cluster.tick();
    if (per_tick) per_tick->push_back(cluster.result());
  }
  return cluster.result();
}

CoopResult run_cooperative(const CoopConfig& config,
                           obs::SeriesRecorder& recorder) {
  obs::MetricsRegistry& registry = recorder.registry();
  obs::Counter& requests = registry.register_counter("coop.requests");
  obs::Counter& origin_units = registry.register_counter("coop.origin_units");
  obs::Counter& neighbor_units =
      registry.register_counter("coop.neighbor_units");
  obs::Counter& origin_fetches =
      registry.register_counter("coop.origin_fetches");
  obs::Counter& neighbor_fetches =
      registry.register_counter("coop.neighbor_fetches");
  obs::Counter& invalidations =
      registry.register_counter("coop.coherence.invalidations");
  obs::Counter& propagations =
      registry.register_counter("coop.coherence.propagations");
  obs::Counter& lease_expiries =
      registry.register_counter("coop.coherence.lease_expiries");
  obs::Counter& peer_hits =
      registry.register_counter("coop.coherence.peer_hits");
  obs::Counter& peer_fetch_units =
      registry.register_counter("coop.coherence.peer_fetch_units");
  obs::Counter& wire_units =
      registry.register_counter("coop.coherence.wire_units");
  obs::Gauge& score_sum = registry.register_gauge("coop.score_sum");
  obs::Gauge& average_score = registry.register_gauge("coop.average_score");
  obs::Gauge& average_recency =
      registry.register_gauge("coop.average_recency");
  registry.register_gauge("coop.cells").set(double(config.cell_count));

  CoopCluster cluster(config);
  const sim::Tick total = config.warmup_ticks + config.measure_ticks;
  CoopResult prev;
  for (sim::Tick t = 0; t < total; ++t) {
    cluster.tick();
    const CoopResult& now = cluster.result();
    requests.add(now.requests - prev.requests);
    origin_units.add(std::uint64_t(now.origin_units - prev.origin_units));
    neighbor_units.add(
        std::uint64_t(now.neighbor_units - prev.neighbor_units));
    origin_fetches.add(now.origin_fetches - prev.origin_fetches);
    neighbor_fetches.add(now.neighbor_fetches - prev.neighbor_fetches);
    invalidations.add(now.invalidations - prev.invalidations);
    propagations.add(now.propagations - prev.propagations);
    lease_expiries.add(now.lease_expiries - prev.lease_expiries);
    peer_hits.add(now.peer_hits - prev.peer_hits);
    peer_fetch_units.add(
        std::uint64_t(now.peer_fetch_units - prev.peer_fetch_units));
    wire_units.add(std::uint64_t(now.coherence_units - prev.coherence_units));
    score_sum.set(now.score_sum);
    average_score.set(now.average_score());
    average_recency.set(now.average_recency());
    recorder.sample(t);
    prev = now;
  }
  return cluster.result();
}

namespace detail {

CoopResult run_cooperative_reference(const CoopConfig& config,
                                     std::vector<CoopResult>* per_tick) {
  if (config.coherence.enabled) {
    throw std::invalid_argument(
        "run_cooperative_reference: the oracle predates the coherence "
        "protocol; disable coherence");
  }
  validate(config);
  util::Rng rng(config.seed);
  const object::Catalog catalog = object::make_random_catalog(
      config.object_count, config.size_lo, config.size_hi, rng);
  server::ServerPool servers(catalog, 1);
  const std::shared_ptr<const cache::DecayModel> decay =
      cache::make_harmonic_decay();
  core::ReciprocalScorer scorer;

  struct Cell {
    std::unique_ptr<cache::Cache> cache;
    std::unique_ptr<core::DownloadPolicy> policy;
    std::unique_ptr<workload::RequestGenerator> requests;
  };
  std::vector<Cell> cells(config.cell_count);
  for (std::size_t c = 0; c < config.cell_count; ++c) {
    cells[c].cache = std::make_unique<cache::Cache>(catalog.size(), decay);
    cells[c].policy = core::make_policy(config.policy);
    cells[c].requests = std::make_unique<workload::RequestGenerator>(
        make_access(config, rng, c), workload::ConstantTarget{1.0},
        config.requests_per_tick_per_cell, rng.split());
  }
  auto updates = workload::make_periodic_staggered(config.object_count,
                                                   config.update_period);

  CoopResult result;
  const sim::Tick total = config.warmup_ticks + config.measure_ticks;
  for (sim::Tick t = 0; t < total; ++t) {
    updates->for_each_updated(t, [&](object::ObjectId id) {
      servers.apply_update(id, t);
      for (auto& cell : cells) cell.cache->on_server_update(id);
    });

    const bool measured = t >= config.warmup_ticks;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      Cell& cell = cells[c];
      const auto batch = cell.requests->next_batch();
      core::PolicyContext ctx;
      ctx.catalog = &catalog;
      ctx.cache = cell.cache.get();
      ctx.servers = &servers;
      ctx.scorer = &scorer;
      ctx.now = t;
      ctx.budget = config.budget_per_cell;

      for (object::ObjectId id : cell.policy->select(batch, ctx)) {
        // Resolve: best neighbor copy above the threshold, else origin.
        double best_recency = 0.0;
        if (config.mode == FetchMode::kNeighborFirst) {
          for (std::size_t other = 0; other < cells.size(); ++other) {
            if (other == c) continue;
            best_recency = std::max(
                best_recency, cells[other].cache->recency_or_zero(id));
          }
        }
        if (best_recency >= config.neighbor_recency_threshold) {
          // The copied entry keeps the neighbor's recency; recency (not
          // the version counter) is what every policy here consults.
          cell.cache->refresh(id, servers.fetch(id), t, best_recency);
          if (measured) {
            result.neighbor_units += catalog.object_size(id);
            ++result.neighbor_fetches;
          }
        } else {
          cell.cache->refresh(id, servers.fetch(id), t);
          if (measured) {
            result.origin_units += catalog.object_size(id);
            ++result.origin_fetches;
          }
        }
      }

      if (measured) {
        for (const auto& request : batch) {
          const double x = cell.cache->recency_or_zero(request.object);
          result.recency_sum += x;
          result.score_sum += scorer.score(x, request.target_recency);
          ++result.requests;
        }
      }
    }

    if (per_tick) per_tick->push_back(result);
  }
  return result;
}

}  // namespace detail

}  // namespace mobi::coop
