// Coherence protocol for cooperative inter-cell caching.
//
// The neighbor-first heuristic in cooperative.hpp treats peer caches as
// read-only recency oracles; nothing keeps copies consistent when the
// origin updates an object. This layer makes base stations first-class
// cache peers under a real consistency protocol, modeled after
// directory-based multi-core coherence (MESI), adapted to this system's
// single-writer world: only the origin server writes, so the protocol
// needs no writeback and no owner forwarding — a cell's copy is either
// the sole cached copy in the cluster (Exclusive), one of several
// (Shared), or known-stale awaiting refetch (StalePendingRefresh).
//
// A CoherenceDirectory tracks, per object, the set of cells caching it
// (the sharer set, logically partitioned across cells by home_cell(id) —
// one physical object here because a cluster steps in lock-step) and each
// sharer's coherence state. Origin updates drive one of three selectable
// consistency modes:
//
//   kInvalidate — the update kills every peer copy (directory fires
//     invalidate_copy per sharer; copies are evicted). No cell can ever
//     serve a stale copy; the price is a refetch storm on hot objects.
//   kPropagate — the update is pushed to every sharer over the cheap
//     inter-station link at propagate_unit_cost units per copy (fires
//     propagate_copy; copies are refreshed in place to full recency).
//     Copies are always fresh; the price is continuous wire traffic.
//   kLease — copies carry a TTL stamped at fill time and are served —
//     even if stale — until the lease expires (sharers are marked
//     StalePendingRefresh on update; begin_tick sweeps expired leases
//     with expire_copy). Bounded staleness at zero per-update traffic.
//
// Determinism contract: the directory is pure bookkeeping — no RNG, no
// wall-clock — and every transition is driven by the cluster's own
// deterministic tick sequence, so coherence-enabled runs stay
// bit-identical across thread-pool sizes (the protocol state never
// crosses a shard boundary).
#pragma once

#include <cstdint>
#include <vector>

#include "core/peer_source.hpp"
#include "object/object.hpp"
#include "sim/tick.hpp"

namespace mobi::cache {
class Cache;
}  // namespace mobi::cache

namespace mobi::coop {

enum class ConsistencyMode { kInvalidate, kPropagate, kLease };

const char* consistency_mode_name(ConsistencyMode mode) noexcept;

/// Per-(cell, object) coherence state. kInvalid = the cell holds no copy.
enum class CoherenceState : std::uint8_t {
  kInvalid = 0,
  kShared,
  kExclusive,
  kStalePendingRefresh,  // kLease only: copy outlived its master version
};

const char* coherence_state_name(CoherenceState state) noexcept;

struct CoherenceConfig {
  /// Off by default: the protocol layer is provably zero-impact when
  /// disabled (the coherence-off engine path is bit-identical to the
  /// pre-coherence loop; tests/coherence_test.cpp locks this).
  bool enabled = false;
  ConsistencyMode mode = ConsistencyMode::kInvalidate;
  /// kLease: ticks a filled copy may be served before it must be dropped.
  sim::Tick lease_ticks = 8;
  /// kPropagate: inter-station units charged per pushed copy per update.
  object::Units propagate_unit_cost = 1;
  /// Inter-station cost per origin unit for a peer fetch, in (0, 1]: a
  /// peer copy of an object of size S charges peer_cost(S, factor) units
  /// of download budget instead of S (core/peer_source.hpp).
  double peer_cost_factor = 0.25;
};

struct CoherenceStats {
  std::uint64_t invalidations = 0;   // copies killed (kInvalidate)
  std::uint64_t propagations = 0;    // copies pushed fresh (kPropagate)
  std::uint64_t lease_expiries = 0;  // copies dropped at TTL (kLease)
  std::uint64_t peer_hits = 0;       // planned downloads served by a peer
  object::Units peer_fetch_units = 0;  // budget units charged to peer fetches
  object::Units coherence_units = 0;   // wire units spent on propagation
};

/// Directory-based coherence bookkeeping for one lock-step cluster of at
/// most 64 cells. All storage is preallocated in the constructor; every
/// transition is loop-only — steady-state protocol traffic performs zero
/// allocations (tests/alloc_regression_test.cpp pins this).
class CoherenceDirectory {
 public:
  /// Receives protocol actions the directory decides on; the cluster
  /// engine applies them to the actual per-cell caches.
  class Listener {
   public:
    virtual ~Listener() = default;
    /// kInvalidate: drop cell's copy of id (it is now stale).
    virtual void invalidate_copy(std::size_t cell, object::ObjectId id) = 0;
    /// kPropagate: refresh cell's copy of id in place to full recency.
    virtual void propagate_copy(std::size_t cell, object::ObjectId id) = 0;
    /// kLease: drop cell's copy of id (its lease ran out).
    virtual void expire_copy(std::size_t cell, object::ObjectId id) = 0;
  };

  /// Throws std::invalid_argument unless 1 <= cell_count <= 64,
  /// lease_ticks >= 1, and peer_cost_factor in (0, 1].
  CoherenceDirectory(std::size_t object_count, std::size_t cell_count,
                     const CoherenceConfig& config);

  void set_listener(Listener* listener) noexcept { listener_ = listener; }

  std::size_t object_count() const noexcept { return object_count_; }
  std::size_t cell_count() const noexcept { return cell_count_; }
  const CoherenceConfig& config() const noexcept { return config_; }
  const CoherenceStats& stats() const noexcept { return stats_; }

  /// Which cell's directory slice owns `id`'s sharer set.
  std::size_t home_cell(object::ObjectId id) const noexcept {
    return std::size_t(id) % cell_count_;
  }

  /// Start-of-tick sweep: in kLease mode, drops every copy whose lease
  /// expiry is <= now (fires expire_copy per drop). No-op otherwise.
  void begin_tick(sim::Tick now);

  /// A cell installed a copy of `id` (origin fetch, peer fetch, or
  /// propagated push). Sole sharer holds Exclusive; a second fill
  /// downgrades the holder and both become Shared; a re-fill clears a
  /// StalePendingRefresh mark and restamps the lease.
  void on_fill(std::size_t cell, object::ObjectId id, sim::Tick now);

  /// A cell dropped its copy of `id`; a remaining sole Shared sharer is
  /// promoted back to Exclusive.
  void on_evict(std::size_t cell, object::ObjectId id);

  /// The origin updated `id`: runs the configured mode's transition over
  /// the sharer set (see file comment).
  void on_server_update(object::ObjectId id);

  /// Accounting hook for a planned download served from a peer copy:
  /// counts one peer hit and the budget units actually charged.
  void record_peer_fetch(object::Units charged_units);

  std::uint64_t sharer_mask(object::ObjectId id) const;
  std::size_t sharer_count(object::ObjectId id) const;
  CoherenceState state(std::size_t cell, object::ObjectId id) const;
  /// kLease: first tick at which the copy may no longer be served.
  sim::Tick lease_expiry(std::size_t cell, object::ObjectId id) const;

  /// Whether cell's copy of `id` may satisfy a request at `now`:
  /// kLease requires a live lease (expiry > now); the other modes only
  /// require a copy (kInvalidate never leaves a stale one behind).
  bool serveable(std::size_t cell, object::ObjectId id, sim::Tick now) const;

 private:
  std::size_t index(std::size_t cell, object::ObjectId id) const {
    return cell * object_count_ + std::size_t(id);
  }

  std::size_t object_count_;
  std::size_t cell_count_;
  CoherenceConfig config_;
  std::vector<std::uint64_t> sharers_;     // per object: bit c = cell c caches
  std::vector<CoherenceState> states_;     // cell-major [cell][object]
  std::vector<sim::Tick> lease_expiry_;    // cell-major, kLease stamps
  CoherenceStats stats_;
  Listener* listener_ = nullptr;
};

/// One cell's window onto its peers' coherent copies — the core-layer
/// PeerSource a BaseStation or download policy consults to price the
/// third knapsack source tier (local / peer / origin). lookup() walks the
/// directory's sharer set (never the peer caches wholesale), returns the
/// best serveable peer copy at or above `min_recency`, and is draw-free;
/// fill/evict notifications keep the directory's sharer set exact.
class PeerCacheView final : public core::PeerSource {
 public:
  PeerCacheView(CoherenceDirectory& directory, std::size_t own_cell,
                double min_recency);

  /// Registers the cache backing `cell` (peers and own cell alike) so
  /// lookup can read peer recency. All cells must be set before use.
  void set_cell_cache(std::size_t cell, const cache::Cache* cache);

  core::PeerCopy lookup(object::ObjectId id, sim::Tick now) const override;
  void on_cache_fill(object::ObjectId id, sim::Tick now,
                     double recency) override;
  void on_cache_evict(object::ObjectId id) override;

  std::size_t own_cell() const noexcept { return own_cell_; }

 private:
  CoherenceDirectory* directory_;
  std::size_t own_cell_;
  double min_recency_;
  std::vector<const cache::Cache*> caches_;
};

}  // namespace mobi::coop
