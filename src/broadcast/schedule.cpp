#include "broadcast/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace mobi::broadcast {

std::size_t BroadcastSchedule::frequency(object::ObjectId id) const {
  std::size_t count = 0;
  for (std::size_t s = 0; s < period(); ++s) {
    if (at_slot(s) == id) ++count;
  }
  return count;
}

double BroadcastSchedule::expected_wait(object::ObjectId id) const {
  const std::size_t p = period();
  // dist[s] = slots from s to the next occurrence at or after s (0 when
  // the object airs in slot s itself). Two backward passes handle the
  // cyclic wrap.
  std::vector<std::size_t> dist(p, std::numeric_limits<std::size_t>::max());
  bool seen = false;
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t i = p; i-- > 0;) {
      if (at_slot(i) == id) {
        dist[i] = 0;
        seen = true;
      } else if (i + 1 < p && dist[i + 1] != std::numeric_limits<std::size_t>::max()) {
        dist[i] = dist[i + 1] + 1;
      } else if (i + 1 == p && dist[0] != std::numeric_limits<std::size_t>::max()) {
        dist[i] = dist[0] + 1;
      }
    }
  }
  if (!seen) {
    throw std::invalid_argument("expected_wait: object never broadcast");
  }
  double total = 0.0;
  for (std::size_t d : dist) total += double(d);
  return total / double(p);
}

std::size_t BroadcastSchedule::worst_wait(object::ObjectId id) const {
  std::size_t worst = 0;
  for (std::size_t s = 0; s < period(); ++s) {
    worst = std::max(worst, wait_from(id, s));
  }
  return worst;
}

std::size_t BroadcastSchedule::wait_from(object::ObjectId id,
                                         std::size_t slot) const {
  const std::size_t p = period();
  for (std::size_t w = 0; w < p; ++w) {
    if (at_slot((slot + w) % p) == id) return w;
  }
  throw std::invalid_argument("wait_from: object never broadcast");
}

FlatSchedule::FlatSchedule(std::size_t object_count)
    : object_count_(object_count) {
  if (object_count == 0) {
    throw std::invalid_argument("FlatSchedule: need >= 1 object");
  }
}

object::ObjectId FlatSchedule::at_slot(std::size_t slot) const {
  return object::ObjectId(slot % object_count_);
}

MultiDiskSchedule::MultiDiskSchedule(
    std::vector<std::vector<object::ObjectId>> disks,
    std::vector<std::size_t> frequencies)
    : frequencies_(std::move(frequencies)) {
  if (disks.empty() || disks.size() != frequencies_.size()) {
    throw std::invalid_argument("MultiDiskSchedule: disks/frequencies mismatch");
  }
  std::size_t max_freq = 0;
  for (std::size_t f : frequencies_) {
    if (f == 0) throw std::invalid_argument("MultiDiskSchedule: zero frequency");
    max_freq = std::max(max_freq, f);
  }
  for (std::size_t f : frequencies_) {
    if (max_freq % f != 0) {
      throw std::invalid_argument(
          "MultiDiskSchedule: every frequency must divide the maximum");
    }
  }
  for (const auto& disk : disks) {
    if (disk.empty()) {
      throw std::invalid_argument("MultiDiskSchedule: empty disk");
    }
    disk_sizes_.push_back(disk.size());
  }

  // Acharya's interleaving: disk d is split into (max_freq / f_d) chunks;
  // minor cycle i carries chunk (i mod chunks_d) of every disk. Each
  // object on disk d then airs exactly f_d times per period.
  std::vector<std::size_t> chunk_counts(disks.size());
  for (std::size_t d = 0; d < disks.size(); ++d) {
    chunk_counts[d] = max_freq / frequencies_[d];
    if (chunk_counts[d] > disks[d].size()) {
      throw std::invalid_argument(
          "MultiDiskSchedule: disk too small for its chunk count");
    }
  }
  for (std::size_t cycle = 0; cycle < max_freq; ++cycle) {
    for (std::size_t d = 0; d < disks.size(); ++d) {
      const std::size_t chunks = chunk_counts[d];
      const std::size_t chunk = cycle % chunks;
      // Chunk boundaries split the disk as evenly as possible.
      const std::size_t begin = disks[d].size() * chunk / chunks;
      const std::size_t end = disks[d].size() * (chunk + 1) / chunks;
      for (std::size_t i = begin; i < end; ++i) slots_.push_back(disks[d][i]);
    }
  }
}

object::ObjectId MultiDiskSchedule::at_slot(std::size_t slot) const {
  return slots_[slot % slots_.size()];
}

std::string MultiDiskSchedule::name() const {
  std::string result = "multi-disk(";
  for (std::size_t d = 0; d < frequencies_.size(); ++d) {
    if (d) result += ",";
    result += std::to_string(disk_sizes_[d]) + "x" +
              std::to_string(frequencies_[d]);
  }
  return result + ")";
}

std::unique_ptr<BroadcastSchedule> make_two_disk_schedule(
    std::size_t object_count, double hot_fraction, std::size_t speed_ratio) {
  if (object_count < 2) {
    throw std::invalid_argument("make_two_disk_schedule: need >= 2 objects");
  }
  if (hot_fraction <= 0.0 || hot_fraction >= 1.0) {
    throw std::invalid_argument("make_two_disk_schedule: hot_fraction in (0,1)");
  }
  if (speed_ratio == 0) {
    throw std::invalid_argument("make_two_disk_schedule: zero speed ratio");
  }
  auto hot_count = std::size_t(double(object_count) * hot_fraction);
  hot_count = std::clamp<std::size_t>(hot_count, 1, object_count - 1);
  std::vector<object::ObjectId> hot, cold;
  for (object::ObjectId id = 0; id < object_count; ++id) {
    (id < hot_count ? hot : cold).push_back(id);
  }
  // The slow disk must have at least speed_ratio chunks.
  if (cold.size() < speed_ratio) {
    throw std::invalid_argument(
        "make_two_disk_schedule: cold disk smaller than the speed ratio");
  }
  return std::make_unique<MultiDiskSchedule>(
      std::vector<std::vector<object::ObjectId>>{std::move(hot),
                                                 std::move(cold)},
      std::vector<std::size_t>{speed_ratio, 1});
}

ExplicitSchedule::ExplicitSchedule(std::string name,
                                   std::vector<object::ObjectId> slots)
    : name_(std::move(name)), slots_(std::move(slots)) {
  if (slots_.empty()) {
    throw std::invalid_argument("ExplicitSchedule: empty cycle");
  }
}

std::unique_ptr<BroadcastSchedule> make_sqrt_rule_schedule(
    std::span<const double> access_probabilities, std::size_t period_hint) {
  const std::size_t n = access_probabilities.size();
  if (n == 0) {
    throw std::invalid_argument("make_sqrt_rule_schedule: no objects");
  }
  if (period_hint < n) {
    throw std::invalid_argument(
        "make_sqrt_rule_schedule: period_hint must be >= object count");
  }
  double sqrt_sum = 0.0;
  for (double p : access_probabilities) {
    if (p < 0.0) {
      throw std::invalid_argument("make_sqrt_rule_schedule: negative prob");
    }
    sqrt_sum += std::sqrt(p);
  }
  if (sqrt_sum <= 0.0) {
    throw std::invalid_argument("make_sqrt_rule_schedule: zero total prob");
  }
  std::vector<std::size_t> freq(n);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    freq[i] = std::max<std::size_t>(
        1, std::size_t(std::llround(double(period_hint) *
                                    std::sqrt(access_probabilities[i]) /
                                    sqrt_sum)));
    total += freq[i];
  }
  // Even spreading: repeatedly emit the object whose next ideal position
  // is earliest (interval_i = total / f_i), the classic fair-cycle build.
  struct Pending {
    double next = 0.0;
    double interval = 0.0;
    object::ObjectId id = 0;
    bool operator>(const Pending& other) const {
      if (next != other.next) return next > other.next;
      return id > other.id;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> heap;
  for (std::size_t i = 0; i < n; ++i) {
    const double interval = double(total) / double(freq[i]);
    // Stagger starts so distinct objects do not all collide at slot 0.
    heap.push(Pending{interval * double(i) / double(n), interval,
                      object::ObjectId(i)});
  }
  std::vector<object::ObjectId> slots;
  slots.reserve(total);
  for (std::size_t s = 0; s < total; ++s) {
    Pending top = heap.top();
    heap.pop();
    slots.push_back(top.id);
    top.next += top.interval;
    heap.push(top);
  }
  return std::make_unique<ExplicitSchedule>("sqrt-rule", std::move(slots));
}

double mean_expected_wait(const BroadcastSchedule& schedule,
                          std::span<const double> access_probabilities) {
  double total = 0.0;
  for (std::size_t id = 0; id < access_probabilities.size(); ++id) {
    if (access_probabilities[id] > 0.0) {
      total += access_probabilities[id] *
               schedule.expected_wait(object::ObjectId(id));
    }
  }
  return total;
}

}  // namespace mobi::broadcast
