// Broadcast-disk schedules (related work, paper §5 [4,5,6]).
//
// In data dissemination, the base station *pushes* objects on a broadcast
// channel in a fixed cyclic schedule; clients tune in and wait for the
// object they need. Acharya et al.'s Broadcast Disks assign objects to
// "disks" spinning at different speeds so hot objects appear more often.
// This substrate implements flat and multi-disk schedules, their expected
// waiting times, and is used by the hybrid push/pull baseline the paper
// calls "most similar to ours" ([6]).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "object/object.hpp"

namespace mobi::broadcast {

/// A cyclic broadcast schedule: slot s carries object at_slot(s % period).
class BroadcastSchedule {
 public:
  virtual ~BroadcastSchedule() = default;
  virtual std::size_t period() const noexcept = 0;
  virtual object::ObjectId at_slot(std::size_t slot) const = 0;
  virtual std::string name() const = 0;

  /// Number of slots object `id` occupies per period.
  std::size_t frequency(object::ObjectId id) const;
  /// Expected slots a client tuning in at a uniformly random time waits
  /// for `id` (average over all start slots of the distance to the next
  /// occurrence). Infinite (throws std::invalid_argument) if the object
  /// never airs.
  double expected_wait(object::ObjectId id) const;
  /// Worst-case slots until `id` airs.
  std::size_t worst_wait(object::ObjectId id) const;
  /// Slots until the next occurrence of `id` at or after `slot`.
  std::size_t wait_from(object::ObjectId id, std::size_t slot) const;
};

/// Round-robin over all n objects: period n, every object once.
class FlatSchedule final : public BroadcastSchedule {
 public:
  explicit FlatSchedule(std::size_t object_count);
  std::size_t period() const noexcept override { return object_count_; }
  object::ObjectId at_slot(std::size_t slot) const override;
  std::string name() const override { return "flat"; }

 private:
  std::size_t object_count_;
};

/// Acharya-style multi-disk schedule. Objects are partitioned into disks;
/// disk d has a relative frequency freq[d] (hotter disks spin faster).
/// The schedule interleaves chunks so each period broadcasts disk d
/// exactly freq[d] times, evenly spaced.
class MultiDiskSchedule final : public BroadcastSchedule {
 public:
  /// `disks[d]` lists the object ids on disk d; `frequencies[d]` is its
  /// relative spin speed (positive integers; typically decreasing).
  MultiDiskSchedule(std::vector<std::vector<object::ObjectId>> disks,
                    std::vector<std::size_t> frequencies);

  std::size_t period() const noexcept override { return slots_.size(); }
  object::ObjectId at_slot(std::size_t slot) const override;
  std::string name() const override;
  std::size_t disk_count() const noexcept { return disk_sizes_.size(); }

 private:
  std::vector<object::ObjectId> slots_;  // fully materialized period
  std::vector<std::size_t> disk_sizes_;
  std::vector<std::size_t> frequencies_;
};

/// A fully materialized schedule (used by the square-root rule below and
/// available for hand-built cycles).
class ExplicitSchedule final : public BroadcastSchedule {
 public:
  ExplicitSchedule(std::string name, std::vector<object::ObjectId> slots);
  std::size_t period() const noexcept override { return slots_.size(); }
  object::ObjectId at_slot(std::size_t slot) const override {
    return slots_[slot % slots_.size()];
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<object::ObjectId> slots_;
};

/// The square-root rule: to minimize mean expected wait, object i's
/// broadcast frequency should be proportional to sqrt(p_i) (a classical
/// result of broadcast scheduling). Builds a cycle of roughly
/// `period_hint` slots with per-object frequencies
/// f_i = max(1, round(period_hint * sqrt(p_i) / sum_j sqrt(p_j))),
/// occurrences spread as evenly as possible.
std::unique_ptr<BroadcastSchedule> make_sqrt_rule_schedule(
    std::span<const double> access_probabilities, std::size_t period_hint);

/// Splits the hottest `hot_fraction` of objects (by rank order 0..n-1)
/// onto a fast disk with the given speed ratio; the rest go on a slow
/// disk. Convenience for benchmarks.
std::unique_ptr<BroadcastSchedule> make_two_disk_schedule(
    std::size_t object_count, double hot_fraction, std::size_t speed_ratio);

/// Mean expected wait over an access distribution: sum_i p(i) * E[wait_i].
double mean_expected_wait(const BroadcastSchedule& schedule,
                          std::span<const double> access_probabilities);

}  // namespace mobi::broadcast
