// (1, m) broadcast indexing — "energy efficient indexing on air"
// (Imielinski, Viswanathan & Badrinath; the paper's [2] co-author line of
// work on mobile wireless data).
//
// Broadcasting data without an index forces clients to listen
// continuously (tuning time = access latency = expensive in battery).
// The (1, m) scheme interleaves m copies of an index (I slots each) with
// the data (D slots, split into m equal segments):
//
//   [index][D/m data][index][D/m data] ... (m times) — cycle L = D + m*I
//
// A client: probes one slot (every slot carries the offset of the next
// index copy), dozes to that index, reads it (I slots), dozes to its
// object's segment, and reads the object. Access latency spans the whole
// wait; tuning time — the energy currency — is just probe + index + data.
#pragma once

#include <cstddef>

namespace mobi::broadcast {

struct IndexedBroadcastConfig {
  std::size_t data_slots = 1000;  // D: total data slots per cycle (> 0)
  std::size_t index_slots = 10;   // I: size of one index copy (> 0)
  std::size_t index_copies = 10;  // m: copies per cycle (> 0, <= D)
  std::size_t object_slots = 1;   // size of the requested object
};

/// Cycle length L = D + m*I.
std::size_t cycle_length(const IndexedBroadcastConfig& config);

/// Expected access latency in slots for a random tune-in and a uniformly
/// placed object: probe(1) + E[wait to next index] + I + E[doze to the
/// object, spanning interleaved index copies] + object read
///   = 1 + (D/m + I)/2 + I + (D + m*I)/2 + object_slots
/// (next-index spacing is L/m = D/m + I; the object doze averages half
/// the full cycle L = D + m*I). Minimized at m* = sqrt(D/I).
double expected_access_latency(const IndexedBroadcastConfig& config);

/// Expected tuning (listening) time: probe + one index + the object.
double expected_tuning_time(const IndexedBroadcastConfig& config);

/// The m minimizing expected access latency: m* = sqrt(D / I) (rounded to
/// the better neighbor, at least 1).
std::size_t optimal_index_copies(std::size_t data_slots,
                                 std::size_t index_slots);

/// Latency of broadcasting with no index at all (client listens from
/// tune-in until the object passes: L'/2 + object on average, with
/// L' = D) — and tuning time equal to that latency. The baseline (1, m)
/// improves on.
double unindexed_access_latency(std::size_t data_slots,
                                std::size_t object_slots);

}  // namespace mobi::broadcast
