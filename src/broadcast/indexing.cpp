#include "broadcast/indexing.hpp"

#include <cmath>
#include <stdexcept>

namespace mobi::broadcast {

namespace {
void validate(const IndexedBroadcastConfig& config) {
  if (config.data_slots == 0 || config.index_slots == 0 ||
      config.index_copies == 0) {
    throw std::invalid_argument("IndexedBroadcast: all sizes must be > 0");
  }
  if (config.index_copies > config.data_slots) {
    throw std::invalid_argument(
        "IndexedBroadcast: more index copies than data slots");
  }
}
}  // namespace

std::size_t cycle_length(const IndexedBroadcastConfig& config) {
  validate(config);
  return config.data_slots + config.index_copies * config.index_slots;
}

double expected_access_latency(const IndexedBroadcastConfig& config) {
  validate(config);
  const double d = double(config.data_slots);
  const double i = double(config.index_slots);
  const double m = double(config.index_copies);
  const double probe = 1.0;
  const double wait_for_index = (d / m + i) / 2.0;
  const double read_index = i;
  const double wait_for_object = (d + m * i) / 2.0;  // half the cycle
  return probe + wait_for_index + read_index + wait_for_object +
         double(config.object_slots);
}

double expected_tuning_time(const IndexedBroadcastConfig& config) {
  validate(config);
  return 1.0 + double(config.index_slots) + double(config.object_slots);
}

std::size_t optimal_index_copies(std::size_t data_slots,
                                 std::size_t index_slots) {
  if (data_slots == 0 || index_slots == 0) {
    throw std::invalid_argument("optimal_index_copies: sizes must be > 0");
  }
  const double ideal = std::sqrt(double(data_slots) / double(index_slots));
  // Compare the two integer neighbors under the true latency formula.
  const auto lo = std::size_t(std::max(1.0, std::floor(ideal)));
  const auto hi = lo + 1;
  auto latency = [&](std::size_t m) {
    IndexedBroadcastConfig config;
    config.data_slots = data_slots;
    config.index_slots = index_slots;
    config.index_copies = std::min(m, data_slots);
    return expected_access_latency(config);
  };
  return latency(lo) <= latency(hi) ? lo : std::min(hi, data_slots);
}

double unindexed_access_latency(std::size_t data_slots,
                                std::size_t object_slots) {
  if (data_slots == 0) {
    throw std::invalid_argument("unindexed_access_latency: no data");
  }
  return double(data_slots) / 2.0 + double(object_slots);
}

}  // namespace mobi::broadcast
