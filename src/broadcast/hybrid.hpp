// Hybrid push/pull dissemination (Acharya, Franklin & Zdonik, SIGMOD '97 —
// the related-work system the paper calls "most similar to ours": clients
// either wait for an object to air on the broadcast channel or explicitly
// request it over a limited pull backchannel).
#pragma once

#include <cstddef>
#include <memory>

#include "broadcast/schedule.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"

namespace mobi::broadcast {

struct HybridConfig {
  /// Client requests arriving per broadcast slot.
  std::size_t requests_per_slot = 10;
  /// A request whose wait until its object airs exceeds this many slots
  /// goes to the pull backchannel instead. 0 = pull everything;
  /// >= schedule period = pure broadcast (never pull).
  std::size_t pull_threshold = 10;
  /// Pull requests the backchannel can serve per slot.
  std::size_t pull_bandwidth = 5;
  /// Simulated slots.
  std::size_t slots = 2000;
  std::uint64_t seed = 42;
};

struct HybridResult {
  double mean_latency = 0.0;          // slots, over all requests
  double mean_broadcast_latency = 0.0;
  double mean_pull_latency = 0.0;
  double broadcast_fraction = 0.0;    // requests served off the air
  std::size_t pulls = 0;
  std::size_t max_pull_queue = 0;
};

/// Slot-by-slot simulation: each slot, new requests arrive and choose
/// broadcast or pull by the threshold rule; the backchannel serves FIFO at
/// its bandwidth. Latency = slots until the object is delivered.
HybridResult simulate_hybrid(const BroadcastSchedule& schedule,
                             const workload::AccessDistribution& access,
                             const HybridConfig& config);

}  // namespace mobi::broadcast
