#include "broadcast/hybrid.hpp"

#include <deque>
#include <stdexcept>

namespace mobi::broadcast {

HybridResult simulate_hybrid(const BroadcastSchedule& schedule,
                             const workload::AccessDistribution& access,
                             const HybridConfig& config) {
  if (config.pull_bandwidth == 0 &&
      config.pull_threshold < schedule.period()) {
    throw std::invalid_argument(
        "simulate_hybrid: pull selected but backchannel has zero bandwidth");
  }
  util::Rng rng(config.seed);

  struct PullRequest {
    std::size_t arrived = 0;
  };
  std::deque<PullRequest> pull_queue;

  HybridResult result;
  double latency_sum = 0.0;
  double broadcast_latency_sum = 0.0;
  double pull_latency_sum = 0.0;
  std::size_t total_requests = 0;
  std::size_t broadcast_served = 0;

  for (std::size_t slot = 0; slot < config.slots; ++slot) {
    // New arrivals decide push vs pull.
    for (std::size_t i = 0; i < config.requests_per_slot; ++i) {
      const object::ObjectId id = access.sample(rng);
      const std::size_t wait = schedule.wait_from(id, slot);
      ++total_requests;
      if (wait <= config.pull_threshold) {
        // Served when the object airs; latency is the wait.
        latency_sum += double(wait);
        broadcast_latency_sum += double(wait);
        ++broadcast_served;
      } else {
        pull_queue.push_back(PullRequest{slot});
        ++result.pulls;
      }
    }
    result.max_pull_queue = std::max(result.max_pull_queue, pull_queue.size());

    // Backchannel drains FIFO; a request served this slot has latency
    // (slot - arrival) + 1 (the service slot itself).
    for (std::size_t served = 0;
         served < config.pull_bandwidth && !pull_queue.empty(); ++served) {
      const PullRequest request = pull_queue.front();
      pull_queue.pop_front();
      const double latency = double(slot - request.arrived) + 1.0;
      latency_sum += latency;
      pull_latency_sum += latency;
    }
  }
  // Requests still queued at the end are charged as if served at the
  // horizon (a lower bound on their true latency; keeps the metric
  // honest when the backchannel is overloaded).
  for (const PullRequest& request : pull_queue) {
    const double latency = double(config.slots - request.arrived);
    latency_sum += latency;
    pull_latency_sum += latency;
  }

  if (total_requests > 0) {
    result.mean_latency = latency_sum / double(total_requests);
    result.broadcast_fraction =
        double(broadcast_served) / double(total_requests);
  }
  if (broadcast_served > 0) {
    result.mean_broadcast_latency =
        broadcast_latency_sum / double(broadcast_served);
  }
  if (result.pulls > 0) {
    result.mean_pull_latency = pull_latency_sum / double(result.pulls);
  }
  return result;
}

}  // namespace mobi::broadcast
