#include "sim/series.hpp"

#include <stdexcept>

namespace mobi::sim {

void Series::record(SimTime when, double value) {
  if (!times_.empty() && when < times_.back()) {
    throw std::logic_error("Series::record: time went backwards");
  }
  times_.push_back(when);
  values_.push_back(value);
}

util::Summary Series::summary() const {
  util::Summary s;
  for (double v : values_) s.add(v);
  return s;
}

util::Summary Series::summary_window(SimTime from, SimTime to) const {
  util::Summary s;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= from && times_[i] < to) s.add(values_[i]);
  }
  return s;
}

double Series::sum_window(SimTime from, SimTime to) const {
  return summary_window(from, to).sum();
}

}  // namespace mobi::sim
