// Discrete-event simulation kernel.
//
// The paper's experiments use a synchronous tick model (requests arrive per
// time unit, updates fire every k time units). This kernel supports
// arbitrary event times; ties are broken by insertion order so runs are
// fully deterministic. TickDriver (tick.hpp) layers the paper's
// batch-per-tick semantics on top.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

namespace mobi::sim {

/// Simulation time. The experiment harnesses use whole numbers ("time
/// units" in the paper) but the kernel accepts any non-decreasing double.
using SimTime = double;

/// An event: a time plus an action. Events at equal times execute in the
/// order they were scheduled (FIFO tie-break via sequence numbers).
class Simulator {
 public:
  using Action = std::function<void()>;

  SimTime now() const noexcept { return now_; }
  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

  /// Schedules `action` at absolute time `when`. Scheduling in the past
  /// (before now()) is a logic error and throws.
  void schedule_at(SimTime when, Action action);

  /// Schedules `action` `delay` time units from now (delay >= 0).
  void schedule_in(SimTime delay, Action action);

  /// Schedules `action` every `period` time units, starting at
  /// `first` (absolute). The action keeps recurring until the simulator is
  /// destroyed or the run horizon passes; use run_until to bound the run.
  void schedule_every(SimTime first, SimTime period, Action action);

  /// Executes events until the queue is empty. Returns the number executed.
  std::uint64_t run();

  /// Executes events with time <= horizon; leaves later events pending and
  /// advances now() to min(horizon, last executed time... ) — precisely:
  /// now() ends at the time of the last executed event, or horizon if no
  /// event beyond it was touched. Returns the number executed.
  std::uint64_t run_until(SimTime horizon);

  /// Executes exactly one event if any is pending; returns whether one ran.
  bool step();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t sequence;
    // shared_ptr so Entry is copyable inside priority_queue.
    std::shared_ptr<Action> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  void execute(Entry entry);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Recurring actions registered by schedule_every: owned here so their
  // self-rescheduling closures can capture a raw pointer (a shared_ptr
  // self-capture would be a leak-inducing reference cycle).
  std::vector<std::shared_ptr<Action>> recurring_;
  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace mobi::sim
