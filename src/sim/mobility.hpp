// MobilityModel: client trajectories over the multi-cell grid.
//
// The paper pins every client to one base station for the whole run; the
// fault layer (docs/resilience.md) only teleports clients off the air and
// back into the *same* cell. This module gives clients real paths:
//
//  * kRandomWaypoint — each client walks the classic random-waypoint
//    model over the cell grid: pick a waypoint (a uniform cell, a uniform
//    offset inside it) and a speed, travel in a straight line, pause,
//    repeat. Cells are unit squares in a W x H row-major grid.
//  * kTraceDriven — clients hop between cells at externally scheduled
//    (tick, client, cell) trace points; no RNG at all.
//
// Determinism contract (same as net::FaultInjector): every client draws
// from its own SplitMix64-seeded stream, a pure function of (seed, client
// id), so trajectories are independent of how cells are sharded over pool
// workers and bit-identical for every pool size. Mode kOff constructs
// nothing and draws nothing — a mobility-off run is byte-identical to a
// build without this module.
//
// The model also answers the prediction question MobiCacher (PAPERS.md,
// arXiv 1407.1307) asks of mobility-aware caching: "will this client
// still be here when the fetch lands?" — estimated_dwell() is a
// deterministic ticks-until-exit estimate computed from the current
// kinematic state (or the trace schedule), and ResidencyPredictor turns
// it into the probability that scales per-client knapsack benefit
// (core/residency.hpp, docs/mobility.md).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/tick.hpp"
#include "util/rng.hpp"

namespace mobi::sim {

enum class MobilityMode : std::uint8_t { kOff, kRandomWaypoint, kTraceDriven };

const char* mobility_mode_name(MobilityMode mode) noexcept;

/// One scheduled relocation for trace-driven mobility.
struct TraceHop {
  Tick tick = 0;
  std::uint32_t client = 0;
  std::uint32_t cell = 0;
};

struct MobilityConfig {
  MobilityMode mode = MobilityMode::kOff;

  /// Grid columns; 0 = ceil(sqrt(cell_count)). Rows follow from the cell
  /// count (the last row may be partial; waypoints are only ever drawn
  /// inside valid cells).
  std::size_t grid_width = 0;

  /// Random-waypoint kinematics: speed in cells/tick, pause in ticks.
  double speed_lo = 0.05;
  double speed_hi = 0.25;
  Tick pause_lo = 0;
  Tick pause_hi = 6;

  /// Off-air window per cell crossing: the migrating client disconnects
  /// for this many ticks while its state moves to the new cell (the
  /// trajectory-handoff; see docs/resilience.md for the distinction from
  /// the fault layer's teleport-handoff).
  Tick handoff_ticks = 1;

  /// kTraceDriven schedule. Hops are applied in (tick, position-in-list)
  /// order; a hop to the current cell is a no-op, not a crossing.
  std::vector<TraceHop> trace;

  /// Master seed for the per-client SplitMix64 streams.
  std::uint64_t seed = 0x0b171e5eedULL;

  /// True when mobility is off — the model must not be constructed and
  /// no stream may be touched (zero extra draws, bit-identical runs).
  bool empty() const noexcept { return mode == MobilityMode::kOff; }

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

/// One cell-boundary crossing, reported by step() in ascending client id
/// order (both modes; a client hopping through several cells in one tick
/// contributes one crossing per hop, in schedule order).
struct Crossing {
  std::uint32_t client = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};

class MobilityModel {
 public:
  /// `home_cell[i]` places client i at construction (position: the cell
  /// center, then a per-client jittered offset for waypoint mode).
  /// Throws on empty() configs — callers must gate on the mode.
  MobilityModel(const MobilityConfig& config, std::size_t cell_count,
                const std::vector<std::uint32_t>& home_cell);

  std::size_t client_count() const noexcept { return clients_.size(); }
  std::size_t cell_count() const noexcept { return cell_count_; }
  std::size_t grid_width() const noexcept { return width_; }
  Tick now() const noexcept { return now_; }

  std::uint32_t cell_of(std::uint32_t client) const {
    return clients_.at(client).cell;
  }

  /// Advances every client one tick to time `now` and appends each
  /// boundary crossing to `out` (cleared first). Ticks must be stepped
  /// in order; draws happen only on waypoint arrival, from the crossing
  /// client's own stream. Allocation-free once `out` is at capacity.
  void step(Tick now, std::vector<Crossing>& out);

  /// Deterministic estimate of the ticks until `client` leaves its
  /// current cell, computed from the state frozen by the last step():
  /// trace mode reads the schedule; waypoint mode intersects the current
  /// straight-line leg with the cell square and charges mean pause +
  /// half-cell travel for legs that end inside the cell. Pure read —
  /// no draws, safe to call concurrently with other reads.
  double estimated_dwell(std::uint32_t client) const;

  /// P(client still resident `horizon` ticks from now), the MobiCacher
  /// utility-scaling term: min(1, estimated_dwell / horizon).
  double residency_probability(std::uint32_t client, Tick horizon) const;

  /// Fills `out[cell]` with the resident-client count (tests/invariants).
  void count_residents(std::vector<std::size_t>& out) const;

 private:
  struct ClientState {
    double x = 0.0, y = 0.0;    // position, cell = unit square
    double tx = 0.0, ty = 0.0;  // current waypoint
    double speed = 0.0;         // cells per tick
    Tick pause_left = 0;
    std::uint32_t cell = 0;
    std::size_t next_hop = 0;  // index into hops_[client] (trace mode)
    util::Rng rng;
  };

  std::uint32_t cell_at(double x, double y) const noexcept;
  void draw_waypoint(ClientState& state);

  MobilityConfig config_;
  std::size_t cell_count_ = 0;
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  Tick now_ = 0;
  std::vector<ClientState> clients_;
  /// Trace mode: per-client hop schedule in input order.
  std::vector<std::vector<TraceHop>> hops_;
};

/// Dwell-time predictor handed to the download policy: wraps a model and
/// a fetch-landing horizon. probability() is evaluated against the
/// model's current tick, so one predictor serves every cell of a fleet.
class ResidencyPredictor {
 public:
  ResidencyPredictor(const MobilityModel& model, Tick horizon);

  Tick horizon() const noexcept { return horizon_; }

  double probability(std::uint32_t client) const {
    return model_->residency_probability(client, horizon_);
  }

 private:
  const MobilityModel* model_;
  Tick horizon_;
};

}  // namespace mobi::sim
