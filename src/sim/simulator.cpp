#include "sim/simulator.hpp"

#include <memory>

namespace mobi::sim {

void Simulator::schedule_at(SimTime when, Action action) {
  if (when < now_) {
    throw std::logic_error("Simulator::schedule_at: time is in the past");
  }
  queue_.push(Entry{when, next_sequence_++,
                    std::make_shared<Action>(std::move(action))});
}

void Simulator::schedule_in(SimTime delay, Action action) {
  if (delay < 0.0) {
    throw std::logic_error("Simulator::schedule_in: negative delay");
  }
  schedule_at(now_ + delay, std::move(action));
}

void Simulator::schedule_every(SimTime first, SimTime period, Action action) {
  if (period <= 0.0) {
    throw std::logic_error("Simulator::schedule_every: period must be > 0");
  }
  auto payload = std::make_shared<Action>(std::move(action));
  // The recurring wrapper reschedules itself after running the payload.
  // The simulator owns the cell; the closure captures only a raw pointer
  // to it, so there is no shared_ptr reference cycle.
  auto cell = std::make_shared<Action>();
  *cell = [this, period, payload, raw = cell.get()]() {
    (*payload)();
    schedule_in(period, *raw);
  };
  recurring_.push_back(cell);
  schedule_at(first, *recurring_.back());
}

void Simulator::execute(Entry entry) {
  now_ = entry.when;
  ++executed_;
  (*entry.action)();
}

std::uint64_t Simulator::run() {
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    execute(std::move(entry));
    ++count;
  }
  return count;
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.top().when <= horizon) {
    Entry entry = queue_.top();
    queue_.pop();
    execute(std::move(entry));
    ++count;
  }
  if (now_ < horizon) now_ = horizon;
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Entry entry = queue_.top();
  queue_.pop();
  execute(std::move(entry));
  return true;
}

}  // namespace mobi::sim
