// Time-series metric recording for experiment output.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace mobi::sim {

/// An append-only (time, value) series with summary statistics, optionally
/// restricted to a measurement window (the paper warms its caches and
/// measures only the steady state).
class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  void record(SimTime when, double value);

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return times_.size(); }
  const std::vector<SimTime>& times() const noexcept { return times_; }
  const std::vector<double>& values() const noexcept { return values_; }

  /// Statistics over all recorded points.
  util::Summary summary() const;
  /// Statistics over points with from <= time < to.
  util::Summary summary_window(SimTime from, SimTime to) const;
  /// Sum of values in [from, to).
  double sum_window(SimTime from, SimTime to) const;

 private:
  std::string name_;
  std::vector<SimTime> times_;
  std::vector<double> values_;
};

}  // namespace mobi::sim
