#include "sim/fault_plan.hpp"

#include <stdexcept>
#include <string>

namespace mobi::sim {

namespace {

void check_rate(double rate, const char* what) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                " must be in [0, 1]");
  }
}

}  // namespace

bool FaultPlan::empty() const noexcept {
  return fetch_failure_rate == 0.0 && fetch_slowdown_rate == 0.0 &&
         downlink_drop_rate == 0.0 && server_outage_rate == 0.0 &&
         handoff_rate == 0.0;
}

void FaultPlan::validate() const {
  check_rate(fetch_failure_rate, "fetch_failure_rate");
  check_rate(fetch_slowdown_rate, "fetch_slowdown_rate");
  check_rate(downlink_drop_rate, "downlink_drop_rate");
  check_rate(server_outage_rate, "server_outage_rate");
  check_rate(handoff_rate, "handoff_rate");
  if (fetch_slowdown_factor < 1.0) {
    throw std::invalid_argument("FaultPlan: fetch_slowdown_factor must be >= 1");
  }
  if (server_outage_ticks < 1) {
    throw std::invalid_argument("FaultPlan: server_outage_ticks must be >= 1");
  }
  if (handoff_ticks < 1) {
    throw std::invalid_argument("FaultPlan: handoff_ticks must be >= 1");
  }
}

}  // namespace mobi::sim
