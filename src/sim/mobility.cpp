#include "sim/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mobi::sim {

namespace {

/// No scheduled exit: dwell long enough that any finite horizon yields
/// probability 1.
constexpr double kForever = 1e18;

/// Per-client stream seed: the same position-addressable discipline as
/// exp::shard_seed, keyed off the mobility seed so client streams are
/// disjoint from every other subsystem for any master seed.
std::uint64_t client_stream_seed(std::uint64_t seed, std::uint32_t client) {
  return util::SplitMix64(seed + 0x9e3779b97f4a7c15ULL * (client + 1)).next();
}

}  // namespace

const char* mobility_mode_name(MobilityMode mode) noexcept {
  switch (mode) {
    case MobilityMode::kOff:
      return "off";
    case MobilityMode::kRandomWaypoint:
      return "random-waypoint";
    case MobilityMode::kTraceDriven:
      return "trace-driven";
  }
  return "unknown";
}

void MobilityConfig::validate() const {
  if (mode == MobilityMode::kRandomWaypoint) {
    if (!(speed_lo > 0.0) || !(speed_hi >= speed_lo)) {
      throw std::invalid_argument(
          "MobilityConfig: need 0 < speed_lo <= speed_hi");
    }
    if (pause_lo < 0 || pause_hi < pause_lo) {
      throw std::invalid_argument(
          "MobilityConfig: need 0 <= pause_lo <= pause_hi");
    }
  }
  if (mode == MobilityMode::kTraceDriven) {
    for (const TraceHop& hop : trace) {
      if (hop.tick < 0) {
        throw std::invalid_argument("MobilityConfig: trace tick < 0");
      }
    }
  }
  if (handoff_ticks < 0) {
    throw std::invalid_argument("MobilityConfig: handoff_ticks < 0");
  }
}

MobilityModel::MobilityModel(const MobilityConfig& config,
                             std::size_t cell_count,
                             const std::vector<std::uint32_t>& home_cell)
    : config_(config), cell_count_(cell_count) {
  config_.validate();
  if (config_.empty()) {
    throw std::invalid_argument("MobilityModel: mode is kOff");
  }
  if (cell_count == 0) {
    throw std::invalid_argument("MobilityModel: cell_count == 0");
  }
  width_ = config_.grid_width != 0
               ? config_.grid_width
               : std::size_t(std::ceil(std::sqrt(double(cell_count))));
  height_ = (cell_count + width_ - 1) / width_;

  clients_.resize(home_cell.size());
  for (std::size_t i = 0; i < home_cell.size(); ++i) {
    const std::uint32_t home = home_cell[i];
    if (home >= cell_count_) {
      throw std::invalid_argument("MobilityModel: home_cell out of range");
    }
    ClientState& state = clients_[i];
    state.cell = home;
    if (config_.mode == MobilityMode::kRandomWaypoint) {
      state.rng =
          util::Rng(client_stream_seed(config_.seed, std::uint32_t(i)));
      // Jittered start inside the home cell, then the first leg.
      state.x = double(home % width_) + state.rng.uniform();
      state.y = double(home / width_) + state.rng.uniform();
      draw_waypoint(state);
    } else {
      // Trace mode draws nothing: position is notional (cell center).
      state.x = double(home % width_) + 0.5;
      state.y = double(home / width_) + 0.5;
    }
  }

  if (config_.mode == MobilityMode::kTraceDriven) {
    hops_.resize(clients_.size());
    for (const TraceHop& hop : config_.trace) {
      if (hop.client >= clients_.size()) {
        throw std::invalid_argument("MobilityModel: trace client out of range");
      }
      if (hop.cell >= cell_count_) {
        throw std::invalid_argument("MobilityModel: trace cell out of range");
      }
      hops_[hop.client].push_back(hop);
    }
    // Equal-tick hops keep input order (the documented schedule order).
    for (auto& schedule : hops_) {
      std::stable_sort(schedule.begin(), schedule.end(),
                       [](const TraceHop& a, const TraceHop& b) {
                         return a.tick < b.tick;
                       });
    }
  }
}

std::uint32_t MobilityModel::cell_at(double x, double y) const noexcept {
  const double col = std::clamp(std::floor(x), 0.0, double(width_ - 1));
  const double row = std::clamp(std::floor(y), 0.0, double(height_ - 1));
  const std::size_t cell = std::size_t(row) * width_ + std::size_t(col);
  return std::uint32_t(std::min(cell, cell_count_ - 1));
}

void MobilityModel::draw_waypoint(ClientState& state) {
  // Waypoints are uniform over valid cells (not the bounding rectangle):
  // draw the cell, then a uniform offset inside its unit square.
  const std::uint64_t target =
      state.rng.uniform_u64(0, std::uint64_t(cell_count_) - 1);
  state.tx = double(target % width_) + state.rng.uniform();
  state.ty = double(target / width_) + state.rng.uniform();
  state.speed = state.rng.uniform(config_.speed_lo, config_.speed_hi);
}

void MobilityModel::step(Tick now, std::vector<Crossing>& out) {
  out.clear();
  now_ = now;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    ClientState& state = clients_[i];
    if (config_.mode == MobilityMode::kTraceDriven) {
      const std::vector<TraceHop>& schedule = hops_[i];
      while (state.next_hop < schedule.size() &&
             schedule[state.next_hop].tick <= now) {
        const std::uint32_t target = schedule[state.next_hop].cell;
        ++state.next_hop;
        if (target == state.cell) continue;  // no-op hop, not a crossing
        out.push_back(Crossing{std::uint32_t(i), state.cell, target});
        state.cell = target;
        state.x = double(target % width_) + 0.5;
        state.y = double(target / width_) + 0.5;
      }
      continue;
    }

    // Random waypoint: pause, or advance one tick along the leg.
    if (state.pause_left > 0) {
      --state.pause_left;
      if (state.pause_left == 0) draw_waypoint(state);
      continue;
    }
    const double dx = state.tx - state.x;
    const double dy = state.ty - state.y;
    const double dist = std::sqrt(dx * dx + dy * dy);
    if (dist <= state.speed) {
      state.x = state.tx;
      state.y = state.ty;
      state.pause_left =
          Tick(state.rng.uniform_int(config_.pause_lo, config_.pause_hi));
      // A zero pause draws the next leg now so the walk never stalls.
      if (state.pause_left == 0) draw_waypoint(state);
    } else {
      state.x += state.speed * dx / dist;
      state.y += state.speed * dy / dist;
    }
    const std::uint32_t here = cell_at(state.x, state.y);
    if (here != state.cell) {
      out.push_back(Crossing{std::uint32_t(i), state.cell, here});
      state.cell = here;
    }
  }
}

double MobilityModel::estimated_dwell(std::uint32_t client) const {
  const ClientState& state = clients_.at(client);

  if (config_.mode == MobilityMode::kTraceDriven) {
    const std::vector<TraceHop>& schedule = hops_[client];
    std::uint32_t cell = state.cell;
    for (std::size_t h = state.next_hop; h < schedule.size(); ++h) {
      if (schedule[h].cell != cell) return double(schedule[h].tick - now_);
      cell = schedule[h].cell;
    }
    return kForever;
  }

  const double mean_speed = 0.5 * (config_.speed_lo + config_.speed_hi);
  const double mean_pause = 0.5 * double(config_.pause_lo + config_.pause_hi);
  // Expected time to wander out of a unit cell once the current leg is
  // done: one mean pause plus a half-cell transit at mean speed.
  const double wander_out = mean_pause + 0.5 / mean_speed;

  if (state.pause_left > 0) return double(state.pause_left) + wander_out;

  const double dx = state.tx - state.x;
  const double dy = state.ty - state.y;
  const double dist = std::sqrt(dx * dx + dy * dy);
  if (dist <= 0.0) return wander_out;
  const double vx = state.speed * dx / dist;
  const double vy = state.speed * dy / dist;

  // Time for the ray (x, y) + t (vx, vy) to exit the cell's unit square.
  const double cx = std::floor(double(state.cell % width_));
  const double cy = std::floor(double(state.cell / width_));
  double exit = kForever;
  if (vx > 0.0) exit = std::min(exit, (cx + 1.0 - state.x) / vx);
  if (vx < 0.0) exit = std::min(exit, (cx - state.x) / vx);
  if (vy > 0.0) exit = std::min(exit, (cy + 1.0 - state.y) / vy);
  if (vy < 0.0) exit = std::min(exit, (cy - state.y) / vy);

  const double arrive = dist / state.speed;
  if (arrive < exit) return arrive + wander_out;  // leg ends inside the cell
  return exit;
}

double MobilityModel::residency_probability(std::uint32_t client,
                                            Tick horizon) const {
  if (horizon <= 0) return 1.0;
  const double dwell = estimated_dwell(client);
  return std::min(1.0, dwell / double(horizon));
}

void MobilityModel::count_residents(std::vector<std::size_t>& out) const {
  out.assign(cell_count_, 0);
  for (const ClientState& state : clients_) ++out[state.cell];
}

ResidencyPredictor::ResidencyPredictor(const MobilityModel& model,
                                       Tick horizon)
    : model_(&model), horizon_(horizon) {
  if (horizon <= 0) {
    throw std::invalid_argument("ResidencyPredictor: horizon <= 0");
  }
}

}  // namespace mobi::sim
