// TickDriver: the paper's synchronous tick model on top of the event
// kernel. Each tick, registered phases run in a fixed priority order —
// e.g. server updates happen before request service within the same tick,
// exactly as the paper's analysis assumes ("objects are updated at time 0,
// 5, 10, ..." and requests within a tick then see those updates).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/simulator.hpp"

namespace mobi::sim {

using Tick = std::int64_t;

class TickDriver {
 public:
  using Phase = std::function<void(Tick)>;

  /// Registers a per-tick phase. Lower `priority` runs first; phases with
  /// equal priority run in registration order.
  void add_phase(int priority, Phase phase);

  /// Runs ticks [0, ticks): every phase once per tick, in priority order.
  void run(Tick ticks);

  /// Runs `ticks` additional ticks, continuing from the last tick executed.
  void run_more(Tick ticks);

  Tick current() const noexcept { return next_tick_; }

 private:
  std::multimap<int, Phase> phases_;
  Tick next_tick_ = 0;
};

}  // namespace mobi::sim
