// FaultPlan: a declarative, RNG-seeded schedule of fault events for the
// chaos/resilience layer (docs/resilience.md).
//
// The paper's environment is unreliable by construction — wireless cells,
// weak connectivity, congested fixed links — yet a simulation is only
// trustworthy under faults if the faults themselves are reproducible. A
// FaultPlan is pure data: per-category rates, window durations, and one
// seed. Instantiating it (net::FaultInjector) derives an independent
// SplitMix64-seeded stream per fault category, so the same plan replays
// the same event schedule bit-for-bit, and enabling one category never
// perturbs another's stream.
#pragma once

#include <cstdint>

#include "sim/tick.hpp"

namespace mobi::sim {

struct FaultPlan {
  /// Per-fetch probability that a remote fetch fails outright (transient
  /// fixed-network fault: no transfer, cache untouched, request served
  /// from the decayed cached copy).
  double fetch_failure_rate = 0.0;

  /// Per-batch probability that the fixed network is congested this tick:
  /// every completion time in the batch is multiplied by
  /// `fetch_slowdown_factor`.
  double fetch_slowdown_rate = 0.0;
  double fetch_slowdown_factor = 4.0;

  /// Per-chunk, per-tick probability that a queued downlink transfer is
  /// dropped mid-flight: the airtime spent on it this tick is wasted
  /// (charged against capacity, delivered to nobody) and the undelivered
  /// remainder leaves the queue as dropped bytes.
  double downlink_drop_rate = 0.0;

  /// Per-server, per-tick probability that an outage window opens; while
  /// a window is open every fetch routed to that server fails.
  double server_outage_rate = 0.0;
  sim::Tick server_outage_ticks = 5;

  /// Per-connected-client, per-tick probability of a forced handoff: the
  /// client leaves the cell for `handoff_ticks` ticks, then reconnects
  /// (the sleeper rule applies to the next invalidation report).
  double handoff_rate = 0.0;
  sim::Tick handoff_ticks = 3;

  /// Master seed for the per-category fault streams.
  std::uint64_t seed = 0xfa017ab1eULL;

  /// True when every rate is zero — the plan injects nothing, and an
  /// injector built from it must be observably absent (bit-identical
  /// runs, no RNG draws, no steady-state allocations).
  bool empty() const noexcept;

  /// Throws std::invalid_argument on out-of-range parameters (rates
  /// outside [0, 1], slowdown factor < 1, non-positive durations).
  void validate() const;
};

}  // namespace mobi::sim
