#include "sim/tick.hpp"

#include <stdexcept>

namespace mobi::sim {

void TickDriver::add_phase(int priority, Phase phase) {
  if (!phase) throw std::invalid_argument("TickDriver::add_phase: empty phase");
  phases_.emplace(priority, std::move(phase));
}

void TickDriver::run(Tick ticks) {
  next_tick_ = 0;
  run_more(ticks);
}

void TickDriver::run_more(Tick ticks) {
  if (ticks < 0) throw std::invalid_argument("TickDriver::run_more: negative count");
  const Tick end = next_tick_ + ticks;
  for (; next_tick_ < end; ++next_tick_) {
    for (auto& [priority, phase] : phases_) phase(next_tick_);
  }
}

}  // namespace mobi::sim
