#include "exp/multi_cell.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "exp/mobility_fleet.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/window.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace mobi::exp {

const char* cell_topology_name(CellTopology topology) noexcept {
  switch (topology) {
    case CellTopology::kSharded: return "sharded";
    case CellTopology::kCoopClusters: return "coop-clusters";
  }
  return "?";
}

const char* shard_schedule_name(ShardSchedule schedule) noexcept {
  switch (schedule) {
    case ShardSchedule::kStaticBlocked: return "static-blocked";
    case ShardSchedule::kQueue: return "queue";
    case ShardSchedule::kLptSteal: return "lpt-steal";
  }
  return "?";
}

std::uint64_t shard_seed(std::uint64_t master, std::size_t index) noexcept {
  // SplitMix64 advances its state by a fixed gamma per output, so seeding
  // at master + gamma * index and taking one output *is* output `index`
  // of the stream seeded at `master` — a random-access jump, no replay.
  constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  return util::SplitMix64(master + kGamma * std::uint64_t(index)).next();
}

std::vector<std::uint64_t> shard_cost_estimates(const MultiCellConfig& config) {
  std::vector<std::uint64_t> costs;
  if (config.topology == CellTopology::kSharded) {
    if (!config.cell_client_counts.empty() &&
        config.cell_client_counts.size() != config.cell_count) {
      throw std::invalid_argument(
          "shard_cost_estimates: cell_client_counts must match cell_count");
    }
    costs.resize(config.cell_count);
    for (std::size_t i = 0; i < config.cell_count; ++i) {
      const std::size_t clients = config.cell_client_counts.empty()
                                      ? config.cell.client_count
                                      : config.cell_client_counts[i];
      costs[i] = std::uint64_t(clients) * std::uint64_t(config.cell.ticks);
    }
    return costs;
  }
  const std::size_t width = config.cells_per_cluster;
  if (width == 0) {
    throw std::invalid_argument("shard_cost_estimates: need >= 1 cell/cluster");
  }
  const std::size_t shards = (config.cell_count + width - 1) / width;
  const std::uint64_t ticks = std::uint64_t(config.cluster.warmup_ticks) +
                              std::uint64_t(config.cluster.measure_ticks);
  costs.resize(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    const std::size_t cells = std::min(width, config.cell_count - i * width);
    costs[i] = std::uint64_t(cells) *
               std::uint64_t(config.cluster.requests_per_tick_per_cell) * ticks;
  }
  return costs;
}

namespace {

void accumulate(client::CellResult& into, const client::CellResult& from) {
  into.requests += from.requests;
  into.served_locally += from.served_locally;
  into.served_by_base += from.served_by_base;
  into.score_sum += from.score_sum;
  into.base_downloaded += from.base_downloaded;
  into.sleeper_drops += from.sleeper_drops;
  into.disconnect_ticks += from.disconnect_ticks;
  into.failed_fetches += from.failed_fetches;
  into.retries += from.retries;
  into.retry_successes += from.retry_successes;
  into.degraded_serves += from.degraded_serves;
  into.handoffs += from.handoffs;
  into.downlink_dropped += from.downlink_dropped;
}

void accumulate(coop::CoopResult& into, const coop::CoopResult& from) {
  into.requests += from.requests;
  into.score_sum += from.score_sum;
  into.recency_sum += from.recency_sum;
  into.origin_units += from.origin_units;
  into.neighbor_units += from.neighbor_units;
  into.origin_fetches += from.origin_fetches;
  into.neighbor_fetches += from.neighbor_fetches;
  into.invalidations += from.invalidations;
  into.propagations += from.propagations;
  into.lease_expiries += from.lease_expiries;
  into.peer_hits += from.peer_hits;
  into.peer_fetch_units += from.peer_fetch_units;
  into.coherence_units += from.coherence_units;
}

// Shard series are cumulative, so summing shard rows at tick t gives the
// fleet-wide cumulative state; counters advance by the per-tick delta.
// Everything runs after the shards have joined, in shard order — the
// recorder never observes scheduling.
//
// Accumulation is shard-major: each shard's series is walked once,
// sequentially, into arena-backed per-tick accumulator rows, and the
// registry/sampling pass then reads the finished rows. The old shape
// re-walked every shard inside the tick loop, striding across all the
// shard series at once — same arithmetic, much worse locality, and the
// accumulator row was rebuilt from scratch per tick.
template <typename SeriesRows, typename Row>
void accumulate_rows(util::ArenaVector<Row>& acc, const SeriesRows& series) {
  const std::size_t ticks = series.empty() ? 0 : series.front().size();
  acc.resize(ticks);
  for (const auto& shard : series) {
    for (std::size_t t = 0; t < ticks; ++t) accumulate(acc[t], shard[t]);
  }
}

// `mobility` (row t = cumulative handoff totals through tick t) adds
// mc.mobility.* counters; nullptr — every mobility-off run — registers
// nothing, keeping the registry byte-identical to the pre-mobility path.
template <typename SeriesRows>
void record_sharded(obs::SeriesRecorder& recorder, const SeriesRows& series,
                    std::size_t cells, util::MonotonicArena& arena,
                    const std::vector<MobilityRunStats>* mobility = nullptr,
                    obs::WindowAggregator* windows = nullptr) {
  obs::MetricsRegistry& registry = recorder.registry();
  obs::Counter& requests = registry.register_counter("mc.requests");
  obs::Counter& local_hits = registry.register_counter("mc.local_hits");
  obs::Counter& base_serves = registry.register_counter("mc.base_serves");
  obs::Counter& units = registry.register_counter("mc.units_downloaded");
  obs::Counter& drops = registry.register_counter("mc.sleeper_drops");
  obs::Counter& disconnects = registry.register_counter("mc.disconnect_ticks");
  obs::Counter& failed = registry.register_counter("mc.failed_fetches");
  obs::Counter& degraded = registry.register_counter("mc.degraded_serves");
  obs::Gauge& score_sum = registry.register_gauge("mc.score_sum");
  obs::Gauge& average_score = registry.register_gauge("mc.average_score");
  registry.register_gauge("mc.cells").set(double(cells));
  obs::Counter* mob_crossings = nullptr;
  obs::Counter* mob_migrations = nullptr;
  obs::Counter* mob_units = nullptr;
  obs::Counter* mob_deliveries = nullptr;
  obs::Counter* mob_lost = nullptr;
  if (mobility) {
    mob_crossings = &registry.register_counter("mc.mobility.crossings");
    mob_migrations = &registry.register_counter("mc.mobility.migrations");
    mob_units = &registry.register_counter("mc.mobility.migrated_units");
    mob_deliveries = &registry.register_counter("mc.mobility.deliveries");
    mob_lost = &registry.register_counter("mc.mobility.lost_deliveries");
  }

  util::ArenaVector<client::CellResult> acc{
      util::ArenaAllocator<client::CellResult>(&arena)};
  accumulate_rows(acc, series);
  recorder.reserve(recorder.samples() + acc.size());
  // Column snapshot must follow the last registration above (and any
  // slo.* / prof.phase.* counters the caller registered beforehand).
  if (windows) windows->begin();
  client::CellResult prev;
  MobilityRunStats mob_prev;
  for (std::size_t t = 0; t < acc.size(); ++t) {
    const client::CellResult& now = acc[t];
    requests.add(now.requests - prev.requests);
    local_hits.add(now.served_locally - prev.served_locally);
    base_serves.add(now.served_by_base - prev.served_by_base);
    units.add(std::uint64_t(now.base_downloaded - prev.base_downloaded));
    drops.add(now.sleeper_drops - prev.sleeper_drops);
    disconnects.add(now.disconnect_ticks - prev.disconnect_ticks);
    failed.add(now.failed_fetches - prev.failed_fetches);
    degraded.add(now.degraded_serves - prev.degraded_serves);
    score_sum.set(now.score_sum);
    average_score.set(now.average_score());
    if (mobility && t < mobility->size()) {
      const MobilityRunStats& mob_now = (*mobility)[t];
      mob_crossings->add(mob_now.crossings - mob_prev.crossings);
      mob_migrations->add(mob_now.migrations - mob_prev.migrations);
      mob_units->add(mob_now.migrated_units - mob_prev.migrated_units);
      mob_deliveries->add(mob_now.deliveries - mob_prev.deliveries);
      mob_lost->add(mob_now.lost_deliveries - mob_prev.lost_deliveries);
      mob_prev = mob_now;
    }
    recorder.sample(sim::Tick(t));
    if (windows) windows->on_tick(sim::Tick(t));
    prev = now;
  }
  if (windows) windows->finish();
}

void record_coop(obs::SeriesRecorder& recorder,
                 const std::vector<std::vector<coop::CoopResult>>& series,
                 std::size_t cells, util::MonotonicArena& arena,
                 obs::WindowAggregator* windows = nullptr) {
  obs::MetricsRegistry& registry = recorder.registry();
  obs::Counter& requests = registry.register_counter("mc.requests");
  obs::Counter& origin_units = registry.register_counter("mc.origin_units");
  obs::Counter& neighbor_units =
      registry.register_counter("mc.neighbor_units");
  obs::Counter& origin_fetches =
      registry.register_counter("mc.origin_fetches");
  obs::Counter& neighbor_fetches =
      registry.register_counter("mc.neighbor_fetches");
  obs::Counter& invalidations =
      registry.register_counter("mc.coop.coherence.invalidations");
  obs::Counter& propagations =
      registry.register_counter("mc.coop.coherence.propagations");
  obs::Counter& lease_expiries =
      registry.register_counter("mc.coop.coherence.lease_expiries");
  obs::Counter& peer_hits =
      registry.register_counter("mc.coop.coherence.peer_hits");
  obs::Counter& peer_fetch_units =
      registry.register_counter("mc.coop.coherence.peer_fetch_units");
  obs::Counter& wire_units =
      registry.register_counter("mc.coop.coherence.wire_units");
  obs::Gauge& score_sum = registry.register_gauge("mc.score_sum");
  obs::Gauge& average_score = registry.register_gauge("mc.average_score");
  registry.register_gauge("mc.cells").set(double(cells));

  util::ArenaVector<coop::CoopResult> acc{
      util::ArenaAllocator<coop::CoopResult>(&arena)};
  accumulate_rows(acc, series);
  recorder.reserve(recorder.samples() + acc.size());
  if (windows) windows->begin();
  coop::CoopResult prev;
  for (std::size_t t = 0; t < acc.size(); ++t) {
    const coop::CoopResult& now = acc[t];
    requests.add(now.requests - prev.requests);
    origin_units.add(std::uint64_t(now.origin_units - prev.origin_units));
    neighbor_units.add(
        std::uint64_t(now.neighbor_units - prev.neighbor_units));
    origin_fetches.add(now.origin_fetches - prev.origin_fetches);
    neighbor_fetches.add(now.neighbor_fetches - prev.neighbor_fetches);
    invalidations.add(now.invalidations - prev.invalidations);
    propagations.add(now.propagations - prev.propagations);
    lease_expiries.add(now.lease_expiries - prev.lease_expiries);
    peer_hits.add(now.peer_hits - prev.peer_hits);
    peer_fetch_units.add(
        std::uint64_t(now.peer_fetch_units - prev.peer_fetch_units));
    wire_units.add(std::uint64_t(now.coherence_units - prev.coherence_units));
    score_sum.set(now.score_sum);
    average_score.set(now.average_score());
    recorder.sample(sim::Tick(t));
    if (windows) windows->on_tick(sim::Tick(t));
    prev = now;
  }
  if (windows) windows->finish();
}

// Folds every shard's private lat.* histograms (and event/drop totals)
// into the recorder's registry as mc.lat.* / mc.trace.*. Runs after the
// join, iterating shards in index order, so the merged distributions are
// bit-identical for every pool size — same contract as record_sharded.
void merge_shard_traces(
    obs::SeriesRecorder& recorder,
    const std::vector<std::unique_ptr<obs::RequestTracer>>& tracers,
    const std::vector<std::unique_ptr<obs::MetricsRegistry>>& shard_regs) {
  obs::MetricsRegistry& registry = recorder.registry();
  obs::Counter& events = registry.register_counter("mc.trace.events");
  obs::Counter& dropped = registry.register_counter("mc.trace.dropped");
  obs::Counter& arrivals = registry.register_counter("mc.trace.arrivals");
  obs::Counter& streamed = registry.register_counter("mc.trace.streamed_events");
  obs::Counter& flushed = registry.register_counter("mc.trace.flushed_events");
  obs::Counter& blocks = registry.register_counter("mc.trace.flush_blocks");
  for (const auto& tracer : tracers) {
    events.add(tracer->log().size());
    dropped.add(tracer->log().dropped());
    arrivals.add(tracer->arrivals());
    // Per-shard sinks are inline-flush and closed before the merge, so
    // these are deterministic (flushed == streamed) for every pool size.
    if (const obs::EventSink* sink = tracer->log().sink()) {
      streamed.add(sink->streamed_events());
      flushed.add(sink->flushed_events());
      blocks.add(sink->flush_blocks());
    }
  }
  if (shard_regs.empty()) return;
  for (const std::string& name : shard_regs.front()->names()) {
    const obs::FixedHistogram* shape = shard_regs.front()->find_histogram(name);
    if (!shape) continue;
    obs::FixedHistogram& merged = registry.register_histogram(
        "mc." + name, shape->lo(), shape->hi(), shape->bucket_count());
    for (const auto& reg : shard_regs) {
      merged.merge(*reg->find_histogram(name));
    }
  }
}

// Runs every shard exactly once under the configured schedule and fills
// `stats` with the modeled makespan of the plan actually used (sum of all
// costs when serial, busiest block for static, busiest LPT queue for
// lpt-steal — the shared-queue legacy schedule has no static plan).
void dispatch_shards(util::ThreadPool* pool, ShardSchedule schedule,
                     const std::vector<std::uint64_t>& costs,
                     const std::function<void(std::size_t)>& run_one,
                     util::WeightedForStats* stats) {
  const std::size_t shards = costs.size();
  if (stats) *stats = util::WeightedForStats{};
  const auto charged = [](std::uint64_t cost) {
    return std::max<std::uint64_t>(1, cost);
  };
  if (!pool) {
    for (std::size_t i = 0; i < shards; ++i) run_one(i);
    if (stats) {
      stats->workers = 1;
      for (const std::uint64_t cost : costs) {
        stats->planned_makespan += charged(cost);
      }
    }
    return;
  }
  switch (schedule) {
    case ShardSchedule::kQueue:
      util::parallel_for(*pool, 0, shards, run_one, 1);
      if (stats) stats->workers = pool->size();
      break;
    case ShardSchedule::kStaticBlocked: {
      const std::size_t workers = std::max<std::size_t>(1, pool->size());
      const std::size_t grain = (shards + workers - 1) / workers;
      util::parallel_for(*pool, 0, shards, run_one, grain);
      if (stats) {
        stats->workers = workers;
        for (std::size_t block = 0; block < shards; block += grain) {
          std::uint64_t load = 0;
          const std::size_t end = std::min(shards, block + grain);
          for (std::size_t i = block; i < end; ++i) load += charged(costs[i]);
          stats->planned_makespan = std::max(stats->planned_makespan, load);
        }
      }
      break;
    }
    case ShardSchedule::kLptSteal:
      util::weighted_parallel_for(*pool, costs, run_one, stats);
      break;
  }
}

}  // namespace

MultiCellResult run_multi_cell(const MultiCellConfig& config,
                               util::ThreadPool* pool,
                               obs::SeriesRecorder* recorder) {
  MultiCellObservers observers;
  observers.recorder = recorder;
  return run_multi_cell(config, pool, observers);
}

MultiCellResult run_multi_cell(const MultiCellConfig& config,
                               util::ThreadPool* pool,
                               const MultiCellObservers& observers) {
  obs::SeriesRecorder* recorder = observers.recorder;
  if (config.cell_count == 0) {
    throw std::invalid_argument("run_multi_cell: need >= 1 cell");
  }
  if (!config.mobility.empty() &&
      config.topology != CellTopology::kSharded) {
    throw std::invalid_argument(
        "run_multi_cell: mobility requires sharded topology");
  }
  if (observers.windows != nullptr && recorder == nullptr) {
    throw std::invalid_argument(
        "run_multi_cell: windows require a recorder (the aggregator reads "
        "the recorder's registry)");
  }
  // Driver-side phases only: shard workers never see the profiler (it is
  // single-threaded by contract); the mobility fleet nests its own
  // fleet.* spans under mc.dispatch from the driver thread.
  obs::PhaseProfiler* profiler = observers.profiler;
  std::uint32_t dispatch_phase = 0;
  std::uint32_t record_phase = 0;
  if (profiler) {
    dispatch_phase = profiler->phase("mc.dispatch");
    record_phase = profiler->phase("mc.record");
  }
  MultiCellResult result;
  result.cells = config.cell_count;
  const bool want_series = config.keep_series || recorder != nullptr;
  const std::vector<std::uint64_t> costs = shard_cost_estimates(config);

  // One arena per run, declared before everything allocated from it. All
  // arena traffic happens on this thread: per-shard series storage is
  // reserved to its exact final size (run_cell appends one snapshot per
  // tick) *before* dispatch, so workers only fill pre-reserved memory.
  util::MonotonicArena arena;

  if (config.topology == CellTopology::kSharded) {
    const std::size_t shards = config.cell_count;
    result.shards = shards;
    result.per_cell.resize(shards);
    std::vector<client::CellSeries> series;
    if (want_series) {
      series.reserve(shards);
      for (std::size_t i = 0; i < shards; ++i) {
        series.emplace_back(util::ArenaAllocator<client::CellResult>(&arena));
        series.back().reserve(config.cell.ticks);
      }
    }
    // Tracing state is strictly per shard — a tracer and a private
    // histogram registry each — so traced shards stay share-nothing and
    // the pool-size determinism contract holds untouched.
    const bool want_trace = config.trace_sample_every > 0;
    std::vector<std::unique_ptr<obs::RequestTracer>> tracers;
    std::vector<std::unique_ptr<obs::MetricsRegistry>> shard_regs;
    std::vector<std::unique_ptr<obs::JsonlTraceSink>> sinks;
    if (want_trace) {
      tracers.reserve(shards);
      shard_regs.reserve(shards);
      if (!config.trace_jsonl_dir.empty()) sinks.reserve(shards);
      for (std::size_t i = 0; i < shards; ++i) {
        shard_regs.push_back(std::make_unique<obs::MetricsRegistry>());
        tracers.push_back(std::make_unique<obs::RequestTracer>(
            obs::RequestTracer::Config{config.trace_sample_every,
                                       config.trace_event_capacity}));
        tracers.back()->register_histograms(shard_regs.back().get());
        if (!config.trace_jsonl_dir.empty()) {
          // Inline flush: one sink per shard, written only by whichever
          // worker runs the shard; a fleet of cells must not spawn a
          // fleet of flusher threads.
          obs::JsonlTraceSink::Config sink_config;
          sink_config.buffer_events = 1 << 12;
          sink_config.background_flush = false;
          sinks.push_back(std::make_unique<obs::JsonlTraceSink>(
              config.trace_jsonl_dir + "/trace_cell" + std::to_string(i) +
                  ".jsonl",
              sink_config));
          tracers.back()->log().set_sink(sinks.back().get());
        }
      }
    }
    std::vector<MobilityRunStats> mobility_rows;
    if (config.mobility.empty()) {
      obs::ScopedPhase dispatch_span(profiler, dispatch_phase);
      dispatch_span.add_cost(std::uint64_t(shards));
      dispatch_shards(
          pool, config.schedule, costs,
          [&](std::size_t i) {
            client::CellConfig cell = config.cell;
            cell.seed = shard_seed(config.seed, i);
            if (!config.cell_client_counts.empty()) {
              cell.client_count = config.cell_client_counts[i];
            }
            result.per_cell[i] =
                client::run_cell(cell, want_series ? &series[i] : nullptr,
                                 want_trace ? tracers[i].get() : nullptr);
          },
          &result.schedule_stats);
    } else {
      // Mobile clients: cells can no longer run start-to-finish as
      // independent shards — every tick ends at the fleet's handoff
      // barrier, so parallelism is per-tick across cells instead of
      // per-run across shards (the schedule knob does not apply).
      MobilityFleet fleet(config);
      for (std::size_t i = 0; i < shards; ++i) {
        if (want_series) fleet.attach_series(i, &series[i]);
        if (want_trace) fleet.set_tracer(i, tracers[i].get());
      }
      fleet.set_profiler(profiler);
      {
        obs::ScopedPhase dispatch_span(profiler, dispatch_phase);
        dispatch_span.add_cost(std::uint64_t(fleet.ticks()));
        while (!fleet.done()) fleet.step(pool);
      }
      for (std::size_t i = 0; i < shards; ++i) {
        result.per_cell[i] = fleet.cell_result(i);
      }
      result.schedule_stats.workers = pool ? pool->size() : 1;
      result.mobility = fleet.stats();
      mobility_rows = fleet.mobility_series();
      result.client_cells.resize(fleet.client_count());
      for (std::size_t c = 0; c < fleet.client_count(); ++c) {
        result.client_cells[c] = fleet.cell_of_client(std::uint32_t(c));
      }
    }
    // Close the streamed traces (footer + fclose) before merging so the
    // exported flushed_events equals streamed_events deterministically.
    for (auto& sink : sinks) sink->close();
    for (const auto& cell : result.per_cell) {
      accumulate(result.aggregate, cell);
    }
    result.total_requests = result.aggregate.requests;
    if (recorder) {
      obs::ScopedPhase record_span(profiler, record_phase);
      record_span.add_cost(std::uint64_t(config.cell.ticks));
      if (want_trace) merge_shard_traces(*recorder, tracers, shard_regs);
      record_sharded(*recorder, series, config.cell_count, arena,
                     config.mobility.empty() ? nullptr : &mobility_rows,
                     observers.windows);
    }
    if (config.keep_series) {
      result.cell_series.reserve(series.size());
      for (const auto& shard : series) {
        result.cell_series.emplace_back(shard.begin(), shard.end());
      }
    }
    if (want_trace && config.keep_trace) {
      result.shard_traces.reserve(shards);
      for (auto& tracer : tracers) {
        // Detach the per-run sink first: the returned logs must not
        // carry pointers into this frame.
        tracer->log().set_sink(nullptr);
        result.shard_traces.push_back(std::move(tracer->log()));
      }
    }
    return result;
  }

  const std::size_t width = config.cells_per_cluster;
  const std::size_t shards = costs.size();
  result.shards = shards;
  result.per_cluster.resize(shards);
  std::vector<std::vector<coop::CoopResult>> series(want_series ? shards : 0);
  {
    obs::ScopedPhase dispatch_span(profiler, dispatch_phase);
    dispatch_span.add_cost(std::uint64_t(shards));
    dispatch_shards(
        pool, config.schedule, costs,
        [&](std::size_t i) {
          coop::CoopConfig cluster = config.cluster;
          cluster.seed = shard_seed(config.seed, i);
          cluster.cell_count = std::min(width, config.cell_count - i * width);
          result.per_cluster[i] = coop::run_cooperative(
              cluster, want_series ? &series[i] : nullptr);
        },
        &result.schedule_stats);
  }
  for (const auto& cluster : result.per_cluster) {
    accumulate(result.coop_aggregate, cluster);
  }
  result.total_requests = result.coop_aggregate.requests;
  if (recorder) {
    obs::ScopedPhase record_span(profiler, record_phase);
    record_span.add_cost(std::uint64_t(config.cluster.warmup_ticks) +
                         std::uint64_t(config.cluster.measure_ticks));
    record_coop(*recorder, series, config.cell_count, arena,
                observers.windows);
  }
  if (config.keep_series) result.cluster_series = std::move(series);
  return result;
}

}  // namespace mobi::exp
