#include "exp/multi_cell.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/rng.hpp"

namespace mobi::exp {

const char* cell_topology_name(CellTopology topology) noexcept {
  switch (topology) {
    case CellTopology::kSharded: return "sharded";
    case CellTopology::kCoopClusters: return "coop-clusters";
  }
  return "?";
}

std::uint64_t shard_seed(std::uint64_t master, std::size_t index) noexcept {
  // SplitMix64 advances its state by a fixed gamma per output, so seeding
  // at master + gamma * index and taking one output *is* output `index`
  // of the stream seeded at `master` — a random-access jump, no replay.
  constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  return util::SplitMix64(master + kGamma * std::uint64_t(index)).next();
}

namespace {

void accumulate(client::CellResult& into, const client::CellResult& from) {
  into.requests += from.requests;
  into.served_locally += from.served_locally;
  into.served_by_base += from.served_by_base;
  into.score_sum += from.score_sum;
  into.base_downloaded += from.base_downloaded;
  into.sleeper_drops += from.sleeper_drops;
  into.disconnect_ticks += from.disconnect_ticks;
  into.failed_fetches += from.failed_fetches;
  into.retries += from.retries;
  into.retry_successes += from.retry_successes;
  into.degraded_serves += from.degraded_serves;
  into.handoffs += from.handoffs;
  into.downlink_dropped += from.downlink_dropped;
}

void accumulate(coop::CoopResult& into, const coop::CoopResult& from) {
  into.requests += from.requests;
  into.score_sum += from.score_sum;
  into.recency_sum += from.recency_sum;
  into.origin_units += from.origin_units;
  into.neighbor_units += from.neighbor_units;
  into.origin_fetches += from.origin_fetches;
  into.neighbor_fetches += from.neighbor_fetches;
  into.invalidations += from.invalidations;
  into.propagations += from.propagations;
  into.lease_expiries += from.lease_expiries;
  into.peer_hits += from.peer_hits;
  into.peer_fetch_units += from.peer_fetch_units;
  into.coherence_units += from.coherence_units;
}

// Shard series are cumulative, so summing shard rows at tick t gives the
// fleet-wide cumulative state; counters advance by the per-tick delta.
// Everything runs after the shards have joined, in shard order — the
// recorder never observes scheduling.
void record_sharded(obs::SeriesRecorder& recorder,
                    const std::vector<std::vector<client::CellResult>>& series,
                    std::size_t cells) {
  obs::MetricsRegistry& registry = recorder.registry();
  obs::Counter& requests = registry.register_counter("mc.requests");
  obs::Counter& local_hits = registry.register_counter("mc.local_hits");
  obs::Counter& base_serves = registry.register_counter("mc.base_serves");
  obs::Counter& units = registry.register_counter("mc.units_downloaded");
  obs::Counter& drops = registry.register_counter("mc.sleeper_drops");
  obs::Counter& disconnects = registry.register_counter("mc.disconnect_ticks");
  obs::Counter& failed = registry.register_counter("mc.failed_fetches");
  obs::Counter& degraded = registry.register_counter("mc.degraded_serves");
  obs::Gauge& score_sum = registry.register_gauge("mc.score_sum");
  obs::Gauge& average_score = registry.register_gauge("mc.average_score");
  registry.register_gauge("mc.cells").set(double(cells));

  const std::size_t ticks = series.empty() ? 0 : series.front().size();
  client::CellResult prev;
  for (std::size_t t = 0; t < ticks; ++t) {
    client::CellResult now;
    for (const auto& shard : series) accumulate(now, shard[t]);
    requests.add(now.requests - prev.requests);
    local_hits.add(now.served_locally - prev.served_locally);
    base_serves.add(now.served_by_base - prev.served_by_base);
    units.add(std::uint64_t(now.base_downloaded - prev.base_downloaded));
    drops.add(now.sleeper_drops - prev.sleeper_drops);
    disconnects.add(now.disconnect_ticks - prev.disconnect_ticks);
    failed.add(now.failed_fetches - prev.failed_fetches);
    degraded.add(now.degraded_serves - prev.degraded_serves);
    score_sum.set(now.score_sum);
    average_score.set(now.average_score());
    recorder.sample(sim::Tick(t));
    prev = now;
  }
}

void record_coop(obs::SeriesRecorder& recorder,
                 const std::vector<std::vector<coop::CoopResult>>& series,
                 std::size_t cells) {
  obs::MetricsRegistry& registry = recorder.registry();
  obs::Counter& requests = registry.register_counter("mc.requests");
  obs::Counter& origin_units = registry.register_counter("mc.origin_units");
  obs::Counter& neighbor_units =
      registry.register_counter("mc.neighbor_units");
  obs::Counter& origin_fetches =
      registry.register_counter("mc.origin_fetches");
  obs::Counter& neighbor_fetches =
      registry.register_counter("mc.neighbor_fetches");
  obs::Counter& invalidations =
      registry.register_counter("mc.coop.coherence.invalidations");
  obs::Counter& propagations =
      registry.register_counter("mc.coop.coherence.propagations");
  obs::Counter& lease_expiries =
      registry.register_counter("mc.coop.coherence.lease_expiries");
  obs::Counter& peer_hits =
      registry.register_counter("mc.coop.coherence.peer_hits");
  obs::Counter& peer_fetch_units =
      registry.register_counter("mc.coop.coherence.peer_fetch_units");
  obs::Counter& wire_units =
      registry.register_counter("mc.coop.coherence.wire_units");
  obs::Gauge& score_sum = registry.register_gauge("mc.score_sum");
  obs::Gauge& average_score = registry.register_gauge("mc.average_score");
  registry.register_gauge("mc.cells").set(double(cells));

  const std::size_t ticks = series.empty() ? 0 : series.front().size();
  coop::CoopResult prev;
  for (std::size_t t = 0; t < ticks; ++t) {
    coop::CoopResult now;
    for (const auto& shard : series) accumulate(now, shard[t]);
    requests.add(now.requests - prev.requests);
    origin_units.add(std::uint64_t(now.origin_units - prev.origin_units));
    neighbor_units.add(
        std::uint64_t(now.neighbor_units - prev.neighbor_units));
    origin_fetches.add(now.origin_fetches - prev.origin_fetches);
    neighbor_fetches.add(now.neighbor_fetches - prev.neighbor_fetches);
    invalidations.add(now.invalidations - prev.invalidations);
    propagations.add(now.propagations - prev.propagations);
    lease_expiries.add(now.lease_expiries - prev.lease_expiries);
    peer_hits.add(now.peer_hits - prev.peer_hits);
    peer_fetch_units.add(
        std::uint64_t(now.peer_fetch_units - prev.peer_fetch_units));
    wire_units.add(std::uint64_t(now.coherence_units - prev.coherence_units));
    score_sum.set(now.score_sum);
    average_score.set(now.average_score());
    recorder.sample(sim::Tick(t));
    prev = now;
  }
}

// Folds every shard's private lat.* histograms (and event/drop totals)
// into the recorder's registry as mc.lat.* / mc.trace.*. Runs after the
// join, iterating shards in index order, so the merged distributions are
// bit-identical for every pool size — same contract as record_sharded.
void merge_shard_traces(
    obs::SeriesRecorder& recorder,
    const std::vector<std::unique_ptr<obs::RequestTracer>>& tracers,
    const std::vector<std::unique_ptr<obs::MetricsRegistry>>& shard_regs) {
  obs::MetricsRegistry& registry = recorder.registry();
  obs::Counter& events = registry.register_counter("mc.trace.events");
  obs::Counter& dropped = registry.register_counter("mc.trace.dropped");
  obs::Counter& arrivals = registry.register_counter("mc.trace.arrivals");
  for (const auto& tracer : tracers) {
    events.add(tracer->log().size());
    dropped.add(tracer->log().dropped());
    arrivals.add(tracer->arrivals());
  }
  if (shard_regs.empty()) return;
  for (const std::string& name : shard_regs.front()->names()) {
    const obs::FixedHistogram* shape = shard_regs.front()->find_histogram(name);
    if (!shape) continue;
    obs::FixedHistogram& merged = registry.register_histogram(
        "mc." + name, shape->lo(), shape->hi(), shape->bucket_count());
    for (const auto& reg : shard_regs) {
      merged.merge(*reg->find_histogram(name));
    }
  }
}

template <typename Fn>
void dispatch_shards(util::ThreadPool* pool, std::size_t shards,
                     const Fn& run_one) {
  if (pool) {
    util::parallel_for(*pool, 0, shards, run_one);
  } else {
    for (std::size_t i = 0; i < shards; ++i) run_one(i);
  }
}

}  // namespace

MultiCellResult run_multi_cell(const MultiCellConfig& config,
                               util::ThreadPool* pool,
                               obs::SeriesRecorder* recorder) {
  if (config.cell_count == 0) {
    throw std::invalid_argument("run_multi_cell: need >= 1 cell");
  }
  MultiCellResult result;
  result.cells = config.cell_count;
  const bool want_series = config.keep_series || recorder != nullptr;

  if (config.topology == CellTopology::kSharded) {
    const std::size_t shards = config.cell_count;
    result.shards = shards;
    result.per_cell.resize(shards);
    std::vector<std::vector<client::CellResult>> series(want_series ? shards
                                                                    : 0);
    // Tracing state is strictly per shard — a tracer and a private
    // histogram registry each — so traced shards stay share-nothing and
    // the pool-size determinism contract holds untouched.
    const bool want_trace = config.trace_sample_every > 0;
    std::vector<std::unique_ptr<obs::RequestTracer>> tracers;
    std::vector<std::unique_ptr<obs::MetricsRegistry>> shard_regs;
    if (want_trace) {
      tracers.reserve(shards);
      shard_regs.reserve(shards);
      for (std::size_t i = 0; i < shards; ++i) {
        shard_regs.push_back(std::make_unique<obs::MetricsRegistry>());
        tracers.push_back(std::make_unique<obs::RequestTracer>(
            obs::RequestTracer::Config{config.trace_sample_every,
                                       config.trace_event_capacity}));
        tracers.back()->register_histograms(shard_regs.back().get());
      }
    }
    dispatch_shards(pool, shards, [&](std::size_t i) {
      client::CellConfig cell = config.cell;
      cell.seed = shard_seed(config.seed, i);
      result.per_cell[i] =
          client::run_cell(cell, want_series ? &series[i] : nullptr,
                           want_trace ? tracers[i].get() : nullptr);
    });
    for (const auto& cell : result.per_cell) {
      accumulate(result.aggregate, cell);
    }
    result.total_requests = result.aggregate.requests;
    if (recorder && want_trace) {
      merge_shard_traces(*recorder, tracers, shard_regs);
    }
    if (recorder) record_sharded(*recorder, series, config.cell_count);
    if (config.keep_series) result.cell_series = std::move(series);
    if (want_trace && config.keep_trace) {
      result.shard_traces.reserve(shards);
      for (auto& tracer : tracers) {
        result.shard_traces.push_back(std::move(tracer->log()));
      }
    }
    return result;
  }

  const std::size_t width = config.cells_per_cluster;
  if (width == 0) {
    throw std::invalid_argument("run_multi_cell: need >= 1 cell per cluster");
  }
  const std::size_t shards = (config.cell_count + width - 1) / width;
  result.shards = shards;
  result.per_cluster.resize(shards);
  std::vector<std::vector<coop::CoopResult>> series(want_series ? shards : 0);
  dispatch_shards(pool, shards, [&](std::size_t i) {
    coop::CoopConfig cluster = config.cluster;
    cluster.seed = shard_seed(config.seed, i);
    cluster.cell_count = std::min(width, config.cell_count - i * width);
    result.per_cluster[i] =
        coop::run_cooperative(cluster, want_series ? &series[i] : nullptr);
  });
  for (const auto& cluster : result.per_cluster) {
    accumulate(result.coop_aggregate, cluster);
  }
  result.total_requests = result.coop_aggregate.requests;
  if (recorder) record_coop(*recorder, series, config.cell_count);
  if (config.keep_series) result.cluster_series = std::move(series);
  return result;
}

}  // namespace mobi::exp
