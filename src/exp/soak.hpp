// Long-horizon soak harness: many consecutive measurement windows, each a
// fresh deterministic run at a fault rate ramped from `fault_rate_lo` to
// `fault_rate_hi`, trending the resilience (`fault.*`), scale-out
// (`mc.*`) and sim-time latency (`lat.*`) series window over window.
//
// Each window runs two legs:
//   - a single-station policy simulation with the full fault cocktail and
//     a RequestTracer attached (lat.* histograms, trace event counts),
//   - a sharded multi-cell run with per-shard tracing merged into mc.lat.*.
// Every extracted series is simulation-time only — wall-clock histograms
// (bs.solve_time_us etc.) are deliberately excluded — so the soak output
// is bit-reproducible and a checked-in golden artifact can gate CI via
// tools/metrics_diff. Window seeds derive from shard_seed(seed, ...), so
// windows are independent streams and the ramp can be resharded.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/multi_cell.hpp"
#include "exp/policy_sim.hpp"
#include "obs/slo.hpp"
#include "util/thread_pool.hpp"

namespace mobi::exp {

struct SoakConfig {
  /// Windowed horizon: `windows` independent runs, each measuring
  /// `window_ticks` ticks after `window_warmup` warmup ticks.
  std::size_t windows = 8;
  sim::Tick window_ticks = 150;
  sim::Tick window_warmup = 30;

  /// Headline fault-rate ramp across the horizon: window w runs at
  /// lerp(lo, hi, w / (windows - 1)). Equal lo/hi soaks at a constant
  /// rate; the default ramp exercises graceful degradation end to end.
  double fault_rate_lo = 0.0;
  double fault_rate_hi = 0.3;
  /// Secondary-category scales (same mapping as FaultSweepConfig).
  double slowdown_scale = 0.5;
  double drop_scale = 0.5;
  double outage_scale = 0.2;

  /// Station-leg template; `faults`, `seed` and the tick counts are
  /// overridden per window.
  PolicySimConfig base;
  /// Multi-cell leg: `cell_count` sharded cells from this template
  /// (`faults`, `seed`, `ticks` overridden per window). 0 skips the leg.
  std::size_t cell_count = 4;
  client::CellConfig cell;

  /// Request-lifecycle tracing for both legs (1-in-N arrivals).
  std::size_t trace_sample_every = 8;
  std::size_t trace_event_capacity = 1 << 15;

  /// When non-empty, the station leg streams every traced event across
  /// all windows to this JSONL file through one background-flush
  /// JsonlTraceSink. Streaming is dual-write — the in-memory logs (and
  /// therefore every exported soak series) are bit-identical with or
  /// without it — so a streamed soak still diffs clean against a golden
  /// produced buffered.
  std::string trace_jsonl;

  /// Online observability (all read-only over the simulation — every
  /// exported sim-time series is bit-identical with these on or off).
  /// obs_window_ticks > 0 attaches a tumbling WindowAggregator of that
  /// width to each leg's registry; the closed frames concatenate — in
  /// run order, zero-backfilled where the two legs' column sets differ —
  /// into SoakResult::window_series (`mobicache.windows.v1`).
  sim::Tick obs_window_ticks = 0;
  /// Attach one driver-thread PhaseProfiler across every leg of every
  /// window (live `prof.phase.*` counters per leg registry); the
  /// collapsed flamegraph lands in SoakResult::flamegraph.
  bool profile = false;
  /// Objectives evaluated on every closed station-leg window (needs
  /// obs_window_ticks > 0; ignored otherwise). Alerts stream as
  /// kSloAlert events to the trace_jsonl sink when one is attached.
  std::vector<obs::SloObjective> slos;

  std::uint64_t seed = 42;

  SoakConfig() {
    base.server_count = 4;
    base.fetch_retry_limit = 3;
    cell.server_count = 4;
    cell.fetch_retry_limit = 3;
  }
};

/// The fault plan window `w` runs at (exposed so tests can pin the ramp).
sim::FaultPlan soak_plan_at(const SoakConfig& config, std::size_t window);

/// The objective set bench/soak --slo attaches: served-latency p99
/// ("lat.ticks_to_serve.p99" <= 16), hit rate ("bs.hits.rate" /
/// "bs.requests.rate" >= 0.5), and a fault ceiling ("bs.fault.retries
/// .rate" <= 0 — any retry in a window breaches, so the ramped-fault
/// phase of the default soak deterministically burns through the
/// fast+slow pair and fires at least one alert).
std::vector<obs::SloObjective> default_soak_slos();

struct SoakResult {
  /// One value per window for every trended series, keyed by name
  /// (sorted map, so export order is deterministic). Series families:
  /// `fault_rate`, `score.avg` / `recency.avg` / request totals,
  /// `fault.injected.*`, `lat.*.mean`, `trace.*`, and — when the
  /// multi-cell leg runs — `mc.*` and `mc.lat.ticks_to_serve.mean`.
  std::map<std::string, std::vector<double>> series;
  std::size_t windows = 0;
  sim::Tick window_ticks = 0;

  const std::vector<double>& at(const std::string& name) const;

  /// Windowed-aggregate export, schema `mobicache.soak.v1`:
  /// {"schema":...,"windows":[0..N-1],"window_ticks":T,"series":{...}}.
  /// Consumable by obs::diff_metrics / tools/metrics_diff (the axis is
  /// the window index).
  std::string to_json() const;

  /// Online-observability outputs (populated only when the matching
  /// SoakConfig switch was on). window_series holds every closed
  /// WindowAggregator frame across all legs and soak windows, in run
  /// order (station leg frames, then multi-cell leg frames, per soak
  /// window), zero-backfilled where a column exists in only one leg.
  /// All columns except `prof.phase.*.wall_ns` are sim-time
  /// deterministic; the wall columns are masked in the CI gate.
  std::map<std::string, std::vector<double>> window_series;
  std::size_t window_frames = 0;
  sim::Tick obs_window_ticks = 0;
  std::uint64_t slo_evaluations = 0;
  std::uint64_t slo_breaches = 0;
  std::uint64_t slo_alerts = 0;
  /// flamegraph.pl collapsed stacks (empty when profiling was off).
  std::string flamegraph;

  /// `mobicache.windows.v1` export of window_series (same shape as
  /// WindowAggregator::to_json, axis = frame ordinal), accepted by
  /// obs::diff_metrics / tools/metrics_diff / tools/metrics_query.
  std::string windows_to_json() const;
};

/// Runs the soak. The pool (optional) parallelizes the multi-cell leg's
/// shards; results are bit-identical for every pool size.
SoakResult run_soak(const SoakConfig& config,
                    util::ThreadPool* pool = nullptr);

}  // namespace mobi::exp
