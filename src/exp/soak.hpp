// Long-horizon soak harness: many consecutive measurement windows, each a
// fresh deterministic run at a fault rate ramped from `fault_rate_lo` to
// `fault_rate_hi`, trending the resilience (`fault.*`), scale-out
// (`mc.*`) and sim-time latency (`lat.*`) series window over window.
//
// Each window runs two legs:
//   - a single-station policy simulation with the full fault cocktail and
//     a RequestTracer attached (lat.* histograms, trace event counts),
//   - a sharded multi-cell run with per-shard tracing merged into mc.lat.*.
// Every extracted series is simulation-time only — wall-clock histograms
// (bs.solve_time_us etc.) are deliberately excluded — so the soak output
// is bit-reproducible and a checked-in golden artifact can gate CI via
// tools/metrics_diff. Window seeds derive from shard_seed(seed, ...), so
// windows are independent streams and the ramp can be resharded.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/multi_cell.hpp"
#include "exp/policy_sim.hpp"
#include "util/thread_pool.hpp"

namespace mobi::exp {

struct SoakConfig {
  /// Windowed horizon: `windows` independent runs, each measuring
  /// `window_ticks` ticks after `window_warmup` warmup ticks.
  std::size_t windows = 8;
  sim::Tick window_ticks = 150;
  sim::Tick window_warmup = 30;

  /// Headline fault-rate ramp across the horizon: window w runs at
  /// lerp(lo, hi, w / (windows - 1)). Equal lo/hi soaks at a constant
  /// rate; the default ramp exercises graceful degradation end to end.
  double fault_rate_lo = 0.0;
  double fault_rate_hi = 0.3;
  /// Secondary-category scales (same mapping as FaultSweepConfig).
  double slowdown_scale = 0.5;
  double drop_scale = 0.5;
  double outage_scale = 0.2;

  /// Station-leg template; `faults`, `seed` and the tick counts are
  /// overridden per window.
  PolicySimConfig base;
  /// Multi-cell leg: `cell_count` sharded cells from this template
  /// (`faults`, `seed`, `ticks` overridden per window). 0 skips the leg.
  std::size_t cell_count = 4;
  client::CellConfig cell;

  /// Request-lifecycle tracing for both legs (1-in-N arrivals).
  std::size_t trace_sample_every = 8;
  std::size_t trace_event_capacity = 1 << 15;

  /// When non-empty, the station leg streams every traced event across
  /// all windows to this JSONL file through one background-flush
  /// JsonlTraceSink. Streaming is dual-write — the in-memory logs (and
  /// therefore every exported soak series) are bit-identical with or
  /// without it — so a streamed soak still diffs clean against a golden
  /// produced buffered.
  std::string trace_jsonl;

  std::uint64_t seed = 42;

  SoakConfig() {
    base.server_count = 4;
    base.fetch_retry_limit = 3;
    cell.server_count = 4;
    cell.fetch_retry_limit = 3;
  }
};

/// The fault plan window `w` runs at (exposed so tests can pin the ramp).
sim::FaultPlan soak_plan_at(const SoakConfig& config, std::size_t window);

struct SoakResult {
  /// One value per window for every trended series, keyed by name
  /// (sorted map, so export order is deterministic). Series families:
  /// `fault_rate`, `score.avg` / `recency.avg` / request totals,
  /// `fault.injected.*`, `lat.*.mean`, `trace.*`, and — when the
  /// multi-cell leg runs — `mc.*` and `mc.lat.ticks_to_serve.mean`.
  std::map<std::string, std::vector<double>> series;
  std::size_t windows = 0;
  sim::Tick window_ticks = 0;

  const std::vector<double>& at(const std::string& name) const;

  /// Windowed-aggregate export, schema `mobicache.soak.v1`:
  /// {"schema":...,"windows":[0..N-1],"window_ticks":T,"series":{...}}.
  /// Consumable by obs::diff_metrics / tools/metrics_diff (the axis is
  /// the window index).
  std::string to_json() const;
};

/// Runs the soak. The pool (optional) parallelizes the multi-cell leg's
/// shards; results are bit-identical for every pool size.
SoakResult run_soak(const SoakConfig& config,
                    util::ThreadPool* pool = nullptr);

}  // namespace mobi::exp
