// Resilience sweep: average recency/score delivered to clients as the
// injected fault rate grows, the request-driven knapsack policy vs the
// asynchronous round-robin baseline.
//
// One headline `fault_rate` drives every fault category through fixed
// scales (fetch failures at the full rate; congestion slowdowns, downlink
// drops and per-server outages at fractions of it), so each sweep point
// is a progressively harsher world rather than a single failure mode.
// The expected shape — the acceptance bar for the chaos suite — is
// graceful degradation: recency falls monotonically-ish with the fault
// rate but the run never stalls, and the request-driven policy, which
// retries exactly the objects clients still want, degrades more slowly
// than the request-oblivious baseline.
#pragma once

#include <string>
#include <vector>

#include "exp/policy_sim.hpp"
#include "sim/fault_plan.hpp"

namespace mobi::obs {
class SeriesRecorder;
}  // namespace mobi::obs

namespace mobi::exp {

struct FaultSweepConfig {
  /// Workload shared by every point; `faults` and `policy` are
  /// overwritten per point. Defaults to a 4-server backend with a
  /// 3-attempt retry budget so every resilience path is exercised.
  PolicySimConfig base;
  /// Headline fault rates to sweep (each also scales the secondary
  /// categories below).
  std::vector<double> fault_rates = {0.0, 0.05, 0.1, 0.2, 0.3};
  std::string on_demand_policy = "on-demand-knapsack";
  std::string async_policy = "async-round-robin";
  /// Secondary-category scales: at headline rate r the plan carries
  /// fetch failures at r, congestion slowdowns at r*slowdown_scale,
  /// downlink drops at r*drop_scale, server outages at r*outage_scale.
  double slowdown_scale = 0.5;
  double drop_scale = 0.5;
  double outage_scale = 0.2;

  FaultSweepConfig() {
    base.server_count = 4;
    base.fetch_retry_limit = 3;
  }
};

/// The fault plan a sweep runs at headline rate `rate` (exposed so tests
/// can pin the mapping).
sim::FaultPlan fault_plan_at(const FaultSweepConfig& config, double rate);

struct FaultSweepPoint {
  double fault_rate = 0.0;
  PolicySimResult on_demand;
  PolicySimResult async_baseline;
};

struct FaultSweepResult {
  std::vector<FaultSweepPoint> points;
};

FaultSweepResult run_fault_sweep(const FaultSweepConfig& config);

/// Same sweep; additionally snapshots per-tick metrics of one
/// representative run — the on-demand policy at the harshest fault rate —
/// into `recorder` (fault.injected.*, bs.fault.*, bs.downlink.* and
/// friends). nullptr is identical to the plain overload; instrumentation
/// is read-only, so results are bit-identical either way.
FaultSweepResult run_fault_sweep(const FaultSweepConfig& config,
                                 obs::SeriesRecorder* recorder);

}  // namespace mobi::exp
