// Sharded multi-cell scale-out driver.
//
// The paper evaluates one base station per cell; a production deployment
// runs many cells at once. Per-cell caching decisions are independent
// (MobiCacher makes the same observation for small cells), so the natural
// unit of parallelism is the *shard*: either a single client::run_cell
// simulation, or — when cells are linked by cooperative neighbor fetch —
// a whole coop::run_cooperative cluster (cells inside a cluster share
// caches and must step together; distinct clusters never touch).
//
// Determinism contract: every shard draws from its own RNG stream whose
// seed is a pure function of (master seed, shard index), and shards share
// no mutable state, so a K-thread pool run is bit-identical to the serial
// run for every K. tests/multi_cell_test.cpp pins this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "client/cell.hpp"
#include "coop/cooperative.hpp"
#include "obs/event_log.hpp"
#include "sim/mobility.hpp"
#include "util/thread_pool.hpp"

namespace mobi::obs {
class SeriesRecorder;
class WindowAggregator;
class PhaseProfiler;
}  // namespace mobi::obs

namespace mobi::exp {

enum class CellTopology {
  kSharded,       // independent cells; shard = one client::run_cell
  kCoopClusters,  // neighbor-linked clusters; shard = one coop cluster
};

const char* cell_topology_name(CellTopology topology) noexcept;

/// How shards are assigned to pool workers. Scheduling never touches
/// simulation state (every shard's seed is a pure function of its index),
/// so all three produce bit-identical results — they differ only in how
/// well they pack skewed shard costs onto the workers.
enum class ShardSchedule {
  kStaticBlocked,  // contiguous index blocks, one task per worker
  kQueue,          // shared grain-1 FIFO queue (the pre-scheduling default)
  kLptSteal,       // cost-estimated LPT plan + dynamic work stealing
};

const char* shard_schedule_name(ShardSchedule schedule) noexcept;

struct MultiCellConfig {
  std::size_t cell_count = 8;
  CellTopology topology = CellTopology::kSharded;
  /// Sharded-mode template; `cell.seed` is overridden per cell with
  /// shard_seed(seed, index).
  client::CellConfig cell;
  /// Coop-mode template; `cluster.seed` and `cluster.cell_count` are
  /// overridden per cluster.
  coop::CoopConfig cluster;
  /// Coop mode: cells per cluster (the last cluster takes the remainder).
  std::size_t cells_per_cluster = 3;
  /// Retain the per-shard per-tick series in the result (the driver
  /// always collects them internally when a recorder is attached).
  bool keep_series = false;
  /// Request-lifecycle tracing (sharded topology only; ignored for coop
  /// clusters). 0 disables; N >= 1 gives every shard its own
  /// RequestTracer sampling every N-th arrival. Each shard's sim-time
  /// latency histograms land in a private per-shard registry and are
  /// merged — in shard order, after the join — into the recorder's
  /// registry as `mc.lat.*`, alongside `mc.trace.events` /
  /// `mc.trace.dropped` counters; a pool-of-K run merges to the same
  /// bits as the serial run.
  std::size_t trace_sample_every = 0;
  std::size_t trace_event_capacity = 1 << 16;
  /// Retain each shard's EventLog in the result (sharded + tracing only).
  bool keep_trace = false;
  /// Worker assignment policy for pooled runs (ignored when the pool is
  /// null). The default LPT + stealing plan packs by estimated shard cost
  /// (clients x ticks), which matters once cell populations are skewed.
  ShardSchedule schedule = ShardSchedule::kLptSteal;
  /// Sharded mode: per-cell client_count override (size must equal
  /// cell_count when non-empty; empty keeps the template's count for
  /// every cell). This is how skewed fleets — a few giant downtown cells
  /// among many small ones — are expressed.
  std::vector<std::size_t> cell_client_counts;
  /// When non-empty (sharded + tracing), each shard also streams its
  /// events to `<dir>/trace_cell<i>.jsonl` through an inline-flush
  /// JsonlTraceSink, so the on-disk trace is complete even when the
  /// in-memory log drops. The directory must already exist.
  std::string trace_jsonl_dir;
  /// Client mobility over the cell grid (sim/mobility.hpp). The default
  /// (kOff) takes the pre-mobility sharded path bit for bit — zero extra
  /// RNG draws, byte-identical registry JSON. A non-empty config routes
  /// the run through exp::MobilityFleet: cells tick in parallel, then a
  /// single-threaded barrier steps the model and migrates crossing
  /// clients between cell rosters through an exp::HandoffBus. Sharded
  /// topology only. The mobility seed is remixed with `seed`, so runs
  /// with different master seeds get independent trajectories.
  sim::MobilityConfig mobility;
  /// Mobility mode: attach a ResidencyProbe to every station so the
  /// knapsack scales per-client benefit by predicted residency (the
  /// MobiCacher term). Off = the residence-blind twin, same trajectories.
  bool mobility_predictive = true;
  /// Fetch-landing horizon for the residency predictor, in ticks.
  sim::Tick mobility_horizon = 8;
  /// Mobility mode: downlink delivery latency in ticks. A base-station
  /// serve decided at tick t lands on the client at t + delivery; the
  /// payload is LOST (units spent, no score) if the client has crossed
  /// to another cell or is off the air when it lands — the physical
  /// waste the residency-weighted knapsack exists to avoid. 0 = legacy
  /// instant delivery (the pre-mobility serve accounting, where
  /// residency cannot matter).
  sim::Tick mobility_delivery_ticks = 2;
  std::uint64_t seed = 42;
};

/// Mobility accounting, cumulative. Also the per-tick row type of the
/// fleet's mobility series (row t = totals through tick t), from which
/// the recorder derives the `mc.mobility.*` per-tick counters.
struct MobilityRunStats {
  std::uint64_t crossings = 0;       // boundary crossings observed
  std::uint64_t migrations = 0;      // handoff records delivered
  std::uint64_t migrated_units = 0;  // client-cache units that rode along
  // Delivery-latency accounting (zero when mobility_delivery_ticks == 0).
  std::uint64_t deliveries = 0;       // payloads that landed on their client
  std::uint64_t lost_deliveries = 0;  // client moved/off-air before landing
};

struct MultiCellResult {
  // Sharded mode, indexed by cell. cell_series[i] holds cell i's
  // cumulative per-tick snapshots when keep_series was set.
  std::vector<client::CellResult> per_cell;
  std::vector<std::vector<client::CellResult>> cell_series;
  client::CellResult aggregate;  // field-wise sum over cells

  // Coop mode, indexed by cluster.
  std::vector<coop::CoopResult> per_cluster;
  std::vector<std::vector<coop::CoopResult>> cluster_series;
  coop::CoopResult coop_aggregate;

  std::size_t cells = 0;          // actual cell count simulated
  std::size_t shards = 0;         // units of parallelism
  std::size_t total_requests = 0; // mode-independent, for throughput math

  /// Per-shard lifecycle traces, indexed by cell (sharded topology with
  /// trace_sample_every > 0 and keep_trace set; empty otherwise).
  std::vector<obs::EventLog> shard_traces;

  /// Scheduling telemetry for pooled runs: worker count, the LPT plan's
  /// modeled makespan (kLptSteal only; the busiest worker's estimated
  /// cost), and observed steals. Diagnostic only — `steals` depends on
  /// thread timing and must never feed back into simulation or metrics.
  util::WeightedForStats schedule_stats;

  /// Mobility runs only: handoff totals and the final client -> cell
  /// residency map (indexed by global client id), for invariant checks.
  MobilityRunStats mobility;
  std::vector<std::uint32_t> client_cells;
};

/// Seed for shard `index` of master stream `master`: the index-th output
/// of the SplitMix64 stream seeded by `master`. Position-addressable
/// (SplitMix64's state advances by a fixed increment), so any shard can
/// derive its seed without iterating the others — cells can be resharded
/// across machines without replaying a sequential seed chain.
std::uint64_t shard_seed(std::uint64_t master, std::size_t index) noexcept;

/// Estimated cost per shard, the scheduler's packing weight: clients x
/// ticks for sharded cells (honoring cell_client_counts), cluster cells x
/// requests-per-tick x total ticks for coop clusters. A pure function of
/// the config, so plans are reproducible across runs and machines.
std::vector<std::uint64_t> shard_cost_estimates(const MultiCellConfig& config);

/// Optional observation hooks for run_multi_cell, all owned by the
/// caller and attachable independently (mirrors exp::SimObservers).
struct MultiCellObservers {
  obs::SeriesRecorder* recorder = nullptr;
  /// Windowed aggregation over the recorder's registry. Requires
  /// `recorder` (throws otherwise). The aggregator's begin() runs after
  /// every `mc.*` registration, then ticks once per recorded sample —
  /// window frames key on recorded ticks, so a pool-of-K run produces
  /// bit-identical frames to the serial run for every K.
  obs::WindowAggregator* windows = nullptr;
  /// Driver-thread phase spans: `mc.dispatch` around the (possibly
  /// pooled) shard dispatch — mobility fleets nest their `fleet.*`
  /// spans under it — and `mc.record` around the post-join series
  /// recording. Never shared with parallel shard workers.
  obs::PhaseProfiler* profiler = nullptr;
};

/// Runs the configured cells. `pool == nullptr` runs shards serially in
/// shard order; otherwise shards are dispatched onto the pool. With a
/// recorder attached, per-tick shard series are summed (in shard order)
/// into `mc.*` registry metrics and sampled once per tick after all
/// shards complete — identical output whatever the pool size.
MultiCellResult run_multi_cell(const MultiCellConfig& config,
                               util::ThreadPool* pool = nullptr,
                               obs::SeriesRecorder* recorder = nullptr);

/// Same run with the full observer set attached.
MultiCellResult run_multi_cell(const MultiCellConfig& config,
                               util::ThreadPool* pool,
                               const MultiCellObservers& observers);

}  // namespace mobi::exp
