#include "exp/event_sim.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include "cache/cache.hpp"
#include "cache/decay.hpp"
#include "core/policy.hpp"
#include "core/scoring.hpp"
#include "net/ps_link.hpp"
#include "object/builders.hpp"
#include "server/remote_server.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/access.hpp"

namespace mobi::exp {

EventSimResult run_event_sim(const EventSimConfig& config) {
  if (config.request_rate <= 0.0 || config.update_rate < 0.0) {
    throw std::invalid_argument("run_event_sim: bad rates");
  }
  if (config.batching_window <= 0.0) {
    throw std::invalid_argument("run_event_sim: batching_window must be > 0");
  }
  if (config.warmup < 0.0 || config.warmup >= config.horizon) {
    throw std::invalid_argument("run_event_sim: warmup outside horizon");
  }
  util::Rng rng(config.seed);
  const object::Catalog catalog = object::make_random_catalog(
      config.object_count, config.size_lo, config.size_hi, rng);
  server::ServerPool servers(catalog, 1);
  cache::Cache cache(catalog.size(), cache::make_harmonic_decay());
  core::ReciprocalScorer scorer;
  const auto policy = core::make_policy(config.policy);
  const auto access =
      workload::make_zipf_access(config.object_count, config.zipf_alpha);

  sim::Simulator simulator;
  std::unique_ptr<net::PsLink> fetch_link;
  if (config.fetch_bandwidth > 0.0) {
    fetch_link = std::make_unique<net::PsLink>(simulator,
                                               config.fetch_bandwidth);
  }
  util::Summary fetch_times;
  util::Rng arrival_rng = rng.split();
  util::Rng update_rng = rng.split();

  struct Pending {
    workload::Request request;
    sim::SimTime arrived = 0.0;
  };
  std::vector<Pending> pending;
  EventSimResult result;
  double score_sum = 0.0;
  util::Summary delays;

  // Self-rescheduling closures capture raw pointers into this keepalive
  // (a shared_ptr self-capture would leak via the reference cycle).
  std::vector<std::shared_ptr<std::function<void()>>> recurring;

  // Poisson request arrivals: each arrival schedules the next.
  workload::ClientId next_client = 0;
  {
    auto arrival = std::make_shared<std::function<void()>>();
    *arrival = [&, raw = arrival.get()] {
      pending.push_back(Pending{
          workload::Request{access->sample(arrival_rng), 1.0, next_client++},
          simulator.now()});
      simulator.schedule_in(arrival_rng.exponential(config.request_rate),
                            *raw);
    };
    recurring.push_back(arrival);
    simulator.schedule_at(arrival_rng.exponential(config.request_rate),
                          *arrival);
  }

  // Per-object Poisson updates (skipped entirely at rate 0).
  if (config.update_rate > 0.0) {
    for (object::ObjectId id = 0; id < config.object_count; ++id) {
      auto update = std::make_shared<std::function<void()>>();
      *update = [&, id, raw = update.get()] {
        servers.apply_update(id, sim::Tick(simulator.now()));
        cache.on_server_update(id);
        ++result.updates;
        simulator.schedule_in(update_rng.exponential(config.update_rate),
                              *raw);
      };
      recurring.push_back(update);
      simulator.schedule_at(update_rng.exponential(config.update_rate),
                            *update);
    }
  }

  // Periodic batch service.
  simulator.schedule_every(config.batching_window, config.batching_window, [&] {
    if (pending.empty()) {
      ++result.batches;
      return;
    }
    workload::RequestBatch batch;
    batch.reserve(pending.size());
    for (const Pending& p : pending) batch.push_back(p.request);

    core::PolicyContext ctx;
    ctx.catalog = &catalog;
    ctx.cache = &cache;
    ctx.servers = &servers;
    ctx.scorer = &scorer;
    ctx.now = sim::Tick(simulator.now());
    ctx.budget = config.budget_per_batch;
    const bool measured = simulator.now() >= config.warmup;
    for (object::ObjectId id : policy->select(batch, ctx)) {
      if (fetch_link) {
        // The copy lands when its transfer completes; until then the
        // clients keep seeing the stale entry.
        fetch_link->submit(
            catalog.object_size(id), [&, id](double start, double finish) {
              cache.refresh(id, servers.fetch(id),
                            sim::Tick(simulator.now()));
              fetch_times.add(finish - start);
            });
      } else {
        cache.refresh(id, servers.fetch(id), ctx.now);
      }
      if (measured) result.units_downloaded += catalog.object_size(id);
    }
    for (const Pending& p : pending) {
      if (!measured) continue;
      const double x = cache.recency_or_zero(p.request.object);
      score_sum += scorer.score(x, p.request.target_recency);
      delays.add(simulator.now() - p.arrived);
      ++result.requests;
    }
    pending.clear();
    ++result.batches;
  });

  simulator.run_until(config.horizon);

  if (result.requests > 0) {
    result.average_score = score_sum / double(result.requests);
  }
  result.mean_service_delay = delays.mean();
  result.max_service_delay = delays.max();
  result.mean_fetch_time = fetch_times.mean();
  return result;
}

}  // namespace mobi::exp
