#include "exp/ablation.hpp"

#include <chrono>

namespace mobi::exp {

namespace {

template <typename Fn>
std::pair<core::KnapsackSolution, double> timed(Fn&& solve) {
  const auto start = std::chrono::steady_clock::now();
  core::KnapsackSolution solution = solve();
  const auto stop = std::chrono::steady_clock::now();
  const double micros =
      std::chrono::duration<double, std::micro>(stop - start).count();
  return {std::move(solution), micros};
}

}  // namespace

std::vector<SolverRow> compare_solvers(
    std::span<const core::KnapsackItem> items,
    const std::vector<object::Units>& budgets, double fptas_epsilon) {
  std::vector<SolverRow> rows;
  for (object::Units budget : budgets) {
    auto [dp, dp_micros] = timed([&] { return core::solve_dp(items, budget); });
    auto [greedy, greedy_micros] =
        timed([&] { return core::solve_greedy(items, budget); });
    auto [fptas, fptas_micros] =
        timed([&] { return core::solve_fptas(items, budget, fptas_epsilon); });
    auto [bnb, bnb_micros] =
        timed([&] { return core::solve_branch_and_bound(items, budget); });
    const double optimal = dp.value > 0.0 ? dp.value : 1.0;
    rows.push_back(SolverRow{"dp", budget, dp.value, 1.0, dp_micros});
    rows.push_back(SolverRow{"branch-and-bound", budget, bnb.value,
                             bnb.value / optimal, bnb_micros});
    rows.push_back(SolverRow{"greedy", budget, greedy.value,
                             greedy.value / optimal, greedy_micros});
    rows.push_back(SolverRow{"fptas(eps=" + std::to_string(fptas_epsilon) + ")",
                             budget, fptas.value, fptas.value / optimal,
                             fptas_micros});
  }
  return rows;
}

std::vector<BoundRow> evaluate_bound_estimators(
    const SolutionSpaceInstance& instance) {
  std::vector<core::KnapsackItem> items;
  items.reserve(instance.candidates.candidates.size());
  for (const auto& cand : instance.candidates.candidates) {
    items.push_back(core::KnapsackItem{cand.size, cand.profit});
  }
  const object::Units cap = instance.catalog.total_size();
  const core::KnapsackProfile profile(items, cap);

  auto to_row = [&](std::string name, const core::BoundEstimate& est) {
    return BoundRow{std::move(name), est.capacity, est.fraction_of_max,
                    cap > 0 ? double(est.capacity) / double(cap) : 0.0};
  };
  std::vector<BoundRow> rows;
  rows.push_back(to_row("marginal-knee", core::estimate_bound_marginal(profile)));
  rows.push_back(to_row("chord-elbow", core::estimate_bound_elbow(profile)));
  rows.push_back(
      to_row("oracle-90%", core::smallest_capacity_reaching(profile, 0.90)));
  rows.push_back(
      to_row("oracle-95%", core::smallest_capacity_reaching(profile, 0.95)));
  return rows;
}

}  // namespace mobi::exp
