// Figure 3: average recency of data delivered to clients as the per-tick
// download budget grows, on-demand vs asynchronous, at low and high server
// update frequency (paper §3.2).
//
// Setup: 500 unit-size objects, uniform access, 100 requests per time
// unit; budget k = 1..100 objects per tick; cache warmed 50 ticks,
// measured 100; recency decays by x' = C/(1/x + 1) per missed update.
// On-demand downloads the k requested objects with the lowest cached
// recency; asynchronous downloads the next k objects in a fixed circular
// order. Both run against the *same* pre-generated request trace.
#pragma once

#include <cstdint>
#include <vector>

#include "object/object.hpp"
#include "sim/tick.hpp"

namespace mobi::obs {
class SeriesRecorder;
}  // namespace mobi::obs

namespace mobi::exp {

struct Fig3Config {
  std::size_t object_count = 500;
  std::size_t requests_per_tick = 100;
  sim::Tick warmup_ticks = 50;
  sim::Tick measure_ticks = 100;
  sim::Tick update_period = 10;  // 10 = the paper's "low", 1 = "high"
  double decay_c = 1.0;
  std::uint64_t seed = 42;
  /// Budgets (objects per tick, unit sizes) to sweep.
  std::vector<object::Units> budgets = {1,  5,  10, 20, 30, 40, 50,
                                        60, 70, 80, 90, 100};
};

struct Fig3Point {
  object::Units budget = 0;
  double on_demand_recency = 0.0;
  double async_recency = 0.0;
};

struct Fig3Result {
  Fig3Config config;
  std::vector<Fig3Point> points;
};

/// One (policy, budget) simulation; returns the mean recency of all copies
/// delivered during the measure window. `on_demand` false = round robin.
double run_fig3_once(const Fig3Config& config, object::Units budget,
                     bool on_demand);

/// Same single simulation with per-tick metrics snapshotted into
/// `recorder`; nullptr is identical to the plain overload.
double run_fig3_once(const Fig3Config& config, object::Units budget,
                     bool on_demand, obs::SeriesRecorder* recorder);

Fig3Result run_fig3(const Fig3Config& config);

/// Budget sweep dispatched onto the process-wide thread pool; all points
/// replay the same pre-generated trace, so results equal run_fig3.
Fig3Result run_fig3_parallel(const Fig3Config& config);

}  // namespace mobi::exp
