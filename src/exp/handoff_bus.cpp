#include "exp/handoff_bus.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace mobi::exp {

HandoffBus::HandoffBus(std::size_t cell_count) : cell_count_(cell_count) {
  if (cell_count == 0) {
    throw std::invalid_argument("HandoffBus: need >= 1 cell");
  }
}

void HandoffBus::reserve(std::size_t capacity) { queue_.reserve(capacity); }

void HandoffBus::post(const HandoffRecord& record) {
  if (record.to >= cell_count_ || record.from >= cell_count_) {
    throw std::out_of_range("HandoffBus: cell out of range");
  }
  queue_.push_back(record);
  ++posted_;
}

void HandoffBus::set_metrics(obs::MetricsRegistry* registry,
                             const std::string& prefix) {
  if (!registry) {
    posted_counter_ = delivered_counter_ = units_counter_ = nullptr;
    return;
  }
  posted_counter_ = &registry->register_counter(prefix + ".posted");
  delivered_counter_ = &registry->register_counter(prefix + ".delivered");
  units_counter_ = &registry->register_counter(prefix + ".migrated_units");
  published_posted_ = published_delivered_ = published_units_ = 0;
  publish();
}

void HandoffBus::publish() noexcept {
  if (!posted_counter_) return;
  posted_counter_->add(posted_ - published_posted_);
  delivered_counter_->add(delivered_ - published_delivered_);
  units_counter_->add(migrated_units_ - published_units_);
  published_posted_ = posted_;
  published_delivered_ = delivered_;
  published_units_ = migrated_units_;
}

}  // namespace mobi::exp
