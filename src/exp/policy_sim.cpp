#include "exp/policy_sim.hpp"

#include <memory>
#include <optional>
#include <stdexcept>

#include "net/fault_injector.hpp"

#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "core/fairness.hpp"
#include "core/policy.hpp"
#include "core/scoring.hpp"
#include "object/builders.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/window.hpp"
#include "server/remote_server.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/access.hpp"
#include "workload/updates.hpp"

namespace mobi::exp {

PolicySimResult run_policy_sim(const PolicySimConfig& config) {
  return run_policy_sim(config, nullptr, nullptr);
}

PolicySimResult run_policy_sim(const PolicySimConfig& config,
                               obs::SeriesRecorder* recorder) {
  return run_policy_sim(config, recorder, nullptr);
}

PolicySimResult run_policy_sim(const PolicySimConfig& config,
                               obs::SeriesRecorder* recorder,
                               obs::RequestTracer* tracer) {
  SimObservers observers;
  observers.recorder = recorder;
  observers.tracer = tracer;
  return run_policy_sim(config, observers);
}

PolicySimResult run_policy_sim(const PolicySimConfig& config,
                               const SimObservers& observers) {
  obs::SeriesRecorder* recorder = observers.recorder;
  obs::RequestTracer* tracer = observers.tracer;
  if (observers.windows != nullptr && recorder == nullptr) {
    throw std::invalid_argument(
        "run_policy_sim: windows require a recorder (the aggregator reads "
        "the recorder's registry)");
  }
  util::Rng rng(config.seed);
  const object::Catalog catalog = object::make_random_catalog(
      config.object_count, config.size_lo, config.size_hi, rng);
  server::ServerPool servers(catalog, config.server_count);

  core::BaseStationConfig bs_config;
  bs_config.download_budget = config.budget;
  bs_config.fetch_retry_limit = config.fetch_retry_limit;
  // Size the downlink for the average response volume so utilization is a
  // meaningful signal rather than saturated at 1.
  const double mean_size = double(catalog.total_size()) / double(catalog.size());
  bs_config.downlink_capacity = std::max<object::Units>(
      1, object::Units(double(config.requests_per_tick) * mean_size));
  core::BaseStation station(catalog, servers,
                            cache::make_harmonic_decay(config.decay_c),
                            core::make_scorer(config.scorer),
                            core::make_policy(config.policy), bs_config);
  // Nonzero fault plan: one injector per run, reseeded from the run's
  // own seed. An empty plan attaches nothing — fault-free path, bit for
  // bit (the differential suite enforces this).
  std::optional<net::FaultInjector> injector;
  if (!config.faults.empty()) {
    sim::FaultPlan plan = config.faults;
    plan.seed = util::SplitMix64(plan.seed ^ config.seed).next();
    injector.emplace(plan, servers.server_count());
    station.set_fault_injector(&*injector);
    servers.set_fault_injector(&*injector);
  }
  if (recorder) {
    station.set_metrics(&recorder->registry());
    servers.set_metrics(&recorder->registry());
    if (injector) injector->set_metrics(&recorder->registry());
  }
  if (tracer) station.set_request_tracer(tracer);
  obs::PhaseProfiler* profiler = observers.profiler;
  std::uint32_t tick_phase = 0;
  std::uint32_t updates_phase = 0;
  if (profiler) {
    tick_phase = profiler->phase("sim.tick");
    updates_phase = profiler->phase("sim.updates");
    station.set_profiler(profiler);
  }

  std::shared_ptr<const workload::AccessDistribution> access;
  switch (config.access) {
    case AccessPattern::kUniform:
      access = workload::make_uniform_access(config.object_count);
      break;
    case AccessPattern::kRankLinear:
      access = workload::make_rank_linear_access(config.object_count);
      break;
    case AccessPattern::kZipf:
      access = workload::make_zipf_access(config.object_count,
                                          config.zipf_alpha);
      break;
  }
  workload::RequestGenerator generator(access, config.targets,
                                       config.requests_per_tick, rng.split());
  auto updates =
      config.staggered_updates
          ? workload::make_periodic_staggered(config.object_count,
                                              config.update_period)
          : workload::make_periodic_synchronized(config.object_count,
                                                 config.update_period);

  PolicySimResult result;
  util::Summary latency;
  double score_sum = 0.0;
  double recency_sum = 0.0;
  std::vector<double> per_request_scores;
  // Windowed aggregation snapshots its column set at begin(), so it must
  // run after the last registration above (station, servers, injector —
  // and anything the caller registered before handing us the hooks,
  // e.g. SLO counters or live profiler counters).
  if (observers.windows) observers.windows->begin();
  const sim::Tick total = config.warmup_ticks + config.measure_ticks;
  for (sim::Tick t = 0; t < total; ++t) {
    obs::ScopedPhase tick_span(profiler, tick_phase);
    {
      obs::ScopedPhase updates_span(profiler, updates_phase);
      station.apply_updates(*updates, t);
    }
    const auto batch = generator.next_batch();
    const auto tick = station.process_batch(batch, t);
    if (recorder) recorder->sample(t);
    if (observers.windows) observers.windows->on_tick(t);
    if (t < config.warmup_ticks) continue;
    score_sum += tick.score_sum;
    recency_sum += tick.recency_sum;
    result.units_downloaded += tick.units_downloaded;
    result.objects_downloaded += tick.objects_downloaded;
    result.requests += tick.requests;
    result.failed_fetches += tick.failed_fetches;
    result.retries += tick.retries;
    result.retry_successes += tick.retry_successes;
    result.degraded_serves += tick.degraded_serves;
    if (tick.objects_downloaded > 0) latency.add(tick.fetch_latency);
    // Per-request scores for the fairness metrics (post-refresh state).
    for (const auto& request : batch) {
      per_request_scores.push_back(
          station.scorer().score(station.cache().recency_or_zero(request.object),
                                 request.target_recency));
    }
  }
  if (observers.windows) observers.windows->finish();
  if (result.requests > 0) {
    result.average_score = score_sum / double(result.requests);
    result.average_recency = recency_sum / double(result.requests);
  }
  result.downlink_utilization = station.downlink().utilization();
  result.downlink_dropped = station.downlink().dropped_total();
  result.mean_fetch_latency = latency.mean();
  result.jain_fairness = core::jain_index(per_request_scores);
  result.score_p10 = core::score_quantile(per_request_scores, 0.10);
  result.min_score = core::min_score(per_request_scores);
  return result;
}

}  // namespace mobi::exp
