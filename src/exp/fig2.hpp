// Figure 2: amount of data downloaded to provide the most recent data to
// all clients, asynchronous vs on-demand, as the request rate and the skew
// in requests vary (paper §3.1).
//
// Setup: 500 objects of uniform size, all updated simultaneously every 5
// time units; cache warmed for 100 time units, then measured for 500.
// On-demand downloads an object only when it is requested and its cached
// copy is stale. The asynchronous bound is analytic: every object is
// re-downloaded on every update, independent of requests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "object/object.hpp"
#include "sim/tick.hpp"

namespace mobi::obs {
class SeriesRecorder;
}  // namespace mobi::obs

namespace mobi::exp {

enum class AccessPattern { kUniform, kRankLinear, kZipf };

const char* access_pattern_name(AccessPattern pattern) noexcept;

struct Fig2Config {
  std::size_t object_count = 500;
  object::Units object_size = 1;
  sim::Tick update_period = 5;
  sim::Tick warmup_ticks = 100;
  sim::Tick measure_ticks = 500;
  double zipf_alpha = 1.0;
  std::uint64_t seed = 42;
  /// Request rates (requests per time unit) to sweep.
  std::vector<std::size_t> request_rates = {0,  25,  50,  75,  100, 150, 200,
                                            250, 300, 350, 400, 450, 500};
};

struct Fig2Point {
  std::size_t request_rate = 0;
  object::Units on_demand_downloaded = 0;  // units, measure window only
};

struct Fig2Curve {
  AccessPattern pattern = AccessPattern::kUniform;
  std::vector<Fig2Point> points;
};

struct Fig2Result {
  Fig2Config config;
  /// Units the asynchronous strategy downloads in the measure window
  /// (independent of requests): objects * (measure/period) * size.
  object::Units async_downloaded = 0;
  std::vector<Fig2Curve> curves;  // one per access pattern
};

/// Runs one simulation: returns units downloaded by the on-demand
/// stale-only policy during the measure window.
object::Units run_fig2_once(const Fig2Config& config, AccessPattern pattern,
                            std::size_t request_rate);

/// Same single simulation with per-tick metrics snapshotted into
/// `recorder` (base station + cache + downlink + servers); nullptr is
/// identical to the plain overload.
object::Units run_fig2_once(const Fig2Config& config, AccessPattern pattern,
                            std::size_t request_rate,
                            obs::SeriesRecorder* recorder);

/// Full sweep over request rates and the three access patterns.
Fig2Result run_fig2(const Fig2Config& config);

/// Same sweep with every (pattern, rate) simulation dispatched onto the
/// process-wide thread pool. Each point is an independent simulation with
/// its own seed-derived RNG, so results are identical to run_fig2.
Fig2Result run_fig2_parallel(const Fig2Config& config);

}  // namespace mobi::exp
