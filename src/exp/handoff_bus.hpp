// HandoffBus: the deterministic mailbox that carries client state between
// cells when the mobility model reports a boundary crossing.
//
// Shards of a multi-cell run are share-nothing while cells tick in
// parallel; mobility is the first cross-shard interaction (the PR 7
// coherence directory coordinates caches, never clients). The bus keeps
// the determinism contract by construction: crossings are posted and
// drained only at the single-threaded per-tick barrier between parallel
// cell steps, records are delivered strictly in post order — a client
// hopping through two cells in one tick (trace mode) must leave the
// first before it can leave the second — and the whole structure is
// routing-plus-accounting: it draws no RNG.
//
// A record migrates the client's *identity* between cell rosters; the
// client object itself (cache, invalidation listener, counters) is owned
// by the fleet and never moves in memory, so the "migrated cache units"
// ride along as accounting, not as a copy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "object/object.hpp"

namespace mobi::obs {
class MetricsRegistry;
class Counter;
}  // namespace mobi::obs

namespace mobi::exp {

struct HandoffRecord {
  std::uint32_t client = 0;  // global client id
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  object::Units cache_units = 0;  // client-cache payload riding along
};

class HandoffBus {
 public:
  explicit HandoffBus(std::size_t cell_count);

  /// Pre-sizes the queue so steady-state post() never allocates.
  void reserve(std::size_t capacity);

  /// Enqueues a record (cells range-checked). Barrier-thread only.
  void post(const HandoffRecord& record);

  /// Delivers every pending record in post order, then clears the queue
  /// (capacity retained). `apply` performs the roster/state migration;
  /// the bus only routes and counts.
  template <typename Apply>
  void drain(Apply&& apply) {
    for (const HandoffRecord& record : queue_) {
      apply(record);
      ++delivered_;
      migrated_units_ += std::uint64_t(record.cache_units);
    }
    queue_.clear();
    publish();
  }

  std::size_t cell_count() const noexcept { return cell_count_; }
  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t posted() const noexcept { return posted_; }
  std::uint64_t delivered() const noexcept { return delivered_; }
  std::uint64_t migrated_units() const noexcept { return migrated_units_; }

  /// Exports `<prefix>.posted` / `.delivered` / `.migrated_units`
  /// counters (default prefix "mobility"), kept current after every
  /// drain. nullptr detaches. Observation only.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "mobility");

 private:
  void publish() noexcept;

  std::size_t cell_count_;
  std::vector<HandoffRecord> queue_;
  std::uint64_t posted_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t migrated_units_ = 0;

  obs::Counter* posted_counter_ = nullptr;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* units_counter_ = nullptr;
  std::uint64_t published_posted_ = 0;
  std::uint64_t published_delivered_ = 0;
  std::uint64_t published_units_ = 0;
};

}  // namespace mobi::exp
