#include "exp/solution_space.hpp"

#include <stdexcept>

#include "object/builders.hpp"
#include "util/rng.hpp"

namespace mobi::exp {

SolutionSpaceInstance build_instance(const SolutionSpaceConfig& config) {
  if (config.object_count == 0) {
    throw std::invalid_argument("build_instance: no objects");
  }
  if (!(config.recency_lo > 0.0) || config.recency_hi > 1.0 ||
      config.recency_lo > config.recency_hi) {
    throw std::invalid_argument("build_instance: bad recency range");
  }
  util::Rng rng(config.seed);
  const std::size_t n = config.object_count;

  // Object sizes: U[size_lo, size_hi] adjusted to the exact total.
  object::Catalog catalog = object::make_random_catalog_with_total(
      n, config.size_lo, config.size_hi, config.total_size, rng);
  std::vector<double> size_keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    size_keys[i] = double(catalog.object_size(object::ObjectId(i)));
  }

  // NumRequests: constant, or U[req_lo, req_hi] adjusted to total clients,
  // then rank-coupled to size per the configured correlation.
  std::vector<std::uint32_t> num_requests(n);
  if (config.constant_requests) {
    for (auto& r : num_requests) r = config.requests_constant;
  } else {
    const auto sampled = object::random_units_with_total(
        n, config.req_lo, config.req_hi, config.total_requests, rng);
    std::vector<double> as_double(sampled.begin(), sampled.end());
    const auto coupled = object::correlate(size_keys, std::move(as_double),
                                           config.size_vs_requests, rng);
    for (std::size_t i = 0; i < n; ++i) {
      num_requests[i] = std::uint32_t(coupled[i]);
    }
  }

  // Cache Recency Score: U[recency_lo, recency_hi], rank-coupled to size.
  std::vector<double> recency(n);
  for (auto& x : recency) x = rng.uniform(config.recency_lo, config.recency_hi);
  recency =
      object::correlate(size_keys, std::move(recency), config.size_vs_recency,
                        rng);

  SolutionSpaceInstance instance{config, std::move(catalog),
                                 std::move(num_requests), std::move(recency),
                                 {}};
  instance.candidates = core::build_candidates_from_aggregates(
      instance.catalog.sizes(), instance.num_requests, instance.cache_recency);
  return instance;
}

namespace {

core::KnapsackProfile build_profile(const SolutionSpaceInstance& inst,
                                    object::Units max_budget) {
  std::vector<core::KnapsackItem> items;
  items.reserve(inst.candidates.candidates.size());
  for (const auto& cand : inst.candidates.candidates) {
    items.push_back(core::KnapsackItem{cand.size, cand.profit});
  }
  return core::KnapsackProfile(items, max_budget);
}

double score_from_profile(const SolutionSpaceInstance& inst,
                          const core::KnapsackProfile& profile,
                          object::Units budget) {
  const auto& set = inst.candidates;
  if (set.total_requests == 0) return 1.0;
  return (set.baseline_score_sum + profile.value_at(budget)) /
         double(set.total_requests);
}

}  // namespace

std::vector<CurvePoint> average_score_curve(const SolutionSpaceInstance& inst,
                                            object::Units step) {
  if (step <= 0) throw std::invalid_argument("average_score_curve: step <= 0");
  const object::Units max_budget = inst.catalog.total_size();
  const core::KnapsackProfile profile = build_profile(inst, max_budget);
  std::vector<CurvePoint> curve;
  for (object::Units budget = 0;; budget += step) {
    if (budget > max_budget) budget = max_budget;
    curve.push_back(CurvePoint{budget, score_from_profile(inst, profile, budget)});
    if (budget == max_budget) break;
  }
  return curve;
}

double average_score_at(const SolutionSpaceInstance& inst,
                        object::Units budget) {
  const core::KnapsackProfile profile = build_profile(inst, budget);
  return score_from_profile(inst, profile, budget);
}

object::Units budget_reaching_score(const SolutionSpaceInstance& inst,
                                    double target, object::Units step) {
  if (step <= 0) throw std::invalid_argument("budget_reaching_score: step <= 0");
  const object::Units max_budget = inst.catalog.total_size();
  const core::KnapsackProfile profile = build_profile(inst, max_budget);
  for (object::Units budget = 0; budget <= max_budget; budget += step) {
    if (score_from_profile(inst, profile, budget) >= target) return budget;
  }
  return max_budget;
}

}  // namespace mobi::exp
