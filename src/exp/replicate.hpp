// Multi-seed replication: run an experiment across independent seeds and
// report mean / stddev / a normal-approximation 95% confidence halfwidth.
// The paper reports single-run curves; replication quantifies how much of
// each curve is signal.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace mobi::exp {

struct Replication {
  std::size_t runs = 0;
  double mean = 0.0;
  double stddev = 0.0;
  /// 1.96 * stddev / sqrt(runs); 0 for fewer than two runs.
  double ci95_halfwidth = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Replication summarize(const util::Summary& summary);

/// Runs `metric(seed)` once per seed, serially.
Replication replicate(const std::function<double(std::uint64_t)>& metric,
                      const std::vector<std::uint64_t>& seeds);

/// Same, dispatched onto the process-wide thread pool. `metric` must be
/// safe to call concurrently (each call self-contained — the norm for
/// this library's experiment runners). Values are collected into a
/// seed-indexed buffer and reduced in seed order, so the result is
/// bit-identical to serial `replicate` whatever the scheduling.
Replication replicate_parallel(
    const std::function<double(std::uint64_t)>& metric,
    const std::vector<std::uint64_t>& seeds);

/// Same, on a caller-provided pool (the determinism suite sweeps pool
/// sizes with this).
Replication replicate_parallel(
    const std::function<double(std::uint64_t)>& metric,
    const std::vector<std::uint64_t>& seeds, util::ThreadPool& pool);

/// seeds {base, base+1, ..., base+count-1} — convenient default ladder.
std::vector<std::uint64_t> seed_ladder(std::uint64_t base, std::size_t count);

}  // namespace mobi::exp
