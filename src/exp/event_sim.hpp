// Continuous-time experiment: Poisson arrivals on the event kernel.
//
// The paper's tick model serves each time unit's requests instantly at
// the tick boundary. In continuous time, requests arrive as a Poisson
// process and the base station *batches* them: every `batching_window`
// time units it runs its download policy over the accumulated batch and
// answers everyone. Updates arrive as independent per-object Poisson
// processes. The new trade-off this exposes: a longer window aggregates
// more requests per knapsack run (better budget use, higher scores per
// downloaded unit) but every request waits longer for service.
#pragma once

#include <cstdint>
#include <string>

#include "object/object.hpp"

namespace mobi::exp {

struct EventSimConfig {
  std::size_t object_count = 200;
  object::Units size_lo = 1;
  object::Units size_hi = 6;
  /// Poisson request arrival rate (requests per time unit).
  double request_rate = 60.0;
  /// Per-object Poisson update rate (updates per time unit per object).
  double update_rate = 0.05;
  /// Base station service period (time units between batch runs).
  double batching_window = 1.0;
  /// Download budget per batch run, in units.
  object::Units budget_per_batch = 40;
  /// Fixed-network bandwidth for fetches, units per time unit; fetched
  /// objects land in the cache only when their transfer completes over a
  /// processor-sharing link. 0 = instantaneous fetches (the tick model's
  /// assumption).
  double fetch_bandwidth = 0.0;
  std::string policy = "on-demand-knapsack";
  double horizon = 200.0;  // total simulated time
  double warmup = 40.0;    // measurement starts here
  double zipf_alpha = 1.0;
  std::uint64_t seed = 42;
};

struct EventSimResult {
  std::size_t requests = 0;
  double average_score = 0.0;
  /// Mean time a request waits from arrival to its batch being served.
  double mean_service_delay = 0.0;
  double max_service_delay = 0.0;
  object::Units units_downloaded = 0;
  std::uint64_t batches = 0;
  std::uint64_t updates = 0;
  /// Mean fetch completion time (only when fetch_bandwidth > 0).
  double mean_fetch_time = 0.0;
};

EventSimResult run_event_sim(const EventSimConfig& config);

}  // namespace mobi::exp
