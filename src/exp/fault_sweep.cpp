#include "exp/fault_sweep.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobi::exp {

sim::FaultPlan fault_plan_at(const FaultSweepConfig& config, double rate) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("fault_plan_at: rate must be in [0, 1]");
  }
  sim::FaultPlan plan;
  plan.fetch_failure_rate = rate;
  plan.fetch_slowdown_rate = std::min(1.0, rate * config.slowdown_scale);
  plan.downlink_drop_rate = std::min(1.0, rate * config.drop_scale);
  plan.server_outage_rate = std::min(1.0, rate * config.outage_scale);
  return plan;
}

FaultSweepResult run_fault_sweep(const FaultSweepConfig& config) {
  return run_fault_sweep(config, nullptr);
}

FaultSweepResult run_fault_sweep(const FaultSweepConfig& config,
                                 obs::SeriesRecorder* recorder) {
  FaultSweepResult result;
  result.points.reserve(config.fault_rates.size());
  for (std::size_t i = 0; i < config.fault_rates.size(); ++i) {
    const double rate = config.fault_rates[i];
    const bool record = recorder && i + 1 == config.fault_rates.size();
    FaultSweepPoint point;
    point.fault_rate = rate;
    PolicySimConfig sim = config.base;
    sim.faults = fault_plan_at(config, rate);
    sim.policy = config.on_demand_policy;
    point.on_demand = run_policy_sim(sim, record ? recorder : nullptr);
    sim.policy = config.async_policy;
    point.async_baseline = run_policy_sim(sim);
    result.points.push_back(point);
  }
  return result;
}

}  // namespace mobi::exp
