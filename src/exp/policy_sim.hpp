// A general policy-comparison simulation: one base station, a configurable
// workload, any DownloadPolicy/RecencyScorer by name. Used by the ablation
// benches (scorer choice, solver choice, policy head-to-heads) and by the
// integration tests; also the easiest entry point for library users who
// want "run my policy on this workload and tell me how it did".
#pragma once

#include <cstdint>
#include <string>

#include "exp/fig2.hpp"
#include "object/object.hpp"
#include "sim/fault_plan.hpp"
#include "sim/tick.hpp"
#include "workload/requests.hpp"

namespace mobi::obs {
class SeriesRecorder;
class RequestTracer;
class WindowAggregator;
class PhaseProfiler;
}  // namespace mobi::obs

namespace mobi::exp {

struct PolicySimConfig {
  std::size_t object_count = 200;
  object::Units size_lo = 1;
  object::Units size_hi = 10;
  std::size_t requests_per_tick = 50;
  AccessPattern access = AccessPattern::kZipf;
  double zipf_alpha = 1.0;
  sim::Tick update_period = 5;
  bool staggered_updates = false;
  sim::Tick warmup_ticks = 50;
  sim::Tick measure_ticks = 200;
  object::Units budget = 100;  // per tick; negative = unlimited
  std::string policy = "on-demand-knapsack";
  std::string scorer = "reciprocal";
  workload::TargetDistribution targets = workload::UniformTarget{0.5, 1.0};
  double decay_c = 1.0;
  std::uint64_t seed = 42;
  /// Servers behind the fixed network; > 1 makes per-server outage
  /// faults partial rather than total.
  std::size_t server_count = 1;
  /// Retry budget handed to the base station (0 = seed behavior).
  std::size_t fetch_retry_limit = 0;
  /// Fault schedule; the default (empty) plan attaches no injector and
  /// is bit-identical to the fault-free code path. A nonzero plan is
  /// reseeded with `seed` mixed in, so sweeps over seeds get
  /// independent fault streams.
  sim::FaultPlan faults;
};

struct PolicySimResult {
  double average_score = 0.0;     // mean per-client recency score (scored)
  double average_recency = 0.0;   // mean raw recency of copies served
  object::Units units_downloaded = 0;  // measure window
  std::size_t objects_downloaded = 0;
  double downlink_utilization = 0.0;
  double mean_fetch_latency = 0.0;
  std::size_t requests = 0;
  /// Distribution of per-request scores (averages can hide starvation).
  double jain_fairness = 1.0;   // 1 = perfectly equal
  double score_p10 = 1.0;       // 10th percentile per-request score
  double min_score = 1.0;
  /// Resilience accounting over the measure window (all zero when
  /// PolicySimConfig::faults is empty).
  std::size_t failed_fetches = 0;
  std::size_t retries = 0;
  std::size_t retry_successes = 0;
  std::size_t degraded_serves = 0;
  object::Units downlink_dropped = 0;
};

PolicySimResult run_policy_sim(const PolicySimConfig& config);

/// Same simulation with per-tick observability: the base station, its
/// cache/downlink, and the server pool register their metrics in
/// `recorder`'s registry and the recorder snapshots them once per tick
/// (warmup included — series carry the tick index, so consumers can crop).
/// Passing nullptr is identical to the plain overload. Instrumentation is
/// read-only; results are bit-identical either way (the determinism suite
/// enforces this).
PolicySimResult run_policy_sim(const PolicySimConfig& config,
                               obs::SeriesRecorder* recorder);

/// Adds request-lifecycle tracing on top of the recorder overload: the
/// tracer is attached to the base station (and through it the downlink
/// and fixed network) for the whole run. The caller owns the tracer and
/// decides whether to register its `lat.*` histograms in a registry —
/// this function does not, so one tracer can be reused across runs.
/// Either pointer may be null; both null is the plain overload.
PolicySimResult run_policy_sim(const PolicySimConfig& config,
                               obs::SeriesRecorder* recorder,
                               obs::RequestTracer* tracer);

/// The full observability hookup for one simulation run. Everything is
/// optional and observation-only: any combination of hooks produces
/// results bit-identical to the bare run.
struct SimObservers {
  obs::SeriesRecorder* recorder = nullptr;
  obs::RequestTracer* tracer = nullptr;
  /// Windowed aggregation: begin() is called after every component has
  /// registered its metrics (so the column set is complete), on_tick()
  /// after each tick's sample, finish() after the last tick. Requires
  /// `recorder` (the aggregator reads the recorder's registry; throws
  /// std::invalid_argument without one).
  obs::WindowAggregator* windows = nullptr;
  /// Phase profiling: attached to the station; each tick runs under a
  /// root `sim.tick` span with a `sim.updates` child around the update
  /// process and the station's `bs.*` phases nested inside.
  obs::PhaseProfiler* profiler = nullptr;
};

PolicySimResult run_policy_sim(const PolicySimConfig& config,
                               const SimObservers& observers);

}  // namespace mobi::exp
