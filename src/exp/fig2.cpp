#include "exp/fig2.hpp"

#include "util/thread_pool.hpp"

#include <memory>

#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "core/policy.hpp"
#include "core/scoring.hpp"
#include "object/builders.hpp"
#include "obs/recorder.hpp"
#include "server/remote_server.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/requests.hpp"
#include "workload/updates.hpp"

namespace mobi::exp {

const char* access_pattern_name(AccessPattern pattern) noexcept {
  switch (pattern) {
    case AccessPattern::kUniform: return "uniform";
    case AccessPattern::kRankLinear: return "rank-linear";
    case AccessPattern::kZipf: return "zipf";
  }
  return "?";
}

namespace {

std::shared_ptr<const workload::AccessDistribution> make_access(
    AccessPattern pattern, std::size_t n, double zipf_alpha) {
  switch (pattern) {
    case AccessPattern::kUniform: return workload::make_uniform_access(n);
    case AccessPattern::kRankLinear: return workload::make_rank_linear_access(n);
    case AccessPattern::kZipf: return workload::make_zipf_access(n, zipf_alpha);
  }
  throw std::invalid_argument("make_access: bad pattern");
}

}  // namespace

object::Units run_fig2_once(const Fig2Config& config, AccessPattern pattern,
                            std::size_t request_rate) {
  return run_fig2_once(config, pattern, request_rate, nullptr);
}

object::Units run_fig2_once(const Fig2Config& config, AccessPattern pattern,
                            std::size_t request_rate,
                            obs::SeriesRecorder* recorder) {
  const object::Catalog catalog =
      object::make_uniform_catalog(config.object_count, config.object_size);
  server::ServerPool servers(catalog, 1);
  core::BaseStationConfig bs_config;
  bs_config.download_budget = -1;  // Fig 2 imposes no download limit
  bs_config.downlink_capacity =
      object::Units(std::max<std::size_t>(1, request_rate)) *
      config.object_size;
  core::BaseStation station(
      catalog, servers, cache::make_harmonic_decay(),
      std::make_unique<core::ReciprocalScorer>(),
      std::make_unique<core::OnDemandStaleOnlyPolicy>(), bs_config);
  if (recorder) {
    station.set_metrics(&recorder->registry());
    servers.set_metrics(&recorder->registry());
  }

  auto updates = workload::make_periodic_synchronized(config.object_count,
                                                      config.update_period);
  util::Rng rng(config.seed ^ (std::uint64_t(request_rate) << 20) ^
                std::uint64_t(pattern));
  workload::RequestGenerator generator(
      make_access(pattern, config.object_count, config.zipf_alpha),
      workload::ConstantTarget{1.0}, request_rate, rng.split());

  object::Units measured = 0;
  const sim::Tick total = config.warmup_ticks + config.measure_ticks;
  for (sim::Tick t = 0; t < total; ++t) {
    station.apply_updates(*updates, t);
    const auto result = station.process_batch(generator.next_batch(), t);
    if (recorder) recorder->sample(t);
    if (t >= config.warmup_ticks) measured += result.units_downloaded;
  }
  return measured;
}

Fig2Result run_fig2_parallel(const Fig2Config& config) {
  Fig2Result result;
  result.config = config;
  result.async_downloaded = object::Units(config.object_count) *
                            config.object_size *
                            (config.measure_ticks / config.update_period);
  const AccessPattern patterns[] = {AccessPattern::kUniform,
                                    AccessPattern::kRankLinear,
                                    AccessPattern::kZipf};
  const std::size_t rates = config.request_rates.size();
  for (AccessPattern pattern : patterns) {
    Fig2Curve curve;
    curve.pattern = pattern;
    curve.points.resize(rates);
    result.curves.push_back(std::move(curve));
  }
  util::parallel_for(0, 3 * rates, [&](std::size_t index) {
    const std::size_t p = index / rates;
    const std::size_t r = index % rates;
    const std::size_t rate = config.request_rates[r];
    result.curves[p].points[r] =
        Fig2Point{rate, run_fig2_once(config, patterns[p], rate)};
  });
  return result;
}

Fig2Result run_fig2(const Fig2Config& config) {
  Fig2Result result;
  result.config = config;
  result.async_downloaded = object::Units(config.object_count) *
                            config.object_size *
                            (config.measure_ticks / config.update_period);
  for (AccessPattern pattern : {AccessPattern::kUniform,
                                AccessPattern::kRankLinear,
                                AccessPattern::kZipf}) {
    Fig2Curve curve;
    curve.pattern = pattern;
    curve.points.reserve(config.request_rates.size());
    for (std::size_t rate : config.request_rates) {
      curve.points.push_back(
          Fig2Point{rate, run_fig2_once(config, pattern, rate)});
    }
    result.curves.push_back(std::move(curve));
  }
  return result;
}

}  // namespace mobi::exp
