// Ablation helpers: knapsack solver quality/latency comparison and bound-
// estimator evaluation on solution-space instances.
#pragma once

#include <string>
#include <vector>

#include "core/bound_estimator.hpp"
#include "core/knapsack.hpp"
#include "exp/solution_space.hpp"

namespace mobi::exp {

struct SolverRow {
  std::string solver;
  object::Units budget = 0;
  double value = 0.0;
  double ratio_to_optimal = 1.0;
  double micros = 0.0;
};

/// Runs DP, greedy and FPTAS at each budget; ratio is against the DP
/// optimum at the same budget.
std::vector<SolverRow> compare_solvers(
    std::span<const core::KnapsackItem> items,
    const std::vector<object::Units>& budgets, double fptas_epsilon = 0.1);

struct BoundRow {
  std::string estimator;
  object::Units recommended = 0;
  double fraction_of_max_value = 0.0;
  double fraction_of_capacity = 0.0;
};

/// Evaluates both §6 bound estimators (plus the 90%/95% oracles) on a
/// solution-space instance.
std::vector<BoundRow> evaluate_bound_estimators(
    const SolutionSpaceInstance& instance);

}  // namespace mobi::exp
