#include "exp/replicate.hpp"

#include <cmath>
#include <stdexcept>

namespace mobi::exp {

Replication summarize(const util::Summary& summary) {
  Replication result;
  result.runs = summary.count();
  result.mean = summary.mean();
  result.stddev = summary.stddev();
  result.min = summary.min();
  result.max = summary.max();
  if (summary.count() >= 2) {
    result.ci95_halfwidth =
        1.96 * summary.stddev() / std::sqrt(double(summary.count()));
  }
  return result;
}

Replication replicate(const std::function<double(std::uint64_t)>& metric,
                      const std::vector<std::uint64_t>& seeds) {
  if (!metric) throw std::invalid_argument("replicate: null metric");
  util::Summary summary;
  for (std::uint64_t seed : seeds) summary.add(metric(seed));
  return summarize(summary);
}

Replication replicate_parallel(
    const std::function<double(std::uint64_t)>& metric,
    const std::vector<std::uint64_t>& seeds) {
  if (!metric) throw std::invalid_argument("replicate_parallel: null metric");
  std::vector<double> values(seeds.size());
  util::parallel_for(0, seeds.size(), [&](std::size_t i) {
    values[i] = metric(seeds[i]);
  });
  util::Summary summary;
  for (double v : values) summary.add(v);
  return summarize(summary);
}

Replication replicate_parallel(
    const std::function<double(std::uint64_t)>& metric,
    const std::vector<std::uint64_t>& seeds, util::ThreadPool& pool) {
  if (!metric) throw std::invalid_argument("replicate_parallel: null metric");
  std::vector<double> values(seeds.size());
  util::parallel_for(pool, 0, seeds.size(), [&](std::size_t i) {
    values[i] = metric(seeds[i]);
  });
  util::Summary summary;
  for (double v : values) summary.add(v);
  return summarize(summary);
}

std::vector<std::uint64_t> seed_ladder(std::uint64_t base, std::size_t count) {
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t i = 0; i < count; ++i) seeds[i] = base + i;
  return seeds;
}

}  // namespace mobi::exp
