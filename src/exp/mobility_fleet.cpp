#include "exp/mobility_fleet.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "cache/decay.hpp"
#include "obs/event_log.hpp"
#include "obs/profiler.hpp"
#include "object/builders.hpp"

namespace mobi::exp {

namespace {

std::shared_ptr<const workload::AccessDistribution> make_access(
    const client::CellConfig& config) {
  switch (config.access) {
    case AccessPattern::kUniform:
      return workload::make_uniform_access(config.object_count);
    case AccessPattern::kRankLinear:
      return workload::make_rank_linear_access(config.object_count);
    case AccessPattern::kZipf:
      return workload::make_zipf_access(config.object_count,
                                        config.zipf_alpha);
  }
  throw std::invalid_argument("MobilityFleet: unknown access pattern");
}

}  // namespace

MobilityFleet::CellState::CellState(const object::Catalog& catalog,
                                    const MultiCellConfig& config,
                                    std::uint64_t cell_seed,
                                    std::size_t initial_clients)
    : servers(catalog, config.cell.server_count),
      station(catalog, servers, cache::make_harmonic_decay(),
              std::make_unique<core::ReciprocalScorer>(),
              core::make_policy(config.cell.base_policy),
              [&] {
                core::BaseStationConfig bs_config;
                bs_config.download_budget = config.cell.base_budget;
                bs_config.downlink_capacity = std::max<object::Units>(
                    1, object::Units(initial_clients) * config.cell.size_hi);
                bs_config.fetch_retry_limit = config.cell.fetch_retry_limit;
                return bs_config;
              }()),
      log(config.cell.object_count),
      updates(workload::make_periodic_staggered(config.cell.object_count,
                                                config.cell.update_period)) {
  // Same stream discipline as client::run_cell: the cell's root stream
  // spawns connectivity then requests. The catalog draw that run_cell
  // takes from the root stream happens once, fleet-wide, from the master
  // seed instead — per-cell catalogs cannot host migrating clients.
  util::Rng rng(cell_seed);
  connectivity_rng = rng.split();
  request_rng = rng.split();
  if (!config.cell.faults.empty()) {
    sim::FaultPlan plan = config.cell.faults;
    plan.seed = util::SplitMix64(plan.seed ^ cell_seed).next();
    injector.emplace(plan, servers.server_count());
    station.set_fault_injector(&*injector);
    servers.set_fault_injector(&*injector);
  }
}

MobilityFleet::MobilityFleet(const MultiCellConfig& config)
    : config_(config),
      catalog_([&] {
        util::Rng catalog_rng(config.seed);
        return object::make_random_catalog(config.cell.object_count,
                                           config.cell.size_lo,
                                           config.cell.size_hi, catalog_rng);
      }()) {
  if (config_.topology != CellTopology::kSharded) {
    throw std::invalid_argument("MobilityFleet: sharded topology only");
  }
  if (config_.mobility.empty()) {
    throw std::invalid_argument("MobilityFleet: mobility config is off");
  }
  config_.mobility.validate();
  if (config_.cell_count == 0) {
    throw std::invalid_argument("MobilityFleet: need >= 1 cell");
  }
  if (config_.mobility_delivery_ticks < 0) {
    throw std::invalid_argument("MobilityFleet: negative delivery latency");
  }
  if (!config_.cell_client_counts.empty() &&
      config_.cell_client_counts.size() != config_.cell_count) {
    throw std::invalid_argument(
        "MobilityFleet: cell_client_counts size != cell_count");
  }
  // Different master seeds must yield independent trajectories even when
  // the caller leaves mobility.seed at its default.
  config_.mobility.seed =
      util::SplitMix64(config_.mobility.seed ^ config_.seed).next();

  std::vector<std::size_t> counts(config_.cell_count,
                                  config_.cell.client_count);
  if (!config_.cell_client_counts.empty()) counts = config_.cell_client_counts;
  std::size_t total = 0;
  for (std::size_t count : counts) total += count;

  access_ = make_access(config_.cell);
  ticks_ = config_.cell.ticks;

  // Global ids in cell-major order; the client vector is reserved once
  // and never reallocates (each client's invalidation listener holds the
  // address of its own cache).
  clients_.reserve(total);
  std::vector<std::uint32_t> home;
  home.reserve(total);
  cells_.reserve(config_.cell_count);
  for (std::size_t i = 0; i < config_.cell_count; ++i) {
    auto cell = std::make_unique<CellState>(catalog_, config_,
                                            shard_seed(config_.seed, i),
                                            counts[i]);
    cell->roster.reserve(total);
    cell->batch.reserve(total);
    cell->requester.reserve(total);
    cell->in_flight.reserve(total *
                            std::size_t(config_.mobility_delivery_ticks + 1));
    cell->report.items.reserve(config_.cell.object_count);
    for (std::size_t j = 0; j < counts[i]; ++j) {
      const std::uint32_t id = std::uint32_t(clients_.size());
      clients_.emplace_back(id, catalog_, config_.cell.client);
      cell->roster.push_back(id);
      home.push_back(std::uint32_t(i));
    }
    cells_.push_back(std::move(cell));
  }
  seen_sleeper_drops_.assign(total, 0);
  seen_handoffs_.assign(total, 0);

  model_.emplace(config_.mobility, config_.cell_count, home);
  if (config_.mobility_predictive) {
    predictor_.emplace(*model_, config_.mobility_horizon);
    probe_.emplace(*predictor_);
    for (auto& cell : cells_) cell->station.set_residency_probe(&*probe_);
  }
  bus_.emplace(config_.cell_count);
  bus_->reserve(total);
  crossings_.reserve(total);
  rows_.reserve(std::size_t(ticks_));
}

void MobilityFleet::set_tracer(std::size_t cell, obs::RequestTracer* tracer) {
  cells_.at(cell)->tracer = tracer;
  cells_.at(cell)->station.set_request_tracer(tracer);
}

void MobilityFleet::attach_series(std::size_t cell,
                                  client::CellSeries* series) {
  cells_.at(cell)->series = series;
}

void MobilityFleet::run_cell_tick(CellState& cell, sim::Tick t) {
  // The client::run_cell tick body, reshaped for a roster of global ids.
  if (cell.injector) cell.injector->begin_tick(t);

  cell.updates->for_each_updated(t, [&](object::ObjectId id) {
    cell.station.on_server_update(id, t);
    cell.log.record_update(id, t);
  });

  if (t > 0 && t % config_.cell.report_period == 0) {
    cell.log.make_report_into(t - config_.cell.report_period, t, cell.report);
    for (std::uint32_t id : cell.roster) {
      client::MobileClient& mobile = clients_[id];
      if (mobile.connected()) mobile.hear_report(cell.report);
    }
    // Entries older than the window just broadcast can never appear in a
    // report again; dropping them keeps the log's footprint flat over
    // arbitrarily long runs (run_cell keeps the whole log — same
    // reports either way).
    cell.log.prune(t - config_.cell.report_period);
  }

  // Payloads land before clients act, so a copy that arrives this tick
  // can serve this tick's request locally.
  if (config_.mobility_delivery_ticks > 0) land_deliveries(cell, t);

  cell.batch.clear();
  cell.requester.clear();
  for (std::uint32_t id : cell.roster) {
    client::MobileClient& mobile = clients_[id];
    // Counters travel with the client; attribute the delta since the
    // last sighting to the cell it is resident in now, so each cell's
    // cumulative series stays monotone across migrations.
    const std::uint64_t drops = mobile.sleeper_drops();
    cell.result.sleeper_drops += drops - seen_sleeper_drops_[id];
    seen_sleeper_drops_[id] = drops;
    const std::uint64_t handoffs = mobile.handoff_count();
    cell.result.handoffs += handoffs - seen_handoffs_[id];
    seen_handoffs_[id] = handoffs;

    if (cell.injector && mobile.connected() && cell.injector->draw_handoff()) {
      mobile.begin_handoff(config_.cell.faults.handoff_ticks);
    }
    mobile.step_connectivity(cell.connectivity_rng);
    if (!mobile.connected()) {
      ++cell.result.disconnect_ticks;
      continue;
    }
    const object::ObjectId want = access_->sample(cell.request_rng);
    ++cell.result.requests;
    const auto local = mobile.lookup(want, t);
    if (local && *local >= mobile.target_recency()) {
      ++cell.result.served_locally;
      cell.result.score_sum += 1.0;  // local copy meets the client's target
      continue;
    }
    cell.batch.push_back(workload::Request{want, mobile.target_recency(),
                                           workload::ClientId(mobile.id())});
    cell.requester.push_back(id);
  }

  const bool instant = config_.mobility_delivery_ticks <= 0;
  const auto tick_result = cell.station.process_batch(cell.batch, t);
  cell.result.base_downloaded += tick_result.units_downloaded;
  cell.result.served_by_base += cell.batch.size();
  // With delivery latency, base-path serve scores are credited when the
  // payload lands on the client (land_deliveries), not when the station
  // decides — a serve the client never receives scores nothing.
  if (instant) cell.result.score_sum += tick_result.score_sum;
  cell.result.failed_fetches += tick_result.failed_fetches;
  cell.result.retries += tick_result.retries;
  cell.result.retry_successes += tick_result.retry_successes;
  cell.result.degraded_serves += tick_result.degraded_serves;

  for (std::size_t r = 0; r < cell.batch.size(); ++r) {
    const auto& request = cell.batch[r];
    const auto recency = cell.station.cache().recency(request.object);
    if (!recency) continue;  // base had nothing either (cache-only policy)
    if (instant) {
      clients_[cell.requester[r]].store(request.object,
                                        cell.servers.fetch(request.object), t,
                                        *recency);
    } else {
      Delivery delivery;
      delivery.client = cell.requester[r];
      delivery.object = request.object;
      delivery.recency = *recency;
      delivery.land = t + config_.mobility_delivery_ticks;
      cell.in_flight.push_back(delivery);
    }
  }

  cell.result.downlink_dropped = cell.station.downlink().dropped_total();
  if (cell.series) cell.series->push_back(cell.result);
}

void MobilityFleet::land_deliveries(CellState& cell, sim::Tick t) {
  std::size_t keep = 0;
  for (std::size_t i = 0; i < cell.in_flight.size(); ++i) {
    const Delivery delivery = cell.in_flight[i];
    if (delivery.land > t) {
      cell.in_flight[keep++] = delivery;
      continue;
    }
    // The payload lands only if its client is still in this cell and on
    // the air; a migrant or sleeper simply loses it — the units were
    // spent either way, which is exactly the waste the residency-
    // weighted knapsack trades against.
    client::MobileClient& mobile = clients_[delivery.client];
    const bool resident = std::binary_search(cell.roster.begin(),
                                             cell.roster.end(),
                                             delivery.client);
    if (!resident || !mobile.connected()) {
      ++cell.lost_deliveries;
      continue;
    }
    mobile.store(delivery.object, cell.servers.fetch(delivery.object), t,
                 delivery.recency);
    cell.result.score_sum +=
        landing_scorer_.score(delivery.recency, mobile.target_recency());
    ++cell.delivered_payloads;
  }
  cell.in_flight.resize(keep);
}

void MobilityFleet::set_profiler(obs::PhaseProfiler* profiler) {
  profiler_ = profiler;
  if (profiler_ != nullptr) {
    cells_phase_ = profiler_->phase("fleet.cells");
    barrier_phase_ = profiler_->phase("fleet.barrier");
  }
}

void MobilityFleet::barrier(sim::Tick t) {
  model_->step(t, crossings_);
  for (const sim::Crossing& crossing : crossings_) {
    HandoffRecord record;
    record.client = crossing.client;
    record.from = crossing.from;
    record.to = crossing.to;
    record.cache_units = clients_[crossing.client].local_cache().used();
    bus_->post(record);
    if (obs::RequestTracer* tracer = cells_[crossing.from]->tracer) {
      tracer->on_handoff(crossing.client, crossing.to,
                         double(record.cache_units));
    }
  }
  // Post order is delivery order: a client that hops through two cells
  // this tick leaves the first before it can leave the second.
  bus_->drain([this](const HandoffRecord& record) {
    auto& from_roster = cells_[record.from]->roster;
    const auto it = std::lower_bound(from_roster.begin(), from_roster.end(),
                                     record.client);
    if (it == from_roster.end() || *it != record.client) {
      throw std::logic_error("MobilityFleet: crossing client not resident");
    }
    from_roster.erase(it);
    auto& to_roster = cells_[record.to]->roster;
    to_roster.insert(
        std::upper_bound(to_roster.begin(), to_roster.end(), record.client),
        record.client);
    clients_[record.client].begin_handoff(config_.mobility.handoff_ticks);
  });
  stats_.crossings += crossings_.size();
  stats_.migrations = bus_->delivered();
  stats_.migrated_units = bus_->migrated_units();
  stats_.deliveries = 0;
  stats_.lost_deliveries = 0;
  for (const auto& cell : cells_) {
    stats_.deliveries += cell->delivered_payloads;
    stats_.lost_deliveries += cell->lost_deliveries;
  }
  rows_.push_back(stats_);
}

void MobilityFleet::step(util::ThreadPool* pool) {
  if (done()) throw std::logic_error("MobilityFleet: run already complete");
  const sim::Tick t = next_tick_++;
  {
    // Driver-side span: wall time covers the whole (possibly parallel)
    // region; the workers themselves never touch the profiler.
    obs::ScopedPhase span(profiler_, cells_phase_);
    span.add_cost(cells_.size());
    if (pool) {
      util::parallel_for(*pool, 0, cells_.size(),
                         [this, t](std::size_t i) {
                           run_cell_tick(*cells_[i], t);
                         });
    } else {
      for (auto& cell : cells_) run_cell_tick(*cell, t);
    }
  }
  {
    obs::ScopedPhase span(profiler_, barrier_phase_);
    barrier(t);
    span.add_cost(crossings_.size());
  }
  if (done()) {
    // Final attribution sweep: increments since each client's last
    // sighting (including handoffs granted at the last barrier) land in
    // the cell the client ends the run in.
    for (auto& cell : cells_) {
      for (std::uint32_t id : cell->roster) {
        const client::MobileClient& mobile = clients_[id];
        cell->result.sleeper_drops +=
            mobile.sleeper_drops() - seen_sleeper_drops_[id];
        seen_sleeper_drops_[id] = mobile.sleeper_drops();
        cell->result.handoffs += mobile.handoff_count() - seen_handoffs_[id];
        seen_handoffs_[id] = mobile.handoff_count();
      }
    }
  }
}

}  // namespace mobi::exp
