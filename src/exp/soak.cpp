#include "exp/soak.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include <optional>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/window.hpp"

namespace mobi::exp {

sim::FaultPlan soak_plan_at(const SoakConfig& config, std::size_t window) {
  if (window >= config.windows) {
    throw std::out_of_range("soak_plan_at: window index out of range");
  }
  const double span = config.fault_rate_hi - config.fault_rate_lo;
  const double frac = config.windows > 1
                          ? double(window) / double(config.windows - 1)
                          : 0.0;
  const double rate = config.fault_rate_lo + span * frac;
  sim::FaultPlan plan;
  plan.fetch_failure_rate = rate;
  plan.fetch_slowdown_rate = std::min(1.0, rate * config.slowdown_scale);
  plan.downlink_drop_rate = std::min(1.0, rate * config.drop_scale);
  plan.server_outage_rate = std::min(1.0, rate * config.outage_scale);
  return plan;
}

std::vector<obs::SloObjective> default_soak_slos() {
  std::vector<obs::SloObjective> slos(3);
  slos[0].name = "serve-latency";
  slos[0].column = "lat.ticks_to_serve.p99";
  slos[0].cmp = obs::SloObjective::Cmp::kLe;
  slos[0].threshold = 16.0;
  slos[1].name = "hit-rate";
  slos[1].column = "bs.hits.rate";
  slos[1].denominator = "bs.requests.rate";
  slos[1].cmp = obs::SloObjective::Cmp::kGe;
  slos[1].threshold = 0.5;
  // Any fault retry in a window breaches; with the default ramp the
  // high-rate windows breach every frame, so the fast+slow burn pair is
  // guaranteed to fire — the deterministic-alert acceptance check.
  slos[2].name = "fault-ceiling";
  slos[2].column = "bs.fault.retries.rate";
  slos[2].cmp = obs::SloObjective::Cmp::kLe;
  slos[2].threshold = 0.0;
  for (auto& slo : slos) {
    slo.fast_windows = 3;
    slo.fast_burn = 1.0;
    slo.slow_windows = 6;
    slo.slow_burn = 0.5;
  }
  return slos;
}

const std::vector<double>& SoakResult::at(const std::string& name) const {
  const auto it = series.find(name);
  if (it == series.end()) {
    throw std::out_of_range("SoakResult: no series '" + name + "'");
  }
  return it->second;
}

std::string SoakResult::to_json() const {
  std::ostringstream out;
  out << "{\"schema\":\"mobicache.soak.v1\",\"windows\":[";
  for (std::size_t w = 0; w < windows; ++w) {
    if (w) out << ',';
    out << w;
  }
  out << "],\"window_ticks\":" << window_ticks << ",\"series\":{";
  bool first = true;
  for (const auto& [name, values] : series) {
    if (!first) out << ',';
    first = false;
    out << '"' << obs::json::escape(name) << "\":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out << ',';
      out << obs::json::number(values[i]);
    }
    out << ']';
  }
  out << "}}";
  return out.str();
}

std::string SoakResult::windows_to_json() const {
  std::ostringstream out;
  out << "{\"schema\":\"mobicache.windows.v1\",\"window_ticks\":"
      << obs_window_ticks << ",\"stride_ticks\":" << obs_window_ticks
      << ",\"windows_closed\":" << window_frames
      << ",\"dropped_frames\":0,\"windows\":[";
  for (std::size_t f = 0; f < window_frames; ++f) {
    if (f) out << ',';
    out << f;
  }
  out << "],\"series\":{";
  bool first = true;
  for (const auto& [name, values] : window_series) {
    if (!first) out << ',';
    first = false;
    out << '"' << obs::json::escape(name) << "\":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out << ',';
      out << obs::json::number(values[i]);
    }
    out << ']';
  }
  out << "}}";
  return out.str();
}

namespace {

constexpr const char* kInjectedCounters[] = {
    "fault.injected.fetch_failures", "fault.injected.fetch_slowdowns",
    "fault.injected.downlink_drops", "fault.injected.server_outages",
    "fault.injected.handoffs"};

constexpr const char* kLatHistograms[] = {
    "lat.ticks_to_serve", "lat.retry_delay", "lat.queue_wait",
    "lat.served_recency_gap"};

double scalar_or_zero(const obs::MetricsRegistry& registry,
                      const std::string& name) {
  // Absent is a real state, not an error: at fault rate 0 the plan is
  // empty, no injector attaches, and fault.injected.* never registers —
  // the series must still stay rectangular across windows.
  return registry.contains(name) ? registry.scalar_value(name) : 0.0;
}

double histogram_mean(const obs::MetricsRegistry& registry,
                      const std::string& name) {
  const obs::FixedHistogram* h = registry.find_histogram(name);
  return h ? h->mean() : 0.0;
}

}  // namespace

SoakResult run_soak(const SoakConfig& config, util::ThreadPool* pool) {
  if (config.windows == 0) {
    throw std::invalid_argument("run_soak: need >= 1 window");
  }
  if (config.fault_rate_lo < 0.0 || config.fault_rate_lo > 1.0 ||
      config.fault_rate_hi < 0.0 || config.fault_rate_hi > 1.0) {
    throw std::invalid_argument("run_soak: fault rates must be in [0, 1]");
  }
  if (config.trace_sample_every == 0) {
    throw std::invalid_argument("run_soak: trace_sample_every must be >= 1");
  }

  if (config.obs_window_ticks < 0) {
    throw std::invalid_argument("run_soak: obs_window_ticks must be >= 0");
  }
  if (!config.slos.empty() && config.obs_window_ticks == 0) {
    throw std::invalid_argument(
        "run_soak: SLOs need obs_window_ticks > 0 (objectives evaluate on "
        "closed windows)");
  }

  SoakResult result;
  result.windows = config.windows;
  result.window_ticks = config.window_ticks;
  result.obs_window_ticks = config.obs_window_ticks;
  const auto push = [&result](const std::string& name, double value) {
    result.series[name].push_back(value);
  };

  // Concatenates one leg's closed frames onto the cross-leg window
  // series: columns new to this leg are zero-backfilled over the frames
  // already collected, and columns absent from this leg get zeros for
  // its frames — the document stays rectangular whatever each leg's
  // registry happened to contain.
  const auto append_frames = [&result](const obs::WindowAggregator& agg) {
    const std::size_t have = result.window_frames;
    const std::size_t frames = agg.frames();
    if (frames == 0) return;
    for (std::size_t c = 0; c < agg.column_count(); ++c) {
      result.window_series[agg.column_name(c)].resize(have, 0.0);
    }
    for (auto& [name, column] : result.window_series) {
      const std::size_t c = agg.column_index(name);
      for (std::size_t f = 0; f < frames; ++f) {
        column.push_back(c == obs::WindowAggregator::npos ? 0.0
                                                          : agg.value(f, c));
      }
    }
    result.window_frames += frames;
  };
  const auto frame_capacity = [&config](sim::Tick ticks) {
    const sim::Tick w = config.obs_window_ticks;
    return std::size_t((ticks + w - 1) / w) + 1;
  };

  // One profiler for the whole horizon (driver thread only); each leg
  // re-attaches its live counters to that leg's fresh registry.
  std::optional<obs::PhaseProfiler> profiler;
  if (config.profile) profiler.emplace();

  // One streaming sink for the whole horizon: each window's tracer is
  // attached in turn, so the file carries every window's events while
  // the per-window buffer accounting stays bit-identical to a sinkless
  // run (see EventLog dual-write).
  std::unique_ptr<obs::JsonlTraceSink> sink;
  if (!config.trace_jsonl.empty()) {
    sink = std::make_unique<obs::JsonlTraceSink>(config.trace_jsonl);
  }

  for (std::size_t w = 0; w < config.windows; ++w) {
    const sim::FaultPlan plan = soak_plan_at(config, w);
    push("fault_rate", plan.fetch_failure_rate);

    // Station leg: the full fault cocktail against one base station, with
    // per-tick metrics and a request tracer for the lat.* histograms.
    {
      PolicySimConfig sim = config.base;
      sim.faults = plan;
      sim.warmup_ticks = config.window_warmup;
      sim.measure_ticks = config.window_ticks;
      sim.seed = shard_seed(config.seed, 2 * w);

      obs::MetricsRegistry registry;
      obs::SeriesRecorder recorder(registry);
      obs::RequestTracer tracer(obs::RequestTracer::Config{
          config.trace_sample_every, config.trace_event_capacity});
      tracer.register_histograms(&registry);
      if (sink) tracer.log().set_sink(sink.get());
      // Observability attachments. Registration order matters only for
      // the window column snapshot: slo.* and prof.phase.* counters must
      // exist before run_policy_sim calls windows->begin().
      if (profiler) profiler->attach_registry(&registry);
      std::optional<obs::SloMonitor> monitor;
      if (!config.slos.empty()) {
        monitor.emplace(&registry, config.slos);
        if (sink) monitor->set_sink(sink.get());
      }
      std::optional<obs::WindowAggregator> windows;
      if (config.obs_window_ticks > 0) {
        obs::WindowAggregator::Config wcfg;
        wcfg.window_ticks = config.obs_window_ticks;
        wcfg.frame_capacity =
            frame_capacity(config.window_warmup + config.window_ticks);
        windows.emplace(registry, wcfg);
        if (monitor) windows->set_listener(&*monitor);
      }
      SimObservers observers;
      observers.recorder = &recorder;
      observers.tracer = &tracer;
      observers.windows = windows ? &*windows : nullptr;
      observers.profiler = profiler ? &*profiler : nullptr;
      const PolicySimResult r = run_policy_sim(sim, observers);
      if (windows) append_frames(*windows);
      if (monitor) {
        result.slo_evaluations += monitor->evaluations();
        result.slo_breaches += monitor->breaches();
        result.slo_alerts += monitor->alerts();
      }
      // Surface drop/flush accounting as ordinary registry metrics
      // (trace.events/dropped/arrivals/streamed_events/flushed_events/
      // flush_blocks). Registered after the run, so they are not in the
      // recorder's per-tick series and not in the golden-gated output.
      obs::export_trace_metrics(registry, tracer);

      push("score.avg", r.average_score);
      push("recency.avg", r.average_recency);
      push("requests", double(r.requests));
      push("failed_fetches", double(r.failed_fetches));
      push("retries", double(r.retries));
      push("retry_successes", double(r.retry_successes));
      push("degraded_serves", double(r.degraded_serves));
      push("downlink_dropped", double(r.downlink_dropped));
      for (const char* name : kInjectedCounters) {
        push(name, scalar_or_zero(registry, name));
      }
      for (const char* name : kLatHistograms) {
        push(std::string(name) + ".mean", histogram_mean(registry, name));
      }
      push("trace.events", double(tracer.log().size()));
      push("trace.dropped", double(tracer.log().dropped()));
      push("trace.arrivals", double(tracer.arrivals()));
    }

    // Multi-cell leg: sharded cells under the same plan, per-shard traces
    // merged into mc.lat.* after the join.
    if (config.cell_count > 0) {
      MultiCellConfig mc;
      mc.cell_count = config.cell_count;
      mc.topology = CellTopology::kSharded;
      mc.cell = config.cell;
      mc.cell.faults = plan;
      mc.cell.ticks = config.window_warmup + config.window_ticks;
      mc.trace_sample_every = config.trace_sample_every;
      mc.trace_event_capacity = config.trace_event_capacity;
      mc.seed = shard_seed(config.seed, 2 * w + 1);

      obs::MetricsRegistry registry;
      obs::SeriesRecorder recorder(registry);
      if (profiler) profiler->attach_registry(&registry);
      std::optional<obs::WindowAggregator> windows;
      if (config.obs_window_ticks > 0) {
        obs::WindowAggregator::Config wcfg;
        wcfg.window_ticks = config.obs_window_ticks;
        wcfg.frame_capacity = frame_capacity(mc.cell.ticks);
        windows.emplace(registry, wcfg);
      }
      MultiCellObservers observers;
      observers.recorder = &recorder;
      observers.windows = windows ? &*windows : nullptr;
      observers.profiler = profiler ? &*profiler : nullptr;
      const MultiCellResult m = run_multi_cell(mc, pool, observers);
      if (windows) append_frames(*windows);

      push("mc.requests", double(m.aggregate.requests));
      push("mc.average_score", m.aggregate.average_score());
      push("mc.local_hit_rate", m.aggregate.local_hit_rate());
      push("mc.failed_fetches", double(m.aggregate.failed_fetches));
      push("mc.retries", double(m.aggregate.retries));
      push("mc.degraded_serves", double(m.aggregate.degraded_serves));
      push("mc.handoffs", double(m.aggregate.handoffs));
      push("mc.downlink_dropped", double(m.aggregate.downlink_dropped));
      push("mc.trace.events", scalar_or_zero(registry, "mc.trace.events"));
      push("mc.trace.dropped", scalar_or_zero(registry, "mc.trace.dropped"));
      push("mc.lat.ticks_to_serve.mean",
           histogram_mean(registry, "mc.lat.ticks_to_serve"));
      push("mc.lat.queue_wait.mean",
           histogram_mean(registry, "mc.lat.queue_wait"));
    }
  }
  if (sink) sink->close();
  if (profiler) {
    // Detach before the profiler dies with this frame; the flamegraph is
    // the horizon-wide path profile (wall-clock — never golden-gated).
    profiler->attach_registry(nullptr);
    result.flamegraph = profiler->flamegraph_collapsed();
  }
  return result;
}

}  // namespace mobi::exp
