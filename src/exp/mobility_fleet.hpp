// MobilityFleet: the multi-cell engine for runs where clients move.
//
// client::run_cell owns everything per cell — catalog, clients, RNG
// streams — which is exactly what makes sharded runs embarrassingly
// parallel, and exactly what breaks once a client can leave: a migrating
// client must find the same object sizes and a consistent server state
// in its new cell. The fleet therefore restructures the run:
//
//   * ONE catalog, built from the master seed, shared by every cell;
//     per-cell ServerPools stay version-consistent because the staggered
//     update process (deterministic, RNG-free) is applied identically in
//     each cell.
//   * ONE stable client vector, global ids, constructed once and never
//     reallocated (MobileClient's invalidation listener captures the
//     address of its own cache — the object must not move). Cells hold
//     rosters of ids; migration moves ids, never objects.
//   * Per-cell streams (connectivity, requests, faults) seeded with the
//     same position-addressable shard_seed discipline as the sharded
//     path, so a pool-of-K run is bit-identical to serial for every K.
//
// Each tick: cells run the run_cell-shaped body in parallel (updates ->
// report -> client requests -> process_batch -> stores -> snapshot),
// then a single-threaded barrier steps the MobilityModel, posts each
// crossing to the HandoffBus, and drains it — roster moves plus a
// deterministic handoff window on the crossing client. With
// mobility_predictive set, every station's knapsack sees a ResidencyProbe
// backed by the model's dwell estimates.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/invalidation.hpp"
#include "client/cell.hpp"
#include "client/mobile_client.hpp"
#include "core/base_station.hpp"
#include "core/residency.hpp"
#include "exp/handoff_bus.hpp"
#include "exp/multi_cell.hpp"
#include "net/fault_injector.hpp"
#include "server/remote_server.hpp"
#include "sim/mobility.hpp"
#include "util/thread_pool.hpp"
#include "workload/access.hpp"
#include "workload/requests.hpp"
#include "workload/updates.hpp"

namespace mobi::obs {
class RequestTracer;
class PhaseProfiler;
}  // namespace mobi::obs

namespace mobi::exp {

/// core::ResidencyProbe backed by the fleet's mobility model. Pure reads
/// against state frozen at the last barrier, so concurrent cell steps
/// may query it freely.
class FleetResidencyProbe final : public core::ResidencyProbe {
 public:
  explicit FleetResidencyProbe(const sim::ResidencyPredictor& predictor)
      : predictor_(&predictor) {}
  double probability(workload::ClientId client) const override {
    return predictor_->probability(client);
  }

 private:
  const sim::ResidencyPredictor* predictor_;
};

class MobilityFleet {
 public:
  /// Requires sharded topology and a non-empty config.mobility (throws
  /// otherwise). Honors cell_client_counts; clients get global ids in
  /// cell-major order (cell 0 holds ids [0, n0), cell 1 the next n1, ...).
  explicit MobilityFleet(const MultiCellConfig& config);
  MobilityFleet(const MobilityFleet&) = delete;
  MobilityFleet& operator=(const MobilityFleet&) = delete;

  /// Attach observation before the first step. The tracer follows the
  /// run_cell contract (station + links); `series` (may be nullptr)
  /// receives one cumulative CellResult snapshot per tick, appended by
  /// whichever worker runs the cell — reserve it to ticks() up front.
  void set_tracer(std::size_t cell, obs::RequestTracer* tracer);
  void attach_series(std::size_t cell, client::CellSeries* series);

  /// Attaches a phase profiler to the *driver* thread: each step() runs a
  /// `fleet.cells` span around the (possibly parallel) cell bodies (cost
  /// = cells ticked; per-cell work is not individually profiled — the
  /// profiler is single-threaded by contract) and a `fleet.barrier` span
  /// around the single-threaded mobility barrier (cost = crossings
  /// granted). nullptr detaches.
  void set_profiler(obs::PhaseProfiler* profiler);

  /// Runs one tick: parallel cell bodies (serial when pool is null),
  /// then the single-threaded mobility barrier. The serial path is
  /// allocation-free once scratch capacities are warm.
  void step(util::ThreadPool* pool = nullptr);

  sim::Tick now() const noexcept { return next_tick_; }
  sim::Tick ticks() const noexcept { return ticks_; }
  bool done() const noexcept { return next_tick_ >= ticks_; }

  std::size_t cell_count() const noexcept { return cells_.size(); }
  std::size_t client_count() const noexcept { return clients_.size(); }

  const client::CellResult& cell_result(std::size_t cell) const {
    return cells_.at(cell)->result;
  }
  /// Sorted global ids currently resident in `cell`.
  const std::vector<std::uint32_t>& roster(std::size_t cell) const {
    return cells_.at(cell)->roster;
  }
  std::uint32_t cell_of_client(std::uint32_t client) const {
    return model_->cell_of(client);
  }

  const sim::MobilityModel& model() const noexcept { return *model_; }
  const HandoffBus& bus() const noexcept { return *bus_; }
  bool predictive() const noexcept { return probe_.has_value(); }

  /// Cumulative handoff accounting; `mobility_series()[t]` is the state
  /// after tick t's barrier (one row per completed tick).
  const MobilityRunStats& stats() const noexcept { return stats_; }
  const std::vector<MobilityRunStats>& mobility_series() const noexcept {
    return rows_;
  }

 private:
  /// One serve in flight on a cell's downlink: decided at some tick,
  /// landing at `land`. `recency` is frozen at send time (the payload's
  /// content does not change mid-flight).
  struct Delivery {
    std::uint32_t client = 0;
    object::ObjectId object = 0;
    double recency = 1.0;
    sim::Tick land = 0;
  };

  struct CellState {
    server::ServerPool servers;
    core::BaseStation station;
    cache::InvalidationLog log;
    std::unique_ptr<workload::UpdateProcess> updates;
    std::optional<net::FaultInjector> injector;
    util::Rng connectivity_rng;
    util::Rng request_rng;
    std::vector<std::uint32_t> roster;  // sorted global client ids
    client::CellResult result;
    std::uint64_t delivered_payloads = 0;
    std::uint64_t lost_deliveries = 0;
    // Reused per-tick scratch (reserved in the constructor).
    workload::RequestBatch batch;
    std::vector<std::uint32_t> requester;  // global id per batch entry
    std::vector<Delivery> in_flight;  // kept compact, enqueue order
    cache::InvalidationReport report;
    obs::RequestTracer* tracer = nullptr;
    client::CellSeries* series = nullptr;

    CellState(const object::Catalog& catalog, const MultiCellConfig& config,
              std::uint64_t cell_seed, std::size_t initial_clients);
  };

  void run_cell_tick(CellState& cell, sim::Tick t);
  void land_deliveries(CellState& cell, sim::Tick t);
  void barrier(sim::Tick t);

  MultiCellConfig config_;
  object::Catalog catalog_;
  core::ReciprocalScorer landing_scorer_;
  std::shared_ptr<const workload::AccessDistribution> access_;
  std::vector<std::unique_ptr<CellState>> cells_;
  std::vector<client::MobileClient> clients_;  // stable; never reallocates
  // Last-published per-client counters: per-tick deltas are attributed to
  // the cell the client is resident in, so per-cell series stay monotone
  // even though the underlying counters travel with the client.
  std::vector<std::uint64_t> seen_sleeper_drops_;
  std::vector<std::uint64_t> seen_handoffs_;

  std::optional<sim::MobilityModel> model_;
  std::optional<sim::ResidencyPredictor> predictor_;
  std::optional<FleetResidencyProbe> probe_;
  std::optional<HandoffBus> bus_;
  std::vector<sim::Crossing> crossings_;  // barrier scratch

  MobilityRunStats stats_;
  std::vector<MobilityRunStats> rows_;
  sim::Tick next_tick_ = 0;
  sim::Tick ticks_ = 0;
  obs::PhaseProfiler* profiler_ = nullptr;
  std::uint32_t cells_phase_ = 0;
  std::uint32_t barrier_phase_ = 0;
};

}  // namespace mobi::exp
