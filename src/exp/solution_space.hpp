// Solution-space analysis (paper §4, Figures 4-6, Table 1).
//
// A synthetic knapsack instance: 500 objects whose sizes sum to 5000
// units, requested by 5000 clients in total, with per-object Cache Recency
// Score drawn uniformly from [0.1, 1.0]. Correlations between Object Size
// and the other two attributes are controlled (positive / negative /
// none). The exact DP profile then yields Average Score as a function of
// the upper bound on units downloaded — the curves all three figures plot.
#pragma once

#include <cstdint>
#include <vector>

#include "core/benefit.hpp"
#include "core/knapsack.hpp"
#include "object/correlate.hpp"
#include "object/object.hpp"

namespace mobi::exp {

struct SolutionSpaceConfig {
  std::size_t object_count = 500;
  object::Units size_lo = 1;
  object::Units size_hi = 20;
  object::Units total_size = 5000;  // paper: "sum of the sizes ... 5000"
  /// When true every object is requested by the same number of clients
  /// (Figure 4's "uniform access"); otherwise NumRequests ~ U[req_lo,
  /// req_hi] adjusted to total_requests clients.
  bool constant_requests = false;
  std::uint32_t requests_constant = 10;  // 500 objects * 10 = 5000 clients
  object::Units req_lo = 1;
  object::Units req_hi = 20;
  object::Units total_requests = 5000;  // paper: "number of clients ... 5000"
  double recency_lo = 0.1;
  double recency_hi = 1.0;
  object::Correlation size_vs_requests = object::Correlation::kNone;
  object::Correlation size_vs_recency = object::Correlation::kNone;
  std::uint64_t seed = 42;
};

struct SolutionSpaceInstance {
  SolutionSpaceConfig config;
  object::Catalog catalog;
  std::vector<std::uint32_t> num_requests;
  std::vector<double> cache_recency;  // per-object average cached score
  core::CandidateSet candidates;
};

SolutionSpaceInstance build_instance(const SolutionSpaceConfig& config);

struct CurvePoint {
  object::Units budget = 0;
  double average_score = 0.0;
};

/// Average Score at every budget in {0, step, 2*step, ..., total_size},
/// computed from one exact DP profile (optimal at *every* budget).
std::vector<CurvePoint> average_score_curve(const SolutionSpaceInstance& inst,
                                            object::Units step = 100);

/// Average Score at a single budget.
double average_score_at(const SolutionSpaceInstance& inst,
                        object::Units budget);

/// Smallest budget whose Average Score reaches `target` (e.g. the paper's
/// dotted rectangles at score ~0.9x); returns total_size if never reached.
object::Units budget_reaching_score(const SolutionSpaceInstance& inst,
                                    double target,
                                    object::Units step = 10);

}  // namespace mobi::exp
