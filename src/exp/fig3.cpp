#include "exp/fig3.hpp"

#include "util/thread_pool.hpp"

#include <memory>

#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "core/policy.hpp"
#include "core/scoring.hpp"
#include "object/builders.hpp"
#include "obs/recorder.hpp"
#include "server/remote_server.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/requests.hpp"
#include "workload/trace.hpp"
#include "workload/updates.hpp"

namespace mobi::exp {

namespace {

/// Builds the shared trace both policies replay ("both simulations used
/// the same set of randomly generated client requests").
workload::Trace build_trace(const Fig3Config& config) {
  util::Rng rng(config.seed);
  workload::RequestGenerator generator(
      workload::make_uniform_access(config.object_count),
      workload::ConstantTarget{1.0}, config.requests_per_tick, rng.split());
  return workload::generate_trace(generator,
                                  config.warmup_ticks + config.measure_ticks);
}

double run_trace(const Fig3Config& config, const workload::Trace& trace,
                 object::Units budget, bool on_demand,
                 obs::SeriesRecorder* recorder = nullptr) {
  const object::Catalog catalog =
      object::make_uniform_catalog(config.object_count, 1);
  server::ServerPool servers(catalog, 1);
  core::BaseStationConfig bs_config;
  bs_config.download_budget = budget;
  bs_config.downlink_capacity =
      object::Units(std::max<std::size_t>(1, config.requests_per_tick));
  std::unique_ptr<core::DownloadPolicy> policy;
  if (on_demand) {
    policy = std::make_unique<core::OnDemandLowestRecencyPolicy>();
  } else {
    policy = std::make_unique<core::AsyncRoundRobinPolicy>();
  }
  core::BaseStation station(catalog, servers,
                            cache::make_harmonic_decay(config.decay_c),
                            std::make_unique<core::ReciprocalScorer>(),
                            std::move(policy), bs_config);
  if (recorder) {
    station.set_metrics(&recorder->registry());
    servers.set_metrics(&recorder->registry());
  }
  auto updates = workload::make_periodic_synchronized(config.object_count,
                                                      config.update_period);
  double recency_sum = 0.0;
  std::size_t measured_requests = 0;
  const sim::Tick total = config.warmup_ticks + config.measure_ticks;
  for (sim::Tick t = 0; t < total; ++t) {
    station.apply_updates(*updates, t);
    const auto result = station.process_batch(trace.batch_at(t), t);
    if (recorder) recorder->sample(t);
    if (t >= config.warmup_ticks) {
      recency_sum += result.recency_sum;
      measured_requests += result.requests;
    }
  }
  return measured_requests ? recency_sum / double(measured_requests) : 0.0;
}

}  // namespace

double run_fig3_once(const Fig3Config& config, object::Units budget,
                     bool on_demand) {
  const workload::Trace trace = build_trace(config);
  return run_trace(config, trace, budget, on_demand);
}

double run_fig3_once(const Fig3Config& config, object::Units budget,
                     bool on_demand, obs::SeriesRecorder* recorder) {
  const workload::Trace trace = build_trace(config);
  return run_trace(config, trace, budget, on_demand, recorder);
}

Fig3Result run_fig3(const Fig3Config& config) {
  Fig3Result result;
  result.config = config;
  const workload::Trace trace = build_trace(config);
  result.points.reserve(config.budgets.size());
  for (object::Units budget : config.budgets) {
    Fig3Point point;
    point.budget = budget;
    point.on_demand_recency = run_trace(config, trace, budget, true);
    point.async_recency = run_trace(config, trace, budget, false);
    result.points.push_back(point);
  }
  return result;
}

Fig3Result run_fig3_parallel(const Fig3Config& config) {
  Fig3Result result;
  result.config = config;
  const workload::Trace trace = build_trace(config);
  result.points.resize(config.budgets.size());
  util::parallel_for(0, config.budgets.size(), [&](std::size_t i) {
    const object::Units budget = config.budgets[i];
    Fig3Point point;
    point.budget = budget;
    point.on_demand_recency = run_trace(config, trace, budget, true);
    point.async_recency = run_trace(config, trace, budget, false);
    result.points[i] = point;
  });
  return result;
}

}  // namespace mobi::exp
