// Multi-cell mobility scenario.
//
// The paper's motivation (§1): "a client may be connected to the base
// station in its cell for a short period of time, and then disconnect or
// move to a different cell". This example runs two cells whose base
// stations share the same remote servers but have independent caches. A
// population of mobile clients roams between cells (and sometimes
// disconnects); each cell serves its residents with the on-demand
// knapsack policy. The report shows how handoffs land clients on colder
// caches and what that costs in recency score.
//
//   $ ./mobile_cell [--ticks=150] [--clients=80] [--handoff=0.05]
#include <cstdio>
#include <iostream>
#include <vector>

#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "object/builders.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/updates.hpp"

namespace {

using namespace mobi;

enum class Location { kCellA, kCellB, kDisconnected };

struct MobileClient {
  workload::ClientId id = 0;
  Location location = Location::kCellA;
  double target_recency = 1.0;
  std::uint32_t handoffs = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto ticks = sim::Tick(flags.get_int("ticks", 150));
  const auto client_count = std::size_t(flags.get_int("clients", 80));
  const double handoff_rate = flags.get_double("handoff", 0.05);
  const double disconnect_rate = flags.get_double("disconnect", 0.02);
  util::Rng rng(std::uint64_t(flags.get_int("seed", 42)));

  const object::Catalog catalog = object::make_random_catalog(200, 1, 8, rng);
  server::ServerPool servers(catalog, 2);

  core::BaseStationConfig config;
  config.download_budget = 60;
  std::vector<std::unique_ptr<core::BaseStation>> cells;
  for (int i = 0; i < 2; ++i) {
    cells.push_back(std::make_unique<core::BaseStation>(
        catalog, servers, cache::make_harmonic_decay(),
        std::make_unique<core::ReciprocalScorer>(),
        core::make_policy("on-demand-knapsack"), config));
  }

  // Clients: half start in each cell, each with its own recency taste.
  std::vector<MobileClient> clients(client_count);
  for (std::size_t i = 0; i < client_count; ++i) {
    clients[i].id = workload::ClientId(i);
    clients[i].location = i % 2 ? Location::kCellA : Location::kCellB;
    clients[i].target_recency = rng.uniform(0.5, 1.0);
  }

  const auto access = workload::make_zipf_access(catalog.size(), 1.0);
  auto updates = workload::make_periodic_staggered(catalog.size(), 6);

  std::uint64_t total_handoffs = 0, total_disconnects = 0;
  double post_handoff_score = 0.0;
  std::size_t post_handoff_requests = 0;
  std::vector<bool> just_moved(client_count, false);

  for (sim::Tick t = 0; t < ticks; ++t) {
    // Server updates propagate to both cells' caches.
    updates->for_each_updated(t, [&](object::ObjectId id) {
      servers.apply_update(id, t);
      for (auto& cell : cells) cell->cache().on_server_update(id);
    });

    // Mobility: roam, disconnect, reconnect.
    for (auto& client : clients) {
      just_moved[client.id] = false;
      if (client.location == Location::kDisconnected) {
        if (rng.bernoulli(0.3)) {  // reconnect into a random cell
          client.location =
              rng.bernoulli(0.5) ? Location::kCellA : Location::kCellB;
          just_moved[client.id] = true;
        }
        continue;
      }
      if (rng.bernoulli(disconnect_rate)) {
        client.location = Location::kDisconnected;
        ++total_disconnects;
      } else if (rng.bernoulli(handoff_rate)) {
        client.location = client.location == Location::kCellA
                              ? Location::kCellB
                              : Location::kCellA;
        ++client.handoffs;
        ++total_handoffs;
        just_moved[client.id] = true;
      }
    }

    // Each connected client issues one request to its cell's station.
    workload::RequestBatch batch_a, batch_b;
    for (const auto& client : clients) {
      if (client.location == Location::kDisconnected) continue;
      const workload::Request request{access->sample(rng),
                                      client.target_recency, client.id};
      (client.location == Location::kCellA ? batch_a : batch_b)
          .push_back(request);
    }
    const auto result_a = cells[0]->process_batch(batch_a, t);
    const auto result_b = cells[1]->process_batch(batch_b, t);

    // Attribute scores to just-moved clients to quantify the handoff tax.
    const auto tally_moved = [&](const workload::RequestBatch& batch,
                                 const core::BaseStation& station) {
      for (const auto& request : batch) {
        if (!just_moved[request.client]) continue;
        const double x = station.cache().recency_or_zero(request.object);
        post_handoff_score +=
            station.scorer().score(x, request.target_recency);
        ++post_handoff_requests;
      }
    };
    tally_moved(batch_a, *cells[0]);
    tally_moved(batch_b, *cells[1]);
    (void)result_a;
    (void)result_b;
  }

  std::cout << "Mobile cells: " << client_count << " clients, " << ticks
            << " ticks, handoff rate " << handoff_rate << "\n\n";
  std::printf("%-8s %10s %14s %10s %15s\n", "cell", "requests", "downloaded",
              "avg score", "downlink util");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& totals = cells[i]->totals();
    std::printf("%-8s %10zu %14lld %10.4f %15.4f\n",
                i == 0 ? "A" : "B", totals.requests,
                (long long)totals.units_downloaded, totals.average_score(),
                cells[i]->downlink().utilization());
  }
  const double overall =
      (cells[0]->totals().score_sum + cells[1]->totals().score_sum) /
      double(cells[0]->totals().requests + cells[1]->totals().requests);
  std::cout << "\nhandoffs: " << total_handoffs
            << ", disconnects: " << total_disconnects << "\n"
            << "avg score overall:            " << overall << "\n"
            << "avg score right after a move: "
            << (post_handoff_requests
                    ? post_handoff_score / double(post_handoff_requests)
                    : 0.0)
            << "  (" << post_handoff_requests << " requests)\n"
            << "Clients landing in a new cell see that cell's cache state; "
               "the on-demand policy spends its budget closing exactly that "
               "gap.\n";
  return 0;
}
