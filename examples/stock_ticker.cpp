// Quasi-copy stock ticker scenario.
//
// The paper's related work (§5) cites Alonso et al.'s quasi-copies: "a
// client querying stock prices may be satisfied with cached stock prices
// that are within 5 percent of actual prices. This is similar to our work
// which allows users to specify the desired degree of recency." Here,
// clients fall into tiers — day traders demand near-perfect recency,
// analysts tolerate some staleness, and casual viewers accept a lot — and
// quotes update every tick (the paper's "high update frequency" regime,
// where on-demand shines). The example sweeps the download budget and
// reports the per-tier score each policy achieves.
//
//   $ ./stock_ticker [--ticks=120] [--seed=42]
#include <cstdio>
#include <iostream>
#include <vector>

#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "object/builders.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/trace.hpp"
#include "workload/updates.hpp"

namespace {

using namespace mobi;

struct Tier {
  const char* name;
  double target_recency;
  std::size_t requests_per_tick;
};

constexpr Tier kTiers[] = {
    {"day-trader", 0.99, 20},
    {"analyst", 0.70, 30},
    {"casual", 0.30, 50},
};

struct TierScore {
  double sum = 0.0;
  std::size_t count = 0;
  double mean() const { return count ? sum / double(count) : 0.0; }
};

std::vector<TierScore> run(const object::Catalog& catalog,
                           const workload::Trace& trace, sim::Tick ticks,
                           const std::string& policy, object::Units budget) {
  server::ServerPool servers(catalog, 1);
  core::BaseStationConfig config;
  config.download_budget = budget;
  core::BaseStation station(catalog, servers, cache::make_harmonic_decay(),
                            std::make_unique<core::ReciprocalScorer>(),
                            core::make_policy(policy), config);
  // Quotes move every tick: the paper's high-update-frequency regime.
  auto updates = workload::make_periodic_synchronized(catalog.size(), 1);

  std::vector<TierScore> scores(std::size(kTiers));
  for (sim::Tick t = 0; t < ticks; ++t) {
    station.apply_updates(*updates, t);
    const auto batch = trace.batch_at(t);
    station.process_batch(batch, t);
    for (const auto& request : batch) {
      const double x = station.cache().recency_or_zero(request.object);
      const double score =
          station.scorer().score(x, request.target_recency);
      // Recover the tier from the request's target.
      for (std::size_t tier = 0; tier < std::size(kTiers); ++tier) {
        if (request.target_recency == kTiers[tier].target_recency) {
          scores[tier].sum += score;
          ++scores[tier].count;
          break;
        }
      }
    }
  }
  return scores;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto ticks = sim::Tick(flags.get_int("ticks", 120));
  util::Rng rng(std::uint64_t(flags.get_int("seed", 42)));

  // 150 tickers, unit size (quotes are small); zipf popularity.
  const object::Catalog catalog = object::make_uniform_catalog(150, 1);
  const auto access = workload::make_zipf_access(catalog.size(), 1.0);

  // Build one shared trace with tiered targets.
  workload::Trace trace;
  {
    util::Rng trace_rng = rng.split();
    workload::ClientId next_client = 0;
    for (sim::Tick t = 0; t < ticks; ++t) {
      for (const auto& tier : kTiers) {
        for (std::size_t i = 0; i < tier.requests_per_tick; ++i) {
          trace.record(t, workload::Request{access->sample(trace_rng),
                                            tier.target_recency,
                                            next_client++});
        }
      }
    }
  }

  std::cout << "Stock ticker: " << catalog.size()
            << " symbols updating every tick, client tiers: day-trader "
               "(C=0.99), analyst (C=0.70), casual (C=0.30)\n\n";
  std::printf("%-22s %7s %12s %10s %9s\n", "policy", "budget", "day-trader",
              "analyst", "casual");
  for (object::Units budget : {10, 30, 60}) {
    for (const char* policy : {"on-demand-knapsack", "async-round-robin"}) {
      const auto scores = run(catalog, trace, ticks, policy, budget);
      std::printf("%-22s %7lld %12.4f %10.4f %9.4f\n", policy,
                  (long long)budget, scores[0].mean(), scores[1].mean(),
                  scores[2].mean());
    }
  }
  std::cout << "\nThe knapsack policy spends its budget where client "
               "targets are strict and copies are stale; round-robin "
               "refresh ignores both, so strict tiers suffer most.\n";
  return 0;
}
