// Policy lab: run any policy/scorer/workload combination from the command
// line — the library's exp::run_policy_sim exposed as a tool. Useful for
// quick what-ifs without writing code.
//
//   $ ./policy_lab --policy=on-demand-knapsack --budget=50 --access=zipf
//   $ ./policy_lab --policy=adaptive-knapsack --budget=-1 --updates=2
//   $ ./policy_lab --compare   # run the whole policy roster side by side
//
// Flags (defaults in brackets):
//   --policy=NAME        [on-demand-knapsack]   see core::make_policy
//   --scorer=NAME        [reciprocal]           reciprocal|exponential|step
//   --access=NAME        [zipf]                 uniform|rank-linear|zipf
//   --objects=N          [200]    --requests=N  [50]   per tick
//   --budget=N           [100]    negative = unlimited
//   --updates=N          [5]      server update period in ticks
//   --warmup=N --ticks=N [50/200] --seed=N [42] --compare
#include <cstdio>
#include <iostream>
#include <string>

#include "exp/policy_sim.hpp"
#include "util/flags.hpp"

namespace {

using namespace mobi;

exp::PolicySimConfig config_from_flags(const util::Flags& flags) {
  exp::PolicySimConfig config;
  config.policy = flags.get_string("policy", "on-demand-knapsack");
  config.scorer = flags.get_string("scorer", "reciprocal");
  config.object_count = std::size_t(flags.get_int("objects", 200));
  config.requests_per_tick = std::size_t(flags.get_int("requests", 50));
  config.budget = object::Units(flags.get_int("budget", 100));
  config.update_period = sim::Tick(flags.get_int("updates", 5));
  config.warmup_ticks = sim::Tick(flags.get_int("warmup", 50));
  config.measure_ticks = sim::Tick(flags.get_int("ticks", 200));
  config.seed = std::uint64_t(flags.get_int("seed", 42));
  const std::string access = flags.get_string("access", "zipf");
  if (access == "uniform") {
    config.access = exp::AccessPattern::kUniform;
  } else if (access == "rank-linear") {
    config.access = exp::AccessPattern::kRankLinear;
  } else if (access == "zipf") {
    config.access = exp::AccessPattern::kZipf;
  } else {
    throw std::invalid_argument("unknown --access: " + access);
  }
  return config;
}

void print_row(const std::string& label, const exp::PolicySimResult& result) {
  std::printf("%-26s %9.4f %11.4f %12lld %14.4f %9.4f %9.4f\n", label.c_str(),
              result.average_score, result.average_recency,
              (long long)result.units_downloaded,
              result.downlink_utilization, result.jain_fairness,
              result.score_p10);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  try {
    std::printf("%-26s %9s %11s %12s %14s %9s %9s\n", "policy", "avg score",
                "avg recency", "downloaded", "downlink util", "jain",
                "p10 score");
    if (flags.get_bool("compare", false)) {
      for (const char* policy :
           {"on-demand-knapsack", "on-demand-knapsack-greedy",
            "on-demand-lowest-recency", "on-demand-latency-aware",
            "adaptive-knapsack", "stale-while-revalidate",
            "async-round-robin", "download-all", "cache-only"}) {
        auto config = config_from_flags(flags);
        config.policy = policy;
        if (config.policy == "download-all" ||
            config.policy == "adaptive-knapsack") {
          config.budget = -1;  // these choose or ignore their own bound
        }
        print_row(policy, exp::run_policy_sim(config));
      }
    } else {
      const auto config = config_from_flags(flags);
      print_row(config.policy, exp::run_policy_sim(config));
    }
  } catch (const std::exception& error) {
    std::cerr << "policy_lab: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
