// Web proxy caching scenario.
//
// The paper notes (§1) that its results "could be applied to web proxy
// caching": a proxy with a *bounded* cache sits between browsers and
// origin servers, pages change at the origins, and clients tolerate
// slightly stale pages. This example combines the on-demand knapsack
// download policy with the bounded cache + replacement policies from the
// paper's future-work section, and compares replacement policies on the
// same trace.
//
//   $ ./web_proxy [--cache-units=300] [--ticks=200] [--seed=42]
#include <cstdio>
#include <iostream>
#include <memory>

#include "cache/replacement.hpp"
#include "core/benefit.hpp"
#include "core/knapsack.hpp"
#include "core/scoring.hpp"
#include "object/builders.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/trace.hpp"
#include "workload/updates.hpp"

namespace {

using namespace mobi;

struct ProxyOutcome {
  std::string policy;
  double hit_rate = 0.0;
  double average_score = 0.0;
  object::Units bytes_from_origin = 0;
  std::uint64_t evictions = 0;
};

/// One proxy run: bounded cache + per-tick knapsack refresh budget.
ProxyOutcome run_proxy(const object::Catalog& catalog,
                       const workload::Trace& trace, sim::Tick ticks,
                       object::Units cache_units,
                       cache::ReplacementPolicy policy) {
  server::ServerPool origins(catalog, 4);
  cache::BoundedCache proxy_cache(catalog, cache::make_harmonic_decay(),
                                  cache_units, policy);
  auto page_updates = workload::make_periodic_staggered(catalog.size(), 8);
  core::ReciprocalScorer scorer;
  const object::Units refresh_budget = 40;

  ProxyOutcome outcome;
  outcome.policy = proxy_cache.policy_name();
  std::size_t requests = 0, hits = 0;
  double score_sum = 0.0;

  for (sim::Tick t = 0; t < ticks; ++t) {
    page_updates->for_each_updated(t, [&](object::ObjectId id) {
      origins.apply_update(id, t);
      proxy_cache.on_server_update(id);
    });

    const auto batch = trace.batch_at(t);
    // Decide which requested pages to revalidate at the origin: knapsack
    // over profit computed against the bounded cache's recency state.
    const auto set =
        core::build_candidates(batch, catalog, proxy_cache.inner(), scorer);
    std::vector<core::KnapsackItem> items;
    for (const auto& cand : set.candidates) {
      items.push_back(core::KnapsackItem{cand.size, cand.profit});
    }
    const auto solution = core::solve_dp(items, refresh_budget);
    for (std::size_t index : solution.chosen) {
      const auto id = set.candidates[index].object;
      proxy_cache.admit(id, origins.fetch(id), t);
      outcome.bytes_from_origin += catalog.object_size(id);
    }

    // Serve the batch.
    for (const auto& request : batch) {
      ++requests;
      const auto recency = proxy_cache.read(request.object, t);
      if (recency) {
        ++hits;
        score_sum += scorer.score(*recency, request.target_recency);
      } else {
        // Miss: fetch on demand (compulsory traffic), serve fresh.
        proxy_cache.admit(request.object, origins.fetch(request.object), t);
        outcome.bytes_from_origin += catalog.object_size(request.object);
        score_sum += 1.0;
      }
    }
  }
  outcome.hit_rate = requests ? double(hits) / double(requests) : 0.0;
  outcome.average_score = requests ? score_sum / double(requests) : 0.0;
  outcome.evictions = proxy_cache.evictions();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto ticks = sim::Tick(flags.get_int("ticks", 200));
  const auto cache_units = object::Units(flags.get_int("cache-units", 300));
  util::Rng rng(std::uint64_t(flags.get_int("seed", 42)));

  // 400 pages, 1-12 units each; zipf popularity (the web's signature).
  const object::Catalog catalog = object::make_random_catalog(400, 1, 12, rng);
  workload::RequestGenerator generator(
      workload::make_zipf_access(catalog.size(), 1.0),
      workload::UniformTarget{0.6, 1.0}, 60, rng.split());
  const workload::Trace trace = workload::generate_trace(generator, ticks);

  std::cout << "Web proxy: " << catalog.size() << " pages ("
            << catalog.total_size() << " units at origin), cache holds "
            << cache_units << " units ("
            << 100 * cache_units / catalog.total_size() << "%), " << ticks
            << " ticks\n\n";
  std::printf("%-16s %9s %10s %13s %10s\n", "replacement", "hit rate",
              "avg score", "origin bytes", "evictions");
  for (auto policy :
       {cache::lru_policy(), cache::lfu_policy(), cache::size_aware_policy(),
        cache::recency_profit_policy()}) {
    const auto outcome =
        run_proxy(catalog, trace, ticks, cache_units, policy);
    std::printf("%-16s %9.4f %10.4f %13lld %10llu\n", outcome.policy.c_str(),
                outcome.hit_rate, outcome.average_score,
                (long long)outcome.bytes_from_origin,
                (unsigned long long)outcome.evictions);
  }
  std::cout << "\nAll four policies replay the same request trace; the "
               "recency-profit policy uses both popularity and staleness, "
               "as suggested in the paper's future work.\n";
  return 0;
}
