// Quickstart: the smallest useful mobicache program.
//
// Builds a catalog of objects on a remote server, puts a base station with
// the paper's on-demand knapsack policy in front of it, drives a few ticks
// of client requests under server updates, and prints what happened.
//
//   $ ./quickstart [--ticks=20] [--budget=10] [--seed=42]
#include <iostream>

#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "object/builders.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/updates.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  const auto ticks = sim::Tick(flags.get_int("ticks", 20));
  const auto budget = object::Units(flags.get_int("budget", 10));
  util::Rng rng(std::uint64_t(flags.get_int("seed", 42)));

  // 1. A catalog of 50 objects (sizes 1-5 units) on one remote server.
  const object::Catalog catalog = object::make_random_catalog(50, 1, 5, rng);
  server::ServerPool servers(catalog, 1);

  // 2. A base station: cache with the paper's harmonic decay, reciprocal
  //    recency scoring, and the on-demand knapsack download policy with a
  //    per-tick download budget.
  core::BaseStationConfig config;
  config.download_budget = budget;
  core::BaseStation station(catalog, servers, cache::make_harmonic_decay(),
                            std::make_unique<core::ReciprocalScorer>(),
                            core::make_policy("on-demand-knapsack"), config);

  // 3. A workload: zipf-popular objects, clients that want data at least
  //    80% fresh, 25 requests per tick; servers update everything every 4
  //    ticks.
  workload::RequestGenerator requests(
      workload::make_zipf_access(catalog.size(), 1.0),
      workload::ConstantTarget{0.8}, 25, rng.split());
  auto updates = workload::make_periodic_synchronized(catalog.size(), 4);

  // 4. Run the tick loop: updates happen, then the batch is served.
  std::cout << "tick  downloaded(units)  avg-score  avg-recency\n";
  for (sim::Tick t = 0; t < ticks; ++t) {
    station.apply_updates(*updates, t);
    const core::TickResult result =
        station.process_batch(requests.next_batch(), t);
    std::printf("%4lld  %17lld  %9.4f  %11.4f\n",
                (long long)t, (long long)result.units_downloaded,
                result.average_score(),
                result.requests ? result.recency_sum / double(result.requests)
                                : 1.0);
  }

  // 5. Totals.
  const auto& totals = station.totals();
  std::cout << "\nover " << ticks << " ticks: " << totals.requests
            << " requests, " << totals.units_downloaded
            << " units downloaded, average client score "
            << totals.average_score() << "\n"
            << "cache: " << station.cache().stats().hits << " hits, "
            << station.cache().stats().misses << " misses, "
            << station.cache().stats().refreshes << " refreshes\n"
            << "downlink utilization: " << station.downlink().utilization()
            << "\n";
  return 0;
}
