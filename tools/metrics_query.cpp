// metrics_query: slice an exported metrics document — per-tick
// mobicache.metrics.v1, windowed mobicache.windows.v1, or soak
// mobicache.soak.v1 — by series glob and axis range, for eyeballing a
// run or feeding a plot script without writing a JSON parser first:
//
//   metrics_query [options] file.json
//
// Options:
//   --series=GLOB   series to keep; '*' matches zero or more characters
//                   anywhere (same matcher as metrics_diff --tol rules);
//                   repeatable, a name is kept if ANY glob matches.
//                   Default: every series.
//   --from=N        keep axis entries >= N (tick or window ordinal)
//   --to=N          keep axis entries <= N
//   --format=F      table (default), csv, or json (a filtered document
//                   under the same schema, re-parseable by this tool and
//                   by metrics_diff)
//   --list          print matching series names only, one per line
//
// Exit status: 0 = ok, 1 = no series matched, 2 = usage/IO/parse error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/metrics_diff.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--series=GLOB]... [--from=N] [--to=N]"
               " [--format=table|csv|json] [--list] file.json\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const char* axis_name_for(const std::string& schema) {
  if (schema == "mobicache.metrics.v1") return "ticks";
  if (schema == "mobicache.windows.v1") return "windows";
  if (schema == "mobicache.soak.v1") return "windows";
  throw std::runtime_error("unsupported schema '" + schema + "'");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mobi;

  std::vector<obs::ToleranceRule> globs;  // reuse the diff glob matcher
  double from = -1e300;
  double to = 1e300;
  std::string format = "table";
  bool list_only = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--series=", 0) == 0) {
        globs.push_back(obs::ToleranceRule{arg.substr(9), 0.0, 0.0});
      } else if (arg.rfind("--from=", 0) == 0) {
        from = std::stod(arg.substr(7));
      } else if (arg.rfind("--to=", 0) == 0) {
        to = std::stod(arg.substr(5));
      } else if (arg.rfind("--format=", 0) == 0) {
        format = arg.substr(9);
        if (format != "table" && format != "csv" && format != "json") {
          std::cerr << "metrics_query: unknown format '" << format << "'\n";
          return usage(argv[0]);
        }
      } else if (arg == "--list") {
        list_only = true;
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "metrics_query: unknown option '" << arg << "'\n";
        return usage(argv[0]);
      } else {
        paths.push_back(arg);
      }
    } catch (const std::exception& error) {
      std::cerr << "metrics_query: bad argument '" << arg
                << "': " << error.what() << '\n';
      return 2;
    }
  }
  if (paths.size() != 1) return usage(argv[0]);

  try {
    const util::json::Value root = util::json::parse(read_file(paths[0]));
    if (!root.is_object() || !root.contains("schema")) {
      throw std::runtime_error("document has no schema field");
    }
    const std::string schema = root.at("schema").str();
    const char* axis_name = axis_name_for(schema);
    if (!root.contains(axis_name) || !root.contains("series")) {
      throw std::runtime_error("document is missing its axis or series");
    }
    const util::json::Array& axis = root.at(axis_name).arr();
    const util::json::Object& series = root.at("series").obj();

    const auto keep = [&](const std::string& name) {
      if (globs.empty()) return true;
      for (const obs::ToleranceRule& glob : globs) {
        if (glob.matches(name)) return true;
      }
      return false;
    };
    std::vector<std::string> names;  // json::Object iterates sorted
    for (const auto& [name, values] : series) {
      if (keep(name)) names.push_back(name);
    }
    if (names.empty()) {
      std::cerr << "metrics_query: no series matched\n";
      return 1;
    }
    if (list_only) {
      for (const std::string& name : names) std::cout << name << '\n';
      return 0;
    }

    std::vector<std::size_t> rows;
    rows.reserve(axis.size());
    for (std::size_t i = 0; i < axis.size(); ++i) {
      const double x = axis[i].num();
      if (x >= from && x <= to) rows.push_back(i);
    }

    if (format == "json") {
      // A filtered document under the same schema: hand-built like the
      // exporters, byte-stable, and re-parseable by metrics_diff.
      std::ostringstream out;
      out << "{\"schema\":\"" << obs::json::escape(schema) << "\",\""
          << axis_name << "\":[";
      for (std::size_t r = 0; r < rows.size(); ++r) {
        if (r) out << ',';
        out << obs::json::number(axis[rows[r]].num());
      }
      out << "],\"series\":{";
      for (std::size_t s = 0; s < names.size(); ++s) {
        const util::json::Array& values = series.at(names[s]).arr();
        if (s) out << ',';
        out << '"' << obs::json::escape(names[s]) << "\":[";
        for (std::size_t r = 0; r < rows.size(); ++r) {
          if (r) out << ',';
          const util::json::Value& v = values.at(rows[r]);
          out << (v.is_null() ? std::string("null")
                              : obs::json::number(v.num()));
        }
        out << ']';
      }
      out << "}}";
      std::cout << out.str() << '\n';
      return 0;
    }

    std::vector<std::string> headers;
    headers.push_back(axis_name);
    for (const std::string& name : names) headers.push_back(name);
    util::Table table(headers, 6);
    for (const std::size_t r : rows) {
      std::vector<util::Cell> cells;
      cells.reserve(headers.size());
      cells.emplace_back((long long)axis[r].num());
      for (const std::string& name : names) {
        const util::json::Value& v = series.at(name).arr().at(r);
        if (v.is_null()) {
          cells.emplace_back(std::string("null"));
        } else {
          cells.emplace_back(v.num());
        }
      }
      table.add_row(std::move(cells));
    }
    std::cout << (format == "csv" ? table.to_csv() : table.to_string());
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "metrics_query: " << error.what() << '\n';
    return 2;
  }
}
