// metrics_diff: compare two exported metrics documents (per-tick
// mobicache.metrics.v1, windowed mobicache.soak.v1, or windowed-frame
// mobicache.windows.v1) under per-series tolerances. The CI
// golden-metrics gate:
//
//   metrics_diff [options] golden.json candidate.json
//
// Options:
//   --rtol=X            default relative tolerance (default 0 = exact)
//   --atol=X            default absolute tolerance (default 0)
//   --tol=PAT=R[,A]     per-series rule, PAT an exact name or a glob with
//                       '*' wildcards anywhere (e.g. --tol='lat.*=1e-9',
//                       --tol='prof.phase.*.wall_ns*=1e18,1e18'); first
//                       matching rule wins, repeatable
//   --ignore-missing    tolerate series present on one side only
//   --quiet             no output, exit status only
//
// Exit status: 0 = within tolerance, 1 = regression, 2 = usage/IO/parse
// error. Values compare as |a-b| <= atol + rtol*max(|a|,|b|); histogram
// counts always compare exactly (only `sum` takes the tolerance).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics_diff.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--rtol=X] [--atol=X] [--tol=pattern=rtol[,atol]]..."
               " [--ignore-missing] [--quiet] golden.json candidate.json\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mobi;

  obs::DiffOptions options;
  bool quiet = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--rtol=", 0) == 0) {
        options.default_rtol = std::stod(arg.substr(7));
      } else if (arg.rfind("--atol=", 0) == 0) {
        options.default_atol = std::stod(arg.substr(7));
      } else if (arg.rfind("--tol=", 0) == 0) {
        options.rules.push_back(obs::parse_tolerance_rule(arg.substr(6)));
      } else if (arg == "--ignore-missing") {
        options.ignore_missing = true;
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "metrics_diff: unknown option '" << arg << "'\n";
        return usage(argv[0]);
      } else {
        paths.push_back(arg);
      }
    } catch (const std::exception& error) {
      std::cerr << "metrics_diff: " << error.what() << '\n';
      return 2;
    }
  }
  if (paths.size() != 2) return usage(argv[0]);

  try {
    const obs::DiffReport report = obs::diff_metrics_text(
        read_file(paths[0]), read_file(paths[1]), options);
    if (report.ok()) {
      if (!quiet) {
        std::cout << "metrics_diff: OK — " << report.series_compared
                  << " series, " << report.values_compared
                  << " values within tolerance\n";
      }
      return 0;
    }
    if (!quiet) {
      std::cerr << report.to_string() << "metrics_diff: "
                << report.regression_count << " regression(s) across "
                << report.series_compared << " series\n";
    }
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "metrics_diff: " << error.what() << '\n';
    return 2;
  }
}
