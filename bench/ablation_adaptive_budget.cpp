// Ablation for the §6 adaptive-bound technique: AdaptiveKnapsackPolicy
// (knee and elbow rules) against fixed budgets, on the same workload.
// The interesting frontier is (units downloaded, average score): the
// adaptive policy should sit near the fixed-budget curve's knee —
// comparable score for substantially less bandwidth than large fixed
// budgets.
#include <iostream>

#include "bench_common.hpp"
#include "exp/policy_sim.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  const auto seed = std::uint64_t(flags.get_int("seed", 42));

  util::Table table({"policy", "per-tick budget", "avg score",
                     "units downloaded", "units/tick"});
  exp::PolicySimConfig base;
  base.object_count = 200;
  base.requests_per_tick = 80;
  base.update_period = 3;
  base.seed = seed;

  for (object::Units budget : {10, 25, 50, 100, 200, 400}) {
    auto config = base;
    config.policy = "on-demand-knapsack";
    config.budget = budget;
    const auto result = exp::run_policy_sim(config);
    table.add_row({std::string("fixed"), (long long)(budget),
                   result.average_score,
                   (long long)(result.units_downloaded),
                   double(result.units_downloaded) /
                       double(config.measure_ticks)});
  }
  {
    auto config = base;
    config.policy = "adaptive-knapsack";
    config.budget = -1;  // the policy chooses its own bound
    const auto result = exp::run_policy_sim(config);
    table.add_row({std::string("adaptive (knee)"), (long long)(-1),
                   result.average_score,
                   (long long)(result.units_downloaded),
                   double(result.units_downloaded) /
                       double(config.measure_ticks)});
  }
  bench::emit(flags,
              "Ablation: adaptive download bound vs fixed budgets "
              "(score/bandwidth frontier)",
              "ablation_adaptive", table);
  std::cout << "Read: the adaptive row should achieve a score comparable "
               "to the larger fixed budgets while spending units/tick near "
               "the frontier's knee.\n";
  return 0;
}
