// Ablation: the paper's two example scoring functions (reciprocal,
// exponential) plus a strict step function, run through the full
// on-demand-knapsack simulation at several budgets. The scorer shapes the
// profit surface the knapsack optimizes, so it changes both the achieved
// Average Score and which objects get fetched.
#include <iostream>

#include "bench_common.hpp"
#include "exp/policy_sim.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);

  util::Table table({"scorer", "budget", "avg score", "avg recency",
                     "units downloaded"});
  for (const char* scorer : {"reciprocal", "exponential", "step"}) {
    for (object::Units budget : {20, 60, 120}) {
      exp::PolicySimConfig config;
      config.policy = "on-demand-knapsack";
      config.scorer = scorer;
      config.budget = budget;
      config.seed = std::uint64_t(flags.get_int("seed", 42));
      const auto result = exp::run_policy_sim(config);
      table.add_row({std::string(scorer), (long long)(budget),
                     result.average_score, result.average_recency,
                     (long long)(result.units_downloaded)});
    }
  }
  bench::emit(flags,
              "Ablation: recency scoring functions under the on-demand "
              "knapsack policy",
              "ablation_scoring", table);
  return 0;
}
