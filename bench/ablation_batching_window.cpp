// Continuous-time ablation: the batching-window trade-off. With Poisson
// arrivals, serving every `w` time units means each request waits ~w/2
// for its batch, but a bigger batch gives the knapsack more aggregation —
// duplicate requests for hot objects collapse into one download, so the
// same per-time-unit bandwidth buys more score. The tick model the paper
// (and figures 2-6) uses is the w = 1 row.
#include <iostream>

#include "bench_common.hpp"
#include "exp/event_sim.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);

  util::Table table({"window w", "avg score", "mean delay", "max delay",
                     "units downloaded", "units/time"});
  for (double window : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    exp::EventSimConfig config;
    config.seed = std::uint64_t(flags.get_int("seed", 42));
    config.batching_window = window;
    // Keep per-time bandwidth constant: budget scales with the window.
    config.budget_per_batch = object::Units(12.0 * window);
    const auto result = exp::run_event_sim(config);
    const double measured_time = config.horizon - config.warmup;
    table.add_row({window, result.average_score, result.mean_service_delay,
                   result.max_service_delay,
                   (long long)(result.units_downloaded),
                   double(result.units_downloaded) / measured_time});
  }
  bench::emit(flags,
              "Ablation: batching window under Poisson arrivals "
              "(bandwidth held at 12 units/time)",
              "ablation_batching", table);
  std::cout << "Read: score rises with w (aggregation collapses duplicate "
               "hot requests) while delay grows ~w/2 — the tick model's "
               "w = 1 sits at one point of a real trade-off.\n";
  return 0;
}
