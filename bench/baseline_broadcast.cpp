// Related-work baseline (paper §5): broadcast disks with a pull
// backchannel (Acharya et al. [6], "most similar to ours"). Compares, on
// a shared zipf workload:
//   * flat broadcast (push only),
//   * two-disk broadcast (hot objects air 4x as often),
//   * hybrid push/pull at several thresholds,
// reporting mean delivery latency in slots — the currency of the
// dissemination line of work. The final section contrasts the paradigms:
// broadcast delivers *fresh* data after a wait, the paper's base-station
// cache delivers *immediately* at a recency cost; the same bandwidth knob
// (pull/download budget) governs both.
#include <iostream>

#include "bench_common.hpp"
#include "broadcast/hybrid.hpp"
#include "exp/policy_sim.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  const std::size_t n = std::size_t(flags.get_int("objects", 200));
  const auto seed = std::uint64_t(flags.get_int("seed", 42));

  const auto access = workload::make_zipf_access(n, 1.0);
  std::vector<double> probs(n);
  for (object::ObjectId id = 0; id < n; ++id) probs[id] = access->probability(id);

  broadcast::FlatSchedule flat(n);
  const auto two_disk = broadcast::make_two_disk_schedule(n, 0.2, 4);
  const auto sqrt_rule =
      broadcast::make_sqrt_rule_schedule(probs, two_disk->period());

  util::Table analytic({"schedule", "period", "mean expected wait (slots)",
                        "wait per cycle slot"});
  for (const broadcast::BroadcastSchedule* schedule :
       {static_cast<const broadcast::BroadcastSchedule*>(&flat),
        static_cast<const broadcast::BroadcastSchedule*>(two_disk.get()),
        static_cast<const broadcast::BroadcastSchedule*>(sqrt_rule.get())}) {
    const double wait = broadcast::mean_expected_wait(*schedule, probs);
    analytic.add_row({std::string(schedule->name()),
                      (long long)(schedule->period()), wait,
                      wait / double(schedule->period())});
  }
  bench::emit(flags, "Analytic expected waits under zipf access",
              "broadcast_analytic", analytic);

  util::Table table({"schedule", "pull threshold", "mean latency",
                     "broadcast fraction", "pulls", "max pull queue"});
  for (const broadcast::BroadcastSchedule* schedule :
       {static_cast<const broadcast::BroadcastSchedule*>(&flat),
        static_cast<const broadcast::BroadcastSchedule*>(two_disk.get())}) {
    for (std::size_t threshold :
         {std::size_t(0), n / 8, n / 2, schedule->period()}) {
      broadcast::HybridConfig config;
      config.pull_threshold = threshold;
      config.pull_bandwidth = 8;
      config.requests_per_slot = 20;
      config.slots = 4000;
      config.seed = seed;
      const auto result =
          broadcast::simulate_hybrid(*schedule, *access, config);
      table.add_row({std::string(schedule->name()), (long long)(threshold),
                     result.mean_latency, result.broadcast_fraction,
                     (long long)(result.pulls),
                     (long long)(result.max_pull_queue)});
    }
  }
  bench::emit(flags, "Hybrid push/pull simulation (zipf, 20 req/slot)",
              "broadcast_hybrid", table);

  // Paradigm contrast at matched bandwidth: on-demand caching serves at
  // once from a possibly-stale cache.
  exp::PolicySimConfig sim;
  sim.object_count = n;
  sim.access = exp::AccessPattern::kZipf;
  sim.budget = 8;  // same units/tick as the backchannel above
  sim.size_lo = sim.size_hi = 1;
  sim.seed = seed;
  const auto cached = exp::run_policy_sim(sim);
  std::cout << "Contrast: the paper's on-demand cache at the same pull "
               "bandwidth serves instantly (latency 0 slots) with average "
               "recency "
            << cached.average_recency << " and average client score "
            << cached.average_score
            << "; broadcast trades that staleness for waiting.\n";
  return 0;
}
