// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <iostream>
#include <string>

#include "obs/recorder.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace mobi::bench {

/// Prints a titled table to stdout and, when --out=<dir> is given, also
/// writes <dir>/<slug>.csv.
inline void emit(const util::Flags& flags, const std::string& title,
                 const std::string& slug, const util::Table& table) {
  std::cout << "== " << title << " ==\n" << table.to_string() << '\n';
  const std::string dir = flags.get_string("out", "");
  if (!dir.empty()) {
    const std::string path = dir + "/" + slug + ".csv";
    util::write_file(path, table.to_csv());
    std::cout << "(wrote " << path << ")\n\n";
  }
}

/// Writes a recorder's per-tick metrics as <dir>/<slug>_metrics.json when
/// --out=<dir> is given (no-op otherwise), so every figure run can ship
/// its observability series next to the CSV it already emits.
inline void emit_metrics(const util::Flags& flags, const std::string& slug,
                         const obs::SeriesRecorder& recorder) {
  const std::string dir = flags.get_string("out", "");
  if (dir.empty()) return;
  const std::string path = dir + "/" + slug + "_metrics.json";
  util::write_file(path, recorder.to_json());
  std::cout << "(wrote " << path << ": " << recorder.samples()
            << " ticks x " << recorder.series_names().size()
            << " series)\n\n";
}

}  // namespace mobi::bench
