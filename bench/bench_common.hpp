// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <iostream>
#include <string>

#include "util/flags.hpp"
#include "util/table.hpp"

namespace mobi::bench {

/// Prints a titled table to stdout and, when --out=<dir> is given, also
/// writes <dir>/<slug>.csv.
inline void emit(const util::Flags& flags, const std::string& title,
                 const std::string& slug, const util::Table& table) {
  std::cout << "== " << title << " ==\n" << table.to_string() << '\n';
  const std::string dir = flags.get_string("out", "");
  if (!dir.empty()) {
    const std::string path = dir + "/" + slug + ".csv";
    util::write_file(path, table.to_csv());
    std::cout << "(wrote " << path << ")\n\n";
  }
}

}  // namespace mobi::bench
