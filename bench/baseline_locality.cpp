// Workload baseline: temporal locality (LRU stack model). The same
// popularity marginals with increasing reuse make the base-station cache
// hotter: repeated requests find fresh copies, so every policy improves —
// but the request-oblivious async baseline improves least, since locality
// lives entirely in the request stream it ignores.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "object/builders.hpp"
#include "server/remote_server.hpp"
#include "util/rng.hpp"
#include "workload/locality.hpp"
#include "workload/updates.hpp"

namespace {

using namespace mobi;

double run(const std::string& policy, double reuse, std::uint64_t seed) {
  const std::size_t n = 300;
  const object::Catalog catalog = object::make_uniform_catalog(n, 1);
  server::ServerPool servers(catalog, 1);
  core::BaseStationConfig config;
  config.download_budget = 20;
  core::BaseStation station(catalog, servers, cache::make_harmonic_decay(),
                            std::make_unique<core::ReciprocalScorer>(),
                            core::make_policy(policy), config);
  workload::StackAccess access(workload::make_zipf_access(n, 0.8), reuse, 0.6,
                               64);
  auto updates = workload::make_periodic_staggered(n, 4);
  util::Rng rng(seed);

  double score = 0.0;
  std::size_t requests = 0;
  const sim::Tick warmup = 30, ticks = 200;
  for (sim::Tick t = 0; t < ticks; ++t) {
    station.apply_updates(*updates, t);
    workload::RequestBatch batch;
    for (int i = 0; i < 60; ++i) {
      batch.push_back(
          workload::Request{access.sample(rng), 1.0, workload::ClientId(i)});
    }
    const auto result = station.process_batch(batch, t);
    if (t >= warmup) {
      score += result.score_sum;
      requests += result.requests;
    }
  }
  return requests ? score / double(requests) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto seed = std::uint64_t(flags.get_int("seed", 42));

  util::Table table({"reuse probability", "on-demand knapsack",
                     "stale-while-revalidate", "async round-robin"});
  for (double reuse : {0.0, 0.3, 0.6, 0.9}) {
    table.add_row({reuse, run("on-demand-knapsack", reuse, seed),
                   run("stale-while-revalidate", reuse, seed),
                   run("async-round-robin", reuse, seed)});
  }
  mobi::bench::emit(flags,
                    "Temporal locality sweep (stack model over zipf "
                    "marginals, budget 20/tick)",
                    "locality", table);
  std::cout << "Read: locality concentrates requests, so request-driven "
               "policies cover the working set within budget; async gains "
               "nothing from it.\n";
  return 0;
}
