// Google-benchmark microbenchmarks for the cache layer: unbounded cache
// operations, bounded-cache admission under each replacement policy, and
// invalidation report generation/application.
#include <benchmark/benchmark.h>

#include "cache/invalidation.hpp"
#include "cache/replacement.hpp"
#include "object/builders.hpp"
#include "util/rng.hpp"

namespace {

using namespace mobi;

void BM_CacheRefresh(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  cache::Cache store(n, cache::make_harmonic_decay());
  const server::FetchResult fetched{1, 0, 1};
  std::size_t i = 0;
  for (auto _ : state) {
    store.refresh(object::ObjectId(i++ % n), fetched, 0);
  }
}
BENCHMARK(BM_CacheRefresh)->Range(256, 16384);

void BM_CacheRecencyLookup(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  cache::Cache store(n, cache::make_harmonic_decay());
  for (object::ObjectId id = 0; id < n; id += 2) {
    store.refresh(id, server::FetchResult{1, 0, 1}, 0);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.recency_or_zero(object::ObjectId(i++ % n)));
  }
}
BENCHMARK(BM_CacheRecencyLookup)->Range(256, 16384);

void BM_BoundedCacheAdmit(benchmark::State& state) {
  util::Rng rng(1);
  const auto catalog = object::make_random_catalog(2048, 1, 8, rng);
  const cache::ReplacementPolicy policies[] = {
      cache::lru_policy(), cache::lfu_policy(), cache::size_aware_policy(),
      cache::recency_profit_policy()};
  const auto& policy = policies[std::size_t(state.range(0))];
  cache::BoundedCache store(catalog, cache::make_harmonic_decay(), 512,
                            policy);
  const server::FetchResult fetched{1, 0, 1};
  std::size_t i = 0;
  sim::Tick t = 0;
  for (auto _ : state) {
    store.admit(object::ObjectId((i += 37) % 2048), fetched, t++);
  }
  state.SetLabel(policy.name);
}
BENCHMARK(BM_BoundedCacheAdmit)->DenseRange(0, 3);

void BM_InvalidationReport(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  cache::InvalidationLog log(n);
  for (sim::Tick t = 0; t < 100; ++t) {
    for (object::ObjectId id = 0; id < n; id += 5) {
      log.record_update(id, t);
    }
  }
  sim::Tick from = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.make_report(from % 90, from % 90 + 10));
    ++from;
  }
}
BENCHMARK(BM_InvalidationReport)->Range(256, 8192);

}  // namespace

BENCHMARK_MAIN();
