// Ablation: exact DP vs greedy density vs FPTAS on the paper-scale
// solution-space instance. The paper uses exact DP ("can be solved in
// pseudo-polynomial time using dynamic programming; there are also
// polynomial time approximation algorithms") — this quantifies what the
// approximations trade away.
#include <iostream>

#include "bench_common.hpp"
#include "exp/ablation.hpp"
#include "exp/solution_space.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);

  exp::SolutionSpaceConfig config;
  // Moderate size keeps the FPTAS reconstruction within its memory budget.
  config.object_count = std::size_t(flags.get_int("objects", 150));
  config.total_size = object::Units(config.object_count) * 10;
  config.total_requests = object::Units(config.object_count) * 10;
  config.seed = std::uint64_t(flags.get_int("seed", 42));
  const auto inst = exp::build_instance(config);

  std::vector<core::KnapsackItem> items;
  for (const auto& cand : inst.candidates.candidates) {
    items.push_back(core::KnapsackItem{cand.size, cand.profit});
  }
  const object::Units cap = inst.catalog.total_size();
  const std::vector<object::Units> budgets{cap / 10, cap / 4, cap / 2,
                                           3 * cap / 4};
  const double epsilon = flags.get_double("epsilon", 0.1);
  const auto rows = exp::compare_solvers(items, budgets, epsilon);

  util::Table table({"solver", "budget", "value", "ratio to optimal",
                     "time (us)"});
  for (const auto& row : rows) {
    table.add_row({row.solver, (long long)(row.budget), row.value,
                   row.ratio_to_optimal, row.micros});
  }
  bench::emit(flags,
              "Ablation: knapsack solver quality and latency (" +
                  std::to_string(config.object_count) + " objects)",
              "ablation_solvers", table);
  return 0;
}
