// Figure 3 variant the paper omitted (§3.2: "our results were similar for
// varying object sizes and skew in popularity"): the recency-vs-budget
// comparison under zipf-skewed access instead of uniform. The shape claim
// to check: on-demand still dominates async at every budget and the
// crossover structure is unchanged.
#include <iostream>

#include "bench_common.hpp"
#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "object/builders.hpp"
#include "server/remote_server.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/trace.hpp"
#include "workload/updates.hpp"

namespace {

using namespace mobi;

double run_once(const workload::Trace& trace, std::size_t object_count,
                sim::Tick update_period, object::Units budget,
                bool on_demand) {
  const object::Catalog catalog =
      object::make_uniform_catalog(object_count, 1);
  server::ServerPool servers(catalog, 1);
  core::BaseStationConfig config;
  config.download_budget = budget;
  config.downlink_capacity = 100;
  std::unique_ptr<core::DownloadPolicy> policy;
  if (on_demand) {
    policy = std::make_unique<core::OnDemandLowestRecencyPolicy>();
  } else {
    policy = std::make_unique<core::AsyncRoundRobinPolicy>();
  }
  core::BaseStation station(catalog, servers, cache::make_harmonic_decay(),
                            std::make_unique<core::ReciprocalScorer>(),
                            std::move(policy), config);
  auto updates =
      workload::make_periodic_synchronized(object_count, update_period);
  const sim::Tick warmup = 50, measured = 100;
  double recency = 0.0;
  std::size_t count = 0;
  for (sim::Tick t = 0; t < warmup + measured; ++t) {
    station.apply_updates(*updates, t);
    const auto result = station.process_batch(trace.batch_at(t), t);
    if (t >= warmup) {
      recency += result.recency_sum;
      count += result.requests;
    }
  }
  return count ? recency / double(count) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto seed = std::uint64_t(flags.get_int("seed", 42));
  const std::size_t n = 500;

  for (const sim::Tick period : {10, 1}) {
    util::Rng rng(seed);
    workload::RequestGenerator generator(workload::make_zipf_access(n, 1.0),
                                         workload::ConstantTarget{1.0}, 100,
                                         rng.split());
    const workload::Trace trace = workload::generate_trace(generator, 150);

    util::Table table({"downloaded/tick", "on-demand avg recency",
                       "async avg recency"});
    for (object::Units budget : {1, 5, 10, 20, 40, 60, 80, 100}) {
      table.add_row({(long long)(budget),
                     run_once(trace, n, period, budget, true),
                     run_once(trace, n, period, budget, false)});
    }
    mobi::bench::emit(flags,
                      std::string("Figure 3 variant: zipf access, ") +
                          (period == 10 ? "low" : "high") +
                          " update frequency",
                      period == 10 ? "fig3_var_zipf_low" : "fig3_var_zipf_high",
                      table);
  }
  return 0;
}
