// Figure 2 (paper §3.1): amount of data downloaded to provide the most
// recent data to all clients, asynchronous vs on-demand, for varying
// request rates and skew. Paper setup: 500 unit-size objects, updates
// every 5 time units, 100 warmup + 500 measured time units; async bound =
// 50,000 units. Expected shape: on-demand <= async everywhere; savings
// grow with skew (zipf < rank-linear < uniform); the uniform curve
// approaches the async bound as the request rate nears 300-500.
#include <iostream>

#include "bench_common.hpp"
#include "exp/fig2.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);

  exp::Fig2Config config;
  config.seed = std::uint64_t(flags.get_int("seed", 42));
  if (flags.get_bool("quick", false)) {
    config.object_count = 100;
    config.warmup_ticks = 20;
    config.measure_ticks = 100;
    config.request_rates = {0, 25, 50, 100};
  }
  const auto result = exp::run_fig2(config);

  util::Table table({"requests/tick", "asynchronous", "on-demand uniform",
                     "on-demand rank-linear", "on-demand zipf"},
                    0);
  for (std::size_t i = 0; i < config.request_rates.size(); ++i) {
    table.add_row({(long long)(config.request_rates[i]),
                   (long long)(result.async_downloaded),
                   (long long)(result.curves[0].points[i].on_demand_downloaded),
                   (long long)(result.curves[1].points[i].on_demand_downloaded),
                   (long long)(result.curves[2].points[i].on_demand_downloaded)});
  }
  bench::emit(flags,
              "Figure 2: units downloaded in the measure window (" +
                  std::to_string(config.measure_ticks) + " ticks, " +
                  std::to_string(config.object_count) + " objects)",
              "fig2", table);

  // Per-tick observability for one representative point (zipf at the
  // median request rate) alongside the aggregate curves.
  if (flags.has("out")) {
    obs::MetricsRegistry registry;
    obs::SeriesRecorder recorder(registry);
    const std::size_t rate =
        config.request_rates[config.request_rates.size() / 2];
    exp::run_fig2_once(config, exp::AccessPattern::kZipf, rate, &recorder);
    bench::emit_metrics(flags, "fig2", recorder);
  }
  return 0;
}
