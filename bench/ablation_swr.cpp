// Ablation: the paper's update-aware knapsack policy vs the TTL-based
// stale-while-revalidate scheduling that modern proxies use. SWR needs no
// update channel, but the TTL lies in both directions: it refreshes
// unchanged objects (wasted bandwidth) and trusts changed ones (stale
// serves). The gap vs the knapsack policy quantifies the value of update
// knowledge, as a function of how well the TTL matches the true update
// period.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "core/swr_policy.hpp"
#include "object/builders.hpp"
#include "server/remote_server.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/updates.hpp"

namespace {

using namespace mobi;

struct Outcome {
  double avg_score = 0.0;
  object::Units downloaded = 0;
};

Outcome run(std::unique_ptr<core::DownloadPolicy> policy,
            sim::Tick update_period, std::uint64_t seed) {
  const std::size_t n = 200;
  util::Rng rng(seed);
  const object::Catalog catalog = object::make_uniform_catalog(n, 1);
  server::ServerPool servers(catalog, 1);
  core::BaseStationConfig config;
  config.download_budget = 30;
  core::BaseStation station(catalog, servers, cache::make_harmonic_decay(),
                            std::make_unique<core::ReciprocalScorer>(),
                            std::move(policy), config);
  workload::RequestGenerator generator(workload::make_zipf_access(n, 1.0),
                                       workload::ConstantTarget{1.0}, 60,
                                       rng.split());
  auto updates = workload::make_periodic_staggered(n, update_period);
  const sim::Tick warmup = 30, ticks = 230;
  double score = 0.0;
  std::size_t requests = 0;
  Outcome outcome;
  for (sim::Tick t = 0; t < ticks; ++t) {
    station.apply_updates(*updates, t);
    const auto result = station.process_batch(generator.next_batch(), t);
    if (t >= warmup) {
      score += result.score_sum;
      requests += result.requests;
      outcome.downloaded += result.units_downloaded;
    }
  }
  outcome.avg_score = requests ? score / double(requests) : 0.0;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto seed = std::uint64_t(flags.get_int("seed", 42));
  const sim::Tick update_period = 4;  // ground truth the TTL tries to guess

  util::Table table({"policy", "avg score", "units downloaded"});
  {
    const auto outcome =
        run(core::make_policy("on-demand-knapsack"), update_period, seed);
    table.add_row({std::string("on-demand-knapsack (update-aware)"),
                   outcome.avg_score, (long long)(outcome.downloaded)});
  }
  for (sim::Tick ttl : {1, 2, 4, 8, 16}) {
    const auto outcome =
        run(std::make_unique<core::StaleWhileRevalidatePolicy>(ttl),
            update_period, seed);
    table.add_row({"stale-while-revalidate ttl=" + std::to_string(ttl),
                   outcome.avg_score, (long long)(outcome.downloaded)});
  }
  mobi::bench::emit(flags,
                    "Ablation: update-aware knapsack vs TTL "
                    "stale-while-revalidate (true update period = 4)",
                    "ablation_swr", table);
  std::cout << "Read: TTL < 4 wastes bandwidth refreshing unchanged "
               "objects; TTL > 4 serves stale silently; even the best TTL "
               "trails the update-aware knapsack.\n";
  return 0;
}
