// Two-tier extension: mobile clients with local caches (Barbara &
// Imielinski style invalidation listening, paper §5 [8]) in front of the
// on-demand base station. Sweeps the client-cache size, the invalidation
// report period, and the disconnect rate, reporting how much traffic the
// client tier absorbs and what sleeps cost.
#include <iostream>

#include "bench_common.hpp"
#include "client/cell.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  const auto seed = std::uint64_t(flags.get_int("seed", 42));

  client::CellConfig base;
  base.seed = seed;

  util::Table by_cache({"client cache (units)", "local hit rate",
                        "avg score", "base downloads (units)"});
  for (object::Units cache_units : {4, 10, 20, 40, 80}) {
    auto config = base;
    config.client.cache_units = cache_units;
    const auto result = client::run_cell(config);
    by_cache.add_row({(long long)(cache_units), result.local_hit_rate(),
                      result.average_score(),
                      (long long)(result.base_downloaded)});
  }
  bench::emit(flags, "Client-cache size sweep (no disconnects)",
              "client_cache_size", by_cache);

  util::Table by_report({"report period (ticks)", "local hit rate",
                         "avg score", "sleeper drops"});
  for (sim::Tick period : {1, 2, 5, 10, 20}) {
    auto config = base;
    config.report_period = period;
    config.client.cache_units = 40;
    const auto result = client::run_cell(config);
    by_report.add_row({(long long)(period), result.local_hit_rate(),
                       result.average_score(),
                       (long long)(result.sleeper_drops)});
  }
  bench::emit(flags, "Invalidation report period sweep",
              "client_report_period", by_report);

  util::Table by_disconnect({"disconnect rate", "disconnect ticks",
                             "sleeper drops", "local hit rate", "avg score"});
  for (double rate : {0.0, 0.02, 0.05, 0.1, 0.2}) {
    auto config = base;
    config.client.cache_units = 40;
    config.client.disconnect_rate = rate;
    config.client.reconnect_rate = 0.3;
    const auto result = client::run_cell(config);
    by_disconnect.add_row({rate, (long long)(result.disconnect_ticks),
                           (long long)(result.sleeper_drops),
                           result.local_hit_rate(), result.average_score()});
  }
  bench::emit(flags,
              "Disconnect-rate sweep (sleeper rule drops local caches on "
              "reconnect after a missed report window)",
              "client_disconnects", by_disconnect);
  return 0;
}
