// Substrate baseline: (1, m) broadcast indexing — access latency vs
// tuning time (energy) as the number of interleaved index copies varies.
// Reproduces the classic shape: latency is U-shaped in m with its minimum
// at m* = sqrt(D/I), while tuning time is flat and tiny compared with the
// unindexed broadcast where clients must listen for the whole wait.
#include <iostream>

#include "bench_common.hpp"
#include "broadcast/indexing.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  const std::size_t data_slots = std::size_t(flags.get_int("data", 2000));
  const std::size_t index_slots = std::size_t(flags.get_int("index", 20));

  util::Table table({"index copies (m)", "cycle length",
                     "expected latency (slots)", "tuning time (slots)"});
  const std::size_t best_m = broadcast::optimal_index_copies(data_slots,
                                                             index_slots);
  for (std::size_t m : {std::size_t(1), std::size_t(2), std::size_t(5),
                        best_m, std::size_t(25), std::size_t(50),
                        std::size_t(100)}) {
    broadcast::IndexedBroadcastConfig config;
    config.data_slots = data_slots;
    config.index_slots = index_slots;
    config.index_copies = m;
    table.add_row({(long long)(m), (long long)(broadcast::cycle_length(config)),
                   broadcast::expected_access_latency(config),
                   broadcast::expected_tuning_time(config)});
  }
  bench::emit(flags,
              "(1, m) indexing on air: D = " + std::to_string(data_slots) +
                  ", I = " + std::to_string(index_slots) +
                  ", optimal m = " + std::to_string(best_m),
              "indexing", table);
  std::cout << "Unindexed broadcast for comparison: latency = tuning = "
            << broadcast::unindexed_access_latency(data_slots, 1)
            << " slots — indexing trades a slightly longer wait for a ~"
            << long(broadcast::unindexed_access_latency(data_slots, 1) /
                    (1.0 + double(index_slots) + 1.0))
            << "x cut in listening energy.\n";
  return 0;
}
