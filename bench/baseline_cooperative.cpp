// Extension baseline: cooperative caching between neighboring base
// stations (hierarchical caching in the spirit of Harvest [10], paper §5).
// Sweeps the neighbor-recency acceptance threshold and the interest
// overlap, reporting how much origin (fixed-network) bandwidth neighbors
// absorb and what the relayed staleness costs in client score.
#include <iostream>

#include "bench_common.hpp"
#include "coop/cooperative.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  const auto seed = std::uint64_t(flags.get_int("seed", 42));

  coop::CoopConfig base;
  base.seed = seed;

  {
    util::Table table({"mode", "threshold", "avg score", "origin units",
                       "neighbor units", "neighbor fraction"});
    {
      auto config = base;
      config.mode = coop::FetchMode::kOriginOnly;
      const auto result = coop::run_cooperative(config);
      table.add_row({std::string("origin-only"), std::string("-"),
                     result.average_score(), (long long)(result.origin_units),
                     (long long)(result.neighbor_units),
                     result.neighbor_fraction()});
    }
    for (double threshold : {0.3, 0.5, 0.8, 0.99}) {
      auto config = base;
      config.mode = coop::FetchMode::kNeighborFirst;
      config.neighbor_recency_threshold = threshold;
      const auto result = coop::run_cooperative(config);
      table.add_row({std::string("neighbor-first"), std::to_string(threshold),
                     result.average_score(), (long long)(result.origin_units),
                     (long long)(result.neighbor_units),
                     result.neighbor_fraction()});
    }
    bench::emit(flags,
                "Cooperative caching: acceptance-threshold sweep (3 cells, "
                "shared zipf interests)",
                "coop_threshold", table);
  }

  {
    util::Table table({"interests", "avg score", "origin units",
                       "neighbor fraction"});
    for (const bool distinct : {false, true}) {
      auto config = base;
      config.mode = coop::FetchMode::kNeighborFirst;
      config.distinct_interests = distinct;
      const auto result = coop::run_cooperative(config);
      table.add_row({std::string(distinct ? "distinct" : "shared"),
                     result.average_score(), (long long)(result.origin_units),
                     result.neighbor_fraction()});
    }
    bench::emit(flags,
                "Cooperative caching: interest overlap determines how much "
                "neighbors can help",
                "coop_overlap", table);
  }
  return 0;
}
