// Long-horizon soak: windowed runs at a ramped fault rate, trending the
// resilience (fault.*), scale-out (mc.*) and sim-time latency (lat.*)
// series window over window. Expected shape: graceful degradation — as
// the injected fault rate climbs, failed fetches / degraded serves /
// ticks-to-serve trend up and recency trends down, with no stall or
// cliff to zero. With --out=<dir> the full windowed series ship as
// <dir>/soak_metrics.json (schema mobicache.soak.v1); tools/metrics_diff
// compares that artifact against the checked-in golden as the CI gate.
//
// Online observability (ISSUE 10):
//   --obs-windows=N  N-tick tumbling WindowAggregator on every leg; with
//                    --out, frames ship as <dir>/soak_windows.json
//                    (schema mobicache.windows.v1, gated against
//                    results/golden_windows.json with the wall-clock
//                    prof.phase.*.wall_ns* columns masked).
//   --profile        driver-thread PhaseProfiler across all legs; with
//                    --flame=<path>, collapsed stacks land there
//                    (pipe through flamegraph.pl).
//   --slo            attach exp::default_soak_slos() (needs
//                    --obs-windows); alert totals print below the table
//                    and stream as slo_alert events into --trace-jsonl.
// Every sim-time series in soak_metrics.json is bit-identical with all
// three switches on or off — observation is read-only.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "exp/soak.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);

  exp::SoakConfig config;
  config.seed = std::uint64_t(flags.get_int("seed", 42));
  config.windows = std::size_t(flags.get_int("windows", int(config.windows)));
  config.cell_count =
      std::size_t(flags.get_int("cells", int(config.cell_count)));
  if (flags.get_bool("quick", false)) {
    config.windows = 4;
    config.window_ticks = 60;
    config.window_warmup = 15;
    config.base.object_count = 100;
    config.base.requests_per_tick = 30;
    config.cell_count = 2;
    config.cell.object_count = 80;
    config.cell.client_count = 24;
  }

  // Optional streamed trace: every station-leg event across all windows
  // lands in this JSONL file; the soak metrics stay bit-identical to a
  // sinkless run (dual-write), which the CI streamed-soak leg pins by
  // diffing against the buffered golden.
  config.trace_jsonl = flags.get_string("trace-jsonl", "");

  config.obs_window_ticks = sim::Tick(flags.get_int("obs-windows", 0));
  config.profile = flags.get_bool("profile", false);
  if (flags.get_bool("slo", false)) config.slos = exp::default_soak_slos();

  const int threads = int(flags.get_int("threads", 0));
  std::optional<util::ThreadPool> pool;
  if (threads > 0) pool.emplace(std::size_t(threads));

  const exp::SoakResult result =
      exp::run_soak(config, pool ? &*pool : nullptr);

  util::Table table({"window", "fault rate", "score", "recency",
                     "failed fetches", "degraded", "ticks-to-serve",
                     "queue wait", "mc score", "trace events"});
  for (std::size_t w = 0; w < result.windows; ++w) {
    table.add_row(
        {(long long)(w), result.at("fault_rate")[w], result.at("score.avg")[w],
         result.at("recency.avg")[w],
         (long long)(result.at("failed_fetches")[w]),
         (long long)(result.at("degraded_serves")[w]),
         result.at("lat.ticks_to_serve.mean")[w],
         result.at("lat.queue_wait.mean")[w],
         config.cell_count ? result.at("mc.average_score")[w] : 0.0,
         (long long)(result.at("trace.events")[w])});
  }
  bench::emit(flags, "Soak: windowed trends under a ramped fault rate",
              "soak", table);

  if (!config.slos.empty()) {
    std::cout << "SLO: " << result.slo_evaluations << " evaluations, "
              << result.slo_breaches << " breaches, " << result.slo_alerts
              << " alerts\n";
  }

  const std::string dir = flags.get_string("out", "");
  if (!dir.empty()) {
    const std::string path = dir + "/soak_metrics.json";
    util::write_file(path, result.to_json());
    std::cout << "(wrote " << path << ": " << result.windows << " windows x "
              << result.series.size() << " series)\n";
    if (config.obs_window_ticks > 0) {
      const std::string wpath = dir + "/soak_windows.json";
      util::write_file(wpath, result.windows_to_json());
      std::cout << "(wrote " << wpath << ": " << result.window_frames
                << " frames x " << result.window_series.size()
                << " columns)\n";
    }
  }
  const std::string flame = flags.get_string("flame", "");
  if (!flame.empty()) {
    util::write_file(flame, result.flamegraph);
    std::cout << "(wrote " << flame << ": collapsed stacks, feed to "
              << "flamegraph.pl)\n";
  }
  return 0;
}
