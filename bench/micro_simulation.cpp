// Google-benchmark microbenchmarks for the simulation substrate: access
// sampling, cache decay, base-station tick processing, and the event
// kernel — the per-tick costs that bound how large a scenario the
// simulator can run.
#include <benchmark/benchmark.h>

#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "object/builders.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"

namespace {

using namespace mobi;

void BM_ZipfSampling(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const auto access = workload::make_zipf_access(n, 1.0);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(access->sample(rng));
  }
}
BENCHMARK(BM_ZipfSampling)->Range(64, 65536);

void BM_CacheDecaySweep(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  cache::Cache cache(n, cache::make_harmonic_decay());
  for (object::ObjectId id = 0; id < n; ++id) {
    cache.refresh(id, server::FetchResult{1, 0, 1}, 0);
  }
  for (auto _ : state) {
    for (object::ObjectId id = 0; id < n; ++id) cache.on_server_update(id);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_CacheDecaySweep)->Range(128, 8192);

void BM_BaseStationTick(benchmark::State& state) {
  const auto objects = std::size_t(state.range(0));
  util::Rng rng(1);
  const auto catalog = object::make_random_catalog(objects, 1, 10, rng);
  server::ServerPool servers(catalog, 1);
  core::BaseStationConfig config;
  config.download_budget = object::Units(objects) / 4;
  core::BaseStation station(catalog, servers, cache::make_harmonic_decay(),
                            std::make_unique<core::ReciprocalScorer>(),
                            core::make_policy("on-demand-knapsack"), config);
  workload::RequestGenerator generator(
      workload::make_zipf_access(objects, 1.0), workload::ConstantTarget{1.0},
      objects / 2, rng.split());
  sim::Tick t = 0;
  for (auto _ : state) {
    station.process_batch(generator.next_batch(), t++);
  }
}
BENCHMARK(BM_BaseStationTick)->Range(64, 1024);

// Same tick loop with the full observability stack attached (registry on
// station + cache + downlink + servers, recorder sampling every tick).
// Compare against BM_BaseStationTick to measure instrumentation overhead;
// the null-registry path of that benchmark is the <5% regression budget.
void BM_BaseStationTickInstrumented(benchmark::State& state) {
  const auto objects = std::size_t(state.range(0));
  util::Rng rng(1);
  const auto catalog = object::make_random_catalog(objects, 1, 10, rng);
  server::ServerPool servers(catalog, 1);
  core::BaseStationConfig config;
  config.download_budget = object::Units(objects) / 4;
  core::BaseStation station(catalog, servers, cache::make_harmonic_decay(),
                            std::make_unique<core::ReciprocalScorer>(),
                            core::make_policy("on-demand-knapsack"), config);
  obs::MetricsRegistry registry;
  obs::SeriesRecorder recorder(registry);
  station.set_metrics(&registry);
  servers.set_metrics(&registry);
  workload::RequestGenerator generator(
      workload::make_zipf_access(objects, 1.0), workload::ConstantTarget{1.0},
      objects / 2, rng.split());
  sim::Tick t = 0;
  for (auto _ : state) {
    station.process_batch(generator.next_batch(), t);
    recorder.sample(t);
    ++t;
  }
  state.counters["series"] = double(recorder.series_names().size());
}
BENCHMARK(BM_BaseStationTickInstrumented)->Range(64, 1024);

void BM_EventKernel(benchmark::State& state) {
  const auto events = std::size_t(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    for (std::size_t i = 0; i < events; ++i) {
      simulator.schedule_at(double(i % 97), [] {});
    }
    simulator.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(events));
}
BENCHMARK(BM_EventKernel)->Range(1024, 65536);

}  // namespace

BENCHMARK_MAIN();
