// Google-benchmark microbenchmarks for the simulation substrate: access
// sampling, cache decay, base-station tick processing, and the event
// kernel — the per-tick costs that bound how large a scenario the
// simulator can run.
//
// The binary also always runs the steady-state tick hot-path measurement
// (docs/performance.md): the BM_BaseStationTick workload timed in plain
// wall-clock rounds, with ticks/sec recorded per round. --quick runs only
// that measurement; --out=<dir> writes it as mobicache.metrics.v1 JSON
// (<dir>/micro_simulation_metrics.json) for BENCH_hotpath.json trending.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string_view>

#include "bench_common.hpp"

#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "object/builders.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"

namespace {

using namespace mobi;

void BM_ZipfSampling(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const auto access = workload::make_zipf_access(n, 1.0);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(access->sample(rng));
  }
}
BENCHMARK(BM_ZipfSampling)->Range(64, 65536);

void BM_CacheDecaySweep(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  cache::Cache cache(n, cache::make_harmonic_decay());
  for (object::ObjectId id = 0; id < n; ++id) {
    cache.refresh(id, server::FetchResult{1, 0, 1}, 0);
  }
  for (auto _ : state) {
    for (object::ObjectId id = 0; id < n; ++id) cache.on_server_update(id);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_CacheDecaySweep)->Range(128, 8192);

void BM_BaseStationTick(benchmark::State& state) {
  const auto objects = std::size_t(state.range(0));
  util::Rng rng(1);
  const auto catalog = object::make_random_catalog(objects, 1, 10, rng);
  server::ServerPool servers(catalog, 1);
  core::BaseStationConfig config;
  config.download_budget = object::Units(objects) / 4;
  core::BaseStation station(catalog, servers, cache::make_harmonic_decay(),
                            std::make_unique<core::ReciprocalScorer>(),
                            core::make_policy("on-demand-knapsack"), config);
  workload::RequestGenerator generator(
      workload::make_zipf_access(objects, 1.0), workload::ConstantTarget{1.0},
      objects / 2, rng.split());
  sim::Tick t = 0;
  for (auto _ : state) {
    station.process_batch(generator.next_batch(), t++);
  }
}
BENCHMARK(BM_BaseStationTick)->Range(64, 1024);

// Same tick loop with the full observability stack attached (registry on
// station + cache + downlink + servers, recorder sampling every tick).
// Compare against BM_BaseStationTick to measure instrumentation overhead;
// the null-registry path of that benchmark is the <5% regression budget.
void BM_BaseStationTickInstrumented(benchmark::State& state) {
  const auto objects = std::size_t(state.range(0));
  util::Rng rng(1);
  const auto catalog = object::make_random_catalog(objects, 1, 10, rng);
  server::ServerPool servers(catalog, 1);
  core::BaseStationConfig config;
  config.download_budget = object::Units(objects) / 4;
  core::BaseStation station(catalog, servers, cache::make_harmonic_decay(),
                            std::make_unique<core::ReciprocalScorer>(),
                            core::make_policy("on-demand-knapsack"), config);
  obs::MetricsRegistry registry;
  obs::SeriesRecorder recorder(registry);
  station.set_metrics(&registry);
  servers.set_metrics(&registry);
  workload::RequestGenerator generator(
      workload::make_zipf_access(objects, 1.0), workload::ConstantTarget{1.0},
      objects / 2, rng.split());
  sim::Tick t = 0;
  for (auto _ : state) {
    station.process_batch(generator.next_batch(), t);
    recorder.sample(t);
    ++t;
  }
  state.counters["series"] = double(recorder.series_names().size());
}
BENCHMARK(BM_BaseStationTickInstrumented)->Range(64, 1024);

void BM_EventKernel(benchmark::State& state) {
  const auto events = std::size_t(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    for (std::size_t i = 0; i < events; ++i) {
      simulator.schedule_at(double(i % 97), [] {});
    }
    simulator.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(events));
}
BENCHMARK(BM_EventKernel)->Range(1024, 65536);

// Wall-clock rounds of the default BM_BaseStationTick workload (512
// objects, budget 128, zipf(1.0) batches of 256, exact-DP policy) — the
// number BENCH_hotpath.json trends across PRs.
void run_hotpath(const util::Flags& flags) {
  using Clock = std::chrono::steady_clock;
  const bool quick = flags.get_bool("quick", false);
  const auto objects = std::size_t(flags.get_int("hot_objects", 512));
  const int rounds = int(flags.get_int("hot_rounds", quick ? 3 : 12));
  const int ticks = int(flags.get_int("hot_ticks", quick ? 200 : 2000));

  util::Rng rng(1);
  const auto catalog = object::make_random_catalog(objects, 1, 10, rng);
  server::ServerPool servers(catalog, 1);
  core::BaseStationConfig config;
  config.download_budget = object::Units(objects) / 4;
  core::BaseStation station(catalog, servers, cache::make_harmonic_decay(),
                            std::make_unique<core::ReciprocalScorer>(),
                            core::make_policy("on-demand-knapsack"), config);
  workload::RequestGenerator generator(
      workload::make_zipf_access(objects, 1.0), workload::ConstantTarget{1.0},
      objects / 2, rng.split());
  std::vector<workload::RequestBatch> batches;
  for (int b = 0; b < 64; ++b) batches.push_back(generator.next_batch());

  obs::MetricsRegistry registry;
  auto& ns_gauge = registry.register_gauge("hotpath.ns_per_tick");
  auto& tps_gauge = registry.register_gauge("hotpath.ticks_per_sec");
  obs::SeriesRecorder recorder(registry);

  sim::Tick t = 0;
  // Warm-up: one pass over the batch pool fills caches and scratch
  // buffers so the measured rounds see the steady state.
  for (const auto& batch : batches) station.process_batch(batch, t++);
  double total_ns = 0.0;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = Clock::now();
    for (int i = 0; i < ticks; ++i) {
      station.process_batch(batches[std::size_t(i) % batches.size()], t++);
    }
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count() /
        ticks;
    total_ns += ns;
    ns_gauge.set(ns);
    tps_gauge.set(1e9 / ns);
    recorder.sample(sim::Tick(r));
  }
  const double mean_ns = total_ns / rounds;
  std::printf(
      "== micro_simulation hotpath (steady-state tick, %zu objects) ==\n"
      "%.0f ns/tick (%.0f ticks/sec)\n\n",
      objects, mean_ns, 1e9 / mean_ns);
  bench::emit_metrics(flags, "micro_simulation", recorder);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  run_hotpath(flags);
  if (flags.get_bool("quick", false)) return 0;
  // Strip our flags before handing argv to google-benchmark (it rejects
  // unknown --flags).
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--quick" || arg.rfind("--out", 0) == 0 ||
        arg.rfind("--hot_", 0) == 0) {
      if ((arg == "--out" || arg.rfind("--hot_", 0) == 0) &&
          arg.find('=') == std::string_view::npos && i + 1 < argc) {
        ++i;  // skip the detached value token
      }
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = int(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
