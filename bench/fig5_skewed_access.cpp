// Figure 5 (paper §4.2.2): Average Score vs units downloaded under skewed
// access. Panel (a): small objects hot (negative correlation between
// Object Size and NumRequests); panel (b): large objects hot (positive).
// Each panel sweeps the Size/Recency correlation. Expected shape: panel
// (a) converges quickly (scores > ~0.97 by ~2000 of 5000 units); panel (b)
// climbs steadily and only converges near ~3500 units — large hot objects
// reward a large download budget.
#include <iostream>

#include "bench_common.hpp"
#include "exp/solution_space.hpp"

namespace {

void run_panel(const mobi::util::Flags& flags, const char* title,
               const char* slug, mobi::object::Correlation size_vs_requests,
               std::uint64_t seed, mobi::object::Units step) {
  using namespace mobi;
  exp::SolutionSpaceConfig base;
  base.size_vs_requests = size_vs_requests;
  base.seed = seed;

  std::vector<std::vector<exp::CurvePoint>> curves;
  std::vector<object::Units> convergence;
  for (auto corr : {object::Correlation::kPositive,
                    object::Correlation::kNegative,
                    object::Correlation::kNone}) {
    auto config = base;
    config.size_vs_recency = corr;
    const auto inst = exp::build_instance(config);
    curves.push_back(exp::average_score_curve(inst, step));
    convergence.push_back(exp::budget_reaching_score(inst, 0.97, 50));
  }

  util::Table table({"units downloaded", "large objs high scores",
                     "large objs low scores", "no correlation"});
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    table.add_row({(long long)(curves[0][i].budget),
                   curves[0][i].average_score, curves[1][i].average_score,
                   curves[2][i].average_score});
  }
  bench::emit(flags, title, slug, table);
  std::cout << "  budget where score reaches 0.97 (the dotted-rectangle "
               "corner): high="
            << convergence[0] << " low=" << convergence[1]
            << " none=" << convergence[2] << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  const auto seed = std::uint64_t(flags.get_int("seed", 42));
  const auto step = object::Units(flags.get_int("step", 250));
  run_panel(flags, "Figure 5(a): small objects hot (Size vs NumRequests negative)",
            "fig5a", object::Correlation::kNegative, seed, step);
  run_panel(flags, "Figure 5(b): large objects hot (Size vs NumRequests positive)",
            "fig5b", object::Correlation::kPositive, seed, step);
  return 0;
}
