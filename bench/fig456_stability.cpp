// Stability of the §4 conclusions: the paper draws Figures 4-6 from
// single synthetic instances. This bench regenerates each panel's
// convergence corner (smallest budget reaching Average Score 0.97) across
// independently seeded instances and reports mean ± 95% CI — verifying
// the orderings the paper reads off the dotted rectangles are properties
// of the correlation regimes, not of one lucky instance.
#include <iostream>

#include "bench_common.hpp"
#include "exp/replicate.hpp"
#include "exp/solution_space.hpp"

namespace {

using namespace mobi;

exp::Replication corner(object::Correlation size_vs_requests,
                        object::Correlation size_vs_recency,
                        const std::vector<std::uint64_t>& seeds) {
  return exp::replicate_parallel(
      [&](std::uint64_t seed) {
        exp::SolutionSpaceConfig config;
        config.size_vs_requests = size_vs_requests;
        config.size_vs_recency = size_vs_recency;
        config.seed = seed;
        return double(
            exp::budget_reaching_score(exp::build_instance(config), 0.97, 50));
      },
      seeds);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto seeds = exp::seed_ladder(std::uint64_t(flags.get_int("seed", 42)),
                                      std::size_t(flags.get_int("runs", 5)));

  util::Table table({"size~requests", "size~recency",
                     "corner budget mean", "ci95", "min", "max"});
  const auto correlations = {object::Correlation::kNegative,
                             object::Correlation::kNone,
                             object::Correlation::kPositive};
  for (auto req : correlations) {
    for (auto rec : correlations) {
      const auto stats = corner(req, rec, seeds);
      table.add_row({std::string(object::correlation_name(req)),
                     std::string(object::correlation_name(rec)), stats.mean,
                     stats.ci95_halfwidth, stats.min, stats.max});
    }
  }
  mobi::bench::emit(flags,
                    "Figures 4-6 stability: 0.97-score corner budgets across " +
                        std::to_string(seeds.size()) + " instances",
                    "fig456_stability", table);
  std::cout << "Read: within each size~recency column, 'negative' "
               "size~requests (small objects hot) needs the least budget "
               "and 'positive' the most — the paper's Fig 5/6 ordering, "
               "stable across instances.\n";
  return 0;
}
