// Coherent cooperative caching sweep: consistency mode x download policy.
// Each row runs one cluster configuration through run_cooperative —
// origin-only and coherence-off neighbor-first reproduce the pre-coherence
// baselines; invalidate / propagate / lease run the directory protocol
// with the discounted peer tier engaged. Expected shape: the peer tier
// absorbs origin bandwidth wherever interests overlap; propagate buys the
// highest recency at continuous wire cost, invalidate trades refetch
// storms for zero staleness, lease lands in between with bounded
// staleness and no per-update traffic. The async-round-robin rows show
// the same protocol under a non-knapsack policy for scale.
//
// With --out=<dir> the propagate run additionally ships its per-tick
// coop.* / coop.coherence.* series as <dir>/coop_metrics.json (schema
// mobicache.metrics.v1); tools/metrics_diff compares that artifact
// against results/golden_coop.json as the CI gate.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "coop/cooperative.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace {

mobi::coop::CoopConfig base_config(const mobi::util::Flags& flags) {
  mobi::coop::CoopConfig config;
  config.seed = std::uint64_t(flags.get_int("seed", 42));
  config.cell_count = 4;
  config.coherence.lease_ticks = 6;
  if (flags.get_bool("quick", false)) {
    config.cell_count = 3;
    config.object_count = 80;
    config.requests_per_tick_per_cell = 20;
    config.warmup_ticks = 10;
    config.measure_ticks = 60;
    config.budget_per_cell = 30;
    config.coherence.lease_ticks = 4;
  }
  return config;
}

struct Variant {
  const char* name;
  mobi::coop::FetchMode mode;
  bool coherent;
  mobi::coop::ConsistencyMode consistency;
};

constexpr Variant kVariants[] = {
    {"origin-only", mobi::coop::FetchMode::kOriginOnly, false,
     mobi::coop::ConsistencyMode::kInvalidate},
    {"neighbor-first", mobi::coop::FetchMode::kNeighborFirst, false,
     mobi::coop::ConsistencyMode::kInvalidate},
    {"invalidate", mobi::coop::FetchMode::kNeighborFirst, true,
     mobi::coop::ConsistencyMode::kInvalidate},
    {"propagate", mobi::coop::FetchMode::kNeighborFirst, true,
     mobi::coop::ConsistencyMode::kPropagate},
    {"lease", mobi::coop::FetchMode::kNeighborFirst, true,
     mobi::coop::ConsistencyMode::kLease},
};

mobi::coop::CoopConfig variant_config(const mobi::coop::CoopConfig& base,
                                      const Variant& variant,
                                      const std::string& policy) {
  mobi::coop::CoopConfig config = base;
  config.mode = variant.mode;
  config.policy = policy;
  config.coherence.enabled = variant.coherent;
  config.coherence.mode = variant.consistency;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  const coop::CoopConfig base = base_config(flags);

  util::Table table({"policy", "variant", "avg score", "avg recency",
                     "origin units", "neighbor units", "peer hits",
                     "peer units", "proto units", "invalidations",
                     "propagations", "lease expiries"});
  for (const std::string& policy :
       {std::string("on-demand-knapsack"), std::string("async-round-robin")}) {
    for (const Variant& variant : kVariants) {
      const auto result =
          coop::run_cooperative(variant_config(base, variant, policy));
      table.add_row({policy, std::string(variant.name),
                     result.average_score(), result.average_recency(),
                     (long long)(result.origin_units),
                     (long long)(result.neighbor_units),
                     (long long)(result.peer_hits),
                     (long long)(result.peer_fetch_units),
                     (long long)(result.coherence_units),
                     (long long)(result.invalidations),
                     (long long)(result.propagations),
                     (long long)(result.lease_expiries)});
    }
  }
  bench::emit(flags,
              "Coherent cooperative caching: consistency mode x policy "
              "(shared zipf interests)",
              "coop_sweep", table);

  // The metrics artifact for the golden gate: one recorded propagate run
  // (peer tier + protocol traffic + wire cost all nonzero).
  obs::MetricsRegistry registry;
  obs::SeriesRecorder recorder(registry);
  coop::run_cooperative(
      variant_config(base, kVariants[3], "on-demand-knapsack"), recorder);
  bench::emit_metrics(flags, "coop", recorder);
  return 0;
}
