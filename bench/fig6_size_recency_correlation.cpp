// Figure 6 (paper §4.2.2): Average Score vs units downloaded for fixed
// Size/Recency correlation, sweeping the Size/NumRequests correlation.
// Panel (a): small objects have the highest recency scores (negative
// Size/Recency) — profit sits on large stale objects, so scores climb
// steadily and converge only after ~4000 of 5000 units. Panel (b): large
// objects have the highest recency scores (positive) — curves converge
// quickly, by ~2000 units.
#include <iostream>

#include "bench_common.hpp"
#include "exp/solution_space.hpp"

namespace {

void run_panel(const mobi::util::Flags& flags, const char* title,
               const char* slug, mobi::object::Correlation size_vs_recency,
               std::uint64_t seed, mobi::object::Units step) {
  using namespace mobi;
  exp::SolutionSpaceConfig base;
  base.size_vs_recency = size_vs_recency;
  base.seed = seed;

  std::vector<std::vector<exp::CurvePoint>> curves;
  std::vector<object::Units> convergence;
  for (auto corr : {object::Correlation::kPositive,
                    object::Correlation::kNegative,
                    object::Correlation::kNone}) {
    auto config = base;
    config.size_vs_requests = corr;
    const auto inst = exp::build_instance(config);
    curves.push_back(exp::average_score_curve(inst, step));
    convergence.push_back(exp::budget_reaching_score(inst, 0.97, 50));
  }

  util::Table table({"units downloaded", "large objects hot",
                     "small objects hot", "uniform access"});
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    table.add_row({(long long)(curves[0][i].budget),
                   curves[0][i].average_score, curves[1][i].average_score,
                   curves[2][i].average_score});
  }
  bench::emit(flags, title, slug, table);
  std::cout << "  budget where score reaches 0.97 (the dotted-rectangle "
               "corner): large-hot="
            << convergence[0] << " small-hot=" << convergence[1]
            << " uniform=" << convergence[2] << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  const auto seed = std::uint64_t(flags.get_int("seed", 42));
  const auto step = object::Units(flags.get_int("step", 250));
  run_panel(flags,
            "Figure 6(a): small objects have highest recency scores "
            "(Size vs Recency negative)",
            "fig6a", object::Correlation::kNegative, seed, step);
  run_panel(flags,
            "Figure 6(b): large objects have highest recency scores "
            "(Size vs Recency positive)",
            "fig6b", object::Correlation::kPositive, seed, step);
  return 0;
}
