// Resilience: recency-vs-fault-rate curves for the request-driven
// knapsack policy vs the asynchronous round-robin baseline, with the full
// fault cocktail enabled (fetch failures, congestion slowdowns, downlink
// drops, per-server outages) and a 3-attempt retry budget. Expected
// shape: both curves degrade gracefully (no stalls, no cliffs to zero)
// and the on-demand policy — which retries exactly the objects clients
// still want — holds a recency edge over the baseline as faults mount.
#include <iostream>

#include "bench_common.hpp"
#include "exp/fault_sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);

  exp::FaultSweepConfig config;
  config.base.seed = std::uint64_t(flags.get_int("seed", 42));
  if (flags.get_bool("quick", false)) {
    config.base.object_count = 100;
    config.base.requests_per_tick = 30;
    config.base.warmup_ticks = 20;
    config.base.measure_ticks = 60;
    config.fault_rates = {0.0, 0.1, 0.3};
  }

  obs::MetricsRegistry registry;
  obs::SeriesRecorder recorder(registry);
  const auto result =
      exp::run_fault_sweep(config, flags.has("out") ? &recorder : nullptr);

  util::Table table({"fault rate", "on-demand recency", "async recency",
                     "on-demand score", "failed fetches", "retries",
                     "degraded serves", "downlink dropped"});
  for (const auto& point : result.points) {
    table.add_row({point.fault_rate, point.on_demand.average_recency,
                   point.async_baseline.average_recency,
                   point.on_demand.average_score,
                   (long long)(point.on_demand.failed_fetches),
                   (long long)(point.on_demand.retries),
                   (long long)(point.on_demand.degraded_serves),
                   (long long)(point.on_demand.downlink_dropped)});
  }
  bench::emit(flags, "Resilience: recency vs injected fault rate",
              "fault_sweep", table);
  if (flags.has("out")) bench::emit_metrics(flags, "fault_sweep", recorder);
  return 0;
}
