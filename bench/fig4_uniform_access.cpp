// Figure 4 (paper §4.2.1): Average Score vs upper bound on units
// downloaded when all objects are requested equally, for positive /
// negative / no correlation between Object Size and Cache Recency Score.
// Expected shape: "large objects high scores" (positive) rises rapidly
// then levels off; "large objects low scores" (negative) rises gradually;
// uncorrelated lies between the two.
#include <iostream>

#include "bench_common.hpp"
#include "exp/solution_space.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  const auto seed = std::uint64_t(flags.get_int("seed", 42));
  const auto step = object::Units(flags.get_int("step", 250));

  exp::SolutionSpaceConfig base;
  base.constant_requests = true;  // uniform access: same NumRequests per object
  base.requests_constant = 10;    // 500 objects x 10 = 5000 clients
  base.seed = seed;

  std::vector<std::vector<exp::CurvePoint>> curves;
  for (auto corr : {object::Correlation::kPositive,
                    object::Correlation::kNegative,
                    object::Correlation::kNone}) {
    auto config = base;
    config.size_vs_recency = corr;
    curves.push_back(
        exp::average_score_curve(exp::build_instance(config), step));
  }

  util::Table table({"units downloaded", "large objs high scores",
                     "large objs low scores", "no correlation"});
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    table.add_row({(long long)(curves[0][i].budget),
                   curves[0][i].average_score, curves[1][i].average_score,
                   curves[2][i].average_score});
  }
  bench::emit(flags,
              "Figure 4: all objects accessed equally; correlation between "
              "Object Size and Cache Recency Score",
              "fig4", table);
  return 0;
}
