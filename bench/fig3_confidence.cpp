// Figure 3 with error bars: the paper plots single runs; this bench
// replicates each (budget, policy) point across independent seeds and
// reports mean ± 95% CI, establishing that the on-demand-over-async gap
// is far larger than run-to-run noise.
#include <iostream>

#include "bench_common.hpp"
#include "exp/fig3.hpp"
#include "exp/replicate.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  const auto runs = std::size_t(flags.get_int("runs", 5));
  const auto seeds = exp::seed_ladder(std::uint64_t(flags.get_int("seed", 42)),
                                      runs);

  exp::Fig3Config base;
  base.object_count = 200;
  base.requests_per_tick = 60;
  base.warmup_ticks = 30;
  base.measure_ticks = 60;
  base.update_period = 5;

  util::Table table({"budget", "on-demand mean", "on-demand ci95",
                     "async mean", "async ci95", "gap / ci"});
  for (object::Units budget : {5, 15, 30, 60}) {
    auto metric = [&](bool on_demand) {
      return [&, on_demand](std::uint64_t seed) {
        auto config = base;
        config.seed = seed;
        return exp::run_fig3_once(config, budget, on_demand);
      };
    };
    const auto on_demand = exp::replicate_parallel(metric(true), seeds);
    const auto async = exp::replicate_parallel(metric(false), seeds);
    const double noise =
        std::max(on_demand.ci95_halfwidth + async.ci95_halfwidth, 1e-9);
    table.add_row({(long long)(budget), on_demand.mean,
                   on_demand.ci95_halfwidth, async.mean, async.ci95_halfwidth,
                   (on_demand.mean - async.mean) / noise});
  }
  bench::emit(flags,
              "Figure 3 with 95% confidence intervals over " +
                  std::to_string(runs) + " seeds",
              "fig3_confidence", table);
  std::cout << "Read: 'gap / ci' >> 1 means the on-demand advantage is "
               "signal, not seed noise.\n";
  return 0;
}
