// Scale-out bench: shards N independent cells across the thread pool and
// reports wall-clock, speedup over the serial run, cells/sec and
// client-requests/sec per thread count. Every run uses the same master
// seed, and the bench cross-checks that the parallel aggregates are
// bit-identical to the serial ones (the determinism contract the
// multi_cell_test suite pins) — a speedup that changed the answer would
// be reported as a failure, not a win.
//
// With --out=<dir> the instrumented run also writes
// scale_multi_cell_metrics.json (schema mobicache.metrics.v1): per-tick
// fleet-wide mc.* series aggregated across all cells.
#include <chrono>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "exp/multi_cell.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/thread_pool.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool same_aggregate(const mobi::client::CellResult& a,
                    const mobi::client::CellResult& b) {
  return a.requests == b.requests && a.served_locally == b.served_locally &&
         a.served_by_base == b.served_by_base && a.score_sum == b.score_sum &&
         a.base_downloaded == b.base_downloaded &&
         a.sleeper_drops == b.sleeper_drops &&
         a.disconnect_ticks == b.disconnect_ticks;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);

  exp::MultiCellConfig config;
  config.seed = std::uint64_t(flags.get_int("seed", 42));
  config.cell_count = std::size_t(flags.get_int("cells", quick ? 2 : 8));
  config.cell.object_count =
      std::size_t(flags.get_int("objects", quick ? 30 : 120));
  config.cell.client_count =
      std::size_t(flags.get_int("clients", quick ? 8 : 40));
  config.cell.ticks = sim::Tick(flags.get_int("ticks", quick ? 30 : 200));

  std::cout << "scale_multi_cell: " << config.cell_count << " cells x "
            << config.cell.client_count << " clients x " << config.cell.ticks
            << " ticks (seed " << config.seed << ", "
            << std::thread::hardware_concurrency()
            << " hardware threads)\n\n";

  const auto serial_start = std::chrono::steady_clock::now();
  const exp::MultiCellResult serial = exp::run_multi_cell(config);
  const double serial_seconds = seconds_since(serial_start);

  util::Table table({"threads", "seconds", "speedup", "cells/s",
                     "requests/s", "avg score"});
  table.add_row({std::string("serial"), serial_seconds, 1.0,
                 double(serial.cells) / serial_seconds,
                 double(serial.total_requests) / serial_seconds,
                 serial.aggregate.average_score()});

  bool identical = true;
  std::vector<std::size_t> thread_counts =
      quick ? std::vector<std::size_t>{2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  for (std::size_t threads : thread_counts) {
    util::ThreadPool pool(threads);
    const auto start = std::chrono::steady_clock::now();
    const exp::MultiCellResult parallel = exp::run_multi_cell(config, &pool);
    const double elapsed = seconds_since(start);
    identical =
        identical && same_aggregate(serial.aggregate, parallel.aggregate);
    table.add_row({std::to_string(threads), elapsed,
                   serial_seconds / elapsed, double(parallel.cells) / elapsed,
                   double(parallel.total_requests) / elapsed,
                   parallel.aggregate.average_score()});
  }
  bench::emit(flags, "Sharded multi-cell throughput (same seed per row)",
              "scale_multi_cell", table);
  if (!identical) {
    std::cerr << "FAIL: parallel aggregates diverged from the serial run\n";
    return 1;
  }
  std::cout << "(all rows bit-identical to the serial aggregate)\n\n";

  // Instrumented run: fleet-wide per-tick series, one JSON per bench run.
  {
    obs::MetricsRegistry registry;
    obs::SeriesRecorder recorder(registry);
    util::ThreadPool pool(quick ? 2 : 4);
    const exp::MultiCellResult instrumented =
        exp::run_multi_cell(config, &pool, &recorder);
    if (!same_aggregate(serial.aggregate, instrumented.aggregate)) {
      std::cerr << "FAIL: instrumented aggregate diverged\n";
      return 1;
    }
    std::cout << "instrumented: " << recorder.samples() << " ticks x "
              << recorder.series_names().size() << " mc.* series, "
              << "final mc.requests = "
              << registry.find_counter("mc.requests")->value() << "\n";
    bench::emit_metrics(flags, "scale_multi_cell", recorder);
  }

  // Coop-cluster topology: shard = a neighbor-linked cluster.
  {
    exp::MultiCellConfig coop = config;
    coop.topology = exp::CellTopology::kCoopClusters;
    coop.cells_per_cluster = 2;
    coop.cluster.object_count = config.cell.object_count;
    coop.cluster.requests_per_tick_per_cell = quick ? 8 : 20;
    coop.cluster.warmup_ticks = quick ? 5 : 20;
    coop.cluster.measure_ticks = sim::Tick(config.cell.ticks);

    const auto start = std::chrono::steady_clock::now();
    const exp::MultiCellResult coop_serial = exp::run_multi_cell(coop);
    const double coop_seconds = seconds_since(start);

    util::ThreadPool pool(quick ? 2 : 4);
    const auto pstart = std::chrono::steady_clock::now();
    const exp::MultiCellResult coop_parallel =
        exp::run_multi_cell(coop, &pool);
    const double coop_parallel_seconds = seconds_since(pstart);

    util::Table coop_table({"threads", "clusters", "seconds", "speedup",
                            "requests/s", "neighbor frac"});
    coop_table.add_row({std::string("serial"),
                        (long long)(coop_serial.shards), coop_seconds, 1.0,
                        double(coop_serial.total_requests) / coop_seconds,
                        coop_serial.coop_aggregate.neighbor_fraction()});
    coop_table.add_row(
        {std::to_string(pool.size()), (long long)(coop_parallel.shards),
         coop_parallel_seconds, coop_seconds / coop_parallel_seconds,
         double(coop_parallel.total_requests) / coop_parallel_seconds,
         coop_parallel.coop_aggregate.neighbor_fraction()});
    bench::emit(flags, "Coop-cluster topology (cells_per_cluster = 2)",
                "scale_multi_cell_coop", coop_table);
    if (coop_serial.coop_aggregate.score_sum !=
        coop_parallel.coop_aggregate.score_sum) {
      std::cerr << "FAIL: coop parallel aggregate diverged\n";
      return 1;
    }
  }
  return 0;
}
