// Scale-out bench: shards N independent cells across the thread pool and
// reports wall-clock, speedup over the serial run, cells/sec and
// client-requests/sec per thread count. Every run uses the same master
// seed, and the bench cross-checks that the parallel aggregates are
// bit-identical to the serial ones (the determinism contract the
// multi_cell_test suite pins) — a speedup that changed the answer would
// be reported as a failure, not a win.
//
// With --out=<dir> the instrumented run also writes
// scale_multi_cell_metrics.json (schema mobicache.metrics.v1): per-tick
// fleet-wide mc.* series aggregated across all cells.
//
// --cells-skew gives the fleet a Zipf-distributed client population
// (total clients preserved, big cells deterministically scattered across
// the index space) and compares the shard schedules — static contiguous
// blocks vs the legacy shared queue vs LPT + work stealing — at a fixed
// pool size. On a 1-CPU container wall-clock cannot separate them, so
// the comparison reports each schedule's *modeled* makespan (the busiest
// worker's summed cost estimate — exact for static/LPT plans) alongside
// the honest wall-clock.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <thread>

#include "bench_common.hpp"
#include "exp/multi_cell.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/thread_pool.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool same_aggregate(const mobi::client::CellResult& a,
                    const mobi::client::CellResult& b) {
  return a.requests == b.requests && a.served_locally == b.served_locally &&
         a.served_by_base == b.served_by_base && a.score_sum == b.score_sum &&
         a.base_downloaded == b.base_downloaded &&
         a.sleeper_drops == b.sleeper_drops &&
         a.disconnect_ticks == b.disconnect_ticks;
}

// Zipf(alpha)-distributed per-cell client counts: cell rank r gets a
// share proportional to 1/(r+1)^alpha of the fleet-wide client total
// (floor 1). Counts stay in rank order — cell indices follow geography,
// and real hotspots cluster spatially (a downtown district is several
// adjacent heavy cells), so the heavy head lands in one contiguous run
// of shard indices. Contiguous static blocking then piles the whole hot
// district onto one worker — the imbalance pathology LPT packing plus
// stealing is for. Pure function of (cells, clients_per_cell, alpha).
std::vector<std::size_t> zipf_client_counts(std::size_t cells,
                                            std::size_t clients_per_cell,
                                            double alpha) {
  const std::size_t total = cells * clients_per_cell;
  std::vector<double> weights(cells);
  double sum = 0.0;
  for (std::size_t r = 0; r < cells; ++r) {
    weights[r] = 1.0 / std::pow(double(r + 1), alpha);
    sum += weights[r];
  }
  std::vector<std::size_t> counts(cells);
  std::size_t assigned = 0;
  for (std::size_t r = 0; r < cells; ++r) {
    counts[r] = std::max<std::size_t>(
        1, std::size_t(std::llround(double(total) * weights[r] / sum)));
    assigned += counts[r];
  }
  // Settle rounding drift on the largest cell so the fleet total is
  // exactly cells x clients_per_cell (keeps requests/s comparable with
  // the uniform fleet).
  if (assigned < total) {
    counts[0] += total - assigned;
  } else {
    std::size_t excess = assigned - total;
    for (std::size_t r = 0; r < cells && excess > 0; ++r) {
      const std::size_t take = std::min(excess, counts[r] - 1);
      counts[r] -= take;
      excess -= take;
    }
  }
  return counts;
}

// Peak resident set (VmHWM) in kilobytes, 0 when unavailable.
long peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string key;
  long value = 0;
  while (status >> key) {
    if (key == "VmHWM:") {
      status >> value;
      return value;
    }
    status.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);

  exp::MultiCellConfig config;
  config.seed = std::uint64_t(flags.get_int("seed", 42));
  config.cell_count = std::size_t(flags.get_int("cells", quick ? 2 : 8));
  config.cell.object_count =
      std::size_t(flags.get_int("objects", quick ? 30 : 120));
  config.cell.client_count =
      std::size_t(flags.get_int("clients", quick ? 8 : 40));
  config.cell.ticks = sim::Tick(flags.get_int("ticks", quick ? 30 : 200));

  const bool skew = flags.get_bool("cells-skew", false);
  const double skew_alpha = flags.get_double("skew-alpha", 1.0);
  if (skew) {
    config.cell_client_counts = zipf_client_counts(
        config.cell_count, config.cell.client_count, skew_alpha);
  }

  std::cout << "scale_multi_cell: " << config.cell_count << " cells x "
            << config.cell.client_count << " clients x " << config.cell.ticks
            << " ticks (seed " << config.seed << ", "
            << std::thread::hardware_concurrency() << " hardware threads"
            << (skew ? ", zipf(" + std::to_string(skew_alpha) + ") client skew"
                     : "")
            << ")\n\n";

  const auto serial_start = std::chrono::steady_clock::now();
  const exp::MultiCellResult serial = exp::run_multi_cell(config);
  const double serial_seconds = seconds_since(serial_start);

  util::Table table({"threads", "seconds", "speedup", "cells/s",
                     "requests/s", "avg score"});
  table.add_row({std::string("serial"), serial_seconds, 1.0,
                 double(serial.cells) / serial_seconds,
                 double(serial.total_requests) / serial_seconds,
                 serial.aggregate.average_score()});

  bool identical = true;
  std::vector<std::size_t> thread_counts =
      quick ? std::vector<std::size_t>{2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  for (std::size_t threads : thread_counts) {
    util::ThreadPool pool(threads);
    const auto start = std::chrono::steady_clock::now();
    const exp::MultiCellResult parallel = exp::run_multi_cell(config, &pool);
    const double elapsed = seconds_since(start);
    identical =
        identical && same_aggregate(serial.aggregate, parallel.aggregate);
    table.add_row({std::to_string(threads), elapsed,
                   serial_seconds / elapsed, double(parallel.cells) / elapsed,
                   double(parallel.total_requests) / elapsed,
                   parallel.aggregate.average_score()});
  }
  bench::emit(flags, "Sharded multi-cell throughput (same seed per row)",
              "scale_multi_cell", table);
  if (!identical) {
    std::cerr << "FAIL: parallel aggregates diverged from the serial run\n";
    return 1;
  }
  std::cout << "(all rows bit-identical to the serial aggregate)\n\n";

  // Schedule comparison at a fixed pool size: contiguous static blocks vs
  // the legacy shared queue vs the LPT + stealing default. Modeled
  // makespan is the busiest worker's summed cost estimate under each
  // plan (kQueue has no static plan, shown as 0); the ratio column is
  // static's makespan over this row's — the speedup the plan achieves on
  // `pool` ideal cores, which 1-CPU wall-clock cannot show.
  {
    const std::size_t pool_size =
        std::size_t(flags.get_int("pool", quick ? 2 : 8));
    const exp::ShardSchedule schedules[] = {exp::ShardSchedule::kStaticBlocked,
                                            exp::ShardSchedule::kQueue,
                                            exp::ShardSchedule::kLptSteal};
    util::Table sched_table({"schedule", "seconds", "modeled makespan",
                             "modeled speedup vs static", "steals",
                             "avg score"});
    double static_makespan = 0.0;
    bool sched_identical = true;
    for (const exp::ShardSchedule schedule : schedules) {
      exp::MultiCellConfig run = config;
      run.schedule = schedule;
      util::ThreadPool pool(pool_size);
      const auto start = std::chrono::steady_clock::now();
      const exp::MultiCellResult r = exp::run_multi_cell(run, &pool);
      const double elapsed = seconds_since(start);
      sched_identical =
          sched_identical && same_aggregate(serial.aggregate, r.aggregate);
      const double makespan = double(r.schedule_stats.planned_makespan);
      if (schedule == exp::ShardSchedule::kStaticBlocked) {
        static_makespan = makespan;
      }
      sched_table.add_row(
          {std::string(exp::shard_schedule_name(schedule)), elapsed, makespan,
           makespan > 0.0 ? static_makespan / makespan : 0.0,
           (long long)(r.schedule_stats.steals), r.aggregate.average_score()});
    }
    bench::emit(flags,
                "Shard schedules at pool " + std::to_string(pool_size) +
                    (skew ? " (zipf client skew)" : " (uniform cells)"),
                "scale_multi_cell_schedules", sched_table);
    if (!sched_identical) {
      std::cerr << "FAIL: schedule variants diverged from the serial run\n";
      return 1;
    }
    std::cout << "(all schedules bit-identical to the serial aggregate)\n\n";
  }

  std::cout << "horizon: " << double(serial.cells) / serial_seconds
            << " cells/s, " << double(serial.total_requests) / serial_seconds
            << " requests/s serial, peak RSS " << peak_rss_kb() << " kB\n\n";

  // Instrumented run: fleet-wide per-tick series, one JSON per bench run.
  {
    obs::MetricsRegistry registry;
    obs::SeriesRecorder recorder(registry);
    util::ThreadPool pool(quick ? 2 : 4);
    const exp::MultiCellResult instrumented =
        exp::run_multi_cell(config, &pool, &recorder);
    if (!same_aggregate(serial.aggregate, instrumented.aggregate)) {
      std::cerr << "FAIL: instrumented aggregate diverged\n";
      return 1;
    }
    std::cout << "instrumented: " << recorder.samples() << " ticks x "
              << recorder.series_names().size() << " mc.* series, "
              << "final mc.requests = "
              << registry.find_counter("mc.requests")->value() << "\n";
    bench::emit_metrics(flags, "scale_multi_cell", recorder);
  }

  // Coop-cluster topology: shard = a neighbor-linked cluster.
  {
    exp::MultiCellConfig coop = config;
    coop.topology = exp::CellTopology::kCoopClusters;
    coop.cells_per_cluster = 2;
    coop.cluster.object_count = config.cell.object_count;
    coop.cluster.requests_per_tick_per_cell = quick ? 8 : 20;
    coop.cluster.warmup_ticks = quick ? 5 : 20;
    coop.cluster.measure_ticks = sim::Tick(config.cell.ticks);

    const auto start = std::chrono::steady_clock::now();
    const exp::MultiCellResult coop_serial = exp::run_multi_cell(coop);
    const double coop_seconds = seconds_since(start);

    util::ThreadPool pool(quick ? 2 : 4);
    const auto pstart = std::chrono::steady_clock::now();
    const exp::MultiCellResult coop_parallel =
        exp::run_multi_cell(coop, &pool);
    const double coop_parallel_seconds = seconds_since(pstart);

    util::Table coop_table({"threads", "clusters", "seconds", "speedup",
                            "requests/s", "neighbor frac"});
    coop_table.add_row({std::string("serial"),
                        (long long)(coop_serial.shards), coop_seconds, 1.0,
                        double(coop_serial.total_requests) / coop_seconds,
                        coop_serial.coop_aggregate.neighbor_fraction()});
    coop_table.add_row(
        {std::to_string(pool.size()), (long long)(coop_parallel.shards),
         coop_parallel_seconds, coop_seconds / coop_parallel_seconds,
         double(coop_parallel.total_requests) / coop_parallel_seconds,
         coop_parallel.coop_aggregate.neighbor_fraction()});
    bench::emit(flags, "Coop-cluster topology (cells_per_cluster = 2)",
                "scale_multi_cell_coop", coop_table);
    if (coop_serial.coop_aggregate.score_sum !=
        coop_parallel.coop_aggregate.score_sum) {
      std::cerr << "FAIL: coop parallel aggregate diverged\n";
      return 1;
    }
  }
  return 0;
}
