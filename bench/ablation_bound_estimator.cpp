// Ablation for the paper's §6 future work: "techniques to determine how
// much data the base station should download". Evaluates the marginal-knee
// and chord-elbow estimators (plus 90%/95% value oracles) across all nine
// correlation regimes of the solution-space analysis — exactly the
// workloads where the paper observes "under some circumstances there is
// not a great benefit to downloading large amounts of data".
#include <iostream>

#include "bench_common.hpp"
#include "exp/ablation.hpp"
#include "exp/solution_space.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);

  util::Table table({"size~requests", "size~recency", "estimator",
                     "recommended budget", "fraction of max value",
                     "fraction of capacity"});
  const auto correlations = {object::Correlation::kNegative,
                             object::Correlation::kNone,
                             object::Correlation::kPositive};
  for (auto req_corr : correlations) {
    for (auto rec_corr : correlations) {
      exp::SolutionSpaceConfig config;
      config.size_vs_requests = req_corr;
      config.size_vs_recency = rec_corr;
      config.seed = std::uint64_t(flags.get_int("seed", 42));
      const auto inst = exp::build_instance(config);
      for (const auto& row : exp::evaluate_bound_estimators(inst)) {
        table.add_row({std::string(object::correlation_name(req_corr)),
                       std::string(object::correlation_name(rec_corr)),
                       row.estimator, (long long)(row.recommended),
                       row.fraction_of_max_value, row.fraction_of_capacity});
      }
    }
  }
  bench::emit(flags,
              "Ablation: download-bound estimators across correlation "
              "regimes (capacity 5000)",
              "ablation_bound", table);
  return 0;
}
