// Ablation: how stale *knowledge* (not stale data) degrades the on-demand
// policy. The paper's base model lets the base station observe every
// server update instantly; with Barbara-Imielinski invalidation reports
// the base station only learns of updates when a report arrives. Between
// reports the cache's believed recency is optimistic, so the knapsack
// assigns too little profit to quietly-updated objects and spends its
// budget elsewhere. We sweep the report period and measure the *true*
// average client score (computed against an omniscient shadow cache).
#include <iostream>

#include "bench_common.hpp"
#include "cache/invalidation.hpp"
#include "core/base_station.hpp"
#include "object/builders.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/updates.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  const auto seed = std::uint64_t(flags.get_int("seed", 42));

  const std::size_t n = 200;
  const object::Units budget = 60;
  const sim::Tick warmup = 30, measure = 200;

  util::Table table({"report period (ticks)", "true avg score",
                     "believed-vs-true recency gap", "units downloaded"});
  for (sim::Tick report_period : {1, 2, 5, 10, 20}) {
    util::Rng rng(seed);
    const object::Catalog catalog = object::make_random_catalog(n, 1, 8, rng);
    server::ServerPool servers(catalog, 1);
    // `believed`: decayed only when a report arrives (what the policy sees).
    // `truth`: decayed on every update (what clients actually experience).
    cache::Cache believed(n, cache::make_harmonic_decay());
    cache::Cache truth(n, cache::make_harmonic_decay());
    cache::InvalidationLog log(n);
    cache::InvalidationListener listener(believed);
    core::ReciprocalScorer scorer;
    core::OnDemandKnapsackPolicy policy;
    auto updates = workload::make_periodic_staggered(n, 3);
    workload::RequestGenerator generator(workload::make_zipf_access(n, 1.0),
                                         workload::ConstantTarget{1.0}, 80,
                                         rng.split());

    double true_score = 0.0, gap = 0.0;
    std::size_t scored = 0;
    object::Units downloaded = 0;
    for (sim::Tick t = 0; t < warmup + measure; ++t) {
      updates->for_each_updated(t, [&](object::ObjectId id) {
        servers.apply_update(id, t);
        truth.on_server_update(id);
        log.record_update(id, t);
      });
      if (t > 0 && t % report_period == 0) {
        listener.apply(log.make_report(t - report_period, t));
      }

      const auto batch = generator.next_batch();
      core::PolicyContext ctx;
      ctx.catalog = &catalog;
      ctx.cache = &believed;  // the policy acts on reported knowledge
      ctx.servers = &servers;
      ctx.scorer = &scorer;
      ctx.now = t;
      ctx.budget = budget;
      for (object::ObjectId id : policy.select(batch, ctx)) {
        const auto fetch = servers.fetch(id);
        believed.refresh(id, fetch, t);
        truth.refresh(id, fetch, t);
        if (t >= warmup) downloaded += fetch.size;
      }
      if (t >= warmup) {
        for (const auto& request : batch) {
          const double x_true = truth.recency_or_zero(request.object);
          true_score += scorer.score(x_true, request.target_recency);
          gap += believed.recency_or_zero(request.object) - x_true;
          ++scored;
        }
      }
    }
    table.add_row({(long long)(report_period), true_score / double(scored),
                   gap / double(scored), (long long)(downloaded)});
  }
  bench::emit(flags,
              "Ablation: invalidation-report period vs true client score "
              "(knapsack policy on believed recency)",
              "ablation_invalidation", table);
  std::cout << "Read: period 1 reproduces the paper's instant-knowledge "
               "model; longer periods widen the believed-vs-true gap and "
               "drag the true score down.\n";
  return 0;
}
