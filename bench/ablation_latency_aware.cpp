// Ablation for the paper's stated limitation (§2: the knapsack mapping
// "does not model network latency"): with a per-fetch fixed overhead, the
// plain size-cost knapsack overpacks tiny objects whose true time cost is
// dominated by round trips. We charge both policies the same *time*
// budget (overhead + size per fetch must fit) and compare delivered
// scores. The latency-aware mapping should win, and the gap should grow
// with the overhead.
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "core/latency_aware.hpp"
#include "object/builders.hpp"
#include "server/remote_server.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/trace.hpp"
#include "workload/updates.hpp"

namespace {

using namespace mobi;

/// Runs a sim where fetched objects cost (overhead + size) against the
/// per-tick time budget; the naive policy plans with size only and its
/// selection is truncated when real costs exceed the budget.
double run(const workload::Trace& trace, const object::Catalog& catalog,
           object::Units overhead, object::Units time_budget, bool aware,
           sim::Tick ticks) {
  server::ServerPool servers(catalog, 1);
  cache::Cache cache(catalog.size(), cache::make_harmonic_decay());
  core::ReciprocalScorer scorer;
  std::unique_ptr<core::DownloadPolicy> policy;
  if (aware) {
    policy = std::make_unique<core::OnDemandLatencyAwarePolicy>(overhead);
  } else {
    policy = std::make_unique<core::OnDemandKnapsackPolicy>();
  }
  auto updates = workload::make_periodic_staggered(catalog.size(), 3);

  double score = 0.0;
  std::size_t requests = 0;
  for (sim::Tick t = 0; t < ticks; ++t) {
    updates->for_each_updated(t, [&](object::ObjectId id) {
      servers.apply_update(id, t);
      cache.on_server_update(id);
    });
    const auto batch = trace.batch_at(t);
    core::PolicyContext ctx;
    ctx.catalog = &catalog;
    ctx.cache = &cache;
    ctx.servers = &servers;
    ctx.scorer = &scorer;
    ctx.now = t;
    ctx.budget = time_budget;
    // Real execution: each fetch costs overhead + size in time units;
    // whatever exceeds the tick's time budget is dropped (the naive
    // policy planned without the overhead, so it loses tail selections).
    object::Units left = time_budget;
    for (object::ObjectId id : policy->select(batch, ctx)) {
      const object::Units cost = catalog.object_size(id) + overhead;
      if (cost > left) continue;
      left -= cost;
      cache.refresh(id, servers.fetch(id), t);
    }
    for (const auto& request : batch) {
      score += scorer.score(cache.recency_or_zero(request.object),
                            request.target_recency);
      ++requests;
    }
  }
  return requests ? score / double(requests) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  util::Rng rng(std::uint64_t(flags.get_int("seed", 42)));
  const sim::Tick ticks = 150;
  const object::Catalog catalog = object::make_random_catalog(150, 1, 6, rng);
  workload::RequestGenerator generator(
      workload::make_zipf_access(catalog.size(), 1.0),
      workload::ConstantTarget{1.0}, 60, rng.split());
  const workload::Trace trace = workload::generate_trace(generator, ticks);

  util::Table table({"per-fetch overhead", "time budget", "naive avg score",
                     "latency-aware avg score", "gain"});
  for (object::Units overhead : {0, 1, 2, 4, 8}) {
    const object::Units budget = 80;
    const double naive = run(trace, catalog, overhead, budget, false, ticks);
    const double aware = run(trace, catalog, overhead, budget, true, ticks);
    table.add_row({(long long)(overhead), (long long)(budget), naive, aware,
                   aware - naive});
  }
  mobi::bench::emit(flags,
                    "Ablation: latency-aware knapsack mapping vs the paper's "
                    "size-only mapping under per-fetch overhead",
                    "ablation_latency", table);
  std::cout << "Read: at overhead 0 the mappings coincide; as round trips "
               "dominate small transfers the latency-aware mapping keeps "
               "its whole plan feasible and wins.\n";
  return 0;
}
