// Google-benchmark microbenchmarks for the knapsack solvers — the inner
// loop of the on-demand policy, executed once per request batch. DP cost
// scales as O(n * capacity); greedy as O(n log n).
#include <benchmark/benchmark.h>

#include "core/knapsack.hpp"
#include "util/rng.hpp"

namespace {

using mobi::core::KnapsackItem;
using mobi::object::Units;

std::vector<KnapsackItem> make_items(std::size_t n, std::uint64_t seed = 42) {
  mobi::util::Rng rng(seed);
  std::vector<KnapsackItem> items(n);
  for (auto& item : items) {
    item.size = rng.uniform_int(1, 20);
    item.profit = rng.uniform(0.0, 20.0);
  }
  return items;
}

void BM_KnapsackDp(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const auto items = make_items(n);
  const Units capacity = Units(n) * 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobi::core::solve_dp(items, capacity));
  }
  state.SetComplexityN(int64_t(n));
}
BENCHMARK(BM_KnapsackDp)->Range(32, 512)->Complexity();

void BM_KnapsackProfile(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const auto items = make_items(n);
  const Units capacity = Units(n) * 10;
  for (auto _ : state) {
    mobi::core::KnapsackProfile profile(items, capacity);
    benchmark::DoNotOptimize(profile.value_at(capacity));
  }
}
BENCHMARK(BM_KnapsackProfile)->Range(32, 512);

void BM_KnapsackGreedy(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const auto items = make_items(n);
  const Units capacity = Units(n) * 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobi::core::solve_greedy(items, capacity));
  }
}
BENCHMARK(BM_KnapsackGreedy)->Range(32, 4096);

void BM_KnapsackFptas(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const auto items = make_items(n);
  const Units capacity = Units(n) * 5;
  const double epsilon = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobi::core::solve_fptas(items, capacity, epsilon));
  }
}
BENCHMARK(BM_KnapsackFptas)->Range(32, 128);

void BM_KnapsackBranchAndBound(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const auto items = make_items(n);
  const Units capacity = Units(n) * 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobi::core::solve_branch_and_bound(items, capacity));
  }
}
BENCHMARK(BM_KnapsackBranchAndBound)->Range(32, 256);

void BM_ProfileReconstruction(benchmark::State& state) {
  const auto items = make_items(256);
  const Units capacity = 2560;
  const mobi::core::KnapsackProfile profile(items, capacity);
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.solution_at(capacity));
  }
}
BENCHMARK(BM_ProfileReconstruction);

}  // namespace

BENCHMARK_MAIN();
