// Google-benchmark microbenchmarks for the knapsack solvers — the inner
// loop of the on-demand policy, executed once per request batch. DP cost
// scales as O(n * capacity); greedy as O(n log n).
//
// Besides the google-benchmark suites, the binary always runs the select-
// path hot-path measurement (docs/performance.md): candidate aggregation +
// exact solve per batch, timed in the reference (map + fresh-construction,
// the pre-workspace implementation) and reused (CandidateBuilder +
// KnapsackWorkspace) variants. --quick runs only that measurement;
// --out=<dir> writes it as mobicache.metrics.v1 JSON
// (<dir>/micro_knapsack_metrics.json) for BENCH_hotpath.json trending.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string_view>

#include "bench_common.hpp"
#include "cache/decay.hpp"
#include "core/benefit.hpp"
#include "core/knapsack.hpp"
#include "core/knapsack_parallel.hpp"
#include "object/builders.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "server/remote_server.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"

namespace {

using mobi::core::KnapsackItem;
using mobi::object::Units;

std::vector<KnapsackItem> make_items(std::size_t n, std::uint64_t seed = 42) {
  mobi::util::Rng rng(seed);
  std::vector<KnapsackItem> items(n);
  for (auto& item : items) {
    item.size = rng.uniform_int(1, 20);
    item.profit = rng.uniform(0.0, 20.0);
  }
  return items;
}

void BM_KnapsackDp(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const auto items = make_items(n);
  const Units capacity = Units(n) * 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobi::core::solve_dp(items, capacity));
  }
  state.SetComplexityN(int64_t(n));
}
BENCHMARK(BM_KnapsackDp)->Range(32, 512)->Complexity();

void BM_KnapsackProfile(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const auto items = make_items(n);
  const Units capacity = Units(n) * 10;
  for (auto _ : state) {
    mobi::core::KnapsackProfile profile(items, capacity);
    benchmark::DoNotOptimize(profile.value_at(capacity));
  }
}
BENCHMARK(BM_KnapsackProfile)->Range(32, 512);

void BM_KnapsackGreedy(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const auto items = make_items(n);
  const Units capacity = Units(n) * 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobi::core::solve_greedy(items, capacity));
  }
}
BENCHMARK(BM_KnapsackGreedy)->Range(32, 4096);

void BM_KnapsackFptas(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const auto items = make_items(n);
  const Units capacity = Units(n) * 5;
  const double epsilon = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobi::core::solve_fptas(items, capacity, epsilon));
  }
}
BENCHMARK(BM_KnapsackFptas)->Range(32, 128);

void BM_KnapsackBranchAndBound(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const auto items = make_items(n);
  const Units capacity = Units(n) * 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobi::core::solve_branch_and_bound(items, capacity));
  }
}
BENCHMARK(BM_KnapsackBranchAndBound)->Range(32, 256);

// The same 512-item DP pinned to one kernel: arg 1 = scalar, 2 = word-
// parallel baseline, 3 = AVX2-dispatched word-parallel (skipped where the
// host or toolchain lacks it). Restores the auto-detected kernel on exit.
void BM_KnapsackDpKernel(benchmark::State& state) {
  using mobi::core::detail::DpKernel;
  const auto kernel = DpKernel(state.range(0));
  if (!mobi::core::detail::dp_kernel_supported(kernel)) {
    state.SkipWithError("kernel unsupported on this host");
    return;
  }
  const auto items = make_items(512);
  const Units capacity = 2560;
  mobi::core::detail::set_dp_kernel(kernel);
  mobi::core::KnapsackWorkspace ws;
  mobi::core::KnapsackSolution out;
  for (auto _ : state) {
    mobi::core::solve_dp(items, capacity, ws, out);
    benchmark::DoNotOptimize(out.value);
  }
  mobi::core::detail::set_dp_kernel(DpKernel::kAuto);
}
BENCHMARK(BM_KnapsackDpKernel)
    ->Arg(int(mobi::core::detail::DpKernel::kScalar))
    ->Arg(int(mobi::core::detail::DpKernel::kWordParallel))
    ->Arg(int(mobi::core::detail::DpKernel::kWordParallelAvx2));

// Parallel branch-and-bound at 1/2/4/8 worker threads over the 512-item
// instance (results identical to solve_dp by contract; only the clock
// moves with the pool size).
void BM_KnapsackParallelBnb(benchmark::State& state) {
  const auto items = make_items(512);
  const Units capacity = 2560;
  mobi::core::ParallelBnbConfig config;
  config.threads = std::size_t(state.range(0));
  mobi::core::ParallelKnapsackEngine engine(config);
  mobi::core::KnapsackWorkspace ws;
  mobi::core::KnapsackSolution out;
  for (auto _ : state) {
    engine.solve(items, capacity, ws, out);
    benchmark::DoNotOptimize(out.value);
  }
}
BENCHMARK(BM_KnapsackParallelBnb)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ProfileReconstruction(benchmark::State& state) {
  const auto items = make_items(256);
  const Units capacity = 2560;
  const mobi::core::KnapsackProfile profile(items, capacity);
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.solution_at(capacity));
  }
}
BENCHMARK(BM_ProfileReconstruction);

// The select-path hot loop as the on-demand policy runs it per batch:
// aggregate request benefits into candidates, then solve the knapsack at
// the tick budget. The reference variant is the seed implementation
// (ordered-map aggregation, freshly constructed profile + solution); the
// reused variant is the PR 3 path (epoch-stamped CandidateBuilder,
// workspace-borrowing solve_dp). Both must pick bit-identical values —
// checked every round.
void run_hotpath(const mobi::util::Flags& flags) {
  using namespace mobi;
  using Clock = std::chrono::steady_clock;
  const bool quick = flags.get_bool("quick", false);
  const std::size_t objects = std::size_t(flags.get_int("hot_objects", 512));
  const std::size_t batch_size =
      std::size_t(flags.get_int("hot_batch", objects / 2));
  const Units budget = Units(flags.get_int("hot_budget", Units(objects) / 4));
  const int rounds = int(flags.get_int("hot_rounds", quick ? 3 : 12));
  const int solves = int(flags.get_int("hot_solves", quick ? 50 : 400));

  util::Rng rng(1);
  const auto catalog = object::make_random_catalog(objects, 1, 10, rng);
  server::ServerPool servers(catalog, 1);
  cache::Cache cache(objects, cache::make_harmonic_decay());
  const core::ReciprocalScorer scorer;
  workload::RequestGenerator generator(
      workload::make_zipf_access(objects, 1.0), workload::ConstantTarget{1.0},
      batch_size, rng.split());
  std::vector<workload::RequestBatch> batches;
  for (int b = 0; b < 64; ++b) batches.push_back(generator.next_batch());
  util::Rng update_rng(7);

  obs::MetricsRegistry registry;
  auto& ref_gauge = registry.register_gauge("hotpath.reference_ns_per_solve");
  auto& new_gauge = registry.register_gauge("hotpath.reused_ns_per_solve");
  auto& speedup_gauge = registry.register_gauge("hotpath.speedup");
  obs::SeriesRecorder recorder(registry);

  // Kernel comparison and per-thread B&B scaling on the canonical 512-item
  // instance (same shape as BM_KnapsackDp/512), exported as gauges so the
  // BENCH_hotpath.json trend records the curves alongside the select-path
  // numbers. Gauges are set once here and sampled every recorder round.
  {
    const auto items512 = make_items(512);
    const Units cap512 = 2560;
    core::KnapsackWorkspace kws;
    core::KnapsackSolution ksol;
    const int reps = quick ? 5 : 40;
    const auto time_ns = [&](auto&& solve_once) {
      solve_once();  // warm-up: grow all scratch before the clock starts
      const auto t0 = Clock::now();
      for (int i = 0; i < reps; ++i) solve_once();
      const auto t1 = Clock::now();
      return std::chrono::duration<double, std::nano>(t1 - t0).count() / reps;
    };
    struct KernelRow {
      core::detail::DpKernel kernel;
      const char* name;
    };
    const KernelRow kernels[] = {
        {core::detail::DpKernel::kScalar, "scalar"},
        {core::detail::DpKernel::kWordParallel, "word_parallel"},
        {core::detail::DpKernel::kWordParallelAvx2, "word_parallel_avx2"},
    };
    std::printf("== micro_knapsack dp kernels (512 items, cap 2560) ==\n");
    double scalar_ns = 0.0;
    for (const KernelRow& row : kernels) {
      if (!core::detail::dp_kernel_supported(row.kernel)) continue;
      core::detail::set_dp_kernel(row.kernel);
      const double ns =
          time_ns([&] { core::solve_dp(items512, cap512, kws, ksol); });
      if (row.kernel == core::detail::DpKernel::kScalar) scalar_ns = ns;
      registry
          .register_gauge(std::string("knapsack.dp512.") + row.name +
                          "_ns_per_solve")
          .set(ns);
      std::printf("  %-20s %9.0f ns/solve (%.2fx vs scalar)\n", row.name, ns,
                  scalar_ns / ns);
    }
    core::detail::set_dp_kernel(core::detail::DpKernel::kAuto);
    std::printf("== micro_knapsack parallel bnb scaling (512 items) ==\n");
    double t1_ns = 0.0;
    for (std::size_t bnb_threads : {1u, 2u, 4u, 8u}) {
      core::ParallelBnbConfig config;
      config.threads = bnb_threads;
      core::ParallelKnapsackEngine engine(config);
      const double ns =
          time_ns([&] { engine.solve(items512, cap512, kws, ksol); });
      if (bnb_threads == 1) t1_ns = ns;
      const std::string base =
          "knapsack.bnb512.t" + std::to_string(bnb_threads);
      registry.register_gauge(base + "_ns_per_solve").set(ns);
      registry.register_gauge(base + "_speedup").set(t1_ns / ns);
      std::printf("  t%-19zu %9.0f ns/solve (%.2fx vs t1)\n", bnb_threads, ns,
                  t1_ns / ns);
    }
    std::printf("\n");
  }

  core::CandidateBuilder builder;
  core::KnapsackWorkspace ws;
  core::KnapsackSolution solution;
  std::vector<KnapsackItem> items;
  // Both variants run on the identical cache state each tick (the solve is
  // read-only); the cache then evolves like the station's would — a few
  // server updates per tick, and the chosen objects refreshed — so the
  // steady-state mix of trivial and full solves matches the real select
  // path. A warm-up pass fills caches and scratch buffers first.
  sim::Tick now = 0;
  const auto one_tick = [&](bool timed, double& ref_ns, double& new_ns,
                            double& check_ref, double& check_new) {
    const auto& batch = batches[std::size_t(now) % batches.size()];
    for (int u = 0; u < 16; ++u) {
      const auto id = object::ObjectId(
          update_rng.uniform_int(0, std::int64_t(objects) - 1));
      servers.apply_update(id, now);
      cache.on_server_update(id);
    }
    const auto t0 = Clock::now();
    const core::CandidateSet set =
        core::build_candidates_reference(batch, catalog, cache, scorer);
    std::vector<KnapsackItem> fresh_items;
    fresh_items.reserve(set.candidates.size());
    for (const auto& cand : set.candidates) {
      fresh_items.push_back(KnapsackItem{cand.size, cand.profit});
    }
    const core::KnapsackProfile profile(fresh_items, budget);
    const double ref_value = profile.solution_at(budget).value;
    const auto t1 = Clock::now();
    const core::CandidateSet& flat = builder.build(batch, catalog, cache, scorer);
    items.clear();
    for (const auto& cand : flat.candidates) {
      items.push_back(KnapsackItem{cand.size, cand.profit});
    }
    core::solve_dp(items, budget, ws, solution);
    const auto t2 = Clock::now();
    if (timed) {
      ref_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
      new_ns += std::chrono::duration<double, std::nano>(t2 - t1).count();
      check_ref += ref_value;
      check_new += solution.value;
    }
    for (std::size_t index : solution.chosen) {
      const object::ObjectId id = flat.candidates[index].object;
      cache.refresh(id, servers.fetch(id), now);
    }
    ++now;
  };
  double ref_total = 0.0, new_total = 0.0;
  {
    double sink_ref = 0, sink_new = 0, sink_a = 0, sink_b = 0;
    for (std::size_t w = 0; w < batches.size(); ++w) {
      one_tick(false, sink_ref, sink_new, sink_a, sink_b);
    }
  }
  for (int r = 0; r < rounds; ++r) {
    double ref_ns = 0.0, new_ns = 0.0, check_ref = 0.0, check_new = 0.0;
    for (int s = 0; s < solves; ++s) {
      one_tick(true, ref_ns, new_ns, check_ref, check_new);
    }
    if (check_ref != check_new) {
      std::fprintf(stderr,
                   "hotpath: reference/reused divergence (%f vs %f)\n",
                   check_ref, check_new);
      std::exit(1);
    }
    ref_ns /= solves;
    new_ns /= solves;
    ref_total += ref_ns;
    new_total += new_ns;
    ref_gauge.set(ref_ns);
    new_gauge.set(new_ns);
    speedup_gauge.set(ref_ns / new_ns);
    recorder.sample(sim::Tick(r));
  }
  std::printf(
      "== micro_knapsack hotpath (select-path solve, %zu objects, budget "
      "%lld) ==\nreference %.0f ns/solve, reused %.0f ns/solve, speedup "
      "%.2fx\n\n",
      objects, static_cast<long long>(budget), ref_total / rounds,
      new_total / rounds, ref_total / new_total);
  bench::emit_metrics(flags, "micro_knapsack", recorder);
}

}  // namespace

int main(int argc, char** argv) {
  const mobi::util::Flags flags(argc, argv);
  run_hotpath(flags);
  if (flags.get_bool("quick", false)) return 0;
  // Strip our flags before handing argv to google-benchmark (it rejects
  // unknown --flags).
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--quick" || arg.rfind("--out", 0) == 0 ||
        arg.rfind("--hot_", 0) == 0) {
      if ((arg == "--out" || arg.rfind("--hot_", 0) == 0) &&
          arg.find('=') == std::string_view::npos && i + 1 < argc) {
        ++i;  // skip the detached value token
      }
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = int(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
