// Figure 1 (paper §1/§2): the mobile-computing architecture. This binary
// instantiates the full component stack — remote servers on a fixed
// network, a base station with a cache and wireless downlink, mobile
// clients in a cell — runs a few ticks, and prints the topology with live
// state, substituting a structural summary for the paper's diagram.
#include <iostream>

#include "bench_common.hpp"
#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "object/builders.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/updates.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);
  util::Rng rng(std::uint64_t(flags.get_int("seed", 42)));

  const auto catalog = object::make_random_catalog(100, 1, 10, rng);
  server::ServerPool servers(catalog, 4);

  // Two cells, each with its own base station, sharing the remote servers.
  core::BaseStationConfig config;
  config.download_budget = 50;
  config.downlink_capacity = 100;
  std::vector<std::unique_ptr<core::BaseStation>> cells;
  for (int cell = 0; cell < 2; ++cell) {
    cells.push_back(std::make_unique<core::BaseStation>(
        catalog, servers, cache::make_harmonic_decay(),
        std::make_unique<core::ReciprocalScorer>(),
        core::make_policy("on-demand-knapsack"), config));
  }

  auto updates = workload::make_periodic_staggered(catalog.size(), 5);
  std::vector<workload::RequestGenerator> generators;
  for (int cell = 0; cell < 2; ++cell) {
    generators.emplace_back(workload::make_zipf_access(catalog.size(), 1.0),
                            workload::UniformTarget{0.5, 1.0}, 40,
                            rng.split());
  }
  for (sim::Tick t = 0; t < 50; ++t) {
    for (std::size_t cell = 0; cell < cells.size(); ++cell) {
      if (cell == 0) cells[cell]->apply_updates(*updates, t);
      cells[cell]->process_batch(generators[cell].next_batch(), t);
    }
  }

  std::cout << "Figure 1: architecture of a mobile computing environment\n"
            << "  fixed network: " << servers.server_count()
            << " remote servers, " << catalog.size() << " objects ("
            << catalog.total_size() << " units total)\n";
  util::Table table({"cell", "policy", "requests", "downloaded units",
                     "avg score", "downlink util"});
  for (std::size_t cell = 0; cell < cells.size(); ++cell) {
    const auto& station = *cells[cell];
    table.add_row({(long long)(cell), std::string(station.policy().name()),
                   (long long)(station.totals().requests),
                   (long long)(station.totals().units_downloaded),
                   station.totals().average_score(),
                   station.downlink().utilization()});
  }
  bench::emit(flags, "Per-cell base stations after 50 ticks", "fig1", table);
  return 0;
}
