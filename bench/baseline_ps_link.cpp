// Substrate validation: the analytic FixedNetwork contention model (used
// by BaseStation) vs the exact event-driven processor-sharing link. For a
// batch submitted at one instant, processor sharing completes items
// smallest-first and the *last* completion equals the analytic
// batch_completion_time; per-item times differ because the analytic model
// charges contention uniformly. This bench quantifies that gap across
// burst shapes so users know when the cheap model suffices.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "net/fixed_network.hpp"
#include "net/ps_link.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace mobi;

struct Comparison {
  double analytic_mean = 0.0;
  double ps_mean = 0.0;
  double analytic_last = 0.0;
  double ps_last = 0.0;
};

Comparison compare(const std::vector<object::Units>& sizes,
                   double bandwidth) {
  Comparison result;
  net::FixedNetwork analytic(bandwidth, 0.0, 1.0);
  const auto analytic_times = analytic.submit_batch(sizes);
  for (double t : analytic_times) result.analytic_mean += t;
  result.analytic_mean /= double(analytic_times.size());
  result.analytic_last =
      *std::max_element(analytic_times.begin(), analytic_times.end());

  sim::Simulator simulator;
  net::PsLink link(simulator, bandwidth);
  std::vector<double> finishes;
  for (object::Units size : sizes) {
    link.submit(size, [&](double, double f) { finishes.push_back(f); });
  }
  simulator.run();
  for (double t : finishes) result.ps_mean += t;
  result.ps_mean /= double(finishes.size());
  result.ps_last = *std::max_element(finishes.begin(), finishes.end());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  util::Rng rng(std::uint64_t(flags.get_int("seed", 42)));
  const double bandwidth = 10.0;

  util::Table table({"burst", "analytic mean", "PS mean", "analytic last",
                     "PS last"});
  const std::vector<std::pair<const char*, std::vector<object::Units>>>
      bursts = {
          {"8 equal x10", std::vector<object::Units>(8, 10)},
          {"1 big + 7 small", {70, 2, 2, 2, 2, 2, 2, 2}},
          {"geometric", {64, 32, 16, 8, 4, 2, 1, 1}},
      };
  for (const auto& [label, sizes] : bursts) {
    const auto result = compare(sizes, bandwidth);
    table.add_row({std::string(label), result.analytic_mean, result.ps_mean,
                   result.analytic_last, result.ps_last});
  }
  // A random burst for good measure.
  std::vector<object::Units> random_sizes(12);
  for (auto& s : random_sizes) s = rng.uniform_int(1, 40);
  const auto result = compare(random_sizes, bandwidth);
  table.add_row({std::string("random x12"), result.analytic_mean,
                 result.ps_mean, result.analytic_last, result.ps_last});

  mobi::bench::emit(flags,
                    "Substrate check: analytic contention vs exact "
                    "processor sharing (same-instant bursts)",
                    "ps_link", table);
  std::cout << "Read: last completions agree exactly (work conservation); "
               "PS mean is lower because small transfers escape early "
               "instead of being charged the whole batch.\n";
  return 0;
}
