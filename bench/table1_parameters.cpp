// Table 1 (paper §4.1): parameter values for the solution-space analysis,
// plus a verification pass over a generated instance showing the synthetic
// data actually conforms to the table (ranges, distributions and the
// 5000-unit / 5000-client totals quoted in the text).
#include <iostream>

#include "bench_common.hpp"
#include "exp/solution_space.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);

  util::Table table({"Parameter", "range", "distribution"});
  table.add_row({std::string("Object Size"), std::string("[1-20]"),
                 std::string("uniform")});
  table.add_row({std::string("Num Requests"), std::string("[1-20]"),
                 std::string("uniform or constant")});
  table.add_row({std::string("Cache Recency Score"), std::string("[0.1-1.0]"),
                 std::string("uniform")});
  bench::emit(flags, "Table 1: parameter values for each object", "table1",
              table);

  exp::SolutionSpaceConfig config;
  config.seed = std::uint64_t(flags.get_int("seed", 42));
  const auto inst = exp::build_instance(config);

  util::Summary sizes, requests, recency;
  for (std::size_t i = 0; i < inst.catalog.size(); ++i) {
    sizes.add(double(inst.catalog.object_size(object::ObjectId(i))));
    requests.add(double(inst.num_requests[i]));
    recency.add(inst.cache_recency[i]);
  }
  util::Table check(
      {"attribute", "min", "mean", "max", "total"});
  check.add_row({std::string("object size"), sizes.min(), sizes.mean(),
                 sizes.max(), double(inst.catalog.total_size())});
  check.add_row({std::string("num requests"), requests.min(), requests.mean(),
                 requests.max(), requests.sum()});
  check.add_row({std::string("cache recency"), recency.min(), recency.mean(),
                 recency.max(), recency.sum()});
  bench::emit(flags,
              "Generated instance conformance (500 objects, totals 5000/5000)",
              "table1_conformance", check);
  return 0;
}
