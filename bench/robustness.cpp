// Robustness: the on-demand policy vs the asynchronous baseline when the
// world is unkind — (a) non-stationary popularity (the hot set rotates
// mid-run) and (b) transient fixed-network faults. Request-driven
// selection follows the requests wherever they move and retries failed
// objects while they are still wanted; the request-oblivious round-robin
// does neither.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "object/builders.hpp"
#include "server/remote_server.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/hotspot.hpp"
#include "workload/updates.hpp"

namespace {

using namespace mobi;

double run(const std::string& policy_name, sim::Tick hot_shift_period,
           double failure_rate, std::uint64_t seed) {
  const std::size_t n = 200;
  const object::Catalog catalog = object::make_uniform_catalog(n, 1);
  server::ServerPool servers(catalog, 1);
  core::BaseStationConfig config;
  config.download_budget = 15;
  config.fetch_failure_rate = failure_rate;
  config.failure_seed = seed ^ 0x7777ULL;
  core::BaseStation station(catalog, servers, cache::make_harmonic_decay(),
                            std::make_unique<core::ReciprocalScorer>(),
                            core::make_policy(policy_name), config);
  auto updates = workload::make_periodic_staggered(n, 4);
  const workload::ShiftingHotspot hotspot(workload::make_zipf_access(n, 1.0),
                                          hot_shift_period, n / 4);
  util::Rng rng(seed);

  double score = 0.0;
  std::size_t requests = 0;
  const sim::Tick warmup = 30, ticks = 230;
  for (sim::Tick t = 0; t < ticks; ++t) {
    station.apply_updates(*updates, t);
    workload::RequestBatch batch;
    for (int i = 0; i < 80; ++i) {
      batch.push_back(workload::Request{hotspot.sample(rng, t), 1.0,
                                        workload::ClientId(i)});
    }
    const auto result = station.process_batch(batch, t);
    if (t >= warmup) {
      score += result.score_sum;
      requests += result.requests;
    }
  }
  return requests ? score / double(requests) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto seed = std::uint64_t(flags.get_int("seed", 42));

  util::Table shifting({"hot-set shift period", "on-demand knapsack",
                        "async round-robin", "gap"});
  for (sim::Tick period : {1000000, 100, 50, 25}) {
    const double on_demand = run("on-demand-knapsack", period, 0.0, seed);
    const double async = run("async-round-robin", period, 0.0, seed);
    shifting.add_row(
        {period >= 1000000 ? std::string("static") : std::to_string(period),
         on_demand, async, on_demand - async});
  }
  mobi::bench::emit(flags, "Robustness: shifting hotspot (no faults)",
                    "robustness_hotspot", shifting);

  util::Table faults({"fetch failure rate", "on-demand knapsack",
                      "async round-robin", "gap"});
  for (double rate : {0.0, 0.1, 0.25, 0.5}) {
    const double on_demand = run("on-demand-knapsack", 1000000, rate, seed);
    const double async = run("async-round-robin", 1000000, rate, seed);
    faults.add_row({rate, on_demand, async, on_demand - async});
  }
  mobi::bench::emit(flags, "Robustness: transient fetch faults (static zipf)",
                    "robustness_faults", faults);
  return 0;
}
