// Mobility sweep: churn ramp x {predictive, residence-blind} knapsack.
// Each row runs one MobilityFleet configuration through run_multi_cell —
// random-waypoint clients over the cell grid, trajectory handoffs, and a
// downlink delivery latency that loses payloads to departed clients.
// Expected shape: as churn climbs, crossings and lost deliveries rise
// and mean recency falls for both variants; the predictive knapsack
// (per-client benefit scaled by predicted residency, the MobiCacher
// term) spends its budget on clients that will still be there when the
// payload lands, so its served-recency-per-unit stays ahead of the
// residence-blind twin wherever churn is material.
//
// With --out=<dir> the commute-churn predictive run additionally ships
// its per-tick mc.* / mc.mobility.* series as <dir>/mobility_metrics.json
// (schema mobicache.metrics.v1); tools/metrics_diff compares that
// artifact against results/golden_mobility.json as the CI gate.
#include <algorithm>
#include <string>

#include "bench_common.hpp"
#include "exp/multi_cell.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace {

mobi::exp::MultiCellConfig base_config(const mobi::util::Flags& flags) {
  mobi::exp::MultiCellConfig config;
  config.seed = std::uint64_t(flags.get_int("seed", 42));
  config.cell_count = 9;
  config.cell.client_count = 8;
  config.cell.object_count = 40;
  config.cell.ticks = 400;
  config.cell.base_budget = 12;
  config.mobility.mode = mobi::sim::MobilityMode::kRandomWaypoint;
  config.mobility.pause_lo = 0;
  config.mobility.pause_hi = 4;
  config.mobility.handoff_ticks = config.cell.report_period + 1;
  config.mobility_horizon = 10;
  if (flags.get_bool("quick", false)) {
    config.cell_count = 6;
    config.cell.object_count = 30;
    config.cell.ticks = 150;
  }
  return config;
}

struct Churn {
  const char* name;
  double speed_lo;
  double speed_hi;
};

constexpr Churn kChurns[] = {
    {"calm", 0.02, 0.08},
    {"drift", 0.05, 0.2},
    {"commute", 0.1, 0.4},
    {"storm", 0.3, 0.9},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);

  util::Table table({"churn", "knapsack", "avg score", "score/unit",
                     "crossings", "migrations", "deliveries", "lost",
                     "units"});
  for (const Churn& churn : kChurns) {
    for (const bool predictive : {true, false}) {
      exp::MultiCellConfig config = base_config(flags);
      config.mobility.speed_lo = churn.speed_lo;
      config.mobility.speed_hi = churn.speed_hi;
      config.mobility_predictive = predictive;
      const exp::MultiCellResult result = exp::run_multi_cell(config);
      const double units = double(
          std::max<object::Units>(1, result.aggregate.base_downloaded));
      table.add_row({std::string(churn.name),
                     std::string(predictive ? "predictive" : "blind"),
                     result.aggregate.average_score(),
                     result.aggregate.score_sum / units,
                     (long long)(result.mobility.crossings),
                     (long long)(result.mobility.migrations),
                     (long long)(result.mobility.deliveries),
                     (long long)(result.mobility.lost_deliveries),
                     (long long)(result.aggregate.base_downloaded)});
    }
  }
  bench::emit(flags,
              "Mobility: churn ramp x {predictive, residence-blind} "
              "knapsack (random-waypoint trajectories)",
              "mobility_sweep", table);

  // The metrics artifact for the golden gate: one recorded predictive
  // run at commute churn (crossings, migrations, deliveries and losses
  // all nonzero).
  exp::MultiCellConfig config = base_config(flags);
  config.mobility.speed_lo = kChurns[2].speed_lo;
  config.mobility.speed_hi = kChurns[2].speed_hi;
  obs::MetricsRegistry registry;
  obs::SeriesRecorder recorder(registry);
  exp::run_multi_cell(config, nullptr, &recorder);
  bench::emit_metrics(flags, "mobility", recorder);
  return 0;
}
