// Figure 3 (paper §3.2): average recency of data delivered to clients as
// the per-tick download budget grows, on-demand vs asynchronous, at low
// (update every 10 ticks) and high (every tick) update frequency. Paper
// setup: 500 unit objects, uniform access, 100 requests/tick, warm 50,
// measure 100, decay x' = C/(1/x + 1). Expected shape: on-demand >= async
// at every budget; on-demand -> 1.0 as the budget reaches 100; the gap is
// larger at high update frequency, where async performs poorly.
#include <iostream>

#include "bench_common.hpp"
#include "exp/fig3.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

int main(int argc, char** argv) {
  using namespace mobi;
  const util::Flags flags(argc, argv);

  for (const auto& [label, period] :
       {std::pair<const char*, mobi::sim::Tick>{"low update frequency (every 10 ticks)", 10},
        std::pair<const char*, mobi::sim::Tick>{"high update frequency (every tick)", 1}}) {
    exp::Fig3Config config;
    config.update_period = period;
    config.seed = std::uint64_t(flags.get_int("seed", 42));
    if (flags.get_bool("quick", false)) {
      config.object_count = 100;
      config.requests_per_tick = 40;
      config.warmup_ticks = 20;
      config.measure_ticks = 40;
      config.budgets = {1, 10, 20, 40};
    }
    const auto result = exp::run_fig3(config);
    util::Table table({"downloaded/tick", "on-demand avg recency",
                       "async avg recency"});
    for (const auto& point : result.points) {
      table.add_row({(long long)(point.budget), point.on_demand_recency,
                     point.async_recency});
    }
    bench::emit(flags, std::string("Figure 3: ") + label,
                period == 10 ? "fig3_low" : "fig3_high", table);

    // Per-tick observability for one representative point (on-demand at
    // the median budget) alongside the aggregate curve.
    if (flags.has("out")) {
      obs::MetricsRegistry registry;
      obs::SeriesRecorder recorder(registry);
      const object::Units budget = config.budgets[config.budgets.size() / 2];
      exp::run_fig3_once(config, budget, /*on_demand=*/true, &recorder);
      bench::emit_metrics(flags, period == 10 ? "fig3_low" : "fig3_high",
                          recorder);
    }
  }
  return 0;
}
