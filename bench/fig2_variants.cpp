// The results the paper *omitted*: "we note that our results were similar
// for varying object sizes, but we omit these results due to space
// considerations" (§3.1) and "our results were similar for varying object
// sizes and skew in popularity" (§3.2). This binary regenerates both
// omitted variants so the claim can be checked:
//   * Figure 2 with object sizes U[1, 20] instead of unit size, and with
//     staggered instead of synchronized updates;
//   * Figure 3 with zipf-skewed instead of uniform access.
#include <iostream>

#include "bench_common.hpp"
#include "cache/decay.hpp"
#include "core/base_station.hpp"
#include "exp/fig2.hpp"
#include "exp/fig3.hpp"
#include "object/builders.hpp"
#include "server/remote_server.hpp"
#include "util/rng.hpp"
#include "workload/access.hpp"
#include "workload/trace.hpp"
#include "workload/updates.hpp"

namespace {

using namespace mobi;

/// Fig-2-style measurement with per-object random sizes and a choice of
/// update process.
object::Units downloaded_units(std::size_t object_count,
                               exp::AccessPattern pattern,
                               std::size_t request_rate, bool staggered,
                               std::uint64_t seed) {
  util::Rng rng(seed ^ (std::uint64_t(request_rate) << 18) ^
                std::uint64_t(pattern));
  const object::Catalog catalog =
      object::make_random_catalog(object_count, 1, 20, rng);
  server::ServerPool servers(catalog, 1);
  core::BaseStationConfig config;
  config.download_budget = -1;
  config.downlink_capacity =
      std::max<object::Units>(1, object::Units(request_rate) * 10);
  core::BaseStation station(
      catalog, servers, cache::make_harmonic_decay(),
      std::make_unique<core::ReciprocalScorer>(),
      std::make_unique<core::OnDemandStaleOnlyPolicy>(), config);
  auto updates = staggered
                     ? workload::make_periodic_staggered(object_count, 5)
                     : workload::make_periodic_synchronized(object_count, 5);
  std::shared_ptr<const workload::AccessDistribution> access;
  switch (pattern) {
    case exp::AccessPattern::kUniform:
      access = workload::make_uniform_access(object_count);
      break;
    case exp::AccessPattern::kRankLinear:
      access = workload::make_rank_linear_access(object_count);
      break;
    case exp::AccessPattern::kZipf:
      access = workload::make_zipf_access(object_count, 1.0);
      break;
  }
  workload::RequestGenerator generator(access, workload::ConstantTarget{1.0},
                                       request_rate, rng.split());
  const sim::Tick warmup = 100, measured = 500;
  object::Units total = 0;
  for (sim::Tick t = 0; t < warmup + measured; ++t) {
    station.apply_updates(*updates, t);
    const auto result = station.process_batch(generator.next_batch(), t);
    if (t >= warmup) total += result.units_downloaded;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto seed = std::uint64_t(flags.get_int("seed", 42));
  const std::size_t n = 500;

  for (const bool staggered : {false, true}) {
    util::Table table({"requests/tick", "asynchronous", "on-demand uniform",
                       "on-demand rank-linear", "on-demand zipf"},
                      0);
    // Async bound with random sizes: total catalog size * updates.
    util::Rng rng(seed);
    const auto catalog = object::make_random_catalog(n, 1, 20, rng);
    const object::Units async_bound = catalog.total_size() * (500 / 5);
    for (std::size_t rate : {0, 50, 100, 200, 400}) {
      table.add_row(
          {(long long)(rate), (long long)(async_bound),
           (long long)(downloaded_units(n, exp::AccessPattern::kUniform, rate,
                                        staggered, seed)),
           (long long)(downloaded_units(n, exp::AccessPattern::kRankLinear,
                                        rate, staggered, seed)),
           (long long)(downloaded_units(n, exp::AccessPattern::kZipf, rate,
                                        staggered, seed))});
    }
    mobi::bench::emit(
        flags,
        std::string("Figure 2 variant: object sizes U[1,20], ") +
            (staggered ? "staggered" : "synchronized") + " updates",
        staggered ? "fig2_var_staggered" : "fig2_var_sizes", table);
  }
  return 0;
}
