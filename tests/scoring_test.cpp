#include "core/scoring.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mobi::core {
namespace {

TEST(Scoring, MeetingTargetScoresOne) {
  ReciprocalScorer scorer;
  EXPECT_DOUBLE_EQ(scorer.score(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(scorer.score(0.8, 0.8), 1.0);
  EXPECT_DOUBLE_EQ(scorer.score(0.9, 0.5), 1.0);  // exceeding also scores 1
}

TEST(Scoring, ReciprocalFormula) {
  ReciprocalScorer scorer;
  // f_C(x) = 1 / (1 + |x/C - 1|); x = 0.5, C = 1 -> 1/1.5.
  EXPECT_DOUBLE_EQ(scorer.score(0.5, 1.0), 1.0 / 1.5);
  EXPECT_DOUBLE_EQ(scorer.score(0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(scorer.score(0.25, 0.5), 1.0 / 1.5);
}

TEST(Scoring, ExponentialFormula) {
  ExponentialScorer scorer;
  EXPECT_DOUBLE_EQ(scorer.score(0.5, 1.0), std::exp(-0.5));
  EXPECT_DOUBLE_EQ(scorer.score(0.0, 1.0), std::exp(-1.0));
  EXPECT_DOUBLE_EQ(scorer.score(1.0, 1.0), 1.0);
}

TEST(Scoring, StepIsAllOrNothing) {
  StepScorer scorer;
  EXPECT_DOUBLE_EQ(scorer.score(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(scorer.score(0.999, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(scorer.score(0.0, 0.5), 0.0);
}

TEST(Scoring, BenefitIsComplement) {
  ReciprocalScorer scorer;
  EXPECT_DOUBLE_EQ(scorer.benefit(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(scorer.benefit(0.0, 1.0), 0.5);
  EXPECT_NEAR(scorer.benefit(0.5, 1.0), 1.0 - 1.0 / 1.5, 1e-12);
}

TEST(Scoring, ArgumentValidation) {
  ReciprocalScorer scorer;
  EXPECT_THROW(scorer.score(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(scorer.score(1.1, 1.0), std::invalid_argument);
  EXPECT_THROW(scorer.score(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(scorer.score(0.5, 1.5), std::invalid_argument);
}

TEST(Scoring, FactoryByName) {
  EXPECT_EQ(make_scorer("reciprocal")->name(), "reciprocal");
  EXPECT_EQ(make_scorer("exponential")->name(), "exponential");
  EXPECT_EQ(make_scorer("step")->name(), "step");
  EXPECT_THROW(make_scorer("bogus"), std::invalid_argument);
}

// Property sweep over (x, c) grids for all scorers.
class ScorerPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ScorerPropertyTest, ScoresStayInUnitInterval) {
  const auto scorer = make_scorer(GetParam());
  for (int xi = 0; xi <= 20; ++xi) {
    for (int ci = 1; ci <= 20; ++ci) {
      const double x = xi / 20.0;
      const double c = ci / 20.0;
      const double s = scorer->score(x, c);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
      if (x >= c) {
        EXPECT_DOUBLE_EQ(s, 1.0);
      }
    }
  }
}

TEST_P(ScorerPropertyTest, MonotoneInRecency) {
  const auto scorer = make_scorer(GetParam());
  for (int ci = 1; ci <= 10; ++ci) {
    const double c = ci / 10.0;
    double previous = -1.0;
    for (int xi = 0; xi <= 100; ++xi) {
      const double s = scorer->score(xi / 100.0, c);
      EXPECT_GE(s, previous) << "x=" << xi / 100.0 << " c=" << c;
      previous = s;
    }
  }
}

TEST_P(ScorerPropertyTest, BenefitComplementsScore) {
  const auto scorer = make_scorer(GetParam());
  for (int xi = 0; xi <= 10; ++xi) {
    const double x = xi / 10.0;
    EXPECT_NEAR(scorer->score(x, 1.0) + scorer->benefit(x, 1.0), 1.0, 1e-12);
  }
}

TEST_P(ScorerPropertyTest, StricterTargetNeverScoresHigher) {
  const auto scorer = make_scorer(GetParam());
  // For a fixed cached copy, a more demanding client (larger C) can only
  // be less satisfied.
  for (int xi = 0; xi <= 10; ++xi) {
    const double x = xi / 10.0;
    double previous = 2.0;
    for (int ci = 1; ci <= 10; ++ci) {
      const double s = scorer->score(x, ci / 10.0);
      EXPECT_LE(s, previous + 1e-12);
      previous = s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllScorers, ScorerPropertyTest,
                         ::testing::Values("reciprocal", "exponential",
                                           "step"));

}  // namespace
}  // namespace mobi::core
