#include "core/latency_aware.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "object/builders.hpp"

namespace mobi::core {
namespace {

struct World {
  object::Catalog catalog;
  server::ServerPool servers;
  cache::Cache cache;
  ReciprocalScorer scorer;

  explicit World(std::vector<object::Units> sizes)
      : catalog(std::move(sizes)),
        servers(catalog, 1),
        cache(catalog.size(), cache::make_harmonic_decay()) {}

  PolicyContext context(object::Units budget) {
    PolicyContext ctx;
    ctx.catalog = &catalog;
    ctx.cache = &cache;
    ctx.servers = &servers;
    ctx.scorer = &scorer;
    ctx.budget = budget;
    return ctx;
  }
};

workload::RequestBatch requests_for(std::vector<object::ObjectId> ids,
                                    std::size_t copies = 1) {
  workload::RequestBatch batch;
  workload::ClientId client = 0;
  for (auto id : ids) {
    for (std::size_t i = 0; i < copies; ++i) {
      batch.push_back({id, 1.0, client++});
    }
  }
  return batch;
}

TEST(LatencyAware, RejectsNegativeOverhead) {
  EXPECT_THROW(OnDemandLatencyAwarePolicy(-1), std::invalid_argument);
}

TEST(LatencyAware, ZeroOverheadMatchesPlainKnapsack) {
  World world({1, 2, 3, 4, 5});
  const auto batch = requests_for({0, 1, 2, 3, 4});
  OnDemandLatencyAwarePolicy latency_aware(0);
  OnDemandKnapsackPolicy plain;
  for (object::Units budget : {0, 3, 7, 15}) {
    EXPECT_EQ(latency_aware.select(batch, world.context(budget)),
              plain.select(batch, world.context(budget)))
        << "budget " << budget;
  }
}

TEST(LatencyAware, OverheadChargesPerFetch) {
  // Two unit objects, overhead 3: each fetch costs 4. Budget 7 fits only
  // one even though plain sizes (2) would fit both.
  World world({1, 1});
  OnDemandLatencyAwarePolicy policy(3);
  const auto selected =
      policy.select(requests_for({0, 1}), world.context(7));
  EXPECT_EQ(selected.size(), 1u);
}

TEST(LatencyAware, HighOverheadPrefersFewerBiggerWins) {
  // Object 0: huge profit (10 requests). Objects 1-4: 1 request each.
  // With overhead 4 and budget 12, taking object 0 (cost 4+4=8) beats
  // spreading across small ones (cost 5 each).
  World world({4, 1, 1, 1, 1});
  workload::RequestBatch batch = requests_for({0}, 10);
  const auto singles = requests_for({1, 2, 3, 4});
  batch.insert(batch.end(), singles.begin(), singles.end());
  OnDemandLatencyAwarePolicy policy(4);
  const auto selected = policy.select(batch, world.context(12));
  EXPECT_TRUE(std::find(selected.begin(), selected.end(), 0u) !=
              selected.end());
}

TEST(LatencyAware, UnlimitedBudgetTakesAllProfitable) {
  World world({1, 1});
  world.cache.refresh(0, world.servers.fetch(0), 0);  // fresh, zero profit
  OnDemandLatencyAwarePolicy policy(5);
  const auto selected =
      policy.select(requests_for({0, 1}), world.context(-1));
  EXPECT_EQ(selected, (std::vector<object::ObjectId>{1}));
}

TEST(LatencyAware, NameAndFactory) {
  OnDemandLatencyAwarePolicy policy(2);
  EXPECT_NE(policy.name().find("latency-aware"), std::string::npos);
  EXPECT_EQ(policy.overhead_units(), 2);
  const auto from_factory = make_policy("on-demand-latency-aware");
  ASSERT_NE(from_factory, nullptr);
  EXPECT_NE(from_factory->name().find("latency-aware"), std::string::npos);
}

TEST(LatencyAware, EmptyBatchAndBadContext) {
  World world({1});
  OnDemandLatencyAwarePolicy policy(1);
  EXPECT_TRUE(policy.select({}, world.context(5)).empty());
  PolicyContext empty;
  EXPECT_THROW(policy.select({}, empty), std::invalid_argument);
}

TEST(LatencyAware, SelectionNeverExceedsEffectiveBudget) {
  util::Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<object::Units> sizes;
    for (int i = 0; i < 12; ++i) sizes.push_back(rng.uniform_int(1, 6));
    World world(sizes);
    std::vector<object::ObjectId> all;
    for (object::ObjectId id = 0; id < 12; ++id) all.push_back(id);
    const object::Units overhead = rng.uniform_int(0, 3);
    const object::Units budget = rng.uniform_int(0, 30);
    OnDemandLatencyAwarePolicy policy(overhead);
    const auto selected =
        policy.select(requests_for(all), world.context(budget));
    object::Units cost = 0;
    for (auto id : selected) {
      cost += world.catalog.object_size(id) + overhead;
    }
    EXPECT_LE(cost, budget);
  }
}

}  // namespace
}  // namespace mobi::core
