#include "cache/ttl.hpp"
#include "core/swr_policy.hpp"

#include <gtest/gtest.h>

#include "core/policy.hpp"
#include "object/builders.hpp"

namespace mobi {
namespace {

server::FetchResult fetched(server::Version version = 1,
                            object::Units size = 1) {
  return server::FetchResult{version, 0, size};
}

TEST(TtlView, Validation) {
  cache::Cache store(2, cache::make_harmonic_decay());
  EXPECT_THROW(cache::TtlView(store, 0), std::invalid_argument);
  EXPECT_THROW(cache::TtlView(store, -3), std::invalid_argument);
}

TEST(TtlView, AgeTracksFetchTime) {
  cache::Cache store(2, cache::make_harmonic_decay());
  store.refresh(0, fetched(), 10);
  const cache::TtlView view(store, 5);
  EXPECT_FALSE(view.age(1, 12).has_value());
  EXPECT_EQ(*view.age(0, 10), 0);
  EXPECT_EQ(*view.age(0, 17), 7);
  EXPECT_THROW(view.age(0, 9), std::invalid_argument);
}

TEST(TtlView, FreshWithinTtl) {
  cache::Cache store(1, cache::make_harmonic_decay());
  store.refresh(0, fetched(), 0);
  const cache::TtlView view(store, 5);
  EXPECT_TRUE(view.fresh(0, 0));
  EXPECT_TRUE(view.fresh(0, 5));   // boundary counts as fresh
  EXPECT_FALSE(view.fresh(0, 6));
}

TEST(TtlView, SyntheticRecencyRamp) {
  cache::Cache store(1, cache::make_harmonic_decay());
  store.refresh(0, fetched(), 0);
  const cache::TtlView view(store, 4);
  EXPECT_DOUBLE_EQ(view.recency(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(view.recency(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(view.recency(0, 5), 0.5);        // first expired period
  EXPECT_DOUBLE_EQ(view.recency(0, 8), 0.5);
  EXPECT_DOUBLE_EQ(view.recency(0, 9), 1.0 / 3.0);  // second
  cache::Cache empty(1, cache::make_harmonic_decay());
  EXPECT_DOUBLE_EQ(cache::TtlView(empty, 4).recency(0, 0), 0.0);
}

struct World {
  object::Catalog catalog;
  server::ServerPool servers;
  cache::Cache cache;
  core::ReciprocalScorer scorer;

  explicit World(std::vector<object::Units> sizes)
      : catalog(std::move(sizes)),
        servers(catalog, 1),
        cache(catalog.size(), cache::make_harmonic_decay()) {}

  core::PolicyContext context(object::Units budget, sim::Tick now) {
    core::PolicyContext ctx;
    ctx.catalog = &catalog;
    ctx.cache = &cache;
    ctx.servers = &servers;
    ctx.scorer = &scorer;
    ctx.now = now;
    ctx.budget = budget;
    return ctx;
  }
};

workload::RequestBatch requests_for(std::vector<object::ObjectId> ids) {
  workload::RequestBatch batch;
  workload::ClientId client = 0;
  for (auto id : ids) batch.push_back({id, 1.0, client++});
  return batch;
}

TEST(SwrPolicy, Validation) {
  EXPECT_THROW(core::StaleWhileRevalidatePolicy(0), std::invalid_argument);
  core::StaleWhileRevalidatePolicy policy(3);
  core::PolicyContext empty;
  EXPECT_THROW(policy.select({}, empty), std::invalid_argument);
}

TEST(SwrPolicy, FreshEntriesAreNotRevalidated) {
  World world({1, 1});
  world.cache.refresh(0, world.servers.fetch(0), 10);
  core::StaleWhileRevalidatePolicy policy(5);
  // At tick 12 object 0 is fresh-by-TTL; object 1 absent -> revalidate.
  const auto selected =
      policy.select(requests_for({0, 1}), world.context(-1, 12));
  EXPECT_EQ(selected, (std::vector<object::ObjectId>{1}));
}

TEST(SwrPolicy, ExpiredEntriesAreRevalidated) {
  World world({1});
  world.cache.refresh(0, world.servers.fetch(0), 0);
  core::StaleWhileRevalidatePolicy policy(5);
  const auto selected = policy.select(requests_for({0}), world.context(-1, 6));
  EXPECT_EQ(selected, (std::vector<object::ObjectId>{0}));
}

TEST(SwrPolicy, TtlLieIgnoresServerUpdates) {
  World world({1});
  world.cache.refresh(0, world.servers.fetch(0), 0);
  world.servers.apply_update(0, 1);  // master changed...
  core::StaleWhileRevalidatePolicy policy(5);
  // ...but the copy is fresh-by-TTL, so SWR does not refresh it.
  EXPECT_TRUE(policy.select(requests_for({0}), world.context(-1, 2)).empty());
}

TEST(SwrPolicy, PopularityOrdersRevalidation) {
  World world({1, 1, 1});
  core::StaleWhileRevalidatePolicy policy(5);
  // All absent; object 2 requested twice, budget fits only one.
  const auto selected =
      policy.select(requests_for({0, 1, 2, 2}), world.context(1, 0));
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], 2u);
}

TEST(SwrPolicy, BudgetRespected) {
  World world({3, 3, 3});
  core::StaleWhileRevalidatePolicy policy(5);
  const auto selected =
      policy.select(requests_for({0, 1, 2}), world.context(7, 0));
  object::Units used = 0;
  for (auto id : selected) used += world.catalog.object_size(id);
  EXPECT_LE(used, 7);
  EXPECT_EQ(selected.size(), 2u);
}

TEST(SwrPolicy, FactoryAndName) {
  const auto policy = core::make_policy("stale-while-revalidate");
  ASSERT_NE(policy, nullptr);
  EXPECT_NE(policy->name().find("stale-while-revalidate"), std::string::npos);
  EXPECT_EQ(core::StaleWhileRevalidatePolicy(7).ttl(), 7);
}

}  // namespace
}  // namespace mobi
