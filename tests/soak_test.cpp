// Long-horizon soak harness: the fault ramp is pinned, two runs of the
// same seed produce bit-identical windowed series for every pool size,
// the trend shows graceful degradation (faults climb, quality declines,
// nothing cliffs to zero), and the exported document round-trips through
// the metrics-diff gate cleanly — the properties the CI golden gate
// depends on.
#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/multi_cell.hpp"
#include "exp/soak.hpp"
#include "obs/metrics_diff.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace mobi::exp {
namespace {

// Small enough to run in a test, large enough that every series family
// (fault.*, lat.*, trace.*, mc.*) carries nonzero mass by the last window.
SoakConfig quick_config() {
  SoakConfig config;
  config.windows = 3;
  config.window_ticks = 40;
  config.window_warmup = 10;
  config.base.object_count = 60;
  config.base.requests_per_tick = 20;
  config.cell_count = 2;
  config.cell.object_count = 50;
  config.cell.client_count = 16;
  config.cell.ticks = 40;
  config.trace_sample_every = 4;
  return config;
}

TEST(Soak, FaultRampIsPinnedAndLinear) {
  SoakConfig config = quick_config();
  config.fault_rate_lo = 0.0;
  config.fault_rate_hi = 0.3;
  EXPECT_DOUBLE_EQ(soak_plan_at(config, 0).fetch_failure_rate, 0.0);
  EXPECT_DOUBLE_EQ(soak_plan_at(config, 1).fetch_failure_rate, 0.15);
  EXPECT_DOUBLE_EQ(soak_plan_at(config, 2).fetch_failure_rate, 0.3);
  // Secondary categories scale off the headline rate, capped at 1.
  const sim::FaultPlan last = soak_plan_at(config, 2);
  EXPECT_DOUBLE_EQ(last.fetch_slowdown_rate, 0.3 * config.slowdown_scale);
  EXPECT_DOUBLE_EQ(last.downlink_drop_rate, 0.3 * config.drop_scale);
  EXPECT_DOUBLE_EQ(last.server_outage_rate, 0.3 * config.outage_scale);
  // A flat soak holds the rate constant.
  config.fault_rate_hi = config.fault_rate_lo = 0.1;
  EXPECT_DOUBLE_EQ(soak_plan_at(config, 0).fetch_failure_rate, 0.1);
  EXPECT_DOUBLE_EQ(soak_plan_at(config, 2).fetch_failure_rate, 0.1);
}

TEST(Soak, RejectsBadConfiguration) {
  SoakConfig zero = quick_config();
  zero.windows = 0;
  EXPECT_THROW(run_soak(zero), std::invalid_argument);
  SoakConfig rate = quick_config();
  rate.fault_rate_hi = 1.5;
  EXPECT_THROW(run_soak(rate), std::invalid_argument);
  SoakConfig sample = quick_config();
  sample.trace_sample_every = 0;
  EXPECT_THROW(run_soak(sample), std::invalid_argument);
}

TEST(Soak, BitIdenticalAcrossRunsAndPoolSizes) {
  const SoakConfig config = quick_config();
  const SoakResult serial = run_soak(config);
  ASSERT_EQ(serial.windows, config.windows);
  ASSERT_FALSE(serial.series.empty());

  // Re-run: identical map, series by series, value by value (EXPECT_EQ
  // on doubles is deliberate — the contract is bit-identical).
  const SoakResult again = run_soak(config);
  EXPECT_EQ(serial.series, again.series);

  for (std::size_t pool_size : {1u, 2u, 8u}) {
    util::ThreadPool pool(pool_size);
    const SoakResult pooled = run_soak(config, &pool);
    EXPECT_EQ(serial.series, pooled.series) << "pool size " << pool_size;
  }
  // And the JSON export is byte-stable, so golden artifacts diff clean.
  EXPECT_EQ(serial.to_json(), again.to_json());
}

TEST(Soak, TrendsShowGracefulDegradationUnderTheRamp) {
  const SoakResult result = run_soak(quick_config());
  const std::size_t last = result.windows - 1;

  // The ramp itself is monotone.
  const auto& rate = result.at("fault_rate");
  for (std::size_t w = 1; w < result.windows; ++w) {
    EXPECT_GE(rate[w], rate[w - 1]);
  }
  // Resilience series wake up as the rate climbs: nothing injected at
  // rate 0, real failure mass by the end.
  EXPECT_EQ(result.at("failed_fetches")[0], 0.0);
  EXPECT_GT(result.at("failed_fetches")[last], 0.0);
  EXPECT_GT(result.at("fault.injected.fetch_failures")[last], 0.0);
  EXPECT_GT(result.at("retries")[last], 0.0);
  EXPECT_GT(result.at("degraded_serves")[last], 0.0);

  // Quality degrades but does not collapse: the last window still
  // serves every request, at a lower score than the clean window.
  EXPECT_LT(result.at("score.avg")[last], result.at("score.avg")[0]);
  EXPECT_GT(result.at("score.avg")[last], 0.0);
  EXPECT_LT(result.at("recency.avg")[last], result.at("recency.avg")[0]);
  EXPECT_EQ(result.at("requests")[0], result.at("requests")[last]);

  // Latency mass appears once retries resolve fetches late.
  EXPECT_EQ(result.at("lat.ticks_to_serve.mean")[0], 0.0);
  EXPECT_GT(result.at("lat.ticks_to_serve.mean")[last], 0.0);

  // Both legs traced: the station leg's sampled events and the merged
  // multi-cell trace counters are live.
  EXPECT_GT(result.at("trace.events")[0], 0.0);
  EXPECT_GT(result.at("mc.trace.events")[0], 0.0);
  EXPECT_GT(result.at("mc.requests")[0], 0.0);

  // Unknown series stay a hard error (typo guard for gate configs).
  EXPECT_THROW(result.at("no.such.series"), std::out_of_range);
}

TEST(Soak, HandoffStormDegradesMeanRecencyGracefully) {
  // Mobility chaos leg: the same fleet under a calm window (slow walkers,
  // long pauses) and a handoff-storm window (~10x the boundary-crossing
  // churn: everyone sprints, nobody pauses). A storm costs real recency —
  // every crossing opens an off-air handoff window and in-flight payloads
  // land on departed clients — but the degradation must stay graceful: a
  // bounded ratio of the calm window's mean score, not a cliff to zero.
  MultiCellConfig config;
  config.cell_count = 6;
  config.cell.client_count = 8;
  config.cell.object_count = 40;
  config.cell.ticks = 150;
  config.cell.base_budget = 16;
  config.mobility.mode = sim::MobilityMode::kRandomWaypoint;
  config.mobility.speed_lo = 0.02;
  config.mobility.speed_hi = 0.06;
  config.mobility.pause_lo = 2;
  config.mobility.pause_hi = 6;
  config.mobility.handoff_ticks = 2;
  config.seed = 97;
  const MultiCellResult calm = run_multi_cell(config);

  config.mobility.speed_lo *= 10.0;
  config.mobility.speed_hi *= 10.0;
  config.mobility.pause_lo = 0;
  config.mobility.pause_hi = 0;
  const MultiCellResult storm = run_multi_cell(config);

  // The storm is a real storm: several-fold the calm crossing rate, and
  // payloads actually die in flight.
  EXPECT_GE(storm.mobility.crossings, 7 * calm.mobility.crossings);
  EXPECT_GT(storm.mobility.lost_deliveries, calm.mobility.lost_deliveries);

  const double calm_score = calm.aggregate.average_score();
  const double storm_score = storm.aggregate.average_score();
  EXPECT_LT(storm_score, calm_score);         // churn costs recency...
  EXPECT_GT(storm_score, 0.4 * calm_score);   // ...but degrades gracefully
}

TEST(Soak, ExportFeedsTheMetricsDiffGate) {
  SoakConfig config = quick_config();
  config.cell_count = 0;  // station leg only: mc.* series absent
  const SoakResult result = run_soak(config);
  EXPECT_EQ(result.series.count("mc.requests"), 0u);

  const std::string text = result.to_json();
  // Parses as soak.v1 with the window-index axis.
  const util::json::Value root = util::json::parse(text);
  EXPECT_EQ(root.at("schema").str(), "mobicache.soak.v1");
  ASSERT_EQ(root.at("windows").arr().size(), config.windows);
  EXPECT_EQ(root.at("windows").arr()[2].num(), 2.0);

  // Self-diff through the real gate path is clean; a perturbed copy of
  // one value is caught.
  EXPECT_TRUE(obs::diff_metrics_text(text, text).ok());
  std::string perturbed = text;
  const std::string needle = "\"score.avg\":[";
  const std::size_t at = perturbed.find(needle);
  ASSERT_NE(at, std::string::npos);
  perturbed.insert(at + needle.size(), "42,");
  // One extra value shifts the series length — a regression, loudly.
  EXPECT_FALSE(obs::diff_metrics_text(text, perturbed).ok());
}

}  // namespace
}  // namespace mobi::exp
