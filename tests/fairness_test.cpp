#include "core/fairness.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mobi::core {
namespace {

TEST(JainIndex, PerfectEqualityIsOne) {
  const std::vector<double> equal{0.7, 0.7, 0.7, 0.7};
  EXPECT_DOUBLE_EQ(jain_index(equal), 1.0);
}

TEST(JainIndex, MaximalInequalityIsOneOverN) {
  const std::vector<double> skewed{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(skewed), 0.25);
}

TEST(JainIndex, KnownIntermediateValue) {
  const std::vector<double> scores{1.0, 0.5};
  // (1.5)^2 / (2 * 1.25) = 2.25 / 2.5 = 0.9.
  EXPECT_DOUBLE_EQ(jain_index(scores), 0.9);
}

TEST(JainIndex, EdgeCases) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
  const std::vector<double> negative{-0.1};
  EXPECT_THROW(jain_index(negative), std::invalid_argument);
}

TEST(JainIndex, ScaleInvariant) {
  const std::vector<double> base{0.2, 0.5, 0.9};
  std::vector<double> scaled;
  for (double x : base) scaled.push_back(x * 3.0);
  EXPECT_NEAR(jain_index(base), jain_index(scaled), 1e-12);
}

TEST(MinScore, FindsMinimum) {
  const std::vector<double> scores{0.9, 0.3, 0.7};
  EXPECT_DOUBLE_EQ(min_score(scores), 0.3);
  EXPECT_DOUBLE_EQ(min_score({}), 1.0);
}

TEST(ScoreQuantile, OrderStatistics) {
  const std::vector<double> scores{0.1, 0.2, 0.3, 0.4, 0.5};
  EXPECT_DOUBLE_EQ(score_quantile(scores, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(score_quantile(scores, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(score_quantile(scores, 0.5), 0.3);
  EXPECT_NEAR(score_quantile(scores, 0.25), 0.2, 1e-12);
}

TEST(ScoreQuantile, Interpolates) {
  const std::vector<double> scores{0.0, 1.0};
  EXPECT_DOUBLE_EQ(score_quantile(scores, 0.3), 0.3);
}

TEST(ScoreQuantile, Validation) {
  const std::vector<double> scores{0.5};
  EXPECT_THROW(score_quantile(scores, -0.1), std::invalid_argument);
  EXPECT_THROW(score_quantile(scores, 1.1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(score_quantile({}, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(score_quantile(scores, 0.5), 0.5);
}

}  // namespace
}  // namespace mobi::core
