#include "client/cell.hpp"
#include "client/mobile_client.hpp"

#include <gtest/gtest.h>

#include "object/builders.hpp"

namespace mobi::client {
namespace {

object::Catalog small_catalog() { return object::make_uniform_catalog(10, 2); }

server::FetchResult fetched(server::Version version = 1) {
  return server::FetchResult{version, 0, 2};
}

TEST(MobileClient, ConfigValidation) {
  const auto catalog = small_catalog();
  MobileClientConfig config;
  config.disconnect_rate = -0.1;
  EXPECT_THROW(MobileClient(0, catalog, config), std::invalid_argument);
  config = {};
  config.reconnect_rate = 1.5;
  EXPECT_THROW(MobileClient(0, catalog, config), std::invalid_argument);
  config = {};
  config.target_recency = 0.0;
  EXPECT_THROW(MobileClient(0, catalog, config), std::invalid_argument);
}

TEST(MobileClient, StartsConnectedAndEmpty) {
  const auto catalog = small_catalog();
  MobileClient client(7, catalog, {});
  EXPECT_EQ(client.id(), 7u);
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.hits(), 0u);
  EXPECT_FALSE(client.lookup(0, 0).has_value());
  EXPECT_EQ(client.misses(), 1u);
}

TEST(MobileClient, StoreAndLookup) {
  const auto catalog = small_catalog();
  MobileClient client(0, catalog, {});
  client.store(3, fetched(), 0);
  const auto recency = client.lookup(3, 1);
  ASSERT_TRUE(recency.has_value());
  EXPECT_DOUBLE_EQ(*recency, 1.0);
  EXPECT_EQ(client.hits(), 1u);
}

TEST(MobileClient, StoreInheritsRelayedRecency) {
  const auto catalog = small_catalog();
  MobileClient client(0, catalog, {});
  client.store(3, fetched(), 0, 0.5);
  EXPECT_DOUBLE_EQ(*client.lookup(3, 1), 0.5);
}

TEST(MobileClient, LocalCacheIsBounded) {
  const auto catalog = small_catalog();  // 10 objects x 2 units
  MobileClientConfig config;
  config.cache_units = 4;  // room for two objects
  MobileClient client(0, catalog, config);
  client.store(0, fetched(), 0);
  client.store(1, fetched(), 1);
  client.store(2, fetched(), 2);
  EXPECT_LE(client.local_cache().used(), 4);
  EXPECT_TRUE(client.lookup(2, 3).has_value());
}

TEST(MobileClient, ConnectivityStateMachine) {
  const auto catalog = small_catalog();
  MobileClientConfig config;
  config.disconnect_rate = 1.0;  // drops immediately
  config.reconnect_rate = 1.0;   // and comes right back
  MobileClient client(0, catalog, config);
  util::Rng rng(1);
  EXPECT_FALSE(client.step_connectivity(rng));  // connected -> disconnected
  EXPECT_FALSE(client.connected());
  EXPECT_TRUE(client.step_connectivity(rng));  // reconnect signalled
  EXPECT_TRUE(client.connected());
}

TEST(MobileClient, NeverDisconnectsAtRateZero) {
  const auto catalog = small_catalog();
  MobileClientConfig config;
  config.disconnect_rate = 0.0;
  MobileClient client(0, catalog, config);
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    client.step_connectivity(rng);
    EXPECT_TRUE(client.connected());
  }
}

TEST(MobileClient, HearsReportsAndDecays) {
  const auto catalog = small_catalog();
  MobileClient client(0, catalog, {});
  client.store(2, fetched(), 0);
  cache::InvalidationReport report{0, 5, {{2, 1}}};
  EXPECT_EQ(client.hear_report(report), 1);
  EXPECT_DOUBLE_EQ(*client.lookup(2, 6), 0.5);
}

TEST(MobileClient, SleeperRuleDropsLocalCache) {
  const auto catalog = small_catalog();
  MobileClient client(0, catalog, {});
  client.store(2, fetched(), 0);
  client.hear_report(cache::InvalidationReport{0, 5, {}});
  // Missed [5, 10); hears [10, 15): everything local is untrustworthy.
  EXPECT_EQ(client.hear_report(cache::InvalidationReport{10, 15, {}}), -1);
  EXPECT_FALSE(client.lookup(2, 16).has_value());
  EXPECT_EQ(client.sleeper_drops(), 1u);
}

TEST(MobileClient, DisconnectedClientCannotHear) {
  const auto catalog = small_catalog();
  MobileClientConfig config;
  config.disconnect_rate = 1.0;
  MobileClient client(0, catalog, config);
  util::Rng rng(3);
  client.step_connectivity(rng);
  EXPECT_THROW(client.hear_report(cache::InvalidationReport{0, 1, {}}),
               std::logic_error);
}

CellConfig small_cell() {
  CellConfig config;
  config.object_count = 50;
  config.client_count = 20;
  config.ticks = 120;
  config.base_budget = 30;
  config.seed = 9;
  return config;
}

TEST(Cell, RunsAndAccountsEveryRequest) {
  const auto result = run_cell(small_cell());
  EXPECT_GT(result.requests, 0u);
  EXPECT_EQ(result.requests, result.served_locally + result.served_by_base);
  EXPECT_GT(result.average_score(), 0.0);
  EXPECT_LE(result.average_score(), 1.0);
  EXPECT_GT(result.base_downloaded, 0);
}

TEST(Cell, LocalCachesAbsorbTraffic) {
  auto config = small_cell();
  config.client.cache_units = 40;
  const auto with_cache = run_cell(config);
  EXPECT_GT(with_cache.local_hit_rate(), 0.05);
}

TEST(Cell, BiggerClientCachesServeMoreLocally) {
  auto config = small_cell();
  config.client.cache_units = 4;
  const auto small_caches = run_cell(config);
  config.client.cache_units = 60;
  const auto big_caches = run_cell(config);
  EXPECT_GT(big_caches.local_hit_rate(), small_caches.local_hit_rate());
}

TEST(Cell, DisconnectionCausesSleeperDrops) {
  auto config = small_cell();
  config.client.disconnect_rate = 0.1;
  config.client.reconnect_rate = 0.2;
  config.report_period = 2;
  const auto result = run_cell(config);
  EXPECT_GT(result.disconnect_ticks, 0u);
  EXPECT_GT(result.sleeper_drops, 0u);
}

TEST(Cell, NoDisconnectsNoDrops) {
  auto config = small_cell();
  config.client.disconnect_rate = 0.0;
  const auto result = run_cell(config);
  EXPECT_EQ(result.disconnect_ticks, 0u);
  EXPECT_EQ(result.sleeper_drops, 0u);
}

TEST(Cell, DeterministicUnderSeed) {
  const auto a = run_cell(small_cell());
  const auto b = run_cell(small_cell());
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.served_locally, b.served_locally);
  EXPECT_DOUBLE_EQ(a.score_sum, b.score_sum);
}

TEST(Cell, BetterBasePolicyLiftsScores) {
  auto config = small_cell();
  config.base_policy = "on-demand-knapsack";
  const auto knapsack = run_cell(config);
  config.base_policy = "cache-only";
  const auto cache_only = run_cell(config);
  EXPECT_GT(knapsack.average_score(), cache_only.average_score());
}

}  // namespace
}  // namespace mobi::client
